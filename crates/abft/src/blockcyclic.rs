//! 2-D block-cyclic distribution and the virtually-distributed matrix.
//!
//! A [`BlockCyclicLayout`] maps every matrix entry to the rank that owns it,
//! exactly like ScaLAPACK's data distribution.  A [`DistributedMatrix`] pairs
//! a global matrix with such a layout and knows how to *lose* the entries of
//! a failed rank — the substitution this reproduction makes for actual
//! distributed memory (see the crate documentation).

use ft_platform::grid::ProcessGrid;
use serde::{Deserialize, Serialize};

use crate::error::{AbftError, Result};
use crate::matrix::Matrix;

/// 2-D block-cyclic ownership map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockCyclicLayout {
    grid: ProcessGrid,
    nb: usize,
}

impl BlockCyclicLayout {
    /// Creates a layout over the given grid with square blocks of order `nb`.
    pub fn new(grid: ProcessGrid, nb: usize) -> Self {
        Self { grid, nb: nb.max(1) }
    }

    /// The process grid.
    pub fn grid(&self) -> &ProcessGrid {
        &self.grid
    }

    /// The block size.
    pub fn block_size(&self) -> usize {
        self.nb
    }

    /// Rank owning entry `(i, j)`.
    pub fn owner(&self, i: usize, j: usize) -> usize {
        let p = (i / self.nb) % self.grid.rows();
        let q = (j / self.nb) % self.grid.cols();
        self.grid.rank(p, q).expect("coordinates derived from the grid")
    }

    /// All entries of an `rows × cols` matrix owned by `rank`.
    pub fn entries_of(&self, rank: usize, rows: usize, cols: usize) -> Result<Vec<(usize, usize)>> {
        if rank >= self.grid.size() {
            return Err(AbftError::UnknownRank {
                rank,
                size: self.grid.size(),
            });
        }
        let (p, q) = self.grid.coords(rank).expect("checked above");
        let mut out = Vec::new();
        for i in 0..rows {
            if (i / self.nb) % self.grid.rows() != p {
                continue;
            }
            for j in 0..cols {
                if (j / self.nb) % self.grid.cols() == q {
                    out.push((i, j));
                }
            }
        }
        Ok(out)
    }

    /// Number of entries of an `rows × cols` matrix owned by `rank`.
    pub fn local_count(&self, rank: usize, rows: usize, cols: usize) -> Result<usize> {
        Ok(self.entries_of(rank, rows, cols)?.len())
    }
}

/// A global matrix together with its (virtual) distribution, able to simulate
/// the loss of one process's data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedMatrix {
    data: Matrix,
    layout: BlockCyclicLayout,
    failed_ranks: Vec<usize>,
}

impl DistributedMatrix {
    /// Wraps a global matrix with a distribution.
    pub fn new(data: Matrix, layout: BlockCyclicLayout) -> Self {
        Self {
            data,
            layout,
            failed_ranks: Vec::new(),
        }
    }

    /// The global matrix (degraded entries read as zero after a failure).
    pub fn global(&self) -> &Matrix {
        &self.data
    }

    /// Mutable access to the global matrix.
    pub fn global_mut(&mut self) -> &mut Matrix {
        &mut self.data
    }

    /// The layout.
    pub fn layout(&self) -> &BlockCyclicLayout {
        &self.layout
    }

    /// Ranks that failed and have not been recovered yet.
    pub fn failed_ranks(&self) -> &[usize] {
        &self.failed_ranks
    }

    /// Whether some data is currently lost.
    pub fn is_degraded(&self) -> bool {
        !self.failed_ranks.is_empty()
    }

    /// Simulates the failure of `rank`: zeroes every entry it owns and
    /// records the rank as failed. Returns the lost entries.
    pub fn kill_rank(&mut self, rank: usize) -> Result<Vec<(usize, usize)>> {
        let lost = self
            .layout
            .entries_of(rank, self.data.rows(), self.data.cols())?;
        for &(i, j) in &lost {
            self.data.set(i, j, 0.0);
        }
        if !self.failed_ranks.contains(&rank) {
            self.failed_ranks.push(rank);
        }
        Ok(lost)
    }

    /// Marks `rank` as recovered (the caller is responsible for having
    /// rewritten its entries).
    pub fn mark_recovered(&mut self, rank: usize) {
        self.failed_ranks.retain(|&r| r != rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout_2x3(nb: usize) -> BlockCyclicLayout {
        BlockCyclicLayout::new(ProcessGrid::new(2, 3).unwrap(), nb)
    }

    #[test]
    fn ownership_is_a_partition() {
        let layout = layout_2x3(3);
        let (rows, cols) = (14, 17);
        let mut seen = vec![false; rows * cols];
        for rank in 0..6 {
            for (i, j) in layout.entries_of(rank, rows, cols).unwrap() {
                assert_eq!(layout.owner(i, j), rank);
                assert!(!seen[i * cols + j]);
                seen[i * cols + j] = true;
            }
        }
        assert!(seen.into_iter().all(|x| x));
        assert!(layout.entries_of(6, rows, cols).is_err());
    }

    #[test]
    fn block_cyclic_wraps_around() {
        // With nb = 2 and 3 process columns, columns 0-1 and 6-7 belong to
        // the same process column.
        let layout = layout_2x3(2);
        assert_eq!(layout.owner(0, 0), layout.owner(0, 6));
        assert_ne!(layout.owner(0, 0), layout.owner(0, 2));
        assert_eq!(layout.owner(0, 0), layout.owner(4, 0));
        assert_ne!(layout.owner(0, 0), layout.owner(2, 0));
    }

    #[test]
    fn local_counts_are_balanced_for_multiples() {
        // A 12 × 12 matrix with nb = 2 over 2 × 3 processes: each process
        // owns exactly 12*12/6 = 24 entries.
        let layout = layout_2x3(2);
        for rank in 0..6 {
            assert_eq!(layout.local_count(rank, 12, 12).unwrap(), 24);
        }
    }

    #[test]
    fn kill_rank_zeroes_exactly_its_entries() {
        let layout = layout_2x3(2);
        let a = Matrix::random(12, 12, 5);
        let mut dm = DistributedMatrix::new(a.clone(), layout);
        assert!(!dm.is_degraded());
        let lost = dm.kill_rank(4).unwrap();
        assert!(dm.is_degraded());
        assert_eq!(dm.failed_ranks(), &[4]);
        assert_eq!(lost.len(), 24);
        for (i, j) in (0..12).flat_map(|i| (0..12).map(move |j| (i, j))) {
            if lost.contains(&(i, j)) {
                assert_eq!(dm.global().get(i, j), 0.0);
            } else {
                assert_eq!(dm.global().get(i, j), a.get(i, j));
            }
        }
        dm.mark_recovered(4);
        assert!(!dm.is_degraded());
    }
}
