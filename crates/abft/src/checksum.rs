//! Checksum encodings and recovery arithmetic.
//!
//! Two flavours of checksums are used by the substrate:
//!
//! * **global weighted checksums** ([`ChecksumWeights`]): `k` weight vectors
//!   turn an `m × n` matrix into an `m × (n+k)` (column-encoded),
//!   `(m+k) × n` (row-encoded) or `(m+k) × (n+k)` (fully-encoded) matrix.
//!   They tolerate up to `k` simultaneous column (resp. row) erasures, which
//!   are recovered by solving a small `k × k` linear system per row (resp.
//!   column).  This is the classic Huang–Abraham scheme used by
//!   [`crate::gemm`].
//!
//! * **block-group checksums** ([`GroupMap`]): the ScaLAPACK-style scheme of
//!   Du et al. (PPoPP 2012) used by the factorizations.  Columns are grouped
//!   so that each group contains exactly one block column per process column
//!   of the grid; one checksum column per *column class* (position inside a
//!   block) accumulates the group sum.  A single process failure then loses
//!   at most one member per group, which is recoverable from the group sum.

use serde::{Deserialize, Serialize};

use crate::error::{AbftError, Result};
use crate::matrix::Matrix;

/// A set of `k` weight vectors of length `n`, defining a checksum encoding
/// that tolerates up to `k` simultaneous erasures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChecksumWeights {
    k: usize,
    n: usize,
    /// `k × n` weight matrix.
    weights: Matrix,
}

impl ChecksumWeights {
    /// Single checksum vector of all ones (tolerates one erasure).
    pub fn ones(n: usize) -> Self {
        Self {
            k: 1,
            n,
            weights: Matrix::from_vec(1, n, vec![1.0; n]).expect("shape"),
        }
    }

    /// Two checksum vectors — all ones and `1, 2, …, n` — tolerating two
    /// simultaneous erasures (the weights of the original Huang–Abraham
    /// paper).
    pub fn ones_and_linear(n: usize) -> Self {
        let mut data = vec![1.0; n];
        data.extend((0..n).map(|j| (j + 1) as f64));
        Self {
            k: 2,
            n,
            weights: Matrix::from_vec(2, n, data).expect("shape"),
        }
    }

    /// Number of checksum vectors (erasures tolerated).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Length of the weight vectors.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The weight applied to column/row `j` by checksum vector `r`.
    #[inline]
    pub fn weight(&self, r: usize, j: usize) -> f64 {
        self.weights.get(r, j)
    }

    /// The `k × n` weight matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.weights
    }
}

/// Appends `k` checksum columns to `a`: the result is `[A, A Wᵀ]`.
pub fn encode_columns(a: &Matrix, w: &ChecksumWeights) -> Result<Matrix> {
    if w.n() != a.cols() {
        return Err(AbftError::DimensionMismatch {
            op: "encode_columns",
            left: (a.rows(), a.cols()),
            right: (w.k(), w.n()),
        });
    }
    let mut out = Matrix::zeros(a.rows(), a.cols() + w.k());
    out.set_block(0, 0, a)?;
    for i in 0..a.rows() {
        for r in 0..w.k() {
            let mut acc = 0.0;
            for j in 0..a.cols() {
                acc += w.weight(r, j) * a.get(i, j);
            }
            out.set(i, a.cols() + r, acc);
        }
    }
    Ok(out)
}

/// Appends `k` checksum rows to `a`: the result is `[A; W A]`.
pub fn encode_rows(a: &Matrix, w: &ChecksumWeights) -> Result<Matrix> {
    if w.n() != a.rows() {
        return Err(AbftError::DimensionMismatch {
            op: "encode_rows",
            left: (a.rows(), a.cols()),
            right: (w.k(), w.n()),
        });
    }
    let mut out = Matrix::zeros(a.rows() + w.k(), a.cols());
    out.set_block(0, 0, a)?;
    for j in 0..a.cols() {
        for r in 0..w.k() {
            let mut acc = 0.0;
            for i in 0..a.rows() {
                acc += w.weight(r, i) * a.get(i, j);
            }
            out.set(a.rows() + r, j, acc);
        }
    }
    Ok(out)
}

/// Fully encodes `a`: `[[A, A Wcᵀ], [Wr A, Wr A Wcᵀ]]`.
pub fn encode_full(a: &Matrix, wr: &ChecksumWeights, wc: &ChecksumWeights) -> Result<Matrix> {
    let cols_done = encode_columns(a, wc)?;
    // Row weights must cover the original rows; the checksum rows of the
    // fully-encoded matrix also cover the checksum columns, which falls out
    // of encoding the column-extended matrix with row weights extended by
    // zeros... simpler: encode rows of the column-encoded matrix using the
    // same row weights (they apply to the original row indices only).
    if wr.n() != a.rows() {
        return Err(AbftError::DimensionMismatch {
            op: "encode_full",
            left: (a.rows(), a.cols()),
            right: (wr.k(), wr.n()),
        });
    }
    let mut out = Matrix::zeros(a.rows() + wr.k(), a.cols() + wc.k());
    out.set_block(0, 0, &cols_done)?;
    for j in 0..cols_done.cols() {
        for r in 0..wr.k() {
            let mut acc = 0.0;
            for i in 0..a.rows() {
                acc += wr.weight(r, i) * cols_done.get(i, j);
            }
            out.set(a.rows() + r, j, acc);
        }
    }
    Ok(out)
}

/// Verifies the column-checksum invariant of a column-encoded matrix whose
/// first `n` columns are data.  Returns the largest relative violation, or an
/// error if it exceeds `tol`.
pub fn verify_columns(encoded: &Matrix, n: usize, w: &ChecksumWeights, tol: f64) -> Result<f64> {
    let mut worst = 0.0_f64;
    for i in 0..encoded.rows() {
        for r in 0..w.k() {
            let mut acc = 0.0;
            let mut scale = 1.0_f64;
            for j in 0..n {
                let v = w.weight(r, j) * encoded.get(i, j);
                acc += v;
                scale = scale.max(v.abs());
            }
            let stored = encoded.get(i, n + r);
            scale = scale.max(stored.abs());
            let violation = (acc - stored).abs() / scale.max(1.0);
            worst = worst.max(violation);
        }
    }
    if worst > tol {
        Err(AbftError::ChecksumViolation {
            violation: worst,
            tolerance: tol,
        })
    } else {
        Ok(worst)
    }
}

/// Recovers up to `k` erased *columns* of a column-encoded matrix in place.
///
/// `lost` lists the erased data-column indices (all `< n`); their current
/// contents are ignored and rewritten.  For every row a `|lost| × |lost|`
/// linear system in the erased values is solved from the checksum columns.
pub fn recover_columns(
    encoded: &mut Matrix,
    n: usize,
    w: &ChecksumWeights,
    lost: &[usize],
) -> Result<()> {
    if lost.is_empty() {
        return Err(AbftError::NothingToRecover);
    }
    if lost.len() > w.k() {
        return Err(AbftError::TooManyFailures {
            failed: lost.len(),
            tolerated: w.k(),
        });
    }
    let m = lost.len();
    // Coefficient matrix: rows = checksum vectors (first m of them),
    // cols = lost columns.
    let mut coeffs = vec![0.0; m * m];
    for (r, row) in coeffs.chunks_mut(m).enumerate() {
        for (c, &j) in lost.iter().enumerate() {
            row[c] = w.weight(r, j);
        }
    }
    for i in 0..encoded.rows() {
        let mut rhs = vec![0.0; m];
        for (r, rhs_r) in rhs.iter_mut().enumerate() {
            let mut acc = encoded.get(i, n + r);
            for j in 0..n {
                if !lost.contains(&j) {
                    acc -= w.weight(r, j) * encoded.get(i, j);
                }
            }
            *rhs_r = acc;
        }
        let solution = solve_small(&coeffs, &rhs, m)?;
        for (c, &j) in lost.iter().enumerate() {
            encoded.set(i, j, solution[c]);
        }
    }
    Ok(())
}

/// Recovers up to `k` erased *rows* of a row-encoded matrix in place.
pub fn recover_rows(
    encoded: &mut Matrix,
    m_rows: usize,
    w: &ChecksumWeights,
    lost: &[usize],
) -> Result<()> {
    if lost.is_empty() {
        return Err(AbftError::NothingToRecover);
    }
    if lost.len() > w.k() {
        return Err(AbftError::TooManyFailures {
            failed: lost.len(),
            tolerated: w.k(),
        });
    }
    let m = lost.len();
    let mut coeffs = vec![0.0; m * m];
    for (r, row) in coeffs.chunks_mut(m).enumerate() {
        for (c, &i) in lost.iter().enumerate() {
            row[c] = w.weight(r, i);
        }
    }
    for j in 0..encoded.cols() {
        let mut rhs = vec![0.0; m];
        for (r, rhs_r) in rhs.iter_mut().enumerate() {
            let mut acc = encoded.get(m_rows + r, j);
            for i in 0..m_rows {
                if !lost.contains(&i) {
                    acc -= w.weight(r, i) * encoded.get(i, j);
                }
            }
            *rhs_r = acc;
        }
        let solution = solve_small(&coeffs, &rhs, m)?;
        for (c, &i) in lost.iter().enumerate() {
            encoded.set(i, j, solution[c]);
        }
    }
    Ok(())
}

/// Solves a small dense linear system by Gaussian elimination with partial
/// pivoting. `a` is `m × m` row-major, `b` has length `m`.
fn solve_small(a: &[f64], b: &[f64], m: usize) -> Result<Vec<f64>> {
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    for col in 0..m {
        // Pivot.
        let (pivot_row, pivot_val) = (col..m)
            .map(|r| (r, a[r * m + col].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .expect("non-empty range");
        if pivot_val < 1e-300 {
            return Err(AbftError::SingularPivot {
                step: col,
                value: pivot_val,
            });
        }
        if pivot_row != col {
            for j in 0..m {
                a.swap(col * m + j, pivot_row * m + j);
            }
            b.swap(col, pivot_row);
        }
        for r in col + 1..m {
            let factor = a[r * m + col] / a[col * m + col];
            for j in col..m {
                a[r * m + j] -= factor * a[col * m + j];
            }
            b[r] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; m];
    for col in (0..m).rev() {
        let mut acc = b[col];
        for j in col + 1..m {
            acc -= a[col * m + j] * x[j];
        }
        x[col] = acc / a[col * m + col];
    }
    Ok(x)
}

/// The block-group column/row layout used by the factorizations.
///
/// Entry index `j` belongs to block `J = j / nb`, which belongs to group
/// `g = J / q` (one block per process column in each group); its *class* is
/// `j % nb`.  The checksum storage reserves `nb` columns per group; the
/// checksum column protecting `j` is `g * nb + (j % nb)` (relative to the
/// start of the checksum region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupMap {
    /// Extent of the indexed dimension (number of data columns or rows).
    pub n: usize,
    /// Block size.
    pub nb: usize,
    /// Number of processes along the dimension (grid columns for a column
    /// map, grid rows for a row map).
    pub procs: usize,
}

impl GroupMap {
    /// Creates a group map.
    pub fn new(n: usize, nb: usize, procs: usize) -> Self {
        Self {
            n,
            nb: nb.max(1),
            procs: procs.max(1),
        }
    }

    /// Number of blocks along the dimension.
    pub fn num_blocks(&self) -> usize {
        self.n.div_ceil(self.nb)
    }

    /// Number of groups (each spanning `procs` blocks).
    pub fn num_groups(&self) -> usize {
        self.num_blocks().div_ceil(self.procs)
    }

    /// Number of checksum columns/rows required (`nb` per group).
    pub fn checksum_extent(&self) -> usize {
        self.num_groups() * self.nb
    }

    /// Block index of entry `j`.
    pub fn block_of(&self, j: usize) -> usize {
        j / self.nb
    }

    /// Group index of entry `j`.
    pub fn group_of(&self, j: usize) -> usize {
        self.block_of(j) / self.procs
    }

    /// Process (along this dimension) owning entry `j` under the block-cyclic
    /// distribution.
    pub fn owner_of(&self, j: usize) -> usize {
        self.block_of(j) % self.procs
    }

    /// Offset (within the checksum region) of the checksum column/row that
    /// protects entry `j`.
    pub fn checksum_index(&self, j: usize) -> usize {
        self.group_of(j) * self.nb + (j % self.nb)
    }

    /// The other data entries protected by the same checksum as `j`
    /// (same group, same class, different block).
    pub fn partners(&self, j: usize) -> Vec<usize> {
        let g = self.group_of(j);
        let class = j % self.nb;
        (0..self.procs)
            .map(|b| (g * self.procs + b) * self.nb + class)
            .filter(|&p| p != j && p < self.n)
            .collect()
    }

    /// All data entries owned by process `p` along this dimension.
    pub fn entries_of(&self, p: usize) -> Vec<usize> {
        (0..self.n).filter(|&j| self.owner_of(j) == p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_constructors() {
        let w = ChecksumWeights::ones(4);
        assert_eq!((w.k(), w.n()), (1, 4));
        assert_eq!(w.weight(0, 3), 1.0);
        let w = ChecksumWeights::ones_and_linear(4);
        assert_eq!(w.k(), 2);
        assert_eq!(w.weight(1, 0), 1.0);
        assert_eq!(w.weight(1, 3), 4.0);
    }

    #[test]
    fn encode_columns_appends_weighted_sums() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let w = ChecksumWeights::ones(3);
        let e = encode_columns(&a, &w).unwrap();
        assert_eq!((e.rows(), e.cols()), (2, 4));
        assert_eq!(e.get(0, 3), 6.0);
        assert_eq!(e.get(1, 3), 15.0);
        assert!(verify_columns(&e, 3, &w, 1e-12).is_ok());
    }

    #[test]
    fn encode_rows_appends_weighted_sums() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let w = ChecksumWeights::ones_and_linear(2);
        let e = encode_rows(&a, &w).unwrap();
        assert_eq!((e.rows(), e.cols()), (4, 2));
        // ones row
        assert_eq!(e.get(2, 0), 4.0);
        assert_eq!(e.get(2, 1), 6.0);
        // linear row: 1*a0j + 2*a1j
        assert_eq!(e.get(3, 0), 7.0);
        assert_eq!(e.get(3, 1), 10.0);
    }

    #[test]
    fn dimension_mismatches_are_caught() {
        let a = Matrix::zeros(3, 4);
        let w = ChecksumWeights::ones(5);
        assert!(encode_columns(&a, &w).is_err());
        assert!(encode_rows(&a, &w).is_err());
    }

    #[test]
    fn single_column_recovery_is_exact() {
        let a = Matrix::random(8, 6, 42);
        let w = ChecksumWeights::ones(6);
        let mut e = encode_columns(&a, &w).unwrap();
        // Erase column 2.
        for i in 0..8 {
            e.set(i, 2, f64::NAN);
        }
        recover_columns(&mut e, 6, &w, &[2]).unwrap();
        let recovered = e.block(0, 8, 0, 6).unwrap();
        assert!(recovered.approx_eq(&a, 1e-10));
    }

    #[test]
    fn double_column_recovery_with_two_weights() {
        let a = Matrix::random(5, 7, 13);
        let w = ChecksumWeights::ones_and_linear(7);
        let mut e = encode_columns(&a, &w).unwrap();
        for i in 0..5 {
            e.set(i, 1, 0.0);
            e.set(i, 4, 0.0);
        }
        recover_columns(&mut e, 7, &w, &[1, 4]).unwrap();
        assert!(e.block(0, 5, 0, 7).unwrap().approx_eq(&a, 1e-9));
    }

    #[test]
    fn too_many_failures_are_rejected() {
        let a = Matrix::random(3, 5, 1);
        let w = ChecksumWeights::ones(5);
        let mut e = encode_columns(&a, &w).unwrap();
        assert!(matches!(
            recover_columns(&mut e, 5, &w, &[0, 1]),
            Err(AbftError::TooManyFailures { failed: 2, tolerated: 1 })
        ));
        assert!(matches!(
            recover_columns(&mut e, 5, &w, &[]),
            Err(AbftError::NothingToRecover)
        ));
    }

    #[test]
    fn row_recovery_is_exact() {
        let a = Matrix::random(6, 4, 21);
        let w = ChecksumWeights::ones_and_linear(6);
        let mut e = encode_rows(&a, &w).unwrap();
        for j in 0..4 {
            e.set(3, j, -1.0);
            e.set(5, j, -1.0);
        }
        recover_rows(&mut e, 6, &w, &[3, 5]).unwrap();
        assert!(e.block(0, 6, 0, 4).unwrap().approx_eq(&a, 1e-9));
    }

    #[test]
    fn verify_detects_corruption() {
        let a = Matrix::random(4, 4, 3);
        let w = ChecksumWeights::ones(4);
        let mut e = encode_columns(&a, &w).unwrap();
        assert!(verify_columns(&e, 4, &w, 1e-10).is_ok());
        e.set(2, 1, e.get(2, 1) + 1.0);
        assert!(matches!(
            verify_columns(&e, 4, &w, 1e-10),
            Err(AbftError::ChecksumViolation { .. })
        ));
    }

    #[test]
    fn full_encoding_checks_both_directions() {
        let a = Matrix::random(3, 4, 9);
        let wr = ChecksumWeights::ones(3);
        let wc = ChecksumWeights::ones(4);
        let e = encode_full(&a, &wr, &wc).unwrap();
        assert_eq!((e.rows(), e.cols()), (4, 5));
        // Bottom-right corner = total sum of A.
        let total: f64 = a.data().iter().sum();
        assert!((e.get(3, 4) - total).abs() < 1e-10);
    }

    #[test]
    fn group_map_indexing() {
        // 12 columns, block size 2, 3 process columns → 6 blocks, 2 groups.
        let gm = GroupMap::new(12, 2, 3);
        assert_eq!(gm.num_blocks(), 6);
        assert_eq!(gm.num_groups(), 2);
        assert_eq!(gm.checksum_extent(), 4);
        assert_eq!(gm.block_of(5), 2);
        assert_eq!(gm.group_of(5), 0);
        assert_eq!(gm.owner_of(5), 2);
        assert_eq!(gm.checksum_index(5), 1);
        // Partners of column 5 (block 2, class 1, group 0): columns 1 and 3.
        assert_eq!(gm.partners(5), vec![1, 3]);
        // Column 7: block 3, group 1, class 1 → checksum index 3, partners 9, 11.
        assert_eq!(gm.checksum_index(7), 3);
        assert_eq!(gm.partners(7), vec![9, 11]);
    }

    #[test]
    fn group_map_ownership_partition() {
        let gm = GroupMap::new(20, 3, 2);
        let all: Vec<usize> = (0..2).flat_map(|p| gm.entries_of(p)).collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        // A process never owns two entries protected by the same checksum.
        for p in 0..2 {
            let owned = gm.entries_of(p);
            for &j in &owned {
                for partner in gm.partners(j) {
                    assert_ne!(gm.owner_of(partner), p, "j={j} partner={partner}");
                }
            }
        }
    }

    #[test]
    fn group_map_handles_ragged_tail() {
        // 10 columns, block 4, 2 procs → blocks of 4,4,2; groups: {0,1}, {2}.
        let gm = GroupMap::new(10, 4, 2);
        assert_eq!(gm.num_blocks(), 3);
        assert_eq!(gm.num_groups(), 2);
        assert_eq!(gm.checksum_extent(), 8);
        // Column 9 lives in block 2, group 1, class 1; it has no partner
        // (block 3 does not exist).
        assert_eq!(gm.partners(9), Vec::<usize>::new());
    }
}
