//! Cholesky factorization, plain and ABFT-protected.
//!
//! [`plain_cholesky`] is the reference right-looking Cholesky.
//!
//! [`AbftCholesky`] computes the Cholesky factor of a symmetric
//! positive-definite matrix under the same block-group checksum protection as
//! [`crate::lu::AbftLu`]: internally the matrix is factored as `A = L·U`
//! without pivoting — which is numerically stable for SPD matrices — under
//! checksum protection, and the Cholesky factor is recovered as
//! `L_chol = L · diag(√u_ii)`.  Failure injection and recovery are therefore
//! inherited verbatim from the protected LU machinery, which keeps a single,
//! well-tested recovery path for both factorizations.

use ft_platform::grid::ProcessGrid;
use serde::{Deserialize, Serialize};

use crate::error::{AbftError, Result};
use crate::lu::AbftLu;
use crate::matrix::Matrix;

/// Plain right-looking Cholesky factorization: returns the lower-triangular
/// factor `L` with `A = L·Lᵀ`.
pub fn plain_cholesky(a: &Matrix) -> Result<Matrix> {
    if a.rows() != a.cols() {
        return Err(AbftError::DimensionMismatch {
            op: "plain_cholesky",
            left: (a.rows(), a.cols()),
            right: (a.cols(), a.rows()),
        });
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut diag = a.get(j, j);
        for k in 0..j {
            diag -= l.get(j, k) * l.get(j, k);
        }
        if diag <= 0.0 {
            return Err(AbftError::NotPositiveDefinite { step: j });
        }
        let d = diag.sqrt();
        l.set(j, j, d);
        for i in j + 1..n {
            let mut v = a.get(i, j);
            for k in 0..j {
                v -= l.get(i, k) * l.get(j, k);
            }
            l.set(i, j, v / d);
        }
    }
    Ok(l)
}

/// ABFT-protected Cholesky factorization of an SPD matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbftCholesky {
    inner: AbftLu,
}

impl AbftCholesky {
    /// Encodes the SPD matrix `a` for protected factorization over `grid`
    /// with block size `nb`.
    pub fn new(a: &Matrix, grid: &ProcessGrid, nb: usize) -> Result<Self> {
        // A quick symmetry sanity check; positive definiteness is detected
        // during the factorization itself (negative pivot).
        if !a.approx_eq(&a.transpose(), 1e-9 * a.max_abs().max(1.0)) {
            return Err(AbftError::NotPositiveDefinite { step: 0 });
        }
        Ok(Self {
            inner: AbftLu::new(a, grid, nb)?,
        })
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.inner.n()
    }

    /// Number of elimination steps already performed.
    pub fn step(&self) -> usize {
        self.inner.step()
    }

    /// Whether the factorization is complete.
    pub fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    /// Performs up to `count` elimination steps.
    pub fn factor_steps(&mut self, count: usize) -> Result<usize> {
        let done = self.inner.factor_steps(count)?;
        self.check_positive()?;
        Ok(done)
    }

    /// Runs the factorization to completion.
    pub fn factor_to_completion(&mut self) -> Result<()> {
        self.inner.factor_to_completion()?;
        self.check_positive()
    }

    fn check_positive(&self) -> Result<()> {
        // An SPD matrix produces strictly positive pivots; a non-positive
        // pivot in the factored part means the input was not SPD.
        for t in 0..self.inner.step() {
            if self.inner.storage().get(t, t) <= 0.0 {
                return Err(AbftError::NotPositiveDefinite { step: t });
            }
        }
        Ok(())
    }

    /// Verifies the checksum invariants.
    pub fn verify(&self, tol: f64) -> Result<f64> {
        self.inner.verify(tol)
    }

    /// All data-region entries owned by `rank`.
    pub fn entries_of_rank(&self, rank: usize) -> Result<Vec<(usize, usize)>> {
        self.inner.entries_of_rank(rank)
    }

    /// Simulates the failure of `rank`, destroying the entries it owns.
    pub fn inject_failure(&mut self, rank: usize) -> Result<Vec<(usize, usize)>> {
        self.inner.inject_failure(rank)
    }

    /// Recovers the lost entries of a single failed process.
    pub fn recover(&mut self, lost: &[(usize, usize)]) -> Result<()> {
        self.inner.recover(lost)
    }

    /// Extracts the Cholesky factor `L` with `A = L·Lᵀ` (meaningful once the
    /// factorization is complete).
    pub fn factor(&self) -> Result<Matrix> {
        let (l, u) = self.inner.extract_factors();
        let n = self.inner.n();
        let mut chol = Matrix::zeros(n, n);
        for j in 0..n {
            let d = u.get(j, j);
            if d <= 0.0 {
                return Err(AbftError::NotPositiveDefinite { step: j });
            }
            let s = d.sqrt();
            for i in j..n {
                chol.set(i, j, l.get(i, j) * s);
            }
        }
        Ok(chol)
    }

    /// Residual `‖L·Lᵀ − A‖_max / ‖A‖_max`.
    pub fn residual(&self, original: &Matrix) -> Result<f64> {
        let l = self.factor()?;
        let llt = l.matmul(&l.transpose())?;
        Ok(llt.max_abs_diff(original)? / original.max_abs().max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_cholesky_reconstructs_spd_matrix() {
        let a = Matrix::random_spd(20, 3);
        let l = plain_cholesky(&a).unwrap();
        let llt = l.matmul(&l.transpose()).unwrap();
        assert!(llt.max_abs_diff(&a).unwrap() / a.max_abs() < 1e-10);
        // L is lower triangular with positive diagonal.
        for i in 0..20 {
            assert!(l.get(i, i) > 0.0);
            for j in i + 1..20 {
                assert_eq!(l.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn plain_cholesky_rejects_indefinite_matrices() {
        let mut a = Matrix::identity(3);
        a.set(2, 2, -1.0);
        assert!(matches!(
            plain_cholesky(&a),
            Err(AbftError::NotPositiveDefinite { .. })
        ));
        assert!(plain_cholesky(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn abft_cholesky_matches_plain_cholesky() {
        let a = Matrix::random_spd(24, 9);
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut abft = AbftCholesky::new(&a, &grid, 4).unwrap();
        abft.factor_to_completion().unwrap();
        let l_abft = abft.factor().unwrap();
        let l_plain = plain_cholesky(&a).unwrap();
        assert!(l_abft.approx_eq(&l_plain, 1e-8 * a.max_abs()));
        assert!(abft.residual(&a).unwrap() < 1e-9);
    }

    #[test]
    fn abft_cholesky_rejects_asymmetric_input() {
        let a = Matrix::random(8, 8, 4);
        let grid = ProcessGrid::new(2, 2).unwrap();
        assert!(AbftCholesky::new(&a, &grid, 2).is_err());
    }

    #[test]
    fn mid_factorization_failure_is_recovered() {
        let a = Matrix::random_spd(24, 15);
        let grid = ProcessGrid::new(2, 2).unwrap();
        for rank in 0..grid.size() {
            let mut abft = AbftCholesky::new(&a, &grid, 3).unwrap();
            abft.factor_steps(11).unwrap();
            let lost = abft.inject_failure(rank).unwrap();
            assert!(!lost.is_empty());
            abft.recover(&lost).unwrap();
            assert!(abft.verify(1e-7).is_ok());
            abft.factor_to_completion().unwrap();
            assert!(
                abft.residual(&a).unwrap() < 1e-8,
                "residual too large after recovering rank {rank}"
            );
        }
    }

    #[test]
    fn indefinite_matrix_is_detected_during_protected_factorization() {
        // Symmetric but indefinite.
        let mut a = Matrix::identity(6);
        a.set(4, 4, -2.0);
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut abft = AbftCholesky::new(&a, &grid, 2).unwrap();
        let r = abft.factor_to_completion().and_then(|_| abft.factor().map(|_| ()));
        assert!(r.is_err());
    }
}
