//! Error type for the ABFT substrate.

use std::fmt;

/// Errors produced by the ABFT substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum AbftError {
    /// Matrix dimensions do not allow the requested operation.
    DimensionMismatch {
        /// Description of the operation.
        op: &'static str,
        /// Dimensions of the left/first operand.
        left: (usize, usize),
        /// Dimensions of the right/second operand.
        right: (usize, usize),
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The row index accessed.
        row: usize,
        /// The column index accessed.
        col: usize,
        /// The matrix dimensions.
        dims: (usize, usize),
    },
    /// A zero (or numerically negligible) pivot was encountered: the
    /// factorization cannot proceed without pivoting.
    SingularPivot {
        /// Elimination step at which the pivot vanished.
        step: usize,
        /// The pivot value.
        value: f64,
    },
    /// The matrix is not symmetric positive definite (Cholesky only).
    NotPositiveDefinite {
        /// Step at which positive definiteness failed.
        step: usize,
    },
    /// Recovery was asked for more simultaneous failures than the checksum
    /// encoding can tolerate.
    TooManyFailures {
        /// Number of failures requested.
        failed: usize,
        /// Number the encoding tolerates.
        tolerated: usize,
    },
    /// The checksum invariant does not hold (data corrupted beyond recovery,
    /// or verification tolerance exceeded).
    ChecksumViolation {
        /// Largest relative violation found.
        violation: f64,
        /// Tolerance used.
        tolerance: f64,
    },
    /// The referenced process rank does not exist in the grid.
    UnknownRank {
        /// The rank.
        rank: usize,
        /// Grid size.
        size: usize,
    },
    /// Recovery was attempted but no failure is pending.
    NothingToRecover,
}

impl fmt::Display for AbftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbftError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: ({} x {}) vs ({} x {})",
                left.0, left.1, right.0, right.1
            ),
            AbftError::IndexOutOfBounds { row, col, dims } => write!(
                f,
                "index ({row}, {col}) out of bounds for a {} x {} matrix",
                dims.0, dims.1
            ),
            AbftError::SingularPivot { step, value } => {
                write!(f, "singular pivot {value:e} at elimination step {step}")
            }
            AbftError::NotPositiveDefinite { step } => {
                write!(f, "matrix is not positive definite (detected at step {step})")
            }
            AbftError::TooManyFailures { failed, tolerated } => write!(
                f,
                "{failed} simultaneous failures requested but the encoding tolerates {tolerated}"
            ),
            AbftError::ChecksumViolation { violation, tolerance } => write!(
                f,
                "checksum invariant violated: relative error {violation:e} exceeds tolerance {tolerance:e}"
            ),
            AbftError::UnknownRank { rank, size } => {
                write!(f, "rank {rank} does not exist in a grid of {size} processes")
            }
            AbftError::NothingToRecover => write!(f, "no pending failure to recover from"),
        }
    }
}

impl std::error::Error for AbftError {}

/// Result alias for ABFT operations.
pub type Result<T> = std::result::Result<T, AbftError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AbftError::SingularPivot { step: 3, value: 0.0 };
        assert!(e.to_string().contains('3'));
        let e = AbftError::TooManyFailures { failed: 2, tolerated: 1 };
        assert!(e.to_string().contains('2') && e.to_string().contains('1'));
    }
}
