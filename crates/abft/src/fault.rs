//! Failure injection for the ABFT substrate.
//!
//! [`FaultInjector`] chooses victims (deterministically from a seed, or
//! scripted) and keeps a record of the injected failures, so that examples,
//! tests and the overhead-measurement harness can describe a failure
//! scenario once and replay it against any of the protected operations.

use ft_platform::grid::ProcessGrid;
use ft_platform::rng::{DeterministicRng, Xoshiro256};
use serde::{Deserialize, Serialize};

use crate::error::{AbftError, Result};

/// A recorded injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// Rank that was killed.
    pub rank: usize,
    /// Elimination step (or logical instant) at which it was killed.
    pub at_step: usize,
}

/// Chooses failure victims over a process grid.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    grid: ProcessGrid,
    rng: Xoshiro256,
    history: Vec<InjectedFault>,
}

impl FaultInjector {
    /// Creates an injector over the given grid, seeded deterministically.
    pub fn new(grid: ProcessGrid, seed: u64) -> Self {
        Self {
            grid,
            rng: Xoshiro256::seed_from_u64(seed),
            history: Vec::new(),
        }
    }

    /// The grid the injector targets.
    pub fn grid(&self) -> &ProcessGrid {
        &self.grid
    }

    /// Picks a uniformly random victim rank and records it.
    pub fn random_victim(&mut self, at_step: usize) -> usize {
        let rank = self.rng.index(self.grid.size());
        self.history.push(InjectedFault { rank, at_step });
        rank
    }

    /// Records a scripted failure of a specific rank.
    pub fn scripted(&mut self, rank: usize, at_step: usize) -> Result<usize> {
        if rank >= self.grid.size() {
            return Err(AbftError::UnknownRank {
                rank,
                size: self.grid.size(),
            });
        }
        self.history.push(InjectedFault { rank, at_step });
        Ok(rank)
    }

    /// The failures injected so far.
    pub fn history(&self) -> &[InjectedFault] {
        &self.history
    }

    /// Number of failures injected so far.
    pub fn count(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_victims_are_in_range_and_deterministic() {
        let grid = ProcessGrid::new(3, 4).unwrap();
        let mut a = FaultInjector::new(grid, 7);
        let mut b = FaultInjector::new(grid, 7);
        for step in 0..50 {
            let va = a.random_victim(step);
            let vb = b.random_victim(step);
            assert_eq!(va, vb);
            assert!(va < 12);
        }
        assert_eq!(a.count(), 50);
        assert_eq!(a.history()[0].at_step, 0);
    }

    #[test]
    fn scripted_failures_validate_the_rank() {
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut inj = FaultInjector::new(grid, 1);
        assert_eq!(inj.scripted(3, 10).unwrap(), 3);
        assert!(inj.scripted(4, 10).is_err());
        assert_eq!(inj.count(), 1);
    }

    #[test]
    fn different_seeds_give_different_sequences() {
        let grid = ProcessGrid::new(4, 4).unwrap();
        let mut a = FaultInjector::new(grid, 1);
        let mut b = FaultInjector::new(grid, 2);
        let sa: Vec<usize> = (0..20).map(|s| a.random_victim(s)).collect();
        let sb: Vec<usize> = (0..20).map(|s| b.random_victim(s)).collect();
        assert_ne!(sa, sb);
    }
}
