//! ABFT matrix multiplication (Huang–Abraham).
//!
//! `C = A · B` is protected by encoding `A` with checksum **rows** and `B`
//! with checksum **columns**: the product of the encoded operands is the
//! *fully encoded* `C`, whose checksum rows/columns come out of the
//! multiplication itself (no separate encoding step for the result).  A
//! process failure that erases up to `k` rows or columns of `C` is then
//! recovered from the surviving entries, and corruption is detected by
//! re-verifying the invariant.

use crate::checksum::{
    encode_columns, encode_rows, recover_columns, recover_rows, verify_columns, ChecksumWeights,
};
use crate::error::Result;
use crate::matrix::Matrix;

/// ABFT-protected matrix multiplication.
#[derive(Debug, Clone)]
pub struct AbftGemm {
    /// Weights protecting the rows of `C` (length = rows of `A`).
    row_weights: ChecksumWeights,
    /// Weights protecting the columns of `C` (length = cols of `B`).
    col_weights: ChecksumWeights,
}

/// The fully encoded product, carrying its own dimensions.
#[derive(Debug, Clone)]
pub struct ProtectedProduct {
    /// `(m + k_r) × (p + k_c)` encoded product.
    pub encoded: Matrix,
    /// Rows of the unencoded product.
    pub m: usize,
    /// Columns of the unencoded product.
    pub p: usize,
}

impl ProtectedProduct {
    /// The unencoded product `C`.
    pub fn result(&self) -> Matrix {
        self.encoded
            .block(0, self.m, 0, self.p)
            .expect("dimensions recorded at creation")
    }
}

impl AbftGemm {
    /// Creates a single-erasure (k = 1) protection scheme for products of
    /// shape `m × p`.
    pub fn single(m: usize, p: usize) -> Self {
        Self {
            row_weights: ChecksumWeights::ones(m),
            col_weights: ChecksumWeights::ones(p),
        }
    }

    /// Creates a double-erasure (k = 2) protection scheme.
    pub fn double(m: usize, p: usize) -> Self {
        Self {
            row_weights: ChecksumWeights::ones_and_linear(m),
            col_weights: ChecksumWeights::ones_and_linear(p),
        }
    }

    /// Number of simultaneous column erasures tolerated.
    pub fn tolerance(&self) -> usize {
        self.col_weights.k().min(self.row_weights.k())
    }

    /// Multiplies `a · b` with checksum protection.
    pub fn multiply(&self, a: &Matrix, b: &Matrix) -> Result<ProtectedProduct> {
        let a_enc = encode_rows(a, &self.row_weights)?;
        let b_enc = encode_columns(b, &self.col_weights)?;
        let encoded = a_enc.matmul(&b_enc)?;
        Ok(ProtectedProduct {
            encoded,
            m: a.rows(),
            p: b.cols(),
        })
    }

    /// Verifies the column-checksum invariant of a protected product,
    /// returning the worst relative violation.
    pub fn verify(&self, product: &ProtectedProduct, tol: f64) -> Result<f64> {
        verify_columns(&product.encoded, product.p, &self.col_weights, tol)
    }

    /// Recovers erased columns of the product (up to `k`).
    pub fn recover_columns(&self, product: &mut ProtectedProduct, lost: &[usize]) -> Result<()> {
        recover_columns(&mut product.encoded, product.p, &self.col_weights, lost)
    }

    /// Recovers erased rows of the product (up to `k`).
    pub fn recover_rows(&self, product: &mut ProtectedProduct, lost: &[usize]) -> Result<()> {
        recover_rows(&mut product.encoded, product.m, &self.row_weights, lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protected_product_matches_plain_product() {
        let a = Matrix::random(7, 5, 1);
        let b = Matrix::random(5, 6, 2);
        let gemm = AbftGemm::single(7, 6);
        let prot = gemm.multiply(&a, &b).unwrap();
        let plain = a.matmul(&b).unwrap();
        assert!(prot.result().approx_eq(&plain, 1e-10));
        assert!(gemm.verify(&prot, 1e-9).is_ok());
    }

    #[test]
    fn column_erasure_is_recovered() {
        let a = Matrix::random(6, 4, 3);
        let b = Matrix::random(4, 8, 4);
        let gemm = AbftGemm::single(6, 8);
        let reference = a.matmul(&b).unwrap();
        let mut prot = gemm.multiply(&a, &b).unwrap();
        for i in 0..prot.encoded.rows() {
            prot.encoded.set(i, 3, f64::NAN);
        }
        gemm.recover_columns(&mut prot, &[3]).unwrap();
        assert!(prot.result().approx_eq(&reference, 1e-9));
    }

    #[test]
    fn double_erasure_needs_double_weights() {
        let a = Matrix::random(5, 5, 7);
        let b = Matrix::random(5, 5, 8);
        let reference = a.matmul(&b).unwrap();

        let single = AbftGemm::single(5, 5);
        let mut prot = single.multiply(&a, &b).unwrap();
        assert!(single.recover_columns(&mut prot, &[0, 2]).is_err());

        let double = AbftGemm::double(5, 5);
        assert_eq!(double.tolerance(), 2);
        let mut prot = double.multiply(&a, &b).unwrap();
        for i in 0..prot.encoded.rows() {
            prot.encoded.set(i, 0, 0.0);
            prot.encoded.set(i, 2, 0.0);
        }
        double.recover_columns(&mut prot, &[0, 2]).unwrap();
        assert!(prot.result().approx_eq(&reference, 1e-9));
    }

    #[test]
    fn row_erasure_is_recovered() {
        let a = Matrix::random(6, 3, 11);
        let b = Matrix::random(3, 4, 12);
        let gemm = AbftGemm::double(6, 4);
        let reference = a.matmul(&b).unwrap();
        let mut prot = gemm.multiply(&a, &b).unwrap();
        for j in 0..prot.encoded.cols() {
            prot.encoded.set(1, j, 0.0);
            prot.encoded.set(4, j, 0.0);
        }
        gemm.recover_rows(&mut prot, &[1, 4]).unwrap();
        assert!(prot.result().approx_eq(&reference, 1e-9));
    }

    #[test]
    fn verification_catches_silent_corruption() {
        let a = Matrix::random(4, 4, 20);
        let b = Matrix::random(4, 4, 21);
        let gemm = AbftGemm::single(4, 4);
        let mut prot = gemm.multiply(&a, &b).unwrap();
        prot.encoded.set(2, 2, prot.encoded.get(2, 2) * 2.0 + 1.0);
        assert!(gemm.verify(&prot, 1e-9).is_err());
    }
}
