//! # ft-abft — Algorithm-Based Fault Tolerance substrate
//!
//! An in-memory, algorithm-level implementation of the ABFT techniques the
//! composite protocol of Bosilca et al. (APDCM 2014) assumes for its LIBRARY
//! phases: checksum-encoded dense linear algebra à la Huang–Abraham and
//! Du et al. (PPoPP 2012), with process-failure injection and recovery.
//!
//! * [`matrix`] — a small dense-matrix type (row-major `f64`) with the
//!   operations the factorizations need;
//! * [`checksum`] — checksum weights and encodings (row / column / full) and
//!   the single-failure recovery arithmetic;
//! * [`gemm`] — ABFT matrix multiplication (the textbook Huang–Abraham
//!   scheme): encode, multiply, verify, recover;
//! * [`lu`] — right-looking LU factorization (no pivoting) on a
//!   checksum-augmented matrix, with mid-factorization failure recovery;
//! * [`cholesky`] — right-looking Cholesky with trailing-matrix checksum
//!   protection;
//! * [`blockcyclic`] — 2-D block-cyclic ownership map over a virtual process
//!   grid, used to decide *which* entries a process failure destroys;
//! * [`fault`] — failure injection: kill a rank, enumerate and zero the
//!   entries it owned;
//! * [`recovery`] — rebuilding the lost entries from surviving data and
//!   checksums;
//! * [`overhead`] — measurement of the ABFT overhead factor `φ` and of the
//!   reconstruction time `Recons_ABFT`, the two quantities the analytical
//!   model consumes.
//!
//! ## Scope and substitutions
//!
//! There is no MPI here: the "distributed" matrix is a global matrix plus an
//! ownership map, and killing a process means destroying the entries it owns.
//! This preserves exactly the property the paper relies on — *lost LIBRARY
//! data can be recomputed from the surviving processes' data and checksums,
//! without any rollback* — while keeping the substrate testable on a laptop.
//! The factorizations skip pivoting (appropriate for the diagonally-dominant
//! and SPD test matrices used throughout), which is documented on each
//! factorization type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blockcyclic;
pub mod checksum;
pub mod cholesky;
pub mod error;
pub mod fault;
pub mod gemm;
pub mod lu;
pub mod matrix;
pub mod overhead;
pub mod recovery;

pub use blockcyclic::BlockCyclicLayout;
pub use checksum::ChecksumWeights;
pub use cholesky::{plain_cholesky, AbftCholesky};
pub use error::AbftError;
pub use fault::FaultInjector;
pub use gemm::AbftGemm;
pub use lu::{blocked_lu, plain_lu, AbftLu};
pub use matrix::Matrix;
pub use overhead::{measure_overhead, OverheadReport};
