//! ABFT LU factorization.
//!
//! [`AbftLu`] implements a right-looking LU factorization (Doolittle, no
//! pivoting — appropriate for the diagonally-dominant matrices the tests and
//! examples use) on a matrix augmented with the block-group checksums of
//! Du et al. (PPoPP 2012):
//!
//! * **column checksums** (one checksum column per column *class* per column
//!   group) are carried through the factorization by the ordinary trailing
//!   updates and therefore protect, at any step `s`,
//!   the already-computed rows of `U` *and* the trailing Schur complement;
//! * **row checksums** (one checksum row per row class per row group) are
//!   eliminated like ordinary rows and therefore hold, for every factored
//!   column `t`, the weighted sum of the `L` entries of that column — they
//!   protect the already-computed columns of `L`.
//!
//! Together the two invariants let [`AbftLu::recover`] rebuild every entry a
//! single failed process owned, **at any point of the factorization**,
//! without re-executing any step — the property the composite protocol of
//! the paper relies on for its LIBRARY phases.

use ft_platform::grid::ProcessGrid;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::checksum::GroupMap;
use crate::error::{AbftError, Result};
use crate::matrix::{Matrix, PAR_THRESHOLD};

/// Relative pivot threshold below which the factorization reports a singular
/// pivot.
const PIVOT_TOLERANCE: f64 = 1e-12;

/// Plain (unprotected) right-looking LU factorization without pivoting.
///
/// Returns the in-place storage (strictly-lower part = `L` without its unit
/// diagonal, upper part = `U`).
pub fn plain_lu(a: &Matrix) -> Result<Matrix> {
    if a.rows() != a.cols() {
        return Err(AbftError::DimensionMismatch {
            op: "plain_lu",
            left: (a.rows(), a.cols()),
            right: (a.cols(), a.rows()),
        });
    }
    let n = a.rows();
    let mut s = a.clone();
    let scale = a.max_abs().max(1.0);
    for t in 0..n {
        let pivot = s.get(t, t);
        if pivot.abs() < PIVOT_TOLERANCE * scale {
            return Err(AbftError::SingularPivot { step: t, value: pivot });
        }
        for i in t + 1..n {
            let l = s.get(i, t) / pivot;
            s.set(i, t, l);
            for j in t + 1..n {
                s.add_to(i, j, -l * s.get(t, j));
            }
        }
    }
    Ok(s)
}

/// Blocked (tiled) right-looking LU factorization without pivoting.
///
/// Classic panel algorithm: factor a panel of `nb` columns with updates
/// restricted to the panel, solve the unit-lower triangular system for the
/// `U12` block row, then apply one rank-`nb` trailing update
/// `A22 ← A22 − L21·U12`.  The trailing update — where almost all the flops
/// live — streams `nb` rows of `U12` over every trailing row (the same
/// tiling idea as [`Matrix::matmul`], with the panel as the k-tile) and
/// parallelises over trailing rows once the update exceeds
/// the crate's Rayon threshold.
///
/// Produces the same in-place `L\U` storage as [`plain_lu`] up to
/// floating-point reassociation of the trailing sums.
pub fn blocked_lu(a: &Matrix, nb: usize) -> Result<Matrix> {
    if a.rows() != a.cols() {
        return Err(AbftError::DimensionMismatch {
            op: "blocked_lu",
            left: (a.rows(), a.cols()),
            right: (a.cols(), a.rows()),
        });
    }
    let n = a.rows();
    let nb = nb.max(1);
    let mut s = a.clone();
    let scale = a.max_abs().max(1.0);
    for t in (0..n).step_by(nb) {
        let b = nb.min(n - t);
        // Panel factorization: eliminate columns t..t+b, touching only the
        // panel's columns (the trailing matrix is updated in one shot below).
        for j in t..t + b {
            let pivot = s.get(j, j);
            if pivot.abs() < PIVOT_TOLERANCE * scale {
                return Err(AbftError::SingularPivot { step: j, value: pivot });
            }
            for i in j + 1..n {
                let l = s.get(i, j) / pivot;
                s.set(i, j, l);
                if l == 0.0 {
                    continue;
                }
                for jj in j + 1..t + b {
                    s.add_to(i, jj, -l * s.get(j, jj));
                }
            }
        }
        if t + b >= n {
            break;
        }
        // U12 block row: forward-substitute the unit-lower panel through the
        // not-yet-updated rows t..t+b of the trailing columns.
        for ii in t + 1..t + b {
            for k in t..ii {
                let l = s.get(ii, k);
                if l == 0.0 {
                    continue;
                }
                for j in t + b..n {
                    s.add_to(ii, j, -l * s.get(k, j));
                }
            }
        }
        // Trailing update A22 -= L21 * U12.  Split the storage at the panel
        // boundary: the U12 rows are shared read-only, the trailing rows are
        // disjoint mutable chunks (parallelised when the update is large).
        // Per trailing row, 8-column register tiles accumulate the whole
        // rank-`b` update before touching memory again, so every trailing
        // element is loaded and stored once per *panel* instead of once per
        // elimination step.
        const JT: usize = 8;
        let (top, tail) = s.data_mut().split_at_mut((t + b) * n);
        let u12 = &top[t * n..];
        let update_row = |row: &mut [f64]| {
            let (l_part, trailing) = row.split_at_mut(t + b);
            let l_panel = &l_part[t..t + b];
            let width = trailing.len();
            let mut jb = 0;
            while jb + JT <= width {
                let mut acc: [f64; JT] = trailing[jb..jb + JT].try_into().expect("full tile");
                for (k, &l) in l_panel.iter().enumerate() {
                    let off = k * n + t + b + jb;
                    let u: &[f64; JT] = u12[off..off + JT].try_into().expect("full tile");
                    for j in 0..JT {
                        acc[j] -= l * u[j];
                    }
                }
                trailing[jb..jb + JT].copy_from_slice(&acc);
                jb += JT;
            }
            // Ragged last columns.
            for (k, &l) in l_panel.iter().enumerate() {
                if l == 0.0 {
                    continue;
                }
                let u_row = &u12[k * n + t + b + jb..k * n + n];
                for (x, &u) in trailing[jb..].iter_mut().zip(u_row) {
                    *x -= l * u;
                }
            }
        };
        if (n - t - b) * (n - t - b) >= PAR_THRESHOLD {
            tail.par_chunks_mut(n).for_each(update_row);
        } else {
            tail.chunks_mut(n).for_each(update_row);
        }
    }
    Ok(s)
}

/// Which protection zone an entry of the in-place storage currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Zone {
    /// Already-computed `L` entry (column factored, strictly below diagonal).
    Lower,
    /// Already-computed `U` entry or trailing Schur-complement entry.
    UpperOrTrailing,
}

/// ABFT LU factorization state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbftLu {
    n: usize,
    nb: usize,
    grid: ProcessGrid,
    col_map: GroupMap,
    row_map: GroupMap,
    /// `(n + row_checksums) × (n + col_checksums)` in-place storage.
    storage: Matrix,
    /// Number of columns already eliminated.
    step: usize,
    /// Largest magnitude of the original matrix, for pivot scaling.
    scale: f64,
}

impl AbftLu {
    /// Encodes `a` with block-group checksums for the given process grid and
    /// block size, ready to be factored.
    pub fn new(a: &Matrix, grid: &ProcessGrid, nb: usize) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(AbftError::DimensionMismatch {
                op: "AbftLu::new",
                left: (a.rows(), a.cols()),
                right: (a.cols(), a.rows()),
            });
        }
        let n = a.rows();
        let col_map = GroupMap::new(n, nb, grid.cols());
        let row_map = GroupMap::new(n, nb, grid.rows());
        let extra_cols = col_map.checksum_extent();
        let extra_rows = row_map.checksum_extent();
        let mut storage = Matrix::zeros(n + extra_rows, n + extra_cols);
        storage.set_block(0, 0, a)?;
        // Column checksums: each checksum column accumulates its member data
        // columns (ones weights).
        for j in 0..n {
            let cc = n + col_map.checksum_index(j);
            for i in 0..n {
                storage.add_to(i, cc, a.get(i, j));
            }
        }
        // Row checksums over the column-extended matrix (so the corner also
        // holds consistent sums; only the data-column part is used for
        // recovery).
        for i in 0..n {
            let cr = n + row_map.checksum_index(i);
            for j in 0..storage.cols() {
                let v = storage.get(i, j);
                storage.add_to(cr, j, v);
            }
        }
        Ok(Self {
            n,
            nb,
            grid: *grid,
            col_map,
            row_map,
            storage,
            step: 0,
            scale: a.max_abs().max(1.0),
        })
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Block size of the distribution.
    pub fn block_size(&self) -> usize {
        self.nb
    }

    /// Number of elimination steps already performed.
    pub fn step(&self) -> usize {
        self.step
    }

    /// Whether the factorization has completed all `n` steps.
    pub fn is_complete(&self) -> bool {
        self.step == self.n
    }

    /// The process grid the matrix is (virtually) distributed over.
    pub fn grid(&self) -> &ProcessGrid {
        &self.grid
    }

    /// Read-only view of the augmented in-place storage (mostly for tests).
    pub fn storage(&self) -> &Matrix {
        &self.storage
    }

    /// Performs up to `count` elimination steps; returns the number actually
    /// performed (less than `count` only when the factorization finishes).
    pub fn factor_steps(&mut self, count: usize) -> Result<usize> {
        let mut done = 0;
        let total_rows = self.storage.rows();
        let total_cols = self.storage.cols();
        while done < count && self.step < self.n {
            let t = self.step;
            let pivot = self.storage.get(t, t);
            if pivot.abs() < PIVOT_TOLERANCE * self.scale {
                return Err(AbftError::SingularPivot { step: t, value: pivot });
            }
            for i in t + 1..total_rows {
                let l = self.storage.get(i, t) / pivot;
                self.storage.set(i, t, l);
                if l == 0.0 {
                    continue;
                }
                for j in t + 1..total_cols {
                    let update = l * self.storage.get(t, j);
                    self.storage.add_to(i, j, -update);
                }
            }
            self.step += 1;
            done += 1;
        }
        Ok(done)
    }

    /// Runs the factorization to completion.
    pub fn factor_to_completion(&mut self) -> Result<()> {
        self.factor_steps(self.n - self.step)?;
        Ok(())
    }

    /// Extracts the `(L, U)` factors (only meaningful once complete, but
    /// callable at any time: unfactored parts appear as the current trailing
    /// matrix in `U` and zeros in `L`).
    pub fn extract_factors(&self) -> (Matrix, Matrix) {
        (
            self.storage.extract_unit_lower(self.n),
            self.storage.extract_upper(self.n),
        )
    }

    /// The value the protection invariant expects at `(i, j)` in the
    /// *column-checksum* direction: `U`/trailing entries count, `L` entries
    /// do not.
    fn column_protected_value(&self, i: usize, j: usize) -> f64 {
        match self.zone(i, j) {
            Zone::Lower => 0.0,
            _ => self.storage.get(i, j),
        }
    }

    /// The value the protection invariant expects at `(i, j)` in the
    /// *row-checksum* direction: `L` entries (with an implicit unit diagonal)
    /// for factored columns, trailing entries for unfactored columns.
    fn row_protected_value(&self, i: usize, j: usize) -> f64 {
        if j < self.step {
            // Factored column: the row checksum protects L.
            if i > j {
                self.storage.get(i, j)
            } else if i == j {
                1.0
            } else {
                0.0
            }
        } else {
            // Trailing column: only trailing rows contribute.
            if i >= self.step {
                self.storage.get(i, j)
            } else {
                0.0
            }
        }
    }

    fn zone(&self, i: usize, j: usize) -> Zone {
        if j < self.step && i > j {
            Zone::Lower
        } else {
            Zone::UpperOrTrailing
        }
    }

    /// Verifies both checksum invariants; returns the worst relative
    /// violation or an error when it exceeds `tol`.
    pub fn verify(&self, tol: f64) -> Result<f64> {
        let mut worst = 0.0_f64;
        // Column checksums: for every row and every checksum column.
        for i in 0..self.n {
            for cc in 0..self.col_map.checksum_extent() {
                let members: Vec<usize> = (0..self.n)
                    .filter(|&j| self.col_map.checksum_index(j) == cc)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let expected: f64 = members
                    .iter()
                    .map(|&j| self.column_protected_value(i, j))
                    .sum();
                let stored = self.storage.get(i, self.n + cc);
                let scale = expected.abs().max(stored.abs()).max(self.scale);
                worst = worst.max((expected - stored).abs() / scale);
            }
        }
        // Row checksums: for every factored or trailing column and every
        // checksum row.
        for j in 0..self.n {
            for cr in 0..self.row_map.checksum_extent() {
                let members: Vec<usize> = (0..self.n)
                    .filter(|&i| self.row_map.checksum_index(i) == cr)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let expected: f64 = members
                    .iter()
                    .map(|&i| self.row_protected_value(i, j))
                    .sum();
                let stored = self.storage.get(self.n + cr, j);
                let scale = expected.abs().max(stored.abs()).max(self.scale);
                worst = worst.max((expected - stored).abs() / scale);
            }
        }
        if worst > tol {
            Err(AbftError::ChecksumViolation {
                violation: worst,
                tolerance: tol,
            })
        } else {
            Ok(worst)
        }
    }

    /// The rank owning entry `(i, j)` of the data region under the 2-D
    /// block-cyclic distribution.
    pub fn owner(&self, i: usize, j: usize) -> usize {
        let p = self.row_map.owner_of(i);
        let q = self.col_map.owner_of(j);
        self.grid.rank(p, q).expect("owner coordinates are in the grid")
    }

    /// All data-region entries owned by `rank`.
    pub fn entries_of_rank(&self, rank: usize) -> Result<Vec<(usize, usize)>> {
        if rank >= self.grid.size() {
            return Err(AbftError::UnknownRank {
                rank,
                size: self.grid.size(),
            });
        }
        let (p, q) = self.grid.coords(rank).expect("checked above");
        let rows = self.row_map.entries_of(p);
        let cols = self.col_map.entries_of(q);
        let mut out = Vec::with_capacity(rows.len() * cols.len());
        for &i in &rows {
            for &j in &cols {
                out.push((i, j));
            }
        }
        Ok(out)
    }

    /// Simulates the failure of `rank`: every data entry it owns is
    /// destroyed (overwritten with zero). Returns the list of lost entries,
    /// to be passed to [`AbftLu::recover`].
    pub fn inject_failure(&mut self, rank: usize) -> Result<Vec<(usize, usize)>> {
        let lost = self.entries_of_rank(rank)?;
        for &(i, j) in &lost {
            self.storage.set(i, j, 0.0);
        }
        Ok(lost)
    }

    /// Recovers the given lost data entries from the surviving data and the
    /// checksums.  Entries must come from a single process failure (at most
    /// one lost member per checksum group), which is guaranteed when the list
    /// is produced by [`AbftLu::inject_failure`].
    pub fn recover(&mut self, lost: &[(usize, usize)]) -> Result<()> {
        if lost.is_empty() {
            return Err(AbftError::NothingToRecover);
        }
        use std::collections::HashSet;
        let lost_set: HashSet<(usize, usize)> = lost.iter().copied().collect();
        for &(i, j) in lost {
            let value = if self.zone(i, j) == Zone::Lower {
                // Recover an L entry from its row-group checksum.
                let cr = self.n + self.row_map.checksum_index(i);
                let mut acc = self.storage.get(cr, j);
                for partner in self.row_map.partners(i) {
                    if lost_set.contains(&(partner, j)) {
                        return Err(AbftError::TooManyFailures {
                            failed: 2,
                            tolerated: 1,
                        });
                    }
                    acc -= self.row_protected_value(partner, j);
                }
                acc
            } else {
                // Recover a U/trailing entry from its column-group checksum.
                let cc = self.n + self.col_map.checksum_index(j);
                let mut acc = self.storage.get(i, cc);
                for partner in self.col_map.partners(j) {
                    if lost_set.contains(&(i, partner)) {
                        return Err(AbftError::TooManyFailures {
                            failed: 2,
                            tolerated: 1,
                        });
                    }
                    acc -= self.column_protected_value(i, partner);
                }
                acc
            };
            // The invariant gives the *protected* value; for the Lower zone
            // that is the stored L entry, for the other zones the stored
            // U/trailing entry. An entry that is structurally zero in the
            // protected view (i < j inside a factored column's L region does
            // not exist; i > j in U is never queried) cannot occur here.
            self.storage.set(i, j, value);
        }
        Ok(())
    }

    /// Residual `‖L·U − A‖_max / ‖A‖_max` against the original matrix
    /// (callable once complete).
    pub fn residual(&self, original: &Matrix) -> Result<f64> {
        let (l, u) = self.extract_factors();
        let lu = l.matmul(&u)?;
        Ok(lu.max_abs_diff(original)? / original.max_abs().max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_2x3() -> ProcessGrid {
        ProcessGrid::new(2, 3).unwrap()
    }

    #[test]
    fn plain_lu_reconstructs_the_matrix() {
        let a = Matrix::random_diagonally_dominant(24, 5);
        let s = plain_lu(&a).unwrap();
        let l = s.extract_unit_lower(24);
        let u = s.extract_upper(24);
        let lu = l.matmul(&u).unwrap();
        assert!(lu.max_abs_diff(&a).unwrap() / a.max_abs() < 1e-10);
    }

    #[test]
    fn blocked_lu_matches_plain_lu() {
        // Cover block sizes that divide n, exceed n, and leave ragged tails,
        // across the parallel-trailing-update threshold.
        for (n, nb, seed) in [
            (24usize, 4usize, 5u64),
            (30, 7, 6),
            (48, 48, 7),
            (48, 100, 8),
            (96, 16, 9),
            (130, 32, 10),
        ] {
            let a = Matrix::random_diagonally_dominant(n, seed);
            let plain = plain_lu(&a).unwrap();
            let blocked = blocked_lu(&a, nb).unwrap();
            let tol = 1e-9 * a.max_abs();
            assert!(
                blocked.approx_eq(&plain, tol),
                "n={n} nb={nb}: blocked and plain factors diverge"
            );
            // And the factorization really reconstructs A.
            let l = blocked.extract_unit_lower(n);
            let u = blocked.extract_upper(n);
            let lu = l.matmul(&u).unwrap();
            assert!(lu.max_abs_diff(&a).unwrap() / a.max_abs() < 1e-10, "n={n} nb={nb}");
        }
    }

    #[test]
    fn blocked_lu_rejects_singular_and_nonsquare() {
        let mut a = Matrix::zeros(3, 3);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(2, 2, 1.0);
        assert!(matches!(blocked_lu(&a, 2), Err(AbftError::SingularPivot { .. })));
        assert!(blocked_lu(&Matrix::zeros(2, 3), 2).is_err());
    }

    #[test]
    fn plain_lu_rejects_singular_and_nonsquare() {
        let mut a = Matrix::zeros(3, 3);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(2, 2, 1.0);
        assert!(matches!(plain_lu(&a), Err(AbftError::SingularPivot { .. })));
        assert!(plain_lu(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn abft_lu_matches_plain_lu() {
        let a = Matrix::random_diagonally_dominant(30, 7);
        let mut abft = AbftLu::new(&a, &grid_2x3(), 5).unwrap();
        abft.factor_to_completion().unwrap();
        assert!(abft.is_complete());
        let plain = plain_lu(&a).unwrap();
        let (l, u) = abft.extract_factors();
        assert!(l.approx_eq(&plain.extract_unit_lower(30), 1e-9));
        assert!(u.approx_eq(&plain.extract_upper(30), 1e-9));
        assert!(abft.residual(&a).unwrap() < 1e-10);
    }

    #[test]
    fn checksum_invariants_hold_throughout_the_factorization() {
        let a = Matrix::random_diagonally_dominant(24, 11);
        let mut abft = AbftLu::new(&a, &grid_2x3(), 4).unwrap();
        assert!(abft.verify(1e-9).is_ok());
        while !abft.is_complete() {
            abft.factor_steps(5).unwrap();
            assert!(
                abft.verify(1e-8).is_ok(),
                "invariant violated at step {}",
                abft.step()
            );
        }
    }

    #[test]
    fn ownership_partitions_the_matrix() {
        let a = Matrix::random_diagonally_dominant(18, 3);
        let grid = grid_2x3();
        let abft = AbftLu::new(&a, &grid, 3).unwrap();
        let mut seen = vec![false; 18 * 18];
        for rank in 0..grid.size() {
            for (i, j) in abft.entries_of_rank(rank).unwrap() {
                assert_eq!(abft.owner(i, j), rank);
                assert!(!seen[i * 18 + j]);
                seen[i * 18 + j] = true;
            }
        }
        assert!(seen.into_iter().all(|x| x));
        assert!(abft.entries_of_rank(6).is_err());
    }

    #[test]
    fn failure_before_factorization_is_recovered() {
        let a = Matrix::random_diagonally_dominant(24, 13);
        let mut abft = AbftLu::new(&a, &grid_2x3(), 4).unwrap();
        let lost = abft.inject_failure(4).unwrap();
        assert!(!lost.is_empty());
        abft.recover(&lost).unwrap();
        // The recovered matrix factors to the same result as the original.
        abft.factor_to_completion().unwrap();
        assert!(abft.residual(&a).unwrap() < 1e-9);
    }

    #[test]
    fn failure_mid_factorization_is_recovered_for_every_rank() {
        let a = Matrix::random_diagonally_dominant(24, 17);
        let grid = grid_2x3();
        for rank in 0..grid.size() {
            let mut abft = AbftLu::new(&a, &grid, 4).unwrap();
            abft.factor_steps(10).unwrap();
            let lost = abft.inject_failure(rank).unwrap();
            abft.recover(&lost).unwrap();
            assert!(
                abft.verify(1e-7).is_ok(),
                "invariants broken after recovering rank {rank}"
            );
            abft.factor_to_completion().unwrap();
            assert!(
                abft.residual(&a).unwrap() < 1e-8,
                "residual too large after recovering rank {rank}"
            );
        }
    }

    #[test]
    fn failure_near_completion_is_recovered() {
        let a = Matrix::random_diagonally_dominant(20, 23);
        let mut abft = AbftLu::new(&a, &grid_2x3(), 4).unwrap();
        abft.factor_steps(19).unwrap();
        let lost = abft.inject_failure(1).unwrap();
        abft.recover(&lost).unwrap();
        abft.factor_to_completion().unwrap();
        assert!(abft.residual(&a).unwrap() < 1e-8);
    }

    #[test]
    fn recovery_rejects_empty_and_correlated_failures() {
        let a = Matrix::random_diagonally_dominant(12, 29);
        let mut abft = AbftLu::new(&a, &grid_2x3(), 2).unwrap();
        assert!(matches!(abft.recover(&[]), Err(AbftError::NothingToRecover)));
        // Two entries protected by the same column checksum (same row, same
        // class, different blocks of the same group) cannot both be lost.
        let lost = vec![(0, 0), (0, 2)];
        assert!(matches!(
            abft.recover(&lost),
            Err(AbftError::TooManyFailures { .. })
        ));
    }

    #[test]
    fn ragged_sizes_work() {
        // n not a multiple of nb, and not a multiple of nb * grid dimension.
        let a = Matrix::random_diagonally_dominant(23, 31);
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut abft = AbftLu::new(&a, &grid, 3).unwrap();
        abft.factor_steps(9).unwrap();
        let lost = abft.inject_failure(3).unwrap();
        abft.recover(&lost).unwrap();
        abft.factor_to_completion().unwrap();
        assert!(abft.residual(&a).unwrap() < 1e-8);
    }
}
