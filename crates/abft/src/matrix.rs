//! Dense row-major `f64` matrices.
//!
//! Deliberately minimal: only the operations the ABFT factorizations and
//! their tests need.  The multiplication kernel is tiled into register-
//! blocked micro-kernels (see [`Matrix::matmul`]) and parallelises over row
//! blocks with Rayon when the matrix is large enough for that to pay off
//! (the crate-internal `PAR_THRESHOLD`, shared with the blocked LU).

use ft_platform::rng::{DeterministicRng, Xoshiro256};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::error::{AbftError, Result};

/// Threshold (in total elements of the result) above which matrix
/// multiplication — and the blocked-LU trailing update — parallelise with
/// Rayon.
pub(crate) const PAR_THRESHOLD: usize = 64 * 64;

/// Output rows processed per parallel work item of the tiled `matmul`.
const ROW_BLOCK: usize = 16;

/// Rows per micro-tile of the tiled `matmul` kernel.
const MR: usize = 4;

/// Columns per micro-tile of the tiled `matmul` kernel (two cache lines).
const NR: usize = 8;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(AbftError::DimensionMismatch {
                op: "from_vec",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix with entries drawn uniformly from `[-1, 1)`,
    /// deterministically from the seed.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.uniform(-1.0, 1.0)).collect();
        Self { rows, cols, data }
    }

    /// Creates a random diagonally-dominant matrix, guaranteed to admit an
    /// LU factorization without pivoting.
    pub fn random_diagonally_dominant(n: usize, seed: u64) -> Self {
        let mut m = Self::random(n, n, seed);
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| m.get(i, j).abs()).sum();
            m.set(i, i, row_sum + 1.0);
        }
        m
    }

    /// Creates a random symmetric positive-definite matrix (`B Bᵀ + n·I`).
    pub fn random_spd(n: usize, seed: u64) -> Self {
        let b = Self::random(n, n, seed);
        let mut m = b.matmul(&b.transpose()).expect("square product");
        for i in 0..n {
            let v = m.get(i, i);
            m.set(i, i, v + n as f64);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data (used by the blocked in-place kernels).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access (panics in debug if out of bounds; use [`Matrix::try_get`]
    /// for checked access).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Checked element access.
    pub fn try_get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows || j >= self.cols {
            return Err(AbftError::IndexOutOfBounds {
                row: i,
                col: j,
                dims: (self.rows, self.cols),
            });
        }
        Ok(self.data[i * self.cols + j])
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// In-place element update.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += v;
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Matrix multiplication `self * rhs`, tiled into 4×8 (`MR × NR`)
    /// micro-kernels: each micro-tile of the result accumulates in a local
    /// register block over the whole `k` range, streaming an `NR`-column
    /// slab of `rhs` that stays L1-resident across the tile's rows.  The
    /// naive kernel re-loads and re-stores every output element once per
    /// `k`; the micro-kernel amortises those stores over the full dot
    /// product, which is worth several× in throughput.  Large products
    /// additionally parallelise over row blocks.
    ///
    /// Per output entry the `k`-accumulation order is unchanged, so the
    /// result is bit-identical to [`Matrix::matmul_naive`].
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(AbftError::DimensionMismatch {
                op: "matmul",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = self.cols;
        let rcols = rhs.cols;
        let compute_block = |(block, out_rows): (usize, &mut [f64])| {
            let row0 = block * ROW_BLOCK;
            let nrows = out_rows.len() / rcols.max(1);
            let mut r = 0;
            while r < nrows {
                let mr = MR.min(nrows - r);
                let mut jb = 0;
                while jb < rcols {
                    let nr = NR.min(rcols - jb);
                    if mr == MR && nr == NR {
                        // Full-tile fast path: every loop bound is a
                        // compile-time constant, so the accumulator block
                        // stays in vector registers and the inner loop
                        // unrolls into pure FMAs.
                        let a_rows: [&[f64]; MR] = std::array::from_fn(|ri| {
                            &self.data[(row0 + r + ri) * n..(row0 + r + ri + 1) * n]
                        });
                        let mut acc = [[0.0f64; NR]; MR];
                        // Index-based on purpose: constant bounds let the
                        // whole k-iteration unroll into register FMAs.
                        #[allow(clippy::needless_range_loop)]
                        for k in 0..n {
                            let b_row: &[f64; NR] = rhs.data
                                [k * rcols + jb..k * rcols + jb + NR]
                                .try_into()
                                .expect("full tile");
                            for ri in 0..MR {
                                let aik = a_rows[ri][k];
                                for j in 0..NR {
                                    acc[ri][j] += aik * b_row[j];
                                }
                            }
                        }
                        for (ri, acc_row) in acc.iter().enumerate() {
                            let base = (r + ri) * rcols + jb;
                            out_rows[base..base + NR].copy_from_slice(acc_row);
                        }
                    } else {
                        // Ragged edge tiles: same algorithm, dynamic bounds.
                        let mut acc = [[0.0f64; NR]; MR];
                        for k in 0..n {
                            let b_row = &rhs.data[k * rcols + jb..k * rcols + jb + nr];
                            for (ri, acc_row) in acc.iter_mut().enumerate().take(mr) {
                                let aik = self.data[(row0 + r + ri) * n + k];
                                if aik == 0.0 {
                                    continue;
                                }
                                for (a, &bkj) in acc_row.iter_mut().zip(b_row) {
                                    *a += aik * bkj;
                                }
                            }
                        }
                        for (ri, acc_row) in acc.iter().enumerate().take(mr) {
                            let base = (r + ri) * rcols + jb;
                            out_rows[base..base + nr].copy_from_slice(&acc_row[..nr]);
                        }
                    }
                    jb += nr;
                }
                r += mr;
            }
        };
        if self.rows * rcols >= PAR_THRESHOLD {
            out.data
                .par_chunks_mut(ROW_BLOCK * rcols)
                .enumerate()
                .for_each(compute_block);
        } else {
            out.data
                .chunks_mut(ROW_BLOCK * rcols)
                .enumerate()
                .for_each(compute_block);
        }
        Ok(out)
    }

    /// The untiled reference multiplication kernel: one pass over the whole
    /// right-hand side per output row.  Kept as the before/after baseline of
    /// the `abft_factorization` bench and as an oracle for the tiled kernel.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(AbftError::DimensionMismatch {
                op: "matmul_naive",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = self.cols;
        let rcols = rhs.cols;
        for (i, out_row) in out.data.chunks_mut(rcols).enumerate() {
            let a_row = &self.data[i * n..(i + 1) * n];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rcols..(k + 1) * rcols];
                for (j, &bkj) in b_row.iter().enumerate() {
                    out_row[j] += aik * bkj;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(AbftError::DimensionMismatch {
                op: "matvec",
                left: (self.rows, self.cols),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                row.iter().zip(v).map(|(a, b)| a * b).sum()
            })
            .collect())
    }

    /// Element-wise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(AbftError::DimensionMismatch {
                op: "sub",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Copy of a rectangular sub-block `[r0, r1) × [c0, c1)`.
    pub fn block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Result<Matrix> {
        if r1 > self.rows || c1 > self.cols || r0 > r1 || c0 > c1 {
            return Err(AbftError::IndexOutOfBounds {
                row: r1,
                col: c1,
                dims: (self.rows, self.cols),
            });
        }
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            for j in c0..c1 {
                out.set(i - r0, j - c0, self.get(i, j));
            }
        }
        Ok(out)
    }

    /// Writes a block into `[r0, ...) × [c0, ...)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Matrix) -> Result<()> {
        if r0 + block.rows > self.rows || c0 + block.cols > self.cols {
            return Err(AbftError::IndexOutOfBounds {
                row: r0 + block.rows,
                col: c0 + block.cols,
                dims: (self.rows, self.cols),
            });
        }
        for i in 0..block.rows {
            for j in 0..block.cols {
                self.set(r0 + i, c0 + j, block.get(i, j));
            }
        }
        Ok(())
    }

    /// Extracts the unit-lower-triangular factor stored in an in-place LU
    /// storage of size `n × n` (ignores any extra checksum rows/columns).
    pub fn extract_unit_lower(&self, n: usize) -> Matrix {
        let mut l = Matrix::identity(n);
        for i in 0..n {
            for j in 0..i.min(n) {
                l.set(i, j, self.get(i, j));
            }
        }
        l
    }

    /// Extracts the upper-triangular factor stored in an in-place LU storage
    /// of size `n × n`.
    pub fn extract_upper(&self, n: usize) -> Matrix {
        let mut u = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                u.set(i, j, self.get(i, j));
            }
        }
        u
    }

    /// Maximum absolute difference with another matrix of the same shape.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> Result<f64> {
        Ok(self.sub(rhs)?.max_abs())
    }

    /// `true` if the two matrices agree entry-wise within `tol` (absolute).
    pub fn approx_eq(&self, rhs: &Matrix, tol: f64) -> bool {
        self.rows == rhs.rows
            && self.cols == rhs.cols
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.try_get(1, 2).unwrap(), 5.0);
        assert!(m.try_get(2, 0).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn identity_times_anything_is_identity_map() {
        let a = Matrix::random(5, 5, 3);
        let i = Matrix::identity(5);
        let prod = i.matmul(&a).unwrap();
        assert!(prod.approx_eq(&a, 1e-12));
        let prod = a.matmul(&i).unwrap();
        assert!(prod.approx_eq(&a, 1e-12));
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn parallel_and_serial_matmul_agree() {
        // A size above the parallel threshold.
        let a = Matrix::random(80, 70, 1);
        let b = Matrix::random(70, 90, 2);
        let c = a.matmul(&b).unwrap();
        // Recompute serially by hand.
        let mut expected = Matrix::zeros(80, 90);
        for i in 0..80 {
            for k in 0..70 {
                for j in 0..90 {
                    expected.add_to(i, j, a.get(i, k) * b.get(k, j));
                }
            }
        }
        assert!(c.approx_eq(&expected, 1e-9));
    }

    #[test]
    fn tiled_matmul_matches_the_naive_kernel_bit_for_bit() {
        // The tiling only reorders *which row consumes which panel when*;
        // for any single output entry the k-accumulation order is unchanged,
        // so tiled and naive results are identical to the last bit.  Cover
        // ragged sizes around the tile edge and the parallel threshold.
        for (m, k, p, seed) in [
            (5usize, 3usize, 4usize, 1u64),
            (63, 65, 64, 2),
            (64, 64, 64, 3),
            (100, 130, 70, 4),
            (129, 64, 127, 5),
        ] {
            let a = Matrix::random(m, k, seed);
            let b = Matrix::random(k, p, seed + 100);
            let tiled = a.matmul(&b).unwrap();
            let naive = a.matmul_naive(&b).unwrap();
            assert_eq!(tiled.data(), naive.data(), "{m}x{k}x{p}");
        }
        assert!(Matrix::zeros(2, 3).matmul_naive(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::random(4, 7, 11);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::random(6, 4, 5);
        let v = vec![1.0, -2.0, 0.5, 3.0];
        let mv = a.matvec(&v).unwrap();
        let vm = Matrix::from_vec(4, 1, v).unwrap();
        let prod = a.matmul(&vm).unwrap();
        for (i, &mvi) in mv.iter().enumerate() {
            assert!((mvi - prod.get(i, 0)).abs() < 1e-12);
        }
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn block_round_trip() {
        let a = Matrix::random(6, 6, 9);
        let blk = a.block(1, 4, 2, 5).unwrap();
        assert_eq!((blk.rows(), blk.cols()), (3, 3));
        let mut b = Matrix::zeros(6, 6);
        b.set_block(1, 2, &blk).unwrap();
        assert_eq!(b.get(2, 3), a.get(2, 3));
        assert!(a.block(0, 7, 0, 1).is_err());
        assert!(Matrix::zeros(2, 2).set_block(1, 1, &blk).is_err());
    }

    #[test]
    fn diagonally_dominant_matrices_are_diagonally_dominant() {
        let m = Matrix::random_diagonally_dominant(20, 77);
        for i in 0..20 {
            let off: f64 = (0..20).filter(|&j| j != i).map(|j| m.get(i, j).abs()).sum();
            assert!(m.get(i, i).abs() > off);
        }
    }

    #[test]
    fn spd_matrices_are_symmetric() {
        let m = Matrix::random_spd(15, 123);
        assert!(m.approx_eq(&m.transpose(), 1e-9));
        // Gershgorin-ish sanity: strongly positive diagonal.
        for i in 0..15 {
            assert!(m.get(i, i) > 0.0);
        }
    }

    #[test]
    fn norms_behave() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 4.0, 0.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.max_abs_diff(&m).unwrap(), 0.0);
    }

    #[test]
    fn lu_factor_extraction_helpers() {
        // In-place storage [[2, 3], [0.5, 4]] means L = [[1,0],[0.5,1]], U = [[2,3],[0,4]].
        let storage = Matrix::from_vec(2, 2, vec![2.0, 3.0, 0.5, 4.0]).unwrap();
        let l = storage.extract_unit_lower(2);
        let u = storage.extract_upper(2);
        assert_eq!(l.get(0, 0), 1.0);
        assert_eq!(l.get(1, 0), 0.5);
        assert_eq!(l.get(0, 1), 0.0);
        assert_eq!(u.get(1, 0), 0.0);
        assert_eq!(u.get(1, 1), 4.0);
        let a = l.matmul(&u).unwrap();
        assert!((a.get(1, 0) - 1.0).abs() < 1e-12);
        assert!((a.get(1, 1) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(Matrix::random(3, 3, 5), Matrix::random(3, 3, 5));
        assert_ne!(Matrix::random(3, 3, 5), Matrix::random(3, 3, 6));
    }
}
