//! Measurement of the ABFT overhead factor `φ` and of the reconstruction
//! time `Recons_ABFT`.
//!
//! The analytical model of the paper consumes two ABFT-related parameters:
//! the multiplicative slowdown `φ` of running a library call under ABFT
//! protection, and the constant time `Recons_ABFT` needed to rebuild the lost
//! LIBRARY data after a failure.  The paper takes `φ = 1.03` and
//! `Recons_ABFT = 2 s` from production measurements; this module produces the
//! equivalent numbers for *our* substrate, so the model can also be
//! instantiated from first-hand measurements (and so the benchmarks can show
//! how `φ` behaves with the problem size).

use ft_platform::clock::Stopwatch;
use ft_platform::grid::ProcessGrid;
use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::lu::{plain_lu, AbftLu};
use crate::matrix::Matrix;

/// Measured overheads of the ABFT LU substrate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Matrix order used for the measurement.
    pub n: usize,
    /// Seconds per plain (unprotected) factorization.
    pub plain_seconds: f64,
    /// Seconds per ABFT-protected factorization.
    pub abft_seconds: f64,
    /// The overhead factor `φ = abft / plain`.
    pub phi: f64,
    /// Seconds to reconstruct the data of one failed process
    /// (`Recons_ABFT`).
    pub reconstruction_seconds: f64,
    /// Fraction of extra memory used by the checksums.
    pub memory_overhead: f64,
}

/// Measures `φ` and `Recons_ABFT` on the LU substrate.
///
/// `reps` factorizations of each kind are timed and averaged; the
/// reconstruction is measured by killing rank 0 halfway through a protected
/// factorization and timing [`AbftLu::recover`].
pub fn measure_overhead(n: usize, grid: &ProcessGrid, nb: usize, reps: usize) -> Result<OverheadReport> {
    let reps = reps.max(1);
    let a = Matrix::random_diagonally_dominant(n, 0xC0FFEE);

    let start = Stopwatch::start();
    for _ in 0..reps {
        let _ = plain_lu(&a)?;
    }
    let plain_seconds = start.elapsed_seconds() / reps as f64;

    let start = Stopwatch::start();
    for _ in 0..reps {
        let mut abft = AbftLu::new(&a, grid, nb)?;
        abft.factor_to_completion()?;
    }
    let abft_seconds = start.elapsed_seconds() / reps as f64;

    // Reconstruction time: fail rank 0 halfway through and time the repair.
    let mut abft = AbftLu::new(&a, grid, nb)?;
    abft.factor_steps(n / 2)?;
    let lost = abft.inject_failure(0)?;
    let start = Stopwatch::start();
    abft.recover(&lost)?;
    let reconstruction_seconds = start.elapsed_seconds();

    let storage = abft.storage();
    let memory_overhead =
        (storage.rows() * storage.cols()) as f64 / (n * n) as f64 - 1.0;

    Ok(OverheadReport {
        n,
        plain_seconds,
        abft_seconds,
        phi: if plain_seconds > 0.0 {
            abft_seconds / plain_seconds
        } else {
            1.0
        },
        reconstruction_seconds,
        memory_overhead,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_report_is_sane() {
        let grid = ProcessGrid::new(2, 2).unwrap();
        let report = measure_overhead(32, &grid, 4, 1).unwrap();
        assert_eq!(report.n, 32);
        assert!(report.plain_seconds > 0.0);
        assert!(report.abft_seconds > 0.0);
        // The protected factorization cannot be faster than the plain one by
        // more than timing noise, and the overhead must be bounded (the
        // checksum region adds at most ~(1/P + 1/Q + 1/(PQ)) work).
        assert!(report.phi > 0.5, "phi = {}", report.phi);
        assert!(report.phi < 10.0, "phi = {}", report.phi);
        assert!(report.reconstruction_seconds >= 0.0);
        assert!(report.memory_overhead > 0.0);
        assert!(report.memory_overhead < 2.0);
    }

    #[test]
    fn reps_zero_is_clamped() {
        let grid = ProcessGrid::new(2, 2).unwrap();
        let report = measure_overhead(16, &grid, 4, 0).unwrap();
        assert!(report.plain_seconds > 0.0);
    }
}
