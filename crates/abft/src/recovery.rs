//! Dataset-at-rest protection and reconstruction.
//!
//! Besides protecting factorizations *in flight* ([`crate::lu`],
//! [`crate::cholesky`]), ABFT also protects the LIBRARY dataset *at rest*
//! between operations: the dataset is kept encoded with block-group
//! checksums, and the entries lost to a process failure are reconstructed
//! from the surviving processes — this is exactly the `Recons_ABFT` step of
//! the paper's recovery path, and [`ReconstructionOutcome`] reports how long
//! it took so that the model parameter can be calibrated from measurements.

use ft_platform::clock::Stopwatch;
use serde::{Deserialize, Serialize};

use crate::blockcyclic::DistributedMatrix;
use crate::checksum::GroupMap;
use crate::error::{AbftError, Result};
use crate::matrix::Matrix;

/// A distributed matrix kept encoded with per-group column checksums so that
/// any single process failure can be repaired in place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectedDataset {
    matrix: DistributedMatrix,
    /// One checksum column per column class per group: `rows × extent`.
    checksums: Matrix,
    col_map: GroupMap,
}

/// Summary of a reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconstructionOutcome {
    /// Rank whose data was rebuilt.
    pub rank: usize,
    /// Number of matrix entries rebuilt.
    pub entries: usize,
    /// Wall-clock time of the reconstruction, in seconds.
    pub seconds: f64,
}

impl ProtectedDataset {
    /// Encodes a distributed matrix.
    pub fn encode(matrix: DistributedMatrix) -> Self {
        let data = matrix.global();
        let nb = matrix.layout().block_size();
        let q = matrix.layout().grid().cols();
        let col_map = GroupMap::new(data.cols(), nb, q);
        let mut checksums = Matrix::zeros(data.rows(), col_map.checksum_extent());
        for j in 0..data.cols() {
            let cc = col_map.checksum_index(j);
            for i in 0..data.rows() {
                checksums.add_to(i, cc, data.get(i, j));
            }
        }
        Self {
            matrix,
            checksums,
            col_map,
        }
    }

    /// Read-only access to the protected matrix.
    pub fn matrix(&self) -> &DistributedMatrix {
        &self.matrix
    }

    /// Applies an update to the dataset through a closure and re-encodes the
    /// touched columns (the closure returns the list of modified columns).
    pub fn update<F>(&mut self, f: F)
    where
        F: FnOnce(&mut Matrix) -> Vec<usize>,
    {
        let touched = f(self.matrix.global_mut());
        let data = self.matrix.global();
        for j in touched {
            if j >= data.cols() {
                continue;
            }
            let cc = self.col_map.checksum_index(j);
            // Recompute the whole checksum column that j participates in.
            let members: Vec<usize> = (0..data.cols())
                .filter(|&c| self.col_map.checksum_index(c) == cc)
                .collect();
            for i in 0..data.rows() {
                let sum: f64 = members.iter().map(|&c| data.get(i, c)).sum();
                self.checksums.set(i, cc, sum);
            }
        }
    }

    /// Verifies the checksum invariant; returns the worst relative violation.
    pub fn verify(&self, tol: f64) -> Result<f64> {
        let data = self.matrix.global();
        let mut worst = 0.0_f64;
        for cc in 0..self.col_map.checksum_extent() {
            let members: Vec<usize> = (0..data.cols())
                .filter(|&c| self.col_map.checksum_index(c) == cc)
                .collect();
            for i in 0..data.rows() {
                let expected: f64 = members.iter().map(|&c| data.get(i, c)).sum();
                let stored = self.checksums.get(i, cc);
                let scale = expected.abs().max(stored.abs()).max(1.0);
                worst = worst.max((expected - stored).abs() / scale);
            }
        }
        if worst > tol {
            Err(AbftError::ChecksumViolation {
                violation: worst,
                tolerance: tol,
            })
        } else {
            Ok(worst)
        }
    }

    /// Simulates the failure of `rank` and immediately reconstructs its data
    /// from the checksums, returning the reconstruction outcome.
    pub fn fail_and_reconstruct(&mut self, rank: usize) -> Result<ReconstructionOutcome> {
        let lost = self.matrix.kill_rank(rank)?;
        let start = Stopwatch::start();
        self.reconstruct(&lost)?;
        self.matrix.mark_recovered(rank);
        Ok(ReconstructionOutcome {
            rank,
            entries: lost.len(),
            seconds: start.elapsed_seconds(),
        })
    }

    /// Reconstructs the given lost entries from the checksums. At most one
    /// lost entry per (row, checksum group) is supported — i.e. a single
    /// process failure.
    pub fn reconstruct(&mut self, lost: &[(usize, usize)]) -> Result<()> {
        if lost.is_empty() {
            return Err(AbftError::NothingToRecover);
        }
        use std::collections::HashSet;
        let lost_set: HashSet<(usize, usize)> = lost.iter().copied().collect();
        let data = self.matrix.global_mut();
        for &(i, j) in lost {
            let cc = self.col_map.checksum_index(j);
            let mut acc = self.checksums.get(i, cc);
            for partner in self.col_map.partners(j) {
                if lost_set.contains(&(i, partner)) {
                    return Err(AbftError::TooManyFailures {
                        failed: 2,
                        tolerated: 1,
                    });
                }
                acc -= data.get(i, partner);
            }
            data.set(i, j, acc);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockcyclic::BlockCyclicLayout;
    use ft_platform::grid::ProcessGrid;

    fn dataset(n: usize, nb: usize) -> (Matrix, ProtectedDataset) {
        let a = Matrix::random(n, n, 99);
        let layout = BlockCyclicLayout::new(ProcessGrid::new(2, 3).unwrap(), nb);
        let dm = DistributedMatrix::new(a.clone(), layout);
        (a, ProtectedDataset::encode(dm))
    }

    #[test]
    fn fresh_encoding_verifies() {
        let (_, ds) = dataset(18, 3);
        assert!(ds.verify(1e-10).is_ok());
    }

    #[test]
    fn every_rank_is_reconstructible() {
        let (a, ds) = dataset(18, 3);
        for rank in 0..6 {
            let mut ds = ds.clone();
            let outcome = ds.fail_and_reconstruct(rank).unwrap();
            assert!(outcome.entries > 0);
            assert!(outcome.seconds >= 0.0);
            assert!(ds.matrix().global().approx_eq(&a, 1e-9));
            assert!(!ds.matrix().is_degraded());
            assert!(ds.verify(1e-9).is_ok());
        }
    }

    #[test]
    fn updates_keep_the_dataset_protected() {
        let (_, mut ds) = dataset(12, 2);
        ds.update(|m| {
            m.set(3, 7, 123.0);
            m.set(5, 2, -7.0);
            vec![7, 2]
        });
        assert!(ds.verify(1e-9).is_ok());
        let reference = ds.matrix().global().clone();
        let outcome = ds.fail_and_reconstruct(1).unwrap();
        assert!(outcome.entries > 0);
        assert!(ds.matrix().global().approx_eq(&reference, 1e-9));
    }

    #[test]
    fn double_failure_in_same_group_is_rejected() {
        let (_, mut ds) = dataset(12, 2);
        // Two entries in the same row whose columns share a checksum group:
        // columns 0 and 2 are in the same group (nb = 2, q = 3 → group 0 is
        // columns 0..6) and the same class (0).
        assert!(matches!(
            ds.reconstruct(&[(0, 0), (0, 2)]),
            Err(AbftError::TooManyFailures { .. })
        ));
        assert!(matches!(ds.reconstruct(&[]), Err(AbftError::NothingToRecover)));
    }
}
