//! Criterion bench for the ABFT substrate: plain versus checksum-protected
//! LU factorization (the measured counterpart of the paper's `φ` parameter)
//! and the cost of a single-process recovery (`Recons_ABFT`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_abft::lu::{plain_lu, AbftLu};
use ft_abft::matrix::Matrix;
use ft_platform::grid::ProcessGrid;
use std::hint::black_box;

fn bench_factorizations(c: &mut Criterion) {
    let grid = ProcessGrid::new(2, 2).unwrap();
    let mut group = c.benchmark_group("abft/lu");
    group.sample_size(10);
    for n in [48usize, 96] {
        let a = Matrix::random_diagonally_dominant(n, 7);
        group.bench_with_input(BenchmarkId::new("plain", n), &a, |b, a| {
            b.iter(|| black_box(plain_lu(black_box(a)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("abft_protected", n), &a, |b, a| {
            b.iter(|| {
                let mut f = AbftLu::new(black_box(a), &grid, 8).unwrap();
                f.factor_to_completion().unwrap();
                black_box(f)
            })
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let grid = ProcessGrid::new(2, 2).unwrap();
    let n = 96;
    let a = Matrix::random_diagonally_dominant(n, 13);
    let mut half_factored = AbftLu::new(&a, &grid, 8).unwrap();
    half_factored.factor_steps(n / 2).unwrap();

    let mut group = c.benchmark_group("abft/recovery");
    group.sample_size(20);
    group.bench_function("reconstruct_one_rank_n96", |b| {
        b.iter(|| {
            let mut f = half_factored.clone();
            let lost = f.inject_failure(1).unwrap();
            f.recover(&lost).unwrap();
            black_box(f)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_factorizations, bench_recovery);
criterion_main!(benches);
