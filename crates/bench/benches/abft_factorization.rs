//! Criterion bench for the ABFT substrate: plain versus checksum-protected
//! LU factorization (the measured counterpart of the paper's `φ` parameter),
//! the cost of a single-process recovery (`Recons_ABFT`), and the
//! before/after numbers of the tiled kernels — naive vs cache-tiled
//! `matmul`, unblocked vs blocked right-looking LU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ft_abft::lu::{blocked_lu, plain_lu, AbftLu};
use ft_abft::matrix::Matrix;
use ft_platform::grid::ProcessGrid;
use std::hint::black_box;

/// Before/after the tiling of `Matrix::matmul`: the naive kernel walks the
/// whole right-hand side once per output row, the tiled kernel streams
/// 64-row panels over blocks of output rows.
fn bench_matmul_tiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("abft/matmul");
    group.sample_size(10);
    for n in [128usize, 256, 384] {
        let a = Matrix::random(n, n, 11);
        let b = Matrix::random(n, n, 12);
        group.bench_with_input(BenchmarkId::new("naive", n), &(&a, &b), |bench, (a, b)| {
            bench.iter(|| black_box(a.matmul_naive(black_box(b)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("tiled", n), &(&a, &b), |bench, (a, b)| {
            bench.iter(|| black_box(a.matmul(black_box(b)).unwrap()))
        });
    }
    group.finish();
}

/// Before/after the blocking of the right-looking LU: the unblocked kernel
/// re-reads the whole trailing matrix at every elimination step, the
/// blocked kernel batches `nb` steps into one rank-`nb` trailing update.
fn bench_lu_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("abft/lu_blocking");
    group.sample_size(10);
    for n in [96usize, 288, 512] {
        let a = Matrix::random_diagonally_dominant(n, 13);
        group.bench_with_input(BenchmarkId::new("unblocked", n), &a, |b, a| {
            b.iter(|| black_box(plain_lu(black_box(a)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("blocked_nb32", n), &a, |b, a| {
            b.iter(|| black_box(blocked_lu(black_box(a), 32).unwrap()))
        });
    }
    group.finish();
}

fn bench_factorizations(c: &mut Criterion) {
    let grid = ProcessGrid::new(2, 2).unwrap();
    let mut group = c.benchmark_group("abft/lu");
    group.sample_size(10);
    for n in [48usize, 96] {
        let a = Matrix::random_diagonally_dominant(n, 7);
        group.bench_with_input(BenchmarkId::new("plain", n), &a, |b, a| {
            b.iter(|| black_box(plain_lu(black_box(a)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("abft_protected", n), &a, |b, a| {
            b.iter(|| {
                let mut f = AbftLu::new(black_box(a), &grid, 8).unwrap();
                f.factor_to_completion().unwrap();
                black_box(f)
            })
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let grid = ProcessGrid::new(2, 2).unwrap();
    let n = 96;
    let a = Matrix::random_diagonally_dominant(n, 13);
    let mut half_factored = AbftLu::new(&a, &grid, 8).unwrap();
    half_factored.factor_steps(n / 2).unwrap();

    let mut group = c.benchmark_group("abft/recovery");
    group.sample_size(20);
    group.bench_function("reconstruct_one_rank_n96", |b| {
        b.iter(|| {
            let mut f = half_factored.clone();
            let lost = f.inject_failure(1).unwrap();
            f.recover(&lost).unwrap();
            black_box(f)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul_tiling,
    bench_lu_blocking,
    bench_factorizations,
    bench_recovery
);
criterion_main!(benches);
