//! Ablation studies called out in DESIGN.md, packaged as a Criterion bench so
//! that `cargo bench` exercises them and prints the ablation tables:
//!
//! 1. the Section III-B safeguard on/off, as a function of the library-phase
//!    length;
//! 2. incremental versus full checkpoints (BiPeriodicCkpt vs
//!    PurePeriodicCkpt) as ρ varies;
//! 3. bandwidth-bound versus constant checkpoint storage at 10⁶ nodes (the
//!    Figure-9 vs Figure-10 contrast).

use criterion::{criterion_group, criterion_main, Criterion};
use ft_composite::model::composite::{prediction_with_safeguard, SafeguardChoice};
use ft_composite::model::{bi, composite, pure};
use ft_composite::params::ModelParams;
use ft_composite::scaling::WeakScalingScenario;
use ft_platform::units::{hours, minutes};
use std::hint::black_box;
use std::sync::Once;

static PRINT_TABLES: Once = Once::new();

fn print_ablation_tables() {
    // 1. Safeguard ablation: short epochs where ABFT is not worth its forced
    // checkpoints.
    println!("\n# Ablation 1 — ABFT-activation safeguard (epoch 30 min, MTBF 4 h)");
    println!("{:>6}  {:>14}  {:>16}  {:>10}", "alpha", "always_abft", "with_safeguard", "choice");
    for alpha in [0.05, 0.1, 0.2, 0.4, 0.8] {
        let params = ModelParams::builder()
            .epoch_duration(minutes(30.0))
            .alpha(alpha)
            .checkpoint_cost(minutes(10.0))
            .recovery_cost(minutes(10.0))
            .downtime(minutes(1.0))
            .rho(0.8)
            .phi(1.03)
            .abft_reconstruction(2.0)
            .platform_mtbf(hours(4.0))
            .build()
            .unwrap();
        let always = composite::waste(&params).unwrap().value();
        let (guarded, choice) = prediction_with_safeguard(&params, true).unwrap();
        println!(
            "{:>6.2}  {:>14.4}  {:>16.4}  {:>10}",
            alpha,
            always,
            guarded.waste.value(),
            match choice {
                SafeguardChoice::Abft => "abft",
                SafeguardChoice::CheckpointOnly => "ckpt-only",
            }
        );
    }

    // 2. Incremental checkpoints: Bi vs Pure as a function of rho.
    println!("\n# Ablation 2 — incremental checkpoints (alpha 0.8, MTBF 2 h)");
    println!("{:>6}  {:>10}  {:>10}  {:>10}", "rho", "pure", "bi", "gain");
    for rho in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let params = ModelParams::builder()
            .epoch_duration(ft_platform::units::weeks(1.0))
            .alpha(0.8)
            .checkpoint_cost(minutes(10.0))
            .recovery_cost(minutes(10.0))
            .downtime(minutes(1.0))
            .rho(rho)
            .phi(1.03)
            .abft_reconstruction(2.0)
            .platform_mtbf(minutes(120.0))
            .build()
            .unwrap();
        let p = pure::waste(&params).unwrap().value();
        let b = bi::waste(&params).unwrap().value();
        println!("{rho:>6.2}  {p:>10.4}  {b:>10.4}  {:>10.4}", p - b);
    }

    // 3. Storage model at 1M nodes.
    println!("\n# Ablation 3 — checkpoint storage model at 10^6 nodes");
    println!("{:>22}  {:>10}  {:>10}  {:>10}", "storage", "pure", "bi", "abft");
    for (name, scenario) in [
        ("bandwidth-bound (Fig9)", WeakScalingScenario::figure9()),
        ("constant (Fig10)", WeakScalingScenario::figure10()),
    ] {
        let point = scenario.point(1_000_000.0).unwrap();
        println!(
            "{name:>22}  {:>10.4}  {:>10.4}  {:>10.4}",
            point.pure.waste.value(),
            point.bi.waste.value(),
            point.composite.waste.value()
        );
    }
}

fn bench_ablations(c: &mut Criterion) {
    PRINT_TABLES.call_once(print_ablation_tables);

    let params = ModelParams::paper_figure7(0.3, minutes(120.0)).unwrap();
    let mut group = c.benchmark_group("ablation/safeguard_decision");
    group.bench_function("prediction_with_safeguard", |b| {
        b.iter(|| black_box(prediction_with_safeguard(black_box(&params), true).unwrap()))
    });
    group.bench_function("prediction_without_safeguard", |b| {
        b.iter(|| black_box(composite::prediction(black_box(&params)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
