//! Criterion bench for the checkpoint substrate: full coordinated capture,
//! partial captures (the composite protocol's forced entry/exit checkpoints),
//! incremental captures and rollback restores.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_ckpt::coordinated::CoordinatedCheckpoint;
use ft_ckpt::incremental::IncrementalCheckpoint;
use ft_ckpt::partial::PartialCheckpoint;
use ft_ckpt::restore::restore_full;
use ft_ckpt::state::{DatasetKind, ProcessSet};
use std::hint::black_box;

fn make_set() -> ProcessSet {
    // 16 processes x (256 KiB library + 64 KiB remainder).
    ProcessSet::uniform(16, 256 * 1024, 64 * 1024)
}

fn bench_captures(c: &mut Criterion) {
    let set = make_set();
    let mut group = c.benchmark_group("ckpt/capture");
    group.sample_size(20);
    group.bench_function("coordinated_full", |b| {
        b.iter(|| black_box(CoordinatedCheckpoint::capture(black_box(&set), 0.0)))
    });
    group.bench_function("partial_remainder_entry", |b| {
        b.iter(|| {
            black_box(PartialCheckpoint::capture(
                black_box(&set),
                DatasetKind::Remainder,
                0.0,
            ))
        })
    });
    group.bench_function("partial_library_exit", |b| {
        b.iter(|| {
            black_box(PartialCheckpoint::capture(
                black_box(&set),
                DatasetKind::Library,
                0.0,
            ))
        })
    });
    group.finish();
}

fn bench_incremental_and_restore(c: &mut Criterion) {
    let mut set = make_set();
    let base = CoordinatedCheckpoint::capture(&set, 0.0);
    // Dirty only the library dataset, as a LIBRARY phase would.
    for p in set.iter_mut() {
        let ids: Vec<usize> = p.regions_of(DatasetKind::Library).map(|r| r.id).collect();
        for id in ids {
            p.region_mut(id).unwrap().update(|d| d[0] ^= 0xFF);
        }
    }
    let mut group = c.benchmark_group("ckpt/incremental_and_restore");
    group.sample_size(20);
    group.bench_function("incremental_after_library_phase", |b| {
        b.iter(|| black_box(IncrementalCheckpoint::capture_since(&set, &base, 1.0)))
    });
    group.bench_function("rollback_restore_full", |b| {
        b.iter(|| {
            let mut scratch = set.clone();
            black_box(restore_full(&base, &mut scratch).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_captures, bench_incremental_and_restore);
criterion_main!(benches);
