//! Criterion bench for the durable checkpoint pipeline: checksummed frame
//! encode + backend commit, stream verification and verified restore, on the
//! in-memory and the chunked-file (fsync + rename) backends.
//!
//! Beyond the raw distributions, the reporter prints the `WasteModel`
//! comparison column the durable pipeline enables: the paper's closed forms
//! assume a scalar recovery cost `R = C`; the pipeline *measures* the
//! restore/write asymmetry (and the checksum overhead), and the JSON
//! records the §IV waste for the scalar assumption next to the waste with
//! `R` replaced by the measured ratio — the measured-C/R column.
//!
//! Run with `cargo bench -p ft-bench --bench ckpt_pipeline`; the final line
//! prints a JSON summary suitable for `BENCH_ckpt_pipeline.json`.  Set
//! `FT_BENCH_SMOKE=1` (as CI does) for a seconds-long smoke run.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_bench::host_json_fields;
use ft_ckpt::backend::{CheckpointBackend, ChunkedFileBackend, MemoryBackend};
use ft_ckpt::coordinated::CoordinatedCheckpoint;
use ft_ckpt::incremental::IncrementalCheckpoint;
use ft_ckpt::pipeline::{CheckpointPipeline, CostSummary, PipelineOp};
use ft_ckpt::state::ProcessSet;
use ft_composite::model;
use ft_composite::params::ModelParams;
use ft_platform::checksum::{ChecksumGen, Crc32, NullChecksum};
use ft_platform::units::minutes;
use std::hint::black_box;

/// Whether CI asked for the tiny smoke image.
fn smoke() -> bool {
    std::env::var_os("FT_BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn make_set() -> ProcessSet {
    if smoke() {
        ProcessSet::uniform(4, 32 * 1024, 8 * 1024)
    } else {
        ProcessSet::uniform(16, 256 * 1024, 64 * 1024)
    }
}

fn generations() -> usize {
    if smoke() {
        8
    } else {
        32
    }
}

fn evolve(set: &mut ProcessSet, round: u8) {
    for p in set.iter_mut() {
        let ids: Vec<usize> = p.regions().iter().map(|r| r.id).collect();
        for id in ids {
            p.region_mut(id).unwrap().update(|d| {
                for b in d.iter_mut() {
                    *b = b.wrapping_add(round);
                }
            });
        }
        p.advance(1.0);
    }
}

/// Drives one pipeline through a full write/verify/restore life cycle
/// (full commits with incremental deltas in between, every generation
/// verified, one verified restore at the end) and returns the per-op cost
/// distributions.
fn drive<C: ChecksumGen + Clone, B: CheckpointBackend>(
    mut pipeline: CheckpointPipeline<C, B>,
) -> Vec<CostSummary> {
    let mut set = make_set();
    let mut base_image = CoordinatedCheckpoint::capture(&set, 0.0);
    let mut base_generation = pipeline.commit_full(&base_image).unwrap();
    pipeline.verify(base_generation).unwrap();
    for g in 1..generations() {
        evolve(&mut set, g as u8);
        let time = g as f64;
        let generation = if g % 4 == 0 {
            base_image = CoordinatedCheckpoint::capture(&set, time);
            base_generation = pipeline.commit_full(&base_image).unwrap();
            base_generation
        } else {
            let delta = IncrementalCheckpoint::capture_since(&set, &base_image, time);
            pipeline.commit_delta(&delta, base_generation).unwrap()
        };
        pipeline.verify(generation).unwrap();
    }
    let (restored, outcome) = pipeline.restore_latest().unwrap();
    assert_eq!(outcome.fallback_depth, 0);
    assert_eq!(
        restored.materialize().unwrap().fingerprint(),
        set.fingerprint(),
        "restored image must match the live state"
    );
    pipeline.cost_summary()
}

fn mean_of(summaries: &[CostSummary], op: PipelineOp) -> Option<&CostSummary> {
    summaries.iter().find(|s| s.op == op)
}

fn bench_pipeline_ops(c: &mut Criterion) {
    let set = make_set();
    let image = CoordinatedCheckpoint::capture(&set, 0.0);
    let mut group = c.benchmark_group("ckpt_pipeline");
    group.sample_size(10);
    group.bench_function("commit_full_crc32_memory", |b| {
        b.iter(|| {
            let mut p = CheckpointPipeline::new(Crc32::new(), MemoryBackend::new());
            black_box(p.commit_full(black_box(&image)).unwrap())
        })
    });
    group.bench_function("commit_full_null_memory", |b| {
        b.iter(|| {
            let mut p = CheckpointPipeline::new(NullChecksum, MemoryBackend::new());
            black_box(p.commit_full(black_box(&image)).unwrap())
        })
    });
    group.bench_function("verify_crc32_memory", |b| {
        let mut p = CheckpointPipeline::new(Crc32::new(), MemoryBackend::new());
        let generation = p.commit_full(&image).unwrap();
        b.iter(|| p.verify(black_box(generation)).unwrap())
    });
    group.bench_function("restore_latest_crc32_memory", |b| {
        let mut p = CheckpointPipeline::new(Crc32::new(), MemoryBackend::new());
        p.commit_full(&image).unwrap();
        b.iter(|| black_box(p.restore_latest().unwrap()))
    });
    group.finish();
}

/// One reported pipeline leg: its cost distributions plus identity.
fn leg_json(name: &str, summaries: &[CostSummary]) -> String {
    let op_json = |label: &str, op: PipelineOp| {
        mean_of(summaries, op).map_or_else(
            || format!("\"{label}\": null"),
            |s| {
                let throughput = if s.mean_seconds > 0.0 {
                    (s.total_raw_bytes as f64 / s.count as f64) / s.mean_seconds
                } else {
                    0.0
                };
                format!(
                    "\"{label}\": {{\"count\": {}, \"min_s\": {:.9}, \"mean_s\": {:.9}, \
                     \"max_s\": {:.9}, \"raw_bytes\": {}, \"bytes_per_s\": {:.0}}}",
                    s.count, s.min_seconds, s.mean_seconds, s.max_seconds, s.total_raw_bytes,
                    throughput,
                )
            },
        )
    };
    format!(
        "\"{name}\": {{{}, {}, {}, {}}}",
        op_json("write_full", PipelineOp::WriteFull),
        op_json("write_delta", PipelineOp::WriteDelta),
        op_json("verify", PipelineOp::Verify),
        op_json("restore", PipelineOp::Restore),
    )
}

/// Prints the `BENCH_ckpt_pipeline.json` payload: measured write/verify/
/// restore distributions per leg, the checksum overhead, and the waste-model
/// comparison column with the measured restore/write ratio replacing the
/// scalar `R = C` assumption.
fn report_json(_c: &mut Criterion) {
    let crc_memory = drive(CheckpointPipeline::new(Crc32::new(), MemoryBackend::new()));
    let null_memory = drive(CheckpointPipeline::new(NullChecksum, MemoryBackend::new()));
    let crc_file = drive(CheckpointPipeline::new(
        Crc32::new(),
        ChunkedFileBackend::new(256 * 1024).unwrap(),
    ));

    let write_crc = mean_of(&crc_memory, PipelineOp::WriteFull).unwrap().mean_seconds;
    let write_null = mean_of(&null_memory, PipelineOp::WriteFull).unwrap().mean_seconds;
    let restore_crc = mean_of(&crc_memory, PipelineOp::Restore).unwrap().mean_seconds;
    let checksum_overhead = if write_null > 0.0 { write_crc / write_null } else { 1.0 };
    // Measured restore/write asymmetry: what the paper's scalar model pins
    // at R/C = 1.  Either direction occurs in practice — a write pays
    // serialization + checksum + commit while a restore pays fetch +
    // re-verify + decode, and which side dominates depends on the backend.
    let measured_ratio = if write_crc > 0.0 { restore_crc / write_crc } else { 1.0 };

    // The WasteModel comparison column: §IV waste with the scalar R = C
    // assumption versus R = C × measured ratio, for the headline scenario.
    let scalar = ModelParams::paper_figure7(0.5, minutes(120.0)).unwrap();
    let measured = ModelParams::builder()
        .epoch_duration(scalar.epoch_duration)
        .alpha(scalar.alpha)
        .checkpoint_cost(scalar.checkpoint_cost)
        .recovery_cost(scalar.checkpoint_cost * measured_ratio)
        .downtime(scalar.downtime)
        .rho(scalar.rho)
        .phi(scalar.phi)
        .abft_reconstruction(scalar.abft_reconstruction)
        .platform_mtbf(scalar.platform_mtbf)
        .build()
        .unwrap();
    let column = |params: &ModelParams| {
        (
            model::pure::waste(params).unwrap().value(),
            model::composite::waste(params).unwrap().value(),
        )
    };
    let (pure_scalar, composite_scalar) = column(&scalar);
    let (pure_measured, composite_measured) = column(&measured);

    println!(
        "{{\"bench\": \"ckpt_pipeline\", \"smoke\": {}, \"image_bytes\": {}, \
         \"generations\": {}, {}, {}, {}, \
         \"checksum_overhead_write\": {checksum_overhead:.4}, \
         \"measured_restore_write_ratio\": {measured_ratio:.4}, \
         \"waste_scalar\": {{\"pure\": {pure_scalar:.6}, \"composite\": {composite_scalar:.6}}}, \
         \"waste_measured_cr\": {{\"pure\": {pure_measured:.6}, \"composite\": {composite_measured:.6}}}, \
         {}}}",
        smoke(),
        make_set().total_footprint(),
        generations(),
        leg_json("crc32_memory", &crc_memory),
        leg_json("null_memory", &null_memory),
        leg_json("crc32_chunked_file", &crc_file),
        host_json_fields(),
    );
}

criterion_group!(benches, bench_pipeline_ops, report_json);
criterion_main!(benches);
