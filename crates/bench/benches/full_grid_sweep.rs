//! Criterion bench for the sweep subsystem: whole-grid parallel execution
//! versus the serial grid baseline on a reduced Figure-7 grid, reported as
//! tasks per second.  This is the knob the ISSUE's acceptance criterion
//! watches: grid-level parallelism must beat per-point replication
//! (speedup > 1.5x on >= 4 cores; on a single-core host the two paths
//! collapse to the same execution).
//!
//! Run with `cargo bench -p ft-bench --bench full_grid_sweep`; the final
//! lines print a JSON summary suitable for `BENCH_sweep.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_bench::{figure7_base, Axis, Parameter, SweepSpec};
use ft_platform::units::minutes;
use std::hint::black_box;
use std::time::Instant;

/// A reduced Figure-7 grid: 4 MTBF x 3 alpha points, 3 protocols, 25
/// replications per task = 36 tasks, 900 simulated executions.
fn reduced_fig7() -> SweepSpec {
    SweepSpec::new("reduced fig7 grid", figure7_base())
        .axis(Axis::linspace(Parameter::Mtbf, minutes(60.0), minutes(240.0), 4))
        .axis(Axis::linspace(Parameter::Alpha, 0.0, 1.0, 3))
        .replications(25)
}

fn bench_grid_execution(c: &mut Criterion) {
    let spec = reduced_fig7();
    let mut group = c.benchmark_group("sweep/fig7_4x3x25reps");
    group.sample_size(10);
    group.bench_function("serial_grid", |b| {
        b.iter(|| black_box(spec.run_serial().unwrap()))
    });
    group.bench_function("parallel_grid", |b| b.iter(|| black_box(spec.run().unwrap())));
    group.finish();
}

/// Times one run of each path directly and prints the JSON summary recorded
/// in `BENCH_sweep.json`.
fn report_json(c: &mut Criterion) {
    let spec = reduced_fig7();
    let time = |f: &dyn Fn() -> ft_bench::SweepResults| {
        // Median of five runs.
        let mut secs: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed().as_secs_f64()
            })
            .collect();
        secs.sort_by(f64::total_cmp);
        secs[secs.len() / 2]
    };
    let serial = time(&|| spec.run_serial().unwrap());
    let parallel = time(&|| spec.run().unwrap());
    let tasks = (spec.axes.iter().map(|a| a.values.len()).product::<usize>()
        * spec.protocols.len()) as f64;
    println!(
        "{{\"bench\": \"full_grid_sweep\", \"grid\": \"fig7 4x3, 3 protocols, 25 replications\", \
         \"tasks\": {tasks}, \"threads\": {}, \
         \"serial_seconds\": {serial:.4}, \"parallel_seconds\": {parallel:.4}, \
         \"serial_tasks_per_s\": {:.1}, \"parallel_tasks_per_s\": {:.1}, \
         \"speedup\": {:.2}}}",
        rayon::current_num_threads(),
        tasks / serial,
        tasks / parallel,
        serial / parallel,
    );
    // Keep criterion's API shape: register a trivial timed closure so the
    // harness owns this function too.
    c.bench_function("sweep/json_report_overhead", |b| b.iter(|| black_box(tasks)));
}

criterion_group!(benches, bench_grid_execution, report_json);
criterion_main!(benches);
