//! Criterion bench for the sweep subsystem: whole-grid parallel execution
//! versus the serial grid baseline on a reduced Figure-7 grid, reported as
//! tasks per second, plus the adaptive-replication comparison recorded in
//! `BENCH_adaptive.json`: a fixed-1000-replication sweep versus an adaptive
//! sweep targeting the same (worst-case) relative CI95, on one core.
//!
//! Run with `cargo bench -p ft-bench --bench full_grid_sweep`; the final
//! lines print JSON summaries suitable for `BENCH_sweep.json` and
//! `BENCH_adaptive.json`.  Set `FT_BENCH_SMOKE=1` (as CI does) to shrink
//! the grids to a seconds-long smoke run.
//!
//! (The grid-parallelism acceptance criterion of PR 2 still applies:
//! speedup > 1.5x on >= 4 cores; on a single-core host the two paths
//! collapse to the same execution.)

use criterion::{criterion_group, criterion_main, Criterion};
use ft_bench::{figure7_base, host_json_fields, Axis, Parameter, SweepSpec};
use ft_platform::units::minutes;
use ft_sim::ReplicationBudget;
use std::hint::black_box;
use std::time::Instant;

/// Whether CI asked for the tiny smoke grids.
fn smoke() -> bool {
    std::env::var_os("FT_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// A reduced Figure-7 grid: 4 MTBF x 3 alpha points, 3 protocols, 25
/// replications per task = 36 tasks, 900 simulated executions.
fn reduced_fig7() -> SweepSpec {
    SweepSpec::new("reduced fig7 grid", figure7_base())
        .axis(Axis::linspace(Parameter::Mtbf, minutes(60.0), minutes(240.0), 4))
        .axis(Axis::linspace(Parameter::Alpha, 0.0, 1.0, 3))
        .replications(25)
}

fn bench_grid_execution(c: &mut Criterion) {
    let spec = reduced_fig7();
    let mut group = c.benchmark_group("sweep/fig7_4x3x25reps");
    // Real criterion rejects sample sizes below 10, so the smoke mode keeps
    // the floor and relies on the tiny grid for speed.
    group.sample_size(10);
    group.bench_function("serial_grid", |b| {
        b.iter(|| black_box(spec.run_serial().unwrap()))
    });
    group.bench_function("parallel_grid", |b| b.iter(|| black_box(spec.run().unwrap())));
    group.finish();
}

/// Times one run of each path directly and prints the JSON summary recorded
/// in `BENCH_sweep.json`.
fn report_json(c: &mut Criterion) {
    let spec = reduced_fig7();
    let time = |f: &dyn Fn() -> ft_bench::SweepResults| {
        // Median of five runs.
        let mut secs: Vec<f64> = (0..5)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed().as_secs_f64()
            })
            .collect();
        secs.sort_by(f64::total_cmp);
        secs[secs.len() / 2]
    };
    let serial = time(&|| spec.run_serial().unwrap());
    let parallel = time(&|| spec.run().unwrap());
    let tasks = (spec.axes.iter().map(|a| a.values.len()).product::<usize>()
        * spec.protocols.len()) as f64;
    println!(
        "{{\"bench\": \"full_grid_sweep\", \"grid\": \"fig7 4x3, 3 protocols, 25 replications\", \
         \"tasks\": {tasks}, {}, \"threads\": {}, \
         \"serial_seconds\": {serial:.4}, \"parallel_seconds\": {parallel:.4}, \
         \"serial_tasks_per_s\": {:.1}, \"parallel_tasks_per_s\": {:.1}, \
         \"speedup\": {:.2}}}",
        host_json_fields(),
        rayon::current_num_threads(),
        tasks / serial,
        tasks / parallel,
        serial / parallel,
    );
    // Keep criterion's API shape: register a trivial timed closure so the
    // harness owns this function too.
    c.bench_function("sweep/json_report_overhead", |b| b.iter(|| black_box(tasks)));
}

/// The adaptive-replication win (ISSUE 3's acceptance criterion): on the
/// reduced Figure-7 grid, run every task with a fixed 1000 replications,
/// read off the *worst relative* CI95 that budget achieved, then rerun the
/// grid adaptively with that precision as the stopping target.  Every point
/// then meets the fixed run's worst-case precision while easy points stop
/// hundreds of replications earlier; the JSON line (the `BENCH_adaptive.json`
/// payload) reports both wall clocks, the speedup, and the replications
/// actually used per point.
fn report_adaptive_json(c: &mut Criterion) {
    let fixed_reps = if smoke() { 60 } else { 1000 };
    let min_reps = if smoke() { 20 } else { 100 };
    let grid = |spec: SweepSpec| {
        if smoke() {
            spec.axis(Axis::linspace(Parameter::Mtbf, minutes(60.0), minutes(240.0), 2))
                .axis(Axis::values(Parameter::Alpha, vec![0.0, 0.8]))
        } else {
            spec.axis(Axis::linspace(Parameter::Mtbf, minutes(60.0), minutes(240.0), 4))
                .axis(Axis::linspace(Parameter::Alpha, 0.0, 1.0, 3))
        }
    };
    // The serial grid path isolates the replication cost itself (this is a
    // single-core acceptance figure; the parallel path would fold in
    // scheduling noise on multi-core hosts).
    let time = |spec: &SweepSpec| {
        let runs = if smoke() { 1 } else { 3 };
        let mut best = f64::INFINITY;
        let mut results = None;
        for _ in 0..runs {
            let t = Instant::now();
            let r = black_box(spec.run_serial().unwrap());
            best = best.min(t.elapsed().as_secs_f64());
            results = Some(r);
        }
        (best, results.expect("at least one run"))
    };

    let fixed_spec = grid(SweepSpec::new("fixed", figure7_base())).replications(fixed_reps);
    let (fixed_seconds, fixed) = time(&fixed_spec);
    // The loosest relative CI95 the fixed budget produced anywhere on the
    // grid: the precision every point must reach.
    let target = fixed
        .results
        .iter()
        .filter_map(|r| r.sim.map(|s| s.ci95_waste / s.mean_waste.abs().max(1e-12)))
        .fold(0.0f64, f64::max);

    let adaptive_spec = grid(SweepSpec::new("adaptive", figure7_base())).budget(
        ReplicationBudget::Adaptive {
            rel_precision: target,
            min: min_reps,
            max: fixed_reps,
        },
    );
    let (adaptive_seconds, adaptive) = time(&adaptive_spec);

    let reps_used: Vec<usize> = adaptive
        .results
        .iter()
        .filter_map(|r| r.sim.map(|s| s.replications))
        .collect();
    let reps_list = reps_used
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let grid_label = if smoke() {
        "fig7 2x2 smoke grid, 3 protocols"
    } else {
        "fig7 4x3, 3 protocols"
    };
    println!(
        "{{\"bench\": \"adaptive_vs_fixed\", \"grid\": \"{grid_label}\", \
         {}, \
         \"threads\": 1, \"fixed_replications\": {fixed_reps}, \
         \"target_rel_ci95\": {target:.5}, \
         \"fixed_seconds\": {fixed_seconds:.4}, \"adaptive_seconds\": {adaptive_seconds:.4}, \
         \"fixed_total_replications\": {}, \"adaptive_total_replications\": {}, \
         \"adaptive_reps_per_task\": [{reps_list}], \
         \"wall_clock_speedup\": {:.2}}}",
        host_json_fields(),
        fixed.total_replications(),
        adaptive.total_replications(),
        fixed_seconds / adaptive_seconds,
    );
    c.bench_function("sweep/adaptive_report_overhead", |b| {
        b.iter(|| black_box(reps_used.len()))
    });
}

/// Model−simulation gap across the failure-shape variants, the
/// `BENCH_model_gap.json` payload: for each Weibull shape `k` (1.0 is the
/// exponential identity) the headline-point sweep runs with the matching
/// Weibull-corrected model arm and reports the mean and worst absolute gap —
/// the quantity the ISSUE-5 waste-model subsystem exists to shrink.
fn report_model_gap_json(c: &mut Criterion) {
    use ft_platform::failure::FailureSpec;
    let reps = if smoke() { 40 } else { 300 };
    let variants: Vec<String> = [1.0, 1.5, 0.7, 0.5]
        .iter()
        .map(|&shape| {
            let results = SweepSpec::new("model gap", figure7_base())
                .axis(Axis::values(Parameter::Alpha, vec![0.5]))
                .failure_model(FailureSpec::Weibull { shape })
                .replications(reps)
                .model_gap(true)
                .run_serial()
                .unwrap();
            let (significant, total) = results.significant_gap_counts();
            format!(
                "{{\"weibull_shape\": {shape}, \"model\": \"{}\", \
                 \"mean_abs_gap\": {:.5}, \"worst_abs_gap\": {:.5}, \
                 \"significant_gaps\": {significant}, \"tasks\": {total}}}",
                results.model_label(0),
                results.mean_abs_model_sim_gap().unwrap(),
                results.worst_model_sim_gap().unwrap(),
            )
        })
        .collect();
    println!(
        "{{\"bench\": \"model_gap\", \"grid\": \"fig7 headline point (alpha 0.5, mtbf 120 min), 3 protocols\", \
         {}, \"replications\": {reps}, \
         \"variants\": [{}]}}",
        host_json_fields(),
        variants.join(", "),
    );
    c.bench_function("sweep/model_gap_report_overhead", |b| {
        b.iter(|| black_box(variants.len()))
    });
}

/// Batched-SoA-versus-scalar replication throughput, the `BENCH_batch.json`
/// payload (ISSUE 6's acceptance figure): the reduced Figure-7 grid run
/// serially on the scalar engine (`batch_lanes 1`) and on the batch engine
/// at several lane widths.  Because the batch engine is bit-exact, every
/// run's `results` are asserted identical to the scalar run's before any
/// timing is reported — the speedup is a pure engine substitution.
/// When `guard_no_regression` is set (the fast-path-bound sparse grid), the
/// reporter doubles as a CI no-regression guard: every batch width must
/// sustain at least the scalar engine's replication throughput, otherwise
/// the bench panics and the smoke run fails.
fn report_batch_grid(name: &str, base: SweepSpec, guard_no_regression: bool) -> String {
    let time = |spec: &SweepSpec| {
        let runs = if smoke() { 1 } else { 3 };
        let mut best = f64::INFINITY;
        let mut results = None;
        for _ in 0..runs {
            let t = Instant::now();
            let r = black_box(spec.run_serial().unwrap());
            best = best.min(t.elapsed().as_secs_f64());
            results = Some(r);
        }
        (best, results.expect("at least one run"))
    };
    let grid = |lanes: usize| base.clone().batch_lanes(lanes);
    let (scalar_seconds, scalar) = time(&grid(1));
    let total_reps = scalar.total_replications() as f64;
    let widths = if smoke() {
        vec![64usize]
    } else {
        vec![64usize, 128, 256]
    };
    let variants: Vec<String> = widths
        .iter()
        .map(|&lanes| {
            let (seconds, batch) = time(&grid(lanes));
            assert_eq!(
                batch.results, scalar.results,
                "batch engine must be bit-exact with the scalar engine"
            );
            if guard_no_regression {
                assert!(
                    seconds <= scalar_seconds,
                    "batch regression on '{name}': {lanes} lanes took {seconds:.4}s \
                     vs scalar {scalar_seconds:.4}s"
                );
            }
            format!(
                "{{\"batch_lanes\": {lanes}, \"seconds\": {seconds:.4}, \
                 \"replications_per_s\": {:.0}, \"speedup\": {:.2}}}",
                total_reps / seconds,
                scalar_seconds / seconds,
            )
        })
        .collect();
    format!(
        "{{\"grid\": \"{name}\", \
         \"scalar_seconds\": {scalar_seconds:.4}, \"scalar_replications_per_s\": {:.0}, \
         \"total_replications\": {total_reps}, \
         \"variants\": [{}]}}",
        total_reps / scalar_seconds,
        variants.join(", "),
    )
}

fn report_batch_json(c: &mut Criterion) {
    let reps = if smoke() { 50 } else { 500 };
    // The paper's Figure-7 regime (MTBF 1-4 h against a week of work) is
    // failure-dominated: a third to a half of checkpoint periods are
    // interrupted, so most time goes to the scalar-verbatim retry loops the
    // lockstep kernel cannot batch.  The sparse grid (MTBF 16-64 h) shows
    // the fast-path-bound regime where batching pays off.
    let fig7 = reduced_fig7().replications(reps);
    let sparse = SweepSpec::new("sparse-failure grid", figure7_base())
        .axis(Axis::linspace(
            Parameter::Mtbf,
            minutes(960.0),
            minutes(3840.0),
            4,
        ))
        .axis(Axis::linspace(Parameter::Alpha, 0.0, 1.0, 3))
        .replications(reps);
    let grids = [
        report_batch_grid(
            &format!("fig7 4x3, 3 protocols, {reps} replications"),
            fig7,
            false,
        ),
        report_batch_grid(
            &format!("sparse MTBF 16-64h 4x3, 3 protocols, {reps} replications"),
            sparse,
            true,
        ),
    ];
    println!(
        "{{\"bench\": \"batch_engine\", \
         \"source\": \"cargo bench -p ft-bench --bench full_grid_sweep \
         (criterion harness=false, vendored stand-in)\", \
         {}, \"threads\": 1, \
         \"note\": \"single-core SSE2-only host; fig7 grid is failure-dominated \
         (Amdahl-bound on the interrupt redraws), sparse grid is \
         fast-path-bound; sparse grid doubles as the batch-vs-scalar \
         no-regression guard\", \
         \"grids\": [{}]}}",
        host_json_fields(),
        grids.join(", "),
    );
    c.bench_function("sweep/batch_report_overhead", |b| {
        b.iter(|| black_box(grids.len()))
    });
}

/// Intra-point scaling of the parallel batch driver, the
/// `BENCH_point_threads.json` payload: one sparse sweep point with a large
/// replication budget, run through the batch engine at `--point-threads`
/// 1, 2 and 4.  Every thread count's results are asserted bit-identical to
/// the serial driver's before any timing is reported; on a single-core
/// host the figure records the (annotated) wave-dispatch overhead rather
/// than a speedup.
fn report_point_threads_json(c: &mut Criterion) {
    let reps = if smoke() { 200 } else { 2_000 };
    let point = |threads: usize| {
        SweepSpec::new("point-threads", figure7_base())
            .axis(Axis::values(Parameter::Mtbf, vec![minutes(1_920.0)]))
            .axis(Axis::values(Parameter::Alpha, vec![0.5]))
            .replications(reps)
            .batch_lanes(64)
            .point_threads(threads)
    };
    let time = |spec: &SweepSpec| {
        let runs = if smoke() { 1 } else { 3 };
        let mut best = f64::INFINITY;
        let mut results = None;
        for _ in 0..runs {
            let t = Instant::now();
            let r = black_box(spec.run_serial().unwrap());
            best = best.min(t.elapsed().as_secs_f64());
            results = Some(r);
        }
        (best, results.expect("at least one run"))
    };
    let (serial_seconds, serial) = time(&point(1));
    let variants: Vec<String> = [2usize, 4]
        .iter()
        .map(|&threads| {
            let (seconds, parallel) = time(&point(threads));
            assert_eq!(
                parallel.results, serial.results,
                "parallel block driver must be bit-identical to the serial driver"
            );
            format!(
                "{{\"point_threads\": {threads}, \"seconds\": {seconds:.4}, \
                 \"speedup\": {:.2}}}",
                serial_seconds / seconds,
            )
        })
        .collect();
    println!(
        "{{\"bench\": \"point_threads_scaling\", \
         \"grid\": \"sparse point (mtbf 32h, alpha 0.5), 3 protocols, {reps} replications, 64 lanes\", \
         {}, \
         \"serial_seconds\": {serial_seconds:.4}, \
         \"variants\": [{}]}}",
        host_json_fields(),
        variants.join(", "),
    );
    c.bench_function("sweep/point_threads_report_overhead", |b| {
        b.iter(|| black_box(variants.len()))
    });
}

/// Columnar-sampler micro-bench, cheap enough to ride `FT_BENCH_SMOKE`:
/// the bulk `fill_next_failures` pipeline versus the scalar per-lane
/// `next_failure` loop it replaced, per failure family, with the columns
/// asserted bit-identical before any throughput is reported.
fn report_sampler_json(c: &mut Criterion) {
    use ft_platform::batch::{BatchFailureSource, BatchFailureStream};
    use ft_platform::failure::{AnyFailureModel, ExponentialFailures, WeibullFailures};
    use ft_platform::rng::derive_seeds;
    use ft_platform::units::hours;

    let lanes = 256usize;
    let rounds = if smoke() { 2_000 } else { 20_000 };
    let seeds = derive_seeds(0xC01_0A5, lanes);
    let models: Vec<(&str, AnyFailureModel)> = vec![
        (
            "exponential",
            AnyFailureModel::Exponential(ExponentialFailures::new(hours(2.0)).unwrap()),
        ),
        (
            "weibull(k=0.7)",
            AnyFailureModel::Weibull(WeibullFailures::new(hours(2.0), 0.7).unwrap()),
        ),
    ];
    let variants: Vec<String> = models
        .iter()
        .map(|(label, model)| {
            let mut out = vec![0.0f64; lanes];
            // Scalar baseline: one next_failure call per lane per round.
            let mut stream = BatchFailureStream::new(*model, &seeds);
            let t = Instant::now();
            for _ in 0..rounds {
                for (lane, slot) in out.iter_mut().enumerate() {
                    *slot = black_box(stream.next_failure(lane));
                }
            }
            let scalar_seconds = t.elapsed().as_secs_f64();
            let scalar_last = out.clone();
            // Columnar pipeline from the same seeds.
            stream.reset(&seeds);
            let t = Instant::now();
            for _ in 0..rounds {
                stream.fill_next_failures(lanes, black_box(&mut out));
            }
            let columnar_seconds = t.elapsed().as_secs_f64();
            assert_eq!(
                scalar_last
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "columnar sampler must be bit-identical to scalar draws ({label})"
            );
            let draws = (lanes * rounds) as f64;
            format!(
                "{{\"model\": \"{label}\", \
                 \"scalar_draws_per_s\": {:.0}, \"columnar_draws_per_s\": {:.0}, \
                 \"speedup\": {:.2}}}",
                draws / scalar_seconds,
                draws / columnar_seconds,
                scalar_seconds / columnar_seconds,
            )
        })
        .collect();
    println!(
        "{{\"bench\": \"sampler_fill\", \
         \"shape\": \"{lanes} lanes x {rounds} rounds per model\", \
         {}, \
         \"variants\": [{}]}}",
        host_json_fields(),
        variants.join(", "),
    );
    c.bench_function("sweep/sampler_report_overhead", |b| {
        b.iter(|| black_box(variants.len()))
    });
}

/// Trace-driven and non-stationary scenarios versus the matched-MTBF
/// i.i.d. baseline, the `BENCH_traces.json` payload: an MTBF-axis sweep at
/// the headline α runs once with the plain i.i.d. exponential clock and
/// once per scenario (bundled-trace playback, cascade bursts, diurnal
/// modulation, wear-out).  Each scenario row reports how the
/// model-versus-simulation waste gap *moves* when the i.i.d. assumption
/// breaks (the model arm stays the matched-MTBF i.i.d. prediction by
/// construction) and where the pure-versus-composite crossover lands on
/// the MTBF axis relative to the baseline's.  The trace row's crossover is
/// expected to be degenerate: the recorded clock ignores the MTBF
/// coordinate (its empirical rate *is* the clock), which the payload
/// states rather than hides.
fn report_traces_json(c: &mut Criterion) {
    use ft_platform::failure::FailureModel;
    use ft_platform::scenario::{bundled_playback, ScenarioSpec};

    let reps = if smoke() { 40 } else { 300 };
    let steps = if smoke() { 4 } else { 8 };
    let grid = |scenario: ScenarioSpec| {
        SweepSpec::new("trace scenarios", figure7_base())
            .axis(Axis::linspace(Parameter::Mtbf, minutes(30.0), minutes(240.0), steps))
            .axis(Axis::values(Parameter::Alpha, vec![0.5]))
            .replications(reps)
            .model_gap(true)
            .scenario(scenario)
    };
    let baseline = grid(ScenarioSpec::Iid).run_serial().unwrap();
    let base_gap = baseline.mean_abs_model_sim_gap().unwrap();
    let base_cross = baseline.crossover(Parameter::Mtbf);
    let json_opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.0}"));

    let scenarios = [
        ScenarioSpec::Trace { path: None },
        ScenarioSpec::Cascade,
        ScenarioSpec::Diurnal,
        ScenarioSpec::Wearout,
    ];
    let variants: Vec<String> = scenarios
        .iter()
        .map(|scenario| {
            let results = grid(scenario.clone()).run_serial().unwrap();
            let gap = results.mean_abs_model_sim_gap().unwrap();
            let worst = results.worst_model_sim_gap().unwrap();
            let (significant, total) = results.significant_gap_counts();
            let cross = results.crossover(Parameter::Mtbf);
            let shift = match (base_cross, cross) {
                (Some(a), Some(b)) => format!("{:.0}", b - a),
                _ => "null".to_string(),
            };
            format!(
                "{{\"scenario\": \"{scenario}\", \
                 \"mean_abs_gap_vs_iid_model\": {gap:.5}, \"worst_abs_gap\": {worst:.5}, \
                 \"gap_movement_vs_iid_baseline\": {:.5}, \
                 \"significant_gaps\": {significant}, \"tasks\": {total}, \
                 \"crossover_mtbf_s\": {}, \"crossover_shift_s\": {shift}}}",
                gap - base_gap,
                json_opt(cross),
            )
        })
        .collect();
    let trace_mtbf = bundled_playback()
        .map(|p| format!("{:.0}", p.mean()))
        .unwrap_or_else(|_| "null".to_string());
    println!(
        "{{\"bench\": \"trace_scenarios\", \
         \"grid\": \"mtbf 0.5-4h x{steps} (alpha 0.5), 3 protocols\", \
         {}, \"replications\": {reps}, \
         \"note\": \"model arm is always the matched-MTBF iid first-order \
         prediction; gap movement isolates the effect of breaking the iid \
         assumption. The trace clock ignores the MTBF coordinate (its \
         empirical rate governs), so its crossover on this axis is \
         degenerate by design.\", \
         \"trace_empirical_mtbf_s\": {trace_mtbf}, \
         \"iid_baseline\": {{\"mean_abs_gap\": {base_gap:.5}, \
         \"crossover_mtbf_s\": {}}}, \
         \"variants\": [{}]}}",
        host_json_fields(),
        json_opt(base_cross),
        variants.join(", "),
    );
    c.bench_function("sweep/traces_report_overhead", |b| {
        b.iter(|| black_box(variants.len()))
    });
}

criterion_group!(
    benches,
    bench_grid_execution,
    report_json,
    report_adaptive_json,
    report_model_gap_json,
    report_batch_json,
    report_point_threads_json,
    report_sampler_json,
    report_traces_json
);
criterion_main!(benches);
