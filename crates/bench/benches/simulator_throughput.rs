//! Criterion bench for the simulator's Monte-Carlo throughput: sequential
//! single executions versus Rayon-parallel replication batches (the knob that
//! makes the thousand-replication sweeps of the paper practical).

use criterion::{criterion_group, criterion_main, Criterion};
use ft_bench::figure7_base;
use ft_platform::units::minutes;
use ft_sim::replicate::replicate;
use ft_sim::{simulate, OutcomeAccumulator, Protocol};
use std::hint::black_box;

fn bench_sequential_vs_parallel(c: &mut Criterion) {
    let params = figure7_base().with_mtbf(minutes(90.0)).unwrap();
    let reps = 200usize;

    let mut group = c.benchmark_group("simulator/200_replications");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            // Same Welford aggregation as the parallel path, so the two
            // arms time identical statistical work.
            let mut acc = OutcomeAccumulator::new();
            for seed in 0..reps as u64 {
                acc.push(&simulate(Protocol::AbftPeriodicCkpt, &params, seed));
            }
            black_box(acc.waste.mean())
        })
    });
    group.bench_function("rayon_parallel", |b| {
        b.iter(|| black_box(replicate(Protocol::AbftPeriodicCkpt, &params, reps, 42)))
    });
    group.finish();
}

fn bench_failure_density(c: &mut Criterion) {
    // Simulation cost grows with the number of failures handled; compare a
    // calm and a failure-heavy configuration.
    let mut group = c.benchmark_group("simulator/failure_density");
    group.sample_size(20);
    for (name, mtbf) in [("mtbf_4h", 240.0), ("mtbf_1h", 60.0)] {
        let params = figure7_base().with_mtbf(minutes(mtbf)).unwrap();
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(simulate(Protocol::PurePeriodicCkpt, &params, seed))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequential_vs_parallel, bench_failure_density);
criterion_main!(benches);
