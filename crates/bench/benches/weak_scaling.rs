//! Criterion bench for the weak-scaling evaluation (Figures 8–10): cost of a
//! full four-decade sweep for each scenario, plus a densified sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_composite::scaling::{paper_node_counts, WeakScalingScenario};
use std::hint::black_box;

fn bench_paper_sweeps(c: &mut Criterion) {
    let scenarios = [
        ("figure8", WeakScalingScenario::figure8()),
        ("figure9", WeakScalingScenario::figure9()),
        ("figure10", WeakScalingScenario::figure10()),
    ];
    let nodes = paper_node_counts();
    let mut group = c.benchmark_group("weak_scaling/paper_axis");
    for (name, scenario) in scenarios {
        group.bench_function(name, |b| {
            b.iter(|| black_box(scenario.sweep(black_box(&nodes)).unwrap()))
        });
    }
    group.finish();
}

fn bench_dense_sweep(c: &mut Criterion) {
    let scenario = WeakScalingScenario::figure9();
    let nodes: Vec<f64> = (0..=30).map(|i| 10f64.powf(3.0 + i as f64 * 0.1)).collect();
    let mut group = c.benchmark_group("weak_scaling/dense_axis_31_points");
    group.bench_function("figure9", |b| {
        b.iter(|| black_box(scenario.sweep(black_box(&nodes)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_paper_sweeps, bench_dense_sweep);
criterion_main!(benches);
