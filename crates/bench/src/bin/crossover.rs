//! Crossover refinement driver: localises *where* the composite protocol
//! starts beating pure periodic checkpointing — the headline annotation of
//! Figures 8–10 — to a requested relative tolerance, instead of the grid
//! resolution the figure binaries report.
//!
//! A cheap model-arm seeding sweep brackets the crossover at grid
//! resolution, then a [`CrossoverRefiner`] bisects the bracket: a free
//! analytic-model bisection first shrinks it to a window around the
//! model-predicted crossover (the model arm follows the failure spec —
//! Weibull-corrected under a Weibull clock — so this works on every axis,
//! `weibull_shape` included), and paired-delta adaptive probes bisect only
//! that window: each probe replays common failure traces to
//! `PurePeriodicCkpt` and `AbftPeriodicCkpt` and stops as soon as the sign
//! of the waste difference is resolved, so the whole refinement costs far
//! fewer simulated executions than re-scanning a finer grid with a fixed
//! budget.
//!
//! ```text
//! cargo run -p ft-bench --release --bin crossover -- \
//!     [--target fig8|fig9|fig10] [--axis nodes|mtbf|alpha|...] \
//!     [--tolerance 0.01] [--precision 0.05] \
//!     [--min-replications 100] [--max-replications 1000] [--max-probes 40] \
//!     [--sign-repeats 3] \
//!     [--failure-model exponential|weibull --weibull-shape 0.7] \
//!     [--model-only] [--model-gap] [--compare-fixed 1000] [--json] [--seed 42]
//! ```
//!
//! `--model-only` probes the closed-form model instead of simulating
//! (exact and essentially free).  `--model-gap` also simulates the seeding
//! grid and prints the model−simulation gap columns and summary — a
//! validation of the model arm the seeded bisection trusts.
//! `--compare-fixed N` additionally runs the
//! seeding grid as a paired fixed-`N` scan and reports both execution
//! counts — the `BENCH_crossover.json` payload.  `--json` prints the
//! machine-readable summary line.

use ft_bench::experiment::{failure_spec_from_args, format_value};
use ft_bench::{
    figure7_base, report_crossover, Args, Axis, CrossoverRefiner, Parameter, SweepSpec, Table,
};
use ft_composite::scaling::WeakScalingScenario;
use ft_sim::{Protocol, ReplicationBudget};

fn main() {
    let args = Args::capture();
    let target = args.string("--target", "fig9");
    let axis_name = args.string("--axis", "nodes");
    let axis = Parameter::parse(&axis_name).unwrap_or_else(|| {
        eprintln!("unknown --axis `{axis_name}`; use one of the sweep parameters (e.g. nodes, mtbf, alpha)");
        std::process::exit(2);
    });

    // The experiment the refinement runs inside: a Figures 8–10 weak-scaling
    // scenario for the node-count axis, the paper's headline base point for
    // every other axis.
    let (spec, grid_axis) = if axis == Parameter::Nodes {
        let scenario = match target.as_str() {
            "fig8" => WeakScalingScenario::figure8(),
            "fig9" => WeakScalingScenario::figure9(),
            "fig10" => WeakScalingScenario::figure10(),
            other => {
                eprintln!("unknown --target `{other}`; use fig8|fig9|fig10");
                std::process::exit(2);
            }
        };
        let ppd = args.value("--points-per-decade", 1);
        (
            SweepSpec::scaling(format!("Crossover refinement — {target}"), scenario),
            Axis::decades(Parameter::Nodes, 3, 6, ppd),
        )
    } else {
        let (from, to) = axis.default_range();
        (
            SweepSpec::new(
                format!("Crossover refinement — `{axis_name}` around the headline scenario"),
                figure7_base(),
            ),
            Axis::linspace(axis, args.value("--from", from), args.value("--to", to), 9),
        )
    };

    let mut spec = spec.seed(args.value("--seed", 42));
    if let Some(failure) = failure_spec_from_args(&args) {
        spec.failure = failure;
    }

    // Probe budget: paired-delta adaptive stopping unless the caller asked
    // for exact model probes.  (Model probes work on every axis, including
    // weibull_shape: the model arm dispatches to the Weibull-corrected
    // closed form, so it is no longer shape-blind.)
    spec.budget = if args.flag("--model-only") {
        ReplicationBudget::Fixed(0)
    } else {
        ReplicationBudget::AdaptiveDelta {
            rel_precision: args.value("--precision", 0.05),
            min: args.value("--min-replications", 100),
            max: args.value("--max-replications", 1_000),
        }
    };

    // 1. Seed: a free model-arm grid sweep brackets the crossover.  The
    // model arm follows the failure spec (Weibull-corrected closed form
    // under a Weibull clock), so every axis — including weibull_shape —
    // brackets analytically; the refinement then bisects with model probes
    // first and simulated probes only inside the model-located window.
    let seeding = SweepSpec {
        budget: ReplicationBudget::Fixed(0),
        paired: false,
        axes: vec![grid_axis],
        protocols: vec![Protocol::PurePeriodicCkpt, Protocol::AbftPeriodicCkpt],
        ..spec.clone()
    };
    let grid = seeding.run().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!("# {}", spec.name);
    println!(
        "# seeding grid: {} points along `{}`, model arm ({} failures)",
        grid.grid_points(),
        axis.label(),
        spec.failure,
    );
    report_crossover(&grid, axis);

    // `--model-gap`: validate the model arm the refinement trusts by also
    // simulating the seeding grid and printing the gap columns + summary.
    let mut measured_bias = None;
    if args.flag("--model-gap") {
        let gap_grid = ft_bench::SweepSpec {
            budget: spec.budget,
            ..seeding.clone()
        }
        .model_gap(true)
        .with_simulation_arm();
        let results = gap_grid.run().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        print!("{}", results.render(ft_bench::output::OutputFormat::Table));
        if let Some(summary) = results.model_gap_summary() {
            println!("# model-simulation gap along the seeding grid: {summary}");
        }
        measured_bias = results.crossover_model_sim_bias(axis);
        if let Some(bias) = measured_bias {
            println!(
                "# measured crossover bias |sim - model| ~= {} along `{}`; sizing the model-seed window from it",
                format_value(axis, bias),
                axis.label(),
            );
        }
    }
    let Some((below, above)) = grid.crossover_bracket(axis) else {
        println!("# nothing to refine — widen the grid or change the scenario");
        return;
    };

    // 2. Bisect the bracket with paired-delta probes.
    let refiner = CrossoverRefiner::new(spec.clone(), axis)
        .tolerance(args.value("--tolerance", 0.01))
        .max_probes(args.value("--max-probes", 40))
        .sign_repeats(args.value("--sign-repeats", 1));
    let refinement = refiner
        .refine_with_bias(below, above, measured_bias)
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });

    let mut table = Table::new(&[axis.label(), "delta", "ci95", "traces", "winner", "decided"]);
    for p in &refinement.probes {
        table.push_row(vec![
            format_value(axis, p.value),
            format!("{:+.5}", p.delta),
            format!("{:.5}", p.ci95),
            format!("{}", p.replications),
            if p.composite_beats { "composite" } else { "pure" }.to_string(),
            format!("{}", p.decided),
        ]);
    }
    print!("{}", table.render());
    println!(
        "# crossover localised at {} ~= {} (bracket {}..{}, rel width {:.4} vs tolerance {:.4}, {}converged)",
        axis.label(),
        format_value(axis, refinement.crossover),
        format_value(axis, refinement.bracket.0),
        format_value(axis, refinement.bracket.1),
        refinement.achieved_tolerance,
        refinement.rel_tolerance,
        if refinement.converged { "" } else { "NOT " },
    );
    if let Some(confidence) = refinement.confidence {
        println!(
            "# bracket confidence: every sign decision correct with p >= {confidence:.4} \
             (sequential sign test, {} probe(s) per midpoint max)",
            refiner.sign_repeats,
        );
    }
    if let Some(model_crossover) = refinement.model_crossover {
        println!(
            "# model-seeded: free analytic bisection located {} ~= {} first; simulated probes only bisected a window around it",
            axis.label(),
            format_value(axis, model_crossover),
        );
    }
    println!(
        "# refinement cost: {} probes, {} shared traces, {} simulated executions (budget {})",
        refinement.probes.len(),
        refinement.total_replications() / 2,
        refinement.total_replications(),
        spec.budget,
    );

    // 3. Optional comparison: the historical approach, a paired fixed-N scan
    // of the same grid, which only localises the crossover to the grid
    // resolution.
    let compare_fixed: usize = args.value("--compare-fixed", 0);
    let fixed_scan = (compare_fixed > 0).then(|| {
        let scan = SweepSpec {
            budget: ReplicationBudget::Fixed(compare_fixed),
            paired: true,
            ..seeding.clone()
        };
        let results = scan.run().expect("the seeding grid already expanded");
        println!(
            "# fixed-{compare_fixed} grid scan: {} simulated executions, crossover at grid resolution only:",
            results.total_replications(),
        );
        report_crossover(&results, axis);
        results
    });

    if args.flag("--json") {
        let probes = refinement.probes.len();
        let (fixed_execs, fixed_crossover) = fixed_scan.as_ref().map_or((0, None), |r| {
            (r.total_replications(), r.crossover(axis))
        });
        println!(
            "{{\"bench\": \"crossover_refinement\", \"target\": \"{target}\", \
             \"axis\": \"{}\", \"failure_model\": \"{}\", \"budget\": \"{}\", \
             \"seed\": {}, \"grid_bracket\": [{below}, {above}], \
             \"crossover\": {}, \"bracket\": [{}, {}], \
             \"model_crossover\": {}, \
             \"rel_tolerance\": {}, \"achieved_tolerance\": {:.6}, \
             \"converged\": {}, \"probes\": {probes}, \
             \"refiner_executions\": {}, \"fixed_scan_replications\": {compare_fixed}, \
             \"fixed_scan_executions\": {fixed_execs}, \"fixed_scan_crossover\": {}}}",
            axis.label(),
            spec.failure,
            spec.budget,
            spec.seed,
            refinement.crossover,
            refinement.bracket.0,
            refinement.bracket.1,
            refinement
                .model_crossover
                .map_or("null".to_string(), |x| format!("{x}")),
            refinement.rel_tolerance,
            refinement.achieved_tolerance,
            refinement.converged,
            refinement.total_replications(),
            fixed_crossover.map_or("null".to_string(), |x| format!("{x}")),
        );
    }
}
