//! Regenerates Figure 10: weak scaling with a variable α and a *constant*
//! checkpoint/recovery cost (buddy / NVRAM storage hypothesis).  With
//! `--break-even` it also sweeps the constant checkpoint cost downwards to
//! find the value at which PurePeriodicCkpt matches the composite protocol at
//! 10⁶ nodes (the paper's "C = R = 6 s" remark).
//!
//! ```text
//! cargo run -p ft-bench --release --bin fig10 -- [--points-per-decade 3] [--csv] [--break-even]
//! ```

use ft_bench::scaling_report::{crossover, report};
use ft_bench::{Args, Table};
use ft_composite::scaling::WeakScalingScenario;

fn break_even(args: &Args) {
    let mut table = Table::new(&["ckpt_seconds", "waste_pure_1M", "waste_abft_1M"]);
    let mut found: Option<f64> = None;
    for ckpt in [60.0, 30.0, 20.0, 15.0, 10.0, 8.0, 6.0, 4.0, 2.0, 1.0] {
        let scenario = WeakScalingScenario {
            checkpoint_at_reference: ckpt,
            ..WeakScalingScenario::figure10()
        };
        let point = scenario.point(1_000_000.0).expect("valid node count");
        let pure = point.pure.waste.value();
        let composite = point.composite.waste.value();
        if pure <= composite && found.is_none() {
            found = Some(ckpt);
        }
        table.push_row(vec![
            format!("{ckpt:.0}"),
            format!("{pure:.4}"),
            format!("{composite:.4}"),
        ]);
    }
    println!("\n# Break-even sweep: constant checkpoint cost needed for PurePeriodicCkpt to match the composite protocol at 1M nodes");
    if args.flag("--csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
    match found {
        Some(c) => println!("# PurePeriodicCkpt matches the composite protocol at 1M nodes once C = R <= {c:.0} s"),
        None => println!("# PurePeriodicCkpt never matches the composite protocol in the swept range"),
    }
}

fn main() {
    let args = Args::capture();
    let (points, text) = report(
        "Figure 10 — weak scaling, variable alpha, constant checkpoint cost (perfectly scalable checkpoint storage)",
        &WeakScalingScenario::figure10(),
        &args,
    );
    print!("{text}");
    match crossover(&points) {
        Some(nodes) => println!("# composite overtakes PurePeriodicCkpt at ~{nodes:.0} nodes"),
        None => println!("# composite never overtakes PurePeriodicCkpt on this axis"),
    }
    if args.flag("--break-even") {
        break_even(&args);
    }
}
