//! Regenerates Figure 10: weak scaling with a variable α and a *constant*
//! checkpoint/recovery cost (buddy / NVRAM storage hypothesis).  With
//! `--break-even` it adds a C = R axis at 10⁶ nodes to find the value at
//! which PurePeriodicCkpt matches the composite protocol (the paper's
//! "C = R = 6 s" remark).
//!
//! ```text
//! cargo run -p ft-bench --release --bin fig10 -- \
//!     [--points-per-decade 3] [--break-even] [--format table|csv|json] \
//!     [--replications N | --precision 0.02 | --delta-precision 0.05] \
//!     [--paired] [--antithetic] [--model-gap] [--failure-model weibull --weibull-shape 0.7]
//! ```

use ft_bench::{report_crossover, run_cli, Args, Axis, Parameter, SweepSpec};
use ft_composite::scaling::WeakScalingScenario;
use ft_sim::Protocol;

fn main() {
    let args = Args::capture();
    let spec = SweepSpec::scaling(
        "Figure 10 — weak scaling, variable alpha, constant checkpoint cost (perfectly scalable checkpoint storage)",
        WeakScalingScenario::figure10(),
    )
    .axis(Axis::decades(
        Parameter::Nodes,
        3,
        6,
        args.value("--points-per-decade", 1),
    ));
    let results = run_cli(spec, &args);
    report_crossover(&results, Parameter::Nodes);

    if args.flag("--break-even") {
        let spec = SweepSpec::scaling(
            "Break-even sweep: constant checkpoint cost needed for PurePeriodicCkpt to match the composite protocol at 1M nodes",
            WeakScalingScenario::figure10(),
        )
        .axis(Axis::values(
            Parameter::Checkpoint,
            vec![60.0, 30.0, 20.0, 15.0, 10.0, 8.0, 6.0, 4.0, 2.0, 1.0],
        ))
        .axis(Axis::values(Parameter::Nodes, vec![1_000_000.0]))
        .protocols(vec![Protocol::PurePeriodicCkpt, Protocol::AbftPeriodicCkpt]);
        let results = run_cli(spec, &args);
        let found = (0..results.grid_points()).find(|&i| {
            results.waste_at(i, Protocol::PurePeriodicCkpt)
                <= results.waste_at(i, Protocol::AbftPeriodicCkpt)
        });
        match found.and_then(|i| results.coordinate(i, Parameter::Checkpoint)) {
            Some(c) => println!(
                "# PurePeriodicCkpt matches the composite protocol at 1M nodes once C = R <= {c:.0} s"
            ),
            None => println!(
                "# PurePeriodicCkpt never matches the composite protocol in the swept range"
            ),
        }
    }
}
