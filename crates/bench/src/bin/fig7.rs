//! Regenerates Figure 7 of the paper: the waste of PurePeriodicCkpt,
//! BiPeriodicCkpt and ABFT&PeriodicCkpt as a function of the platform MTBF
//! (60–240 min) and of the LIBRARY-phase fraction α (0–1), as predicted by
//! the model (Figures 7a/7c/7e) and as measured by the simulator, plus the
//! difference between the two (Figures 7b/7d/7f).
//!
//! ```text
//! cargo run -p ft-bench --release --bin fig7 -- \
//!     [--protocol pure|bi|abft|all] [--mtbf-points 7] [--alpha-points 6] \
//!     [--replications 200] [--seed 42] [--csv]
//! ```

use ft_bench::{figure7_base, Args, Table};
use ft_sim::validate::{figure7_alpha_axis, figure7_mtbf_axis, validation_grid};
use ft_sim::Protocol;

fn protocols_from(arg: &str) -> Vec<Protocol> {
    match arg {
        "pure" => vec![Protocol::PurePeriodicCkpt],
        "bi" => vec![Protocol::BiPeriodicCkpt],
        "abft" => vec![Protocol::AbftPeriodicCkpt],
        _ => Protocol::all().to_vec(),
    }
}

fn main() {
    let args = Args::capture();
    let protocols = protocols_from(&args.string("--protocol", "all"));
    let mtbf_points: usize = args.value("--mtbf-points", 7);
    let alpha_points: usize = args.value("--alpha-points", 6);
    let replications: usize = args.value("--replications", 200);
    let seed: u64 = args.value("--seed", 42);
    let csv = args.flag("--csv");

    let base = figure7_base();
    let mtbfs = figure7_mtbf_axis(mtbf_points);
    let alphas = figure7_alpha_axis(alpha_points);

    println!(
        "# Figure 7 — T0 = 1 week, C = R = 10 min, D = 1 min, rho = 0.8, phi = 1.03, Recons = 2 s"
    );
    println!(
        "# grid: {} MTBF points x {} alpha points, {} replications per cell",
        mtbfs.len(),
        alphas.len(),
        replications
    );

    for protocol in protocols {
        println!("\n## {} (model = Fig 7a/c/e, diff = Fig 7b/d/f)", protocol.name());
        let cells = validation_grid(protocol, &base, &mtbfs, &alphas, replications, seed);
        let mut table = Table::new(&[
            "mtbf_min",
            "alpha",
            "model_waste",
            "sim_waste",
            "diff",
            "ci95",
            "mean_failures",
        ]);
        for cell in &cells {
            table.push_row(vec![
                format!("{:.0}", cell.mtbf / 60.0),
                format!("{:.2}", cell.alpha),
                format!("{:.4}", cell.model_waste),
                format!("{:.4}", cell.simulated_waste),
                format!("{:+.4}", cell.difference()),
                format!("{:.4}", cell.ci95),
                format!("{:.1}", cell.mean_failures),
            ]);
        }
        if csv {
            print!("{}", table.to_csv());
        } else {
            print!("{}", table.render());
        }
        let worst = cells
            .iter()
            .map(|c| c.difference().abs())
            .fold(0.0_f64, f64::max);
        println!("# worst |sim - model| for {}: {:.4}", protocol.name(), worst);
    }
}
