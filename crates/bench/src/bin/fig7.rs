//! Regenerates Figure 7 of the paper: the waste of the three protocols as a
//! function of the platform MTBF (60–240 min) and of the LIBRARY-phase
//! fraction α (0–1), as predicted by the model (Figures 7a/7c/7e) and as
//! measured by the simulator, plus the difference between the two
//! (Figures 7b/7d/7f).
//!
//! ```text
//! cargo run -p ft-bench --release --bin fig7 -- \
//!     [--protocol pure|bi|abft|all] [--mtbf-points 7] [--alpha-points 6] \
//!     [--replications 200 | --precision 0.02 [--min-replications 100] [--max-replications 10000]] \
//!     [--paired] [--antithetic] [--model-gap] [--failure-model weibull --weibull-shape 0.7] \
//!     [--seed 42] [--threads N] [--format table|csv|json]
//! ```
//!
//! `--precision` switches to adaptive sequential stopping (each point stops
//! replicating once the waste CI95 meets the target); `--paired` replays the
//! same failure traces to all protocols and adds paired-delta columns.

use ft_bench::{figure7_base, run_cli, Args, Axis, Parameter, SweepSpec};
use ft_platform::units::minutes;
use ft_sim::Protocol;

fn main() {
    let args = Args::capture();
    let protocols = match Protocol::parse(&args.string("--protocol", "all")) {
        Some(p) => vec![p],
        None => Protocol::all().to_vec(),
    };
    let spec = SweepSpec::new(
        "Figure 7 — T0 = 1 week, C = R = 10 min, D = 1 min, rho = 0.8, phi = 1.03, Recons = 2 s",
        figure7_base(),
    )
    .axis(Axis::linspace(
        Parameter::Mtbf,
        minutes(60.0),
        minutes(240.0),
        args.value("--mtbf-points", 7),
    ))
    .axis(Axis::linspace(
        Parameter::Alpha,
        0.0,
        1.0,
        args.value("--alpha-points", 6),
    ))
    .protocols(protocols)
    .replications(200);
    let results = run_cli(spec, &args);
    if let Some(worst) = results.worst_model_sim_gap() {
        println!("# worst |sim - model| across the grid: {worst:.4}");
    }
}
