//! Regenerates Figure 8: weak scaling with a fixed α = 0.8 (both phases
//! `O(n³)`), bandwidth-bound checkpoint storage.  Prints waste and expected
//! failure counts for the three protocols from 10³ to 10⁶ nodes.
//!
//! ```text
//! cargo run -p ft-bench --release --bin fig8 -- \
//!     [--points-per-decade 3] [--literal] [--format table|csv|json] \
//!     [--replications N | --precision 0.02 | --delta-precision 0.05] \
//!     [--paired] [--antithetic] [--model-gap] [--failure-model weibull --weibull-shape 0.7]
//! ```

use ft_bench::{report_crossover, run_cli, Args, Axis, Parameter, SweepSpec};
use ft_composite::scaling::WeakScalingScenario;

fn main() {
    let args = Args::capture();
    let scenario = if args.flag("--literal") {
        WeakScalingScenario::figure8_literal()
    } else {
        WeakScalingScenario::figure8()
    };
    let spec = SweepSpec::scaling(
        "Figure 8 — weak scaling, fixed alpha = 0.8, checkpoint cost grows with the node count",
        scenario,
    )
    .axis(Axis::decades(
        Parameter::Nodes,
        3,
        6,
        args.value("--points-per-decade", 1),
    ));
    let results = run_cli(spec, &args);
    report_crossover(&results, Parameter::Nodes);
}
