//! Regenerates Figure 9: weak scaling with a variable α (LIBRARY `O(n³)`,
//! GENERAL `O(n²)`), bandwidth-bound checkpoint storage.
//!
//! ```text
//! cargo run -p ft-bench --release --bin fig9 -- \
//!     [--points-per-decade 3] [--format table|csv|json] \
//!     [--replications N | --precision 0.02 | --delta-precision 0.05] \
//!     [--paired] [--antithetic] [--model-gap] [--failure-model weibull --weibull-shape 0.7]
//! ```

use ft_bench::{report_crossover, run_cli, Args, Axis, Parameter, SweepSpec};
use ft_composite::scaling::WeakScalingScenario;

fn main() {
    let args = Args::capture();
    let spec = SweepSpec::scaling(
        "Figure 9 — weak scaling, variable alpha (LIBRARY O(n^3), GENERAL O(n^2)), checkpoint cost grows with the node count",
        WeakScalingScenario::figure9(),
    )
    .axis(Axis::decades(
        Parameter::Nodes,
        3,
        6,
        args.value("--points-per-decade", 1),
    ));
    let results = run_cli(spec, &args);
    report_crossover(&results, Parameter::Nodes);
}
