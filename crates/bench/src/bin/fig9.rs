//! Regenerates Figure 9: weak scaling with a variable α (LIBRARY `O(n³)`,
//! GENERAL `O(n²)`), bandwidth-bound checkpoint storage.
//!
//! ```text
//! cargo run -p ft-bench --release --bin fig9 -- [--points-per-decade 3] [--csv]
//! ```

use ft_bench::scaling_report::{crossover, report};
use ft_bench::Args;
use ft_composite::scaling::WeakScalingScenario;

fn main() {
    let args = Args::capture();
    let (points, text) = report(
        "Figure 9 — weak scaling, variable alpha (LIBRARY O(n^3), GENERAL O(n^2)), checkpoint cost grows with the node count",
        &WeakScalingScenario::figure9(),
        &args,
    );
    print!("{text}");
    match crossover(&points) {
        Some(nodes) => println!("# composite overtakes PurePeriodicCkpt at ~{nodes:.0} nodes"),
        None => println!("# composite never overtakes PurePeriodicCkpt on this axis"),
    }
}
