//! Generic one-dimensional sweep driver: varies one model parameter around
//! the paper's headline scenario and prints model and simulated waste for
//! the three protocols.  Useful for exploring the sensitivity of the
//! comparison to parameters the figures keep fixed (ρ, φ, C, D, Recons).
//!
//! ```text
//! cargo run -p ft-bench --release --bin sweep -- \
//!     --parameter rho|phi|checkpoint|downtime|recons|alpha|mtbf|weibull_shape \
//!     [--from 0.1] [--to 1.0] [--steps 10] \
//!     [--replications 100 | --precision 0.02 | --delta-precision 0.05] \
//!     [--paired] [--antithetic] [--model-gap] [--failure-model weibull --weibull-shape 0.7] \
//!     [--scenario trace[:<path>]|cascade|diurnal|wearout] \
//!     [--epochs 1] [--threads N] [--format table|csv|json]
//! ```
//!
//! `--precision` enables adaptive sequential stopping, `--paired` pairs the
//! protocols on common failure traces (tight CIs on waste differences),
//! `--delta-precision` stops each point on the paired waste *differences*
//! instead.  `--parameter weibull_shape` sweeps the failure clock's Weibull
//! shape (the robustness-study axis); `--failure-model weibull` switches
//! the clock for any other sweep.  `--scenario` replaces the simulation
//! clock with a recorded-trace playback or a synthesized non-stationary
//! source (cascade bursts, diurnal modulation, wear-out) while the model
//! arm keeps the matched-MTBF i.i.d. prediction — see docs/TRACES.md.

use ft_bench::{figure7_base, run_cli, Args, Axis, Parameter, SweepSpec};

fn main() {
    let args = Args::capture();
    let name = args.string("--parameter", "rho");
    let parameter = Parameter::parse(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown parameter `{name}`; use rho|phi|checkpoint|downtime|recons|alpha|mtbf|weibull_shape"
        );
        std::process::exit(2);
    });
    let (default_from, default_to) = parameter.default_range();
    let spec = SweepSpec::new(
        format!("Sweep of `{name}` around the paper's headline scenario"),
        figure7_base(),
    )
    .axis(Axis::linspace(
        parameter,
        args.value("--from", default_from),
        args.value("--to", default_to),
        args.value("--steps", 10),
    ))
    .replications(100);
    run_cli(spec, &args);
}
