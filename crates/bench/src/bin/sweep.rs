//! Generic one-dimensional sweep driver: varies one model parameter around
//! the paper's headline scenario and prints model and simulated waste for the
//! three protocols.  Useful for exploring the sensitivity of the comparison
//! to parameters the figures keep fixed (ρ, φ, C, D, Recons).
//!
//! ```text
//! cargo run -p ft-bench --release --bin sweep -- \
//!     --parameter rho|phi|checkpoint|downtime|recons|alpha|mtbf \
//!     [--from 0.1] [--to 1.0] [--steps 10] [--replications 100] [--csv]
//! ```

use ft_bench::{figure7_base, Args, Table};
use ft_composite::params::ModelParams;
use ft_platform::units::minutes;
use ft_sim::replicate::replicate_all;
use ft_sim::validate::model_waste;
use ft_sim::Protocol;

fn with_parameter(base: &ModelParams, name: &str, value: f64) -> ModelParams {
    let mut builder = ModelParams::builder()
        .epoch_duration(base.epoch_duration)
        .alpha(base.alpha)
        .checkpoint_cost(base.checkpoint_cost)
        .recovery_cost(base.recovery_cost)
        .downtime(base.downtime)
        .rho(base.rho)
        .phi(base.phi)
        .abft_reconstruction(base.abft_reconstruction)
        .platform_mtbf(base.platform_mtbf);
    builder = match name {
        "rho" => builder.rho(value),
        "phi" => builder.phi(value),
        "checkpoint" => builder.checkpoint_cost(value).recovery_cost(value),
        "downtime" => builder.downtime(value),
        "recons" => builder.abft_reconstruction(value),
        "alpha" => builder.alpha(value),
        "mtbf" => builder.platform_mtbf(value),
        other => {
            eprintln!("unknown parameter `{other}`; use rho|phi|checkpoint|downtime|recons|alpha|mtbf");
            std::process::exit(2);
        }
    };
    builder.build().unwrap_or_else(|e| {
        eprintln!("invalid value {value} for {name}: {e}");
        std::process::exit(2);
    })
}

fn default_range(name: &str) -> (f64, f64) {
    match name {
        "rho" => (0.1, 1.0),
        "phi" => (1.0, 1.3),
        "checkpoint" => (minutes(1.0), minutes(30.0)),
        "downtime" => (0.0, minutes(10.0)),
        "recons" => (0.0, 60.0),
        "alpha" => (0.0, 1.0),
        "mtbf" => (minutes(60.0), minutes(240.0)),
        _ => (0.0, 1.0),
    }
}

fn main() {
    let args = Args::capture();
    let parameter = args.string("--parameter", "rho");
    let (default_from, default_to) = default_range(&parameter);
    let from: f64 = args.value("--from", default_from);
    let to: f64 = args.value("--to", default_to);
    let steps: usize = args.value("--steps", 10).max(2);
    let replications: usize = args.value("--replications", 100);
    let seed: u64 = args.value("--seed", 42);

    let base = figure7_base();
    println!("# Sweep of `{parameter}` from {from} to {to} ({steps} steps), {replications} replications per point");
    let mut table = Table::new(&[
        parameter.as_str(),
        "model_pure",
        "model_bi",
        "model_abft",
        "sim_pure",
        "sim_bi",
        "sim_abft",
    ]);
    for i in 0..steps {
        let value = from + (to - from) * i as f64 / (steps - 1) as f64;
        let params = with_parameter(&base, &parameter, value);
        let sims = replicate_all(&params, replications, seed.wrapping_add(i as u64));
        table.push_row(vec![
            format!("{value:.4}"),
            format!("{:.4}", model_waste(Protocol::PurePeriodicCkpt, &params)),
            format!("{:.4}", model_waste(Protocol::BiPeriodicCkpt, &params)),
            format!("{:.4}", model_waste(Protocol::AbftPeriodicCkpt, &params)),
            format!("{:.4}", sims[0].mean_waste),
            format!("{:.4}", sims[1].mean_waste),
            format!("{:.4}", sims[2].mean_waste),
        ]);
    }
    if args.flag("--csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.render());
    }
}
