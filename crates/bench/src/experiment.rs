//! Declarative parameter sweeps — the unified experiment subsystem.
//!
//! The paper's evaluation is a large grid of `(protocol × α × ρ × µ × N)`
//! points, each averaged over many Monte-Carlo replications.  Instead of
//! hand-rolling nested loops in every figure binary, a [`SweepSpec`]
//! *declares* the experiment — a base parameter point (or a weak-scaling
//! scenario), a list of [`Axis`] values to sweep, the protocols, the
//! replication budget — and [`SweepSpec::run`] executes the **whole expanded
//! grid in parallel** (every task is independent), not just the replications
//! inside one point:
//!
//! * expansion is a cartesian product of the axes, resolved to validated
//!   [`ModelParams`] per point (or to a scenario evaluation when a
//!   [`Parameter::Nodes`] axis is present);
//! * each task derives its seed deterministically from the master seed and
//!   the task identity, so results are independent of execution order and
//!   thread count;
//! * the simulation arm runs under a [`ReplicationBudget`]: a fixed count
//!   (the historical behaviour) or **adaptive sequential stopping** that
//!   ends a point's replications as soon as the waste CI95 meets the
//!   requested relative precision — most points need a fraction of the
//!   fixed budget;
//! * with [`SweepSpec::paired`], all protocols of a point replay the
//!   **same** recorded failure traces (common random numbers) and the
//!   output gains per-trace waste-difference columns whose confidence
//!   intervals are far tighter than unpaired comparisons;
//! * outcomes stream through the single Welford implementation
//!   (`ft_sim::stats`) and render through the shared writer in
//!   [`crate::output`] as an aligned table, CSV or JSON.
//!
//! The figure binaries (`fig7`–`fig10`, `sweep`) are thin `SweepSpec`
//! definitions over this module.

use std::time::Instant;

use ft_composite::model::analytic::{AnyWasteModel, WasteModel};
use ft_composite::params::ModelParams;
use ft_composite::scaling::{paper_node_counts, WeakScalingScenario};
use ft_composite::scenario::ApplicationProfile;
use ft_platform::failure::FailureSpec;
use ft_platform::rng::{SeedStream, SplitMix64};
use ft_platform::scenario::ScenarioSpec;
use ft_platform::special::normal_cdf;
use ft_sim::batch::{
    accumulate_paired_programs_batch, accumulate_profile_program_batch, BatchProgram,
    BatchProgramCache, DEFAULT_BATCH_LANES,
};
use ft_sim::replicate::{
    accumulate_paired_engine, accumulate_profile_engine, PairedAccumulator, ReplicationBudget,
    ReplicationPlan, SimStats,
};
use ft_sim::validate::model_waste_with;
use ft_sim::{Engine, Protocol};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::output::{OutputFormat, Table};
use crate::Args;

/// A sweepable quantity: one dimension of the experiment grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parameter {
    /// LIBRARY-phase fraction `α`.
    Alpha,
    /// Platform MTBF `µ` (seconds).
    Mtbf,
    /// LIBRARY-dataset memory fraction `ρ`.
    Rho,
    /// ABFT slowdown factor `φ`.
    Phi,
    /// Checkpoint *and* recovery cost `C = R` (seconds).
    Checkpoint,
    /// Downtime `D` (seconds).
    Downtime,
    /// ABFT reconstruction time (seconds).
    Reconstruction,
    /// Node count `N` of a weak-scaling scenario (requires
    /// [`SweepSpec::scaling`]).
    Nodes,
    /// Weibull shape `k` of the failure clock (`k = 1` is exponential): the
    /// robustness-study axis.  Both arms react: the simulation clock draws
    /// shape-`k` inter-arrivals and the model arm switches to the
    /// Weibull-corrected closed form
    /// ([`ft_composite::model::analytic::WeibullCorrected`]), so the output
    /// reports a genuine model−simulation gap per shape.
    WeibullShape,
}

impl Parameter {
    /// Column header / CLI spelling of the parameter.
    pub fn label(&self) -> &'static str {
        match self {
            Parameter::Alpha => "alpha",
            Parameter::Mtbf => "mtbf",
            Parameter::Rho => "rho",
            Parameter::Phi => "phi",
            Parameter::Checkpoint => "checkpoint",
            Parameter::Downtime => "downtime",
            Parameter::Reconstruction => "recons",
            Parameter::Nodes => "nodes",
            Parameter::WeibullShape => "weibull_shape",
        }
    }

    /// Parses the CLI spelling used by the `sweep` binary.
    pub fn parse(name: &str) -> Option<Parameter> {
        match name {
            "alpha" => Some(Parameter::Alpha),
            "mtbf" => Some(Parameter::Mtbf),
            "rho" => Some(Parameter::Rho),
            "phi" => Some(Parameter::Phi),
            "checkpoint" => Some(Parameter::Checkpoint),
            "downtime" => Some(Parameter::Downtime),
            "recons" => Some(Parameter::Reconstruction),
            "nodes" => Some(Parameter::Nodes),
            "weibull_shape" | "weibull-shape" | "shape" => Some(Parameter::WeibullShape),
            _ => None,
        }
    }

    /// A sensible sweep range around the paper's headline scenario.
    pub fn default_range(&self) -> (f64, f64) {
        use ft_platform::units::minutes;
        match self {
            Parameter::Rho => (0.1, 1.0),
            Parameter::Phi => (1.0, 1.3),
            Parameter::Checkpoint => (minutes(1.0), minutes(30.0)),
            Parameter::Downtime => (0.0, minutes(10.0)),
            Parameter::Reconstruction => (0.0, 60.0),
            Parameter::Alpha => (0.0, 1.0),
            Parameter::Mtbf => (minutes(60.0), minutes(240.0)),
            Parameter::Nodes => (1e3, 1e6),
            // Infant mortality (0.5) through exponential (1.0) to wear-out.
            Parameter::WeibullShape => (0.5, 1.5),
        }
    }
}

/// One dimension of the sweep grid: a parameter and its values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    /// The swept parameter.
    pub parameter: Parameter,
    /// The values it takes, in grid order.
    pub values: Vec<f64>,
}

impl Axis {
    /// An axis over explicit values.
    pub fn values(parameter: Parameter, values: Vec<f64>) -> Self {
        Self { parameter, values }
    }

    /// A linearly spaced axis with `steps ≥ 2` points from `from` to `to`
    /// inclusive.
    pub fn linspace(parameter: Parameter, from: f64, to: f64, steps: usize) -> Self {
        let steps = steps.max(2);
        let values = (0..steps)
            .map(|i| from + (to - from) * i as f64 / (steps - 1) as f64)
            .collect();
        Self { parameter, values }
    }

    /// A logarithmic node axis over `10^lo .. 10^hi`; with one point per
    /// decade this is exactly the paper's `10³, 10⁴, 10⁵, 10⁶` x-axis.
    pub fn decades(parameter: Parameter, lo: u32, hi: u32, per_decade: usize) -> Self {
        if per_decade <= 1 && (lo, hi) == (3, 6) {
            return Self::values(parameter, paper_node_counts());
        }
        let per_decade = per_decade.max(1);
        let steps = (hi.saturating_sub(lo)) as usize * per_decade;
        let values = (0..=steps)
            .map(|i| 10f64.powf(lo as f64 + i as f64 / per_decade as f64))
            .collect();
        Self { parameter, values }
    }
}

/// An error raised while expanding a sweep grid (invalid parameter value,
/// missing scaling scenario for a `Nodes` axis, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError(String);

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep expansion failed: {}", self.0)
    }
}

impl std::error::Error for SweepError {}

/// A declarative sweep: everything needed to expand and execute one
/// experiment grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Human-readable experiment title (printed as the output header).
    pub name: String,
    /// Base parameter point the axes perturb.
    pub base: ModelParams,
    /// Weak-scaling rules, required by a [`Parameter::Nodes`] axis; other
    /// axes then perturb the scenario's reference values instead of `base`.
    pub scaling: Option<WeakScalingScenario>,
    /// The grid dimensions (empty = evaluate `base` alone).
    pub axes: Vec<Axis>,
    /// Protocols to evaluate at every point.  In paired mode the first
    /// protocol is the baseline of every waste difference.
    pub protocols: Vec<Protocol>,
    /// Monte-Carlo replication budget per task (`Fixed(0)` = model
    /// predictions only).
    pub budget: ReplicationBudget,
    /// When `true`, all protocols of a point replay the same recorded
    /// failure traces (common random numbers) and per-trace waste
    /// differences against the first protocol are reported.
    pub paired: bool,
    /// Failure clock of the experiment (exponential by default; Weibull for
    /// the robustness studies).  A [`Parameter::WeibullShape`] axis
    /// overrides this per point.  **Both arms** follow the spec: the
    /// simulation clock draws from it and the model arm uses the matching
    /// analytic waste model ([`AnyWasteModel::from_spec`]), so model and
    /// simulation always share one failure description.
    pub failure: FailureSpec,
    /// Failure *scenario* of the simulation arm (CLI: `--scenario
    /// trace[:<path>]|cascade|diurnal|wearout`; [`ScenarioSpec::Iid`] by
    /// default).  A non-i.i.d. scenario replaces the simulation clock with a
    /// trace playback or a synthesized non-stationary source calibrated to
    /// each point's platform MTBF, while the **model arm keeps the
    /// matched-MTBF i.i.d. prediction** — the `diff`/gap columns then
    /// measure exactly what breaking the i.i.d. assumption does.  Requires
    /// the default exponential `failure` spec (the scenario owns the clock).
    pub failure_scenario: ScenarioSpec,
    /// Run every replication seed together with its antithetic partner
    /// (`1 − u` uniforms) and accumulate pair means — variance reduction on
    /// smooth waste responses (CLI: `--antithetic`).  A budget of `n` then
    /// spends `2n` simulated executions per task.
    pub antithetic: bool,
    /// Emphasise model-versus-simulation gap reporting: the output gains the
    /// per-point model label, relative gap and gap-significance columns, and
    /// [`SweepResults`] carries the grid-level gap summary (CLI:
    /// `--model-gap`).
    pub model_gap: bool,
    /// Number of epochs of the simulated application profile.  Ignored in
    /// scenario mode, where the simulation arm unfolds the scenario's own
    /// epoch count to stay commensurable with the model arm.
    pub epochs: usize,
    /// Master seed; per-task seeds are derived deterministically from it.
    pub seed: u64,
    /// Lane width of the batched SoA simulation engine the sweep fast path
    /// dispatches to (`0` or `1` = the scalar engine).  Purely a throughput
    /// knob: the batch engine is bit-exact with the scalar one (proven by
    /// the differential oracle harness), so every reported figure is
    /// identical at any width (CLI: `--batch-lanes`).
    pub batch_lanes: usize,
    /// Intra-point thread count of the batch replication drivers: each
    /// point's replication blocks are split across this many OS threads with
    /// deterministic seed offsets and an order-preserving merge, so results
    /// are bit-identical at every value (CLI: `--point-threads`; `0` = the
    /// host's available parallelism, `1` = the serial drivers).  Only
    /// meaningful with `batch_lanes > 1`; composes with the whole-grid
    /// rayon parallelism of [`SweepSpec::run`].
    pub point_threads: usize,
}

impl SweepSpec {
    /// Starts a sweep around a base parameter point.
    pub fn new(name: impl Into<String>, base: ModelParams) -> Self {
        Self {
            name: name.into(),
            base,
            scaling: None,
            axes: Vec::new(),
            protocols: Protocol::all().to_vec(),
            budget: ReplicationBudget::Fixed(0),
            paired: false,
            failure: FailureSpec::Exponential,
            failure_scenario: ScenarioSpec::Iid,
            antithetic: false,
            model_gap: false,
            epochs: 1,
            seed: 42,
            batch_lanes: DEFAULT_BATCH_LANES,
            point_threads: 1,
        }
    }

    /// Starts a sweep over a weak-scaling scenario (Figures 8–10); the base
    /// point is the scenario evaluated at its reference node count.
    pub fn scaling(name: impl Into<String>, scenario: WeakScalingScenario) -> Self {
        let base = scenario
            .params_at(scenario.reference_nodes)
            .expect("scenario reference point must be valid");
        Self {
            scaling: Some(scenario),
            ..Self::new(name, base)
        }
    }

    /// Appends a grid axis (the last axis varies fastest).
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Restricts the evaluated protocols.
    pub fn protocols(mut self, protocols: Vec<Protocol>) -> Self {
        self.protocols = protocols;
        self
    }

    /// Sets a fixed Monte-Carlo replication count (0 = model only).
    pub fn replications(mut self, replications: usize) -> Self {
        self.budget = ReplicationBudget::Fixed(replications);
        self
    }

    /// Sets an arbitrary replication budget (fixed or adaptive).
    pub fn budget(mut self, budget: ReplicationBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Enables (or disables) common-random-numbers pairing of the
    /// protocols at every point.
    pub fn paired(mut self, paired: bool) -> Self {
        self.paired = paired;
        self
    }

    /// Sets the failure clock of both arms (simulation distribution and
    /// matching analytic model).
    pub fn failure_model(mut self, failure: FailureSpec) -> Self {
        self.failure = failure;
        self
    }

    /// Sets the failure scenario of the simulation arm (see
    /// [`SweepSpec::failure_scenario`]).
    pub fn scenario(mut self, scenario: ScenarioSpec) -> Self {
        self.failure_scenario = scenario;
        self
    }

    /// Enables (or disables) antithetic-variate pairing of the replication
    /// seeds.
    pub fn antithetic(mut self, antithetic: bool) -> Self {
        self.antithetic = antithetic;
        self
    }

    /// Enables (or disables) the model−simulation gap columns and summary.
    pub fn model_gap(mut self, model_gap: bool) -> Self {
        self.model_gap = model_gap;
        self
    }

    /// Default simulation budget of gap reporting: a gap needs both arms,
    /// so model-only specs asked for `--model-gap` fall back to this.
    pub const DEFAULT_GAP_REPLICATIONS: usize = 100;

    /// Ensures the spec runs a simulation arm, falling back to
    /// [`SweepSpec::DEFAULT_GAP_REPLICATIONS`] fixed replications — the
    /// shared `--model-gap` budget rule of `run_cli` and the `crossover`
    /// binary.
    pub fn with_simulation_arm(mut self) -> Self {
        if !self.budget.runs_simulation() {
            self.budget = ReplicationBudget::Fixed(Self::DEFAULT_GAP_REPLICATIONS);
        }
        self
    }

    /// The replication plan of one task: the budget plus the
    /// variance-reduction knobs.
    pub fn plan(&self) -> ReplicationPlan {
        ReplicationPlan::new(self.budget).antithetic(self.antithetic)
    }

    /// Sets the number of epochs of the simulated profile.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the lane width of the batched simulation engine (`0` or `1` =
    /// scalar engine).  Results are bit-identical at any width.
    pub fn batch_lanes(mut self, lanes: usize) -> Self {
        self.batch_lanes = lanes;
        self
    }

    /// Sets the intra-point thread count of the batch replication drivers
    /// (`0` = host parallelism, `1` = serial).  Results are bit-identical at
    /// any value.
    pub fn point_threads(mut self, threads: usize) -> Self {
        self.point_threads = threads;
        self
    }

    /// Expands the axes into the full point grid (cartesian product, last
    /// axis fastest).  The expansion is index arithmetic over the axis
    /// lengths — no intermediate combination vectors are cloned.
    pub fn expand(&self) -> Result<Vec<GridPoint>, SweepError> {
        self.failure
            .validate()
            .map_err(|e| SweepError(format!("invalid failure model: {e}")))?;
        if !self.failure_scenario.is_iid() {
            // The scenario *is* the simulation clock: combining it with a
            // non-exponential i.i.d. spec (or a shape axis) would silently
            // drop one of the two clocks, so that is rejected outright.
            if self.failure != FailureSpec::Exponential {
                return Err(SweepError(format!(
                    "--scenario {} replaces the failure clock and cannot be \
                     combined with a non-exponential --failure-model",
                    self.failure_scenario
                )));
            }
            if self.axes.iter().any(|a| a.parameter == Parameter::WeibullShape) {
                return Err(SweepError(format!(
                    "--scenario {} replaces the failure clock and cannot be \
                     combined with a Weibull-shape axis",
                    self.failure_scenario
                )));
            }
            // Resolve once at the base point so the execution path can rely
            // on scenario resolution (trace files load and parse, synthesized
            // parameters are valid).  Per-point MTBF/horizon variations only
            // rescale positive quantities and cannot introduce new failures.
            self.failure_scenario
                .resolve(
                    self.base.platform_mtbf,
                    self.scenario_horizon(&self.base),
                )
                .map_err(|e| SweepError(format!("invalid scenario: {e}")))?;
        }
        for axis in &self.axes {
            if axis.values.is_empty() {
                return Err(SweepError(format!(
                    "axis `{}` has no values",
                    axis.parameter.label()
                )));
            }
            if axis.parameter == Parameter::WeibullShape
                && !axis.values.iter().all(|&v| v.is_finite() && v > 0.0)
            {
                return Err(SweepError("Weibull shapes must be positive and finite".into()));
            }
        }
        let total: usize = self.axes.iter().map(|a| a.values.len()).product();
        (0..total)
            .map(|index| {
                // Decompose the grid index with the last axis fastest.
                let mut coordinates = Vec::with_capacity(self.axes.len() + 1);
                let mut stride = total;
                let mut rem = index;
                for axis in &self.axes {
                    stride /= axis.values.len();
                    let i = rem / stride;
                    rem %= stride;
                    coordinates.push((axis.parameter, axis.values[i]));
                }
                self.resolve(index, coordinates)
            })
            .collect()
    }

    /// Resolves one coordinate combination into a concrete grid point.
    fn resolve(
        &self,
        index: usize,
        mut coordinates: Vec<(Parameter, f64)>,
    ) -> Result<GridPoint, SweepError> {
        let nodes = coordinates
            .iter()
            .find(|(p, _)| *p == Parameter::Nodes)
            .map(|&(_, v)| v);
        if let Some(nodes) = nodes {
            // Scenario mode: non-Nodes coordinates perturb the scenario's
            // reference values, then the scenario is evaluated at `nodes`.
            let mut scenario = self.scaling.ok_or_else(|| {
                SweepError("a `nodes` axis requires a weak-scaling scenario".into())
            })?;
            for &(parameter, value) in &coordinates {
                match parameter {
                    // Nodes is the evaluation coordinate; the Weibull shape
                    // only retargets the simulation clock, never the
                    // scenario's parameter rules.
                    Parameter::Nodes | Parameter::WeibullShape => {}
                    Parameter::Alpha => scenario.alpha_at_reference = value,
                    Parameter::Mtbf => scenario.mtbf_at_reference = value,
                    Parameter::Rho => scenario.rho = value,
                    Parameter::Phi => scenario.phi = value,
                    Parameter::Checkpoint => scenario.checkpoint_at_reference = value,
                    Parameter::Downtime => scenario.downtime = value,
                    Parameter::Reconstruction => scenario.abft_reconstruction = value,
                }
            }
            // At extreme scales the raw parameters can leave the model's
            // validity domain (MTBF below D + R); the scenario evaluation
            // then reports saturation and the simulation arm is skipped.
            let params = scenario.params_at(nodes).ok();
            // The α realised at this scale is a derived coordinate worth
            // reporting (Figures 9 and 10 annotate it on the x-axis).
            if !coordinates.iter().any(|(p, _)| *p == Parameter::Alpha) {
                coordinates.push((Parameter::Alpha, scenario.alpha(nodes)));
            }
            Ok(GridPoint {
                index,
                coordinates,
                params,
                scenario: Some((scenario, nodes)),
            })
        } else {
            let mut params = self.base;
            for &(parameter, value) in &coordinates {
                params = apply(params, parameter, value).map_err(|e| {
                    SweepError(format!(
                        "invalid value {value} for `{}`: {e}",
                        parameter.label()
                    ))
                })?;
            }
            Ok(GridPoint {
                index,
                coordinates,
                params: Some(params),
                scenario: None,
            })
        }
    }

    /// Executes the whole grid in parallel: one task per
    /// `(point, protocol)` — or per point in paired mode — spread over the
    /// available cores.
    pub fn run(&self) -> Result<SweepResults, SweepError> {
        self.execute(true)
    }

    /// Executes the grid sequentially (the baseline the `full_grid_sweep`
    /// bench compares parallel execution against).
    pub fn run_serial(&self) -> Result<SweepResults, SweepError> {
        self.execute(false)
    }

    fn execute(&self, parallel: bool) -> Result<SweepResults, SweepError> {
        let grid = self.expand()?;
        let started = Instant::now();
        // Grid points sharing a (protocol, profile, plan) triple — repeated
        // budgets, shape-only axes — compile their step program once.
        let cache = BatchProgramCache::new();
        let results: Vec<PointResult> = if self.paired {
            // Paired mode: protocols share failure traces, so the task
            // granularity is one whole point.
            let evals: Vec<Vec<PointResult>> = if parallel {
                grid.par_iter()
                    .map(|gp| self.evaluate_paired(gp, &cache))
                    .collect()
            } else {
                grid.iter().map(|gp| self.evaluate_paired(gp, &cache)).collect()
            };
            evals.into_iter().flatten().collect()
        } else {
            let tasks: Vec<(usize, Protocol)> = grid
                .iter()
                .flat_map(|gp| self.protocols.iter().map(move |&p| (gp.index, p)))
                .collect();
            if parallel {
                tasks
                    .par_iter()
                    .map(|&(i, protocol)| self.evaluate(&grid[i], protocol, &cache))
                    .collect()
            } else {
                tasks
                    .iter()
                    .map(|&(i, protocol)| self.evaluate(&grid[i], protocol, &cache))
                    .collect()
            }
        };
        let elapsed_seconds = started.elapsed().as_secs_f64();
        // The coordinate vectors move out of the grid once, instead of being
        // cloned into every (point, protocol) task result.
        let points = grid.into_iter().map(|gp| gp.coordinates).collect();
        Ok(SweepResults {
            name: self.name.clone(),
            budget: self.budget,
            paired: self.paired,
            failure: self.failure,
            failure_scenario: self.failure_scenario.clone(),
            antithetic: self.antithetic,
            model_gap: self.model_gap,
            axes: self.axes.iter().map(|a| a.parameter).collect(),
            points,
            elapsed_seconds,
            results,
        })
    }

    /// The model arm of one `(point, protocol)` task: predicted waste and
    /// expected failure count, under the analytic waste model matching the
    /// point's failure clock (exponential first-order, or Weibull-corrected
    /// when the spec — or a [`Parameter::WeibullShape`] coordinate — selects
    /// a Weibull clock).
    ///
    /// The expected failure count is model-independent: a renewal failure
    /// process of mean `µ` fires at long-run rate `1/µ` regardless of its
    /// shape, so only the (model-predicted) execution time matters.
    fn model_arm(&self, point: &GridPoint, protocol: Protocol) -> (f64, f64) {
        let model = point.waste_model(self.failure);
        match point.scenario {
            Some((scenario, nodes)) => match scenario.point_with(&model, nodes) {
                Ok(sp) => {
                    let pp = match protocol {
                        Protocol::PurePeriodicCkpt => sp.pure,
                        Protocol::BiPeriodicCkpt => sp.bi,
                        Protocol::AbftPeriodicCkpt => sp.composite,
                    };
                    (pp.waste.value(), pp.expected_failures)
                }
                Err(_) => (1.0, f64::INFINITY),
            },
            None => {
                let params = point.params.expect("non-scenario points always resolve");
                let waste = model_waste_with(&model, protocol, &params);
                let expected = if waste < 1.0 {
                    let total_work = params.epoch_duration * self.epochs as f64;
                    total_work / (1.0 - waste) / params.platform_mtbf
                } else {
                    f64::INFINITY
                };
                (waste, expected)
            }
        }
    }

    /// The application profile the simulation arm unfolds at one point: in
    /// scenario mode the scenario's own epoch count (Figures 8-10 amortize
    /// checkpoints over 1000 epochs), otherwise the spec's `epochs` knob.
    fn sim_profile(&self, point: &GridPoint, params: &ModelParams) -> ApplicationProfile {
        match point.scenario {
            Some((scenario, nodes)) => ApplicationProfile::uniform(
                scenario.epochs,
                scenario.general_duration(nodes),
                scenario.library_duration(nodes),
            )
            .expect("scenario durations are non-negative"),
            None => ApplicationProfile::from_params_repeated(params, self.epochs),
        }
    }

    /// The nominal simulated duration at one parameter point — the wear-out
    /// scenario's hazard-calibration window (the average failure rate over
    /// this horizon equals the point's `1/µ`).
    fn scenario_horizon(&self, params: &ModelParams) -> f64 {
        params.epoch_duration * self.epochs.max(1) as f64
    }

    /// The simulation engine of one grid point: the point's parameters under
    /// the spec's failure clock (or the clock a
    /// [`Parameter::WeibullShape`] coordinate selects), unless a non-i.i.d.
    /// [`SweepSpec::failure_scenario`] replaces the clock with a trace
    /// playback or synthesized non-stationary source at the point's MTBF.
    fn engine(&self, point: &GridPoint, params: &ModelParams) -> Engine {
        if self.failure_scenario.is_iid() {
            Engine::with_failure_spec(params, point.failure_spec(self.failure))
                .expect("failure specs are validated at expansion")
        } else {
            let model = self
                .failure_scenario
                .resolve(params.platform_mtbf, self.scenario_horizon(params))
                .expect("scenarios are validated at expansion");
            Engine::with_failure_model(params, model)
        }
    }

    /// Evaluates one `(point, protocol)` task: the model prediction plus
    /// (when the budget runs replications) a Monte-Carlo simulation arm.
    fn evaluate(
        &self,
        point: &GridPoint,
        protocol: Protocol,
        cache: &BatchProgramCache,
    ) -> PointResult {
        let (model, expected_failures) = self.model_arm(point, protocol);
        let sim = match point.params {
            Some(params) if self.budget.runs_simulation() => {
                let profile = self.sim_profile(point, &params);
                let engine = self.engine(point, &params);
                let seed = task_seed(self.seed, point.index as u64, Some(protocol));
                // The batch engine is bit-exact with the scalar one, so the
                // dispatch is purely a throughput decision.
                let acc = if self.batch_lanes > 1 {
                    let program = cache.get(protocol, &profile, engine.plan());
                    accumulate_profile_program_batch(
                        &engine,
                        &program,
                        self.plan(),
                        seed,
                        self.batch_lanes,
                        self.point_threads,
                    )
                } else {
                    accumulate_profile_engine(&engine, protocol, &profile, self.plan(), seed)
                };
                Some(SimStats::from_accumulator(protocol, &acc))
            }
            _ => None,
        };
        PointResult {
            index: point.index,
            protocol,
            model_waste: model,
            expected_failures,
            sim,
            paired: None,
        }
    }

    /// Evaluates one whole point in paired mode: every protocol replays the
    /// same failure traces, and waste differences against the first protocol
    /// ride along with each non-baseline row.
    fn evaluate_paired(&self, point: &GridPoint, cache: &BatchProgramCache) -> Vec<PointResult> {
        let sim = match point.params {
            Some(params) if self.budget.runs_simulation() => {
                let profile = self.sim_profile(point, &params);
                let engine = self.engine(point, &params);
                let seed = task_seed(self.seed, point.index as u64, None);
                Some(if self.batch_lanes > 1 {
                    let programs: Vec<std::sync::Arc<BatchProgram>> = self
                        .protocols
                        .iter()
                        .map(|&p| cache.get(p, &profile, engine.plan()))
                        .collect();
                    let refs: Vec<&BatchProgram> = programs.iter().map(|p| p.as_ref()).collect();
                    accumulate_paired_programs_batch(
                        &engine,
                        &self.protocols,
                        &refs,
                        self.plan(),
                        seed,
                        self.batch_lanes,
                        self.point_threads,
                    )
                } else {
                    accumulate_paired_engine(&engine, &self.protocols, &profile, self.plan(), seed)
                })
            }
            _ => None,
        };
        self.protocols
            .iter()
            .enumerate()
            .map(|(i, &protocol)| {
                let (model, expected_failures) = self.model_arm(point, protocol);
                let (stats, paired) = match &sim {
                    Some(acc) => (
                        Some(SimStats::from_accumulator(protocol, &acc.outcomes[i])),
                        acc.delta(protocol).map(|d| PairedDelta {
                            baseline: self.protocols[0],
                            mean: d.mean(),
                            ci95: d.ci95_half_width(),
                        }),
                    ),
                    None => (None, None),
                };
                PointResult {
                    index: point.index,
                    protocol,
                    model_waste: model,
                    expected_failures,
                    sim: stats,
                    paired,
                }
            })
            .collect()
    }
}

/// Applies one coordinate to a parameter point through the validated
/// `with_*` helpers.
fn apply(
    params: ModelParams,
    parameter: Parameter,
    value: f64,
) -> ft_composite::error::Result<ModelParams> {
    match parameter {
        Parameter::Alpha => params.with_alpha(value),
        Parameter::Mtbf => params.with_mtbf(value),
        Parameter::Rho => params.with_rho(value),
        Parameter::Phi => params.with_phi(value),
        Parameter::Checkpoint => params.with_checkpoint_cost(value),
        Parameter::Downtime => params.with_downtime(value),
        Parameter::Reconstruction => params.with_abft_reconstruction(value),
        // Not parameter-point coordinates: resolved at the engine level
        // (node count) or at clock construction (Weibull shape).
        Parameter::Nodes | Parameter::WeibullShape => Ok(params),
    }
}

/// Derives the seed of one task from the master seed: per
/// `(point, protocol)` for independent tasks, per point (protocol `None`)
/// for paired tasks.  Independent of execution order and thread count.
fn task_seed(master: u64, point_index: u64, protocol: Option<Protocol>) -> u64 {
    let tag = match protocol {
        None => 0u64,
        Some(Protocol::PurePeriodicCkpt) => 1,
        Some(Protocol::BiPeriodicCkpt) => 2,
        Some(Protocol::AbftPeriodicCkpt) => 3,
    };
    SplitMix64::new(
        master
            .wrapping_add(point_index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(tag.wrapping_mul(0xD1B5_4A32_D192_ED03)),
    )
    .derive_seed()
}

/// One resolved point of the expanded grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint {
    /// Position in grid order.
    pub index: usize,
    /// The coordinate values (axis coordinates plus derived ones).
    pub coordinates: Vec<(Parameter, f64)>,
    /// The resolved parameter point (`None` when the scenario's raw values
    /// leave the model's validity domain at this scale — the point is then
    /// reported as saturated and not simulated).
    pub params: Option<ModelParams>,
    /// In scenario mode: the perturbed scenario and the node count.
    pub scenario: Option<(WeakScalingScenario, f64)>,
}

/// The failure clock of one grid point: a [`Parameter::WeibullShape`]
/// coordinate overrides the sweep-wide `base` spec.  The single resolution
/// rule shared by the arms ([`GridPoint::failure_spec`]) and the output
/// labels ([`SweepResults::model_label`]).
fn coordinates_failure_spec(coordinates: &[(Parameter, f64)], base: FailureSpec) -> FailureSpec {
    coordinates
        .iter()
        .find(|(p, _)| *p == Parameter::WeibullShape)
        .map_or(base, |&(_, shape)| FailureSpec::Weibull { shape })
}

impl GridPoint {
    /// The failure clock of this point: a [`Parameter::WeibullShape`]
    /// coordinate overrides the sweep-wide `base` spec.
    pub fn failure_spec(&self, base: FailureSpec) -> FailureSpec {
        coordinates_failure_spec(&self.coordinates, base)
    }

    /// The analytic waste model matching this point's failure clock — the
    /// model arm's dispatch (shapes are validated at expansion).
    pub fn waste_model(&self, base: FailureSpec) -> AnyWasteModel {
        AnyWasteModel::from_spec(self.failure_spec(base))
            .expect("failure specs are validated at expansion")
    }
}

/// Common-random-numbers waste difference of one protocol against the
/// paired baseline, over the shared failure traces of one grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedDelta {
    /// The protocol the difference is measured against.
    pub baseline: Protocol,
    /// Mean per-trace waste difference `this − baseline`.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval of the difference.
    pub ci95: f64,
}

/// The outcome of one `(point, protocol)` task.  Coordinates live once per
/// point in [`SweepResults::points`], keyed by [`PointResult::index`].
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Grid-point index the task belongs to.
    pub index: usize,
    /// Protocol evaluated.
    pub protocol: Protocol,
    /// Waste predicted by the closed-form model (or scenario evaluation).
    pub model_waste: f64,
    /// Expected failures over the (model-predicted) execution.
    pub expected_failures: f64,
    /// Monte-Carlo statistics, when the sweep has a simulation arm.
    pub sim: Option<SimStats>,
    /// Paired waste difference against the baseline protocol (paired mode,
    /// non-baseline rows only).
    pub paired: Option<PairedDelta>,
}

impl PointResult {
    /// The waste this task measured: simulated when available, else the
    /// model prediction.
    pub fn waste(&self) -> f64 {
        self.sim.map_or(self.model_waste, |s| s.mean_waste)
    }

    /// `WASTE_simul − WASTE_model` (the quantity of Figures 7b/7d/7f), when
    /// a simulation arm ran.
    pub fn model_sim_gap(&self) -> Option<f64> {
        self.sim.map(|s| s.mean_waste - self.model_waste)
    }

    /// The 95 % confidence half-width of the model−simulation gap.  The
    /// model prediction is deterministic, so the gap inherits the simulated
    /// waste's Welford interval unchanged.
    pub fn model_sim_gap_ci95(&self) -> Option<f64> {
        self.sim.map(|s| s.ci95_waste)
    }

    /// Whether the model−simulation gap is statistically resolved: the gap's
    /// CI95 excludes zero, i.e. the residual model bias at this point is
    /// larger than the remaining sampling noise.
    pub fn model_sim_gap_significant(&self) -> Option<bool> {
        self.model_sim_gap()
            .zip(self.model_sim_gap_ci95())
            .map(|(gap, hw)| gap.abs() > hw)
    }
}

/// The executed sweep: every task outcome plus timing metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResults {
    /// Experiment title.
    pub name: String,
    /// Replication budget each task ran under.
    pub budget: ReplicationBudget,
    /// Whether protocols were paired on common failure traces.
    pub paired: bool,
    /// Failure clock of the experiment (both arms).
    pub failure: FailureSpec,
    /// Failure scenario of the simulation arm ([`ScenarioSpec::Iid`] unless
    /// the sweep broke the i.i.d. assumption).
    pub failure_scenario: ScenarioSpec,
    /// Whether replication seeds ran with their antithetic partners.
    pub antithetic: bool,
    /// Whether the gap columns/summary were requested.
    pub model_gap: bool,
    /// The swept parameters, in axis order — the first `axes.len()`
    /// coordinates of every point; anything after them is derived (e.g. the
    /// realised α of a scenario sweep).
    pub axes: Vec<Parameter>,
    /// Coordinates of each grid point, in grid order (one entry per point,
    /// shared by that point's protocol rows).
    pub points: Vec<Vec<(Parameter, f64)>>,
    /// Wall-clock execution time of the grid.
    pub elapsed_seconds: f64,
    /// One result per `(point, protocol)` task, in grid order.
    pub results: Vec<PointResult>,
}

impl SweepResults {
    /// Number of grid points (tasks = points × protocols).
    pub fn grid_points(&self) -> usize {
        self.points.len()
    }

    /// Executed tasks per wall-clock second.
    pub fn tasks_per_second(&self) -> f64 {
        if self.elapsed_seconds > 0.0 {
            self.results.len() as f64 / self.elapsed_seconds
        } else {
            f64::INFINITY
        }
    }

    /// Total samples accumulated across the grid (replications actually
    /// used — the quantity the adaptive budget shrinks).  In antithetic mode
    /// a sample is a pair mean; see [`SweepResults::total_executions`].
    pub fn total_replications(&self) -> usize {
        self.results
            .iter()
            .filter_map(|r| r.sim.map(|s| s.replications))
            .sum()
    }

    /// Total simulated executions across the grid: equals
    /// [`SweepResults::total_replications`] except in antithetic mode, where
    /// every sample cost two executions (the seed and its partner).
    pub fn total_executions(&self) -> usize {
        self.total_replications() * if self.antithetic { 2 } else { 1 }
    }

    /// The coordinate value of grid point `index` on `parameter`.
    pub fn coordinate(&self, index: usize, parameter: Parameter) -> Option<f64> {
        self.points.get(index).and_then(|coords| {
            coords
                .iter()
                .find(|(p, _)| *p == parameter)
                .map(|&(_, v)| v)
        })
    }

    /// The waste of `protocol` at grid point `index` (simulated when
    /// available, else the model's).
    pub fn waste_at(&self, index: usize, protocol: Protocol) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.index == index && r.protocol == protocol)
            .map(PointResult::waste)
    }

    /// The grid-point indices of the slice along `axis` through the grid
    /// origin — the points whose *other* axis coordinates all equal the
    /// first grid point's — ordered by ascending `axis` value.  Derived
    /// coordinates (e.g. the realised α of a scenario sweep) vary freely
    /// along the slice and are ignored.
    fn axis_slice(&self, axis: Parameter) -> Vec<usize> {
        let Some(axis_pos) = self.axes.iter().position(|&p| p == axis) else {
            return Vec::new();
        };
        let Some(origin) = self.points.first() else {
            return Vec::new();
        };
        let mut slice: Vec<usize> = (0..self.points.len())
            .filter(|&i| {
                self.points[i][..self.axes.len()]
                    .iter()
                    .enumerate()
                    .all(|(j, &(_, v))| j == axis_pos || v == origin[j].1)
            })
            .collect();
        slice.sort_by(|&a, &b| self.points[a][axis_pos].1.total_cmp(&self.points[b][axis_pos].1));
        slice
    }

    /// Classifies the pure-versus-composite comparison along `axis`: walks
    /// the grid slice through the origin in ascending axis order (never raw
    /// grid order, which is not monotone on multi-axis grids) over a
    /// once-built waste index, looking for the first true *sign change* —
    /// pure no worse before, composite strictly better after.
    pub fn crossover_outcome(&self, axis: Parameter) -> CrossoverOutcome {
        // Index every (point, protocol) waste in one pass instead of
        // re-scanning all results per grid point.
        let mut wastes: Vec<(Option<f64>, Option<f64>)> = vec![(None, None); self.points.len()];
        for r in &self.results {
            match r.protocol {
                Protocol::PurePeriodicCkpt => wastes[r.index].0 = Some(r.waste()),
                Protocol::AbftPeriodicCkpt => wastes[r.index].1 = Some(r.waste()),
                _ => {}
            }
        }
        let comparable: Vec<(f64, bool)> = self
            .axis_slice(axis)
            .into_iter()
            .filter_map(|i| {
                let (pure, composite) = wastes[i];
                Some((self.coordinate(i, axis)?, composite? < pure?))
            })
            .collect();
        if let Some(window) = comparable.windows(2).find(|w| !w[0].1 && w[1].1) {
            return CrossoverOutcome::At {
                value: window[1].0,
                below: window[0].0,
            };
        }
        match comparable.first() {
            Some(&(_, true)) => CrossoverOutcome::CompositeDominant,
            _ => CrossoverOutcome::NoCrossover,
        }
    }

    /// The crossover annotation of Figures 8–10: the first `axis` value (in
    /// ascending order along the origin slice) at which the comparison's
    /// sign *changes* to "composite strictly better".  `None` both when the
    /// composite never wins and when it wins everywhere (no sign change in
    /// range — use [`SweepResults::crossover_outcome`] to distinguish).
    pub fn crossover(&self, axis: Parameter) -> Option<f64> {
        match self.crossover_outcome(axis) {
            CrossoverOutcome::At { value, .. } => Some(value),
            _ => None,
        }
    }

    /// The bracket around the crossover on `axis`: the last value where pure
    /// still held and the first where the composite wins — the seed interval
    /// of a [`CrossoverRefiner`] bisection.
    pub fn crossover_bracket(&self, axis: Parameter) -> Option<(f64, f64)> {
        match self.crossover_outcome(axis) {
            CrossoverOutcome::At { value, below } => Some((below, value)),
            _ => None,
        }
    }

    /// How far the *simulated* crossover sits from the *model* crossover
    /// along `axis`, measured on this grid: each arm's waste difference
    /// `composite − pure` is walked along the origin slice, the sign-change
    /// root of each arm located by linear interpolation, and the distance
    /// between the two roots returned.  `None` when either arm lacks a
    /// sign change in range (or no simulation ran).
    ///
    /// This is the measured model bias a [`CrossoverRefiner`] uses to size
    /// its model-seeded bisection window: a fixed safety margin either
    /// wastes probes re-verifying an over-wide window or gets rejected when
    /// the bias exceeds it, while `2 ×` the measured bias tracks the actual
    /// disagreement of the two curves.
    pub fn crossover_model_sim_bias(&self, axis: Parameter) -> Option<f64> {
        let mut wastes: Vec<[Option<f64>; 4]> = vec![[None; 4]; self.points.len()];
        for r in &self.results {
            let slot = match r.protocol {
                Protocol::PurePeriodicCkpt => 0,
                Protocol::AbftPeriodicCkpt => 2,
                _ => continue,
            };
            wastes[r.index][slot] = Some(r.model_waste);
            wastes[r.index][slot + 1] = r.sim.as_ref().map(|s| s.mean_waste);
        }
        let mut curve: Vec<(f64, f64, f64)> = Vec::new();
        for i in self.axis_slice(axis) {
            let [pm, ps, cm, cs] = wastes[i];
            if let (Some(x), Some(pm), Some(ps), Some(cm), Some(cs)) =
                (self.coordinate(i, axis), pm, ps, cm, cs)
            {
                curve.push((x, cm - pm, cs - ps));
            }
        }
        // The composite wins where its waste difference turns negative; the
        // root of each delta curve is its crossover estimate.
        let root = |deltas: &dyn Fn(&(f64, f64, f64)) -> f64| {
            curve.windows(2).find_map(|w| {
                let (da, db) = (deltas(&w[0]), deltas(&w[1]));
                (da >= 0.0 && db < 0.0).then(|| {
                    let (xa, xb) = (w[0].0, w[1].0);
                    xa + (xb - xa) * da / (da - db)
                })
            })
        };
        let model_root = root(&|p| p.1)?;
        let sim_root = root(&|p| p.2)?;
        Some((sim_root - model_root).abs())
    }

    /// Largest `|WASTE_simul − WASTE_model|` across the grid, when a
    /// simulation arm ran.
    pub fn worst_model_sim_gap(&self) -> Option<f64> {
        self.results
            .iter()
            .filter_map(|r| r.model_sim_gap().map(f64::abs))
            .fold(None, |acc, g| Some(acc.map_or(g, |a: f64| a.max(g))))
    }

    /// Mean `|WASTE_simul − WASTE_model|` across the grid, when a simulation
    /// arm ran — the headline number of a model-validation sweep.
    pub fn mean_abs_model_sim_gap(&self) -> Option<f64> {
        let gaps: Vec<f64> = self
            .results
            .iter()
            .filter_map(|r| r.model_sim_gap().map(f64::abs))
            .collect();
        if gaps.is_empty() {
            None
        } else {
            Some(gaps.iter().sum::<f64>() / gaps.len() as f64)
        }
    }

    /// How many tasks show a statistically resolved model−simulation gap
    /// (CI95 excluding zero), and how many carried a simulation arm at all.
    pub fn significant_gap_counts(&self) -> (usize, usize) {
        let mut significant = 0;
        let mut total = 0;
        for r in &self.results {
            if let Some(sig) = r.model_sim_gap_significant() {
                total += 1;
                if sig {
                    significant += 1;
                }
            }
        }
        (significant, total)
    }

    /// The grid-level gap summary line (`--model-gap` footers): mean and
    /// worst `|WASTE_simul − WASTE_model|` plus how many tasks resolved
    /// their gap beyond the CI95.  `None` when no simulation arm ran.
    pub fn model_gap_summary(&self) -> Option<String> {
        let (mean, worst) = (self.mean_abs_model_sim_gap()?, self.worst_model_sim_gap()?);
        let (significant, total) = self.significant_gap_counts();
        Some(format!(
            "mean |gap| {mean:.4}, worst |gap| {worst:.4}, {significant}/{total} tasks resolved beyond CI95"
        ))
    }

    /// The analytic-model label of grid point `index` (a
    /// [`Parameter::WeibullShape`] coordinate overrides the sweep-wide
    /// failure spec, exactly like the arms themselves).
    pub fn model_label(&self, index: usize) -> String {
        let spec = self
            .points
            .get(index)
            .map_or(self.failure, |coords| {
                coordinates_failure_spec(coords, self.failure)
            });
        let label = AnyWasteModel::from_spec(spec)
            .map(|m| m.label())
            .unwrap_or_else(|_| "invalid".to_string());
        if self.failure_scenario.is_iid() {
            label
        } else {
            // Under a non-i.i.d. scenario the model arm is the matched-MTBF
            // i.i.d. baseline, not a model of the scenario clock — say so,
            // rather than letting the label claim the clocks agree.
            format!("{label} [iid baseline; clock={}]", self.failure_scenario)
        }
    }

    /// Renders the results as a [`Table`] for the shared output writer.
    pub fn to_table(&self) -> Table {
        let has_sim = self.budget.runs_simulation();
        let mut headers: Vec<&str> = Vec::new();
        if let Some(first) = self.points.first() {
            for (p, _) in first {
                headers.push(p.label());
            }
        }
        headers.extend(["protocol", "model_waste", "expected_failures"]);
        if has_sim {
            headers.extend(["sim_waste", "diff", "ci95", "mean_failures", "reps"]);
        }
        if self.paired {
            headers.extend(["paired_delta", "paired_ci95"]);
        }
        if self.model_gap {
            headers.extend(["model", "gap_rel", "gap_sig"]);
        }
        let mut table = Table::new(&headers);
        for r in &self.results {
            let mut row: Vec<String> = self.points[r.index]
                .iter()
                .map(|&(p, v)| format_value(p, v))
                .collect();
            row.push(r.protocol.name().to_string());
            row.push(format!("{:.4}", r.model_waste));
            row.push(format!("{:.1}", r.expected_failures));
            if has_sim {
                match r.sim {
                    Some(s) => {
                        row.push(format!("{:.4}", s.mean_waste));
                        row.push(format!("{:+.4}", s.mean_waste - r.model_waste));
                        row.push(format!("{:.4}", s.ci95_waste));
                        row.push(format!("{:.1}", s.mean_failures));
                        row.push(format!("{}", s.replications));
                    }
                    None => row.extend(std::iter::repeat_n(String::new(), 5)),
                }
            }
            if self.paired {
                match r.paired {
                    Some(d) => {
                        row.push(format!("{:+.4}", d.mean));
                        row.push(format!("{:.4}", d.ci95));
                    }
                    None => row.extend(std::iter::repeat_n(String::new(), 2)),
                }
            }
            if self.model_gap {
                // The analytic model the prediction came from, the gap as a
                // fraction of it, and whether the gap's CI95 (the `ci95`
                // column — the model is deterministic) excludes zero.
                row.push(self.model_label(r.index));
                match (r.model_sim_gap(), r.model_sim_gap_significant()) {
                    (Some(gap), Some(sig)) => {
                        let rel = if r.model_waste.abs() > 0.0 {
                            gap / r.model_waste
                        } else {
                            f64::INFINITY
                        };
                        row.push(format!("{rel:+.4}"));
                        row.push(sig.to_string());
                    }
                    _ => row.extend(std::iter::repeat_n(String::new(), 2)),
                }
            }
            table.push_row(row);
        }
        table
    }

    /// Renders through the shared writer: aligned text, CSV or JSON.
    pub fn render(&self, format: OutputFormat) -> String {
        let table = self.to_table();
        match format {
            OutputFormat::Table => table.render(),
            OutputFormat::Csv => table.to_csv(),
            OutputFormat::Json => table.to_json(),
        }
    }
}

/// Classification of the pure-versus-composite comparison along one sweep
/// axis (see [`SweepResults::crossover_outcome`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrossoverOutcome {
    /// The comparison changes sign: pure no worse at `below`, composite
    /// strictly better at `value` (adjacent slice points).
    At {
        /// First axis value at which the composite wins.
        value: f64,
        /// Last axis value at which pure still held.
        below: f64,
    },
    /// The composite already wins at the first point of the range — no sign
    /// change is visible, the crossover (if any) lies below the sweep.
    CompositeDominant,
    /// The composite never wins in the swept range.
    NoCrossover,
}

/// Prints the shared crossover footer of the Figure 8–10 binaries,
/// distinguishing "no crossover in range" from "composite dominant from the
/// first point" (one helper, not three copies).
pub fn report_crossover(results: &SweepResults, axis: Parameter) {
    let label = axis.label();
    match results.crossover_outcome(axis) {
        CrossoverOutcome::At { value, below } => println!(
            "# composite overtakes PurePeriodicCkpt between {label} = {} and {label} = {}",
            format_value(axis, below),
            format_value(axis, value),
        ),
        CrossoverOutcome::CompositeDominant => println!(
            "# composite dominant from the first grid point — crossover below the swept {label} range"
        ),
        CrossoverOutcome::NoCrossover => {
            println!("# no crossover in range — composite never overtakes PurePeriodicCkpt")
        }
    }
}

/// Seed-stream tag separating refiner probe seeds from grid task seeds.
const REFINER_SEED_TAG: u64 = 0xC055_0FEB_15EC_7104;

/// One bisection probe of a [`CrossoverRefiner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossoverProbe {
    /// The probed axis coordinate.
    pub value: f64,
    /// Waste difference `composite − pure` at the probe (paired simulation
    /// mean, or the closed-form model difference for model-only probes).
    pub delta: f64,
    /// CI95 half-width of the paired delta (0 for model probes).
    pub ci95: f64,
    /// Shared failure traces the probe replayed (0 for model probes).
    pub replications: usize,
    /// Whether the composite protocol wins at this coordinate.
    pub composite_beats: bool,
    /// Whether the comparison was statistically resolved (CI95 excludes
    /// zero; always `true` for model probes).
    pub decided: bool,
}

/// The outcome of a bisection refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverRefinement {
    /// Axis that was bisected.
    pub axis: Parameter,
    /// Final bracket `(pure side, composite side)`.
    pub bracket: (f64, f64),
    /// Localised crossover coordinate (geometric midpoint of the bracket).
    pub crossover: f64,
    /// Requested relative tolerance.
    pub rel_tolerance: f64,
    /// Achieved relative bracket width `|hi − lo| / crossover`.
    pub achieved_tolerance: f64,
    /// Whether the requested tolerance was reached within the probe budget.
    pub converged: bool,
    /// The crossover the free analytic-model bisection located before the
    /// simulated probes ran (`None` when the refinement was not model-seeded
    /// or the seeded window was rejected and the full bracket used instead).
    pub model_crossover: Option<f64>,
    /// Confidence that the final bracket is correct: the *minimum*, over
    /// every sign decision that shaped it (the two bracket verifications and
    /// each bisection decision), of the normal-approximated probability
    /// `Φ(|z|)` that the decided sign is the true one.  Model probes decide
    /// exactly (`Φ = 1`); `None` when no decision was taken (a bracket
    /// already within tolerance).  Raising
    /// [`CrossoverRefiner::sign_repeats`] tightens this by pooling repeated
    /// midpoint probes.
    pub confidence: Option<f64>,
    /// Every simulated probe, in order: a rejected model-seed window's two
    /// verification probes first (when that happened — their cost is real
    /// and stays accounted), then the used bracket's two verification
    /// probes, then the bisection steps (a midpoint contributes several
    /// consecutive entries when [`CrossoverRefiner::sign_repeats`] pooled
    /// repeated probes into its decision).  The model-seeding bisection
    /// itself is free and not recorded; every entry here cost
    /// `2 × replications` simulated executions (0 for model-only probes).
    pub probes: Vec<CrossoverProbe>,
}

impl CrossoverRefinement {
    /// Total simulated executions spent across all probes (traces ×
    /// protocols) — the quantity to compare against a fixed-budget grid
    /// scan's [`SweepResults::total_replications`].
    pub fn total_replications(&self) -> usize {
        self.probes.iter().map(|p| p.replications * 2).sum()
    }
}

/// Bisection driver that localises the pure→composite crossover along one
/// axis to a requested *relative tolerance*, instead of the grid resolution
/// [`SweepResults::crossover`] is limited to.
///
/// Each probe evaluates one coordinate with a **paired** comparison of
/// `PurePeriodicCkpt` and `AbftPeriodicCkpt` — under the spec's replication
/// budget (a [`ReplicationBudget::AdaptiveDelta`] budget stops each probe as
/// soon as the sign of the waste difference is resolved, which is all a
/// bisection step consumes) — and halves the bracket on the observed sign.
/// Probe seeds are derived deterministically from the spec's master seed
/// through [`SeedStream::nth_seed`], so refinements are reproducible and
/// independent of how many probes earlier runs spent.  With a
/// `Fixed(0)` budget (or on points outside the model's validity domain) a
/// probe falls back to the closed-form model difference, which makes
/// model-level refinement essentially free.
///
/// The driver works on any spec the sweep subsystem accepts: node counts of
/// the Figures 8–10 scenarios (under exponential *and* Weibull clocks),
/// MTBF or α around a base point, …  The bracket ends need not be ordered —
/// `refine(a, b)` expects pure to hold at `a` and the composite to win at
/// `b`, whichever side is numerically larger.
#[derive(Debug, Clone)]
pub struct CrossoverRefiner {
    /// Probe template: base point or scenario, budget, failure model, seed.
    /// Its axes and protocol list are ignored — every probe is a one-point
    /// grid over `[PurePeriodicCkpt, AbftPeriodicCkpt]`.
    pub spec: SweepSpec,
    /// The bisected axis.
    pub axis: Parameter,
    /// Requested relative tolerance on the crossover coordinate.
    pub rel_tolerance: f64,
    /// Hard cap on bisection probes — bracket-verification probes included,
    /// as are probes spent verifying a rejected model-seed window (the cap
    /// bounds the refinement's total simulated cost).
    pub max_probes: usize,
    /// Seed the simulated bisection from the analytic model: a free
    /// model-probe bisection first localises the *model* crossover inside
    /// the bracket, and the simulated probes start from a window around it
    /// instead of the full grid bracket — typically several simulated probes
    /// fewer.  On by default; inert for model-only (`Fixed(0)`) budgets; the
    /// refiner falls back to the full bracket when the simulation disagrees
    /// with the model about either end of the seeded window.
    pub model_seed: bool,
    /// Noise-aware bisection: the maximum number of *independent* simulated
    /// probes a bisection midpoint may spend on its sign decision.  The
    /// probes (each on fresh failure traces) are pooled inverse-variance;
    /// the sequential sign test stops as soon as the pooled statistic
    /// reaches `|z| ≥ 1.96` (95 % confidence on the sign), so quiet
    /// midpoints still cost one probe.  `1` (the default) disables the
    /// test and reproduces the single-probe decisions exactly; every
    /// repeated probe is recorded and charged like any other probe, and the
    /// [`CrossoverRefiner::max_probes`] cap keeps bounding the total cost.
    pub sign_repeats: usize,
}

impl CrossoverRefiner {
    /// Creates a refiner over `spec` along `axis` with the default 1 %
    /// tolerance, a 40-probe cap and model seeding on.
    pub fn new(spec: SweepSpec, axis: Parameter) -> Self {
        Self {
            spec,
            axis,
            rel_tolerance: 0.01,
            max_probes: 40,
            model_seed: true,
            sign_repeats: 1,
        }
    }

    /// Sets the relative tolerance.
    pub fn tolerance(mut self, rel_tolerance: f64) -> Self {
        self.rel_tolerance = rel_tolerance.max(1e-12);
        self
    }

    /// Sets the probe cap.
    pub fn max_probes(mut self, max_probes: usize) -> Self {
        self.max_probes = max_probes.max(3);
        self
    }

    /// Enables (or disables) model seeding of the simulated bisection.
    pub fn model_seed(mut self, model_seed: bool) -> Self {
        self.model_seed = model_seed;
        self
    }

    /// Sets the sequential-sign-test probe cap per bisection midpoint
    /// (`1` disables the test).
    pub fn sign_repeats(mut self, sign_repeats: usize) -> Self {
        self.sign_repeats = sign_repeats.max(1);
        self
    }

    /// Confidence that a single probe's sign decision is correct:
    /// `Φ(|z|)` with `z = mean / se` under the probe's own CI95 half-width
    /// (`se = ci95 / 1.96`); exact probes (model, or zero variance) decide
    /// with certainty.
    fn probe_confidence(probe: &CrossoverProbe) -> f64 {
        if probe.ci95 <= 0.0 {
            1.0
        } else {
            normal_cdf(1.96 * probe.delta.abs() / probe.ci95)
        }
    }

    /// Evaluates one probe at `value` (probe `index` of this refinement).
    fn probe(&self, value: f64, index: u64) -> Result<CrossoverProbe, SweepError> {
        let spec = SweepSpec {
            axes: vec![Axis::values(self.axis, vec![value])],
            protocols: vec![Protocol::PurePeriodicCkpt, Protocol::AbftPeriodicCkpt],
            paired: true,
            ..self.spec.clone()
        };
        let grid = spec.expand()?;
        let point = &grid[0];
        if let (Some(params), true) = (point.params, spec.budget.runs_simulation()) {
            let profile = spec.sim_profile(point, &params);
            let acc: PairedAccumulator = accumulate_paired_engine(
                &spec.engine(point, &params),
                &spec.protocols,
                &profile,
                spec.plan(),
                SeedStream::nth_seed(spec.seed ^ REFINER_SEED_TAG, index),
            );
            let delta = &acc.deltas[1];
            let (mean, hw) = (delta.mean(), delta.ci95_half_width());
            Ok(CrossoverProbe {
                value,
                delta: mean,
                ci95: hw,
                replications: acc.replications(),
                composite_beats: mean < 0.0,
                decided: hw < mean.abs(),
            })
        } else {
            // Model probe: exact closed-form (or saturated-scenario) wastes.
            let (pure, _) = spec.model_arm(point, Protocol::PurePeriodicCkpt);
            let (composite, _) = spec.model_arm(point, Protocol::AbftPeriodicCkpt);
            Ok(CrossoverProbe {
                value,
                delta: composite - pure,
                ci95: 0.0,
                replications: 0,
                composite_beats: composite < pure,
                decided: true,
            })
        }
    }

    /// Refines the crossover inside a bracket: pure must hold at
    /// `pure_side`, the composite must win at `composite_side` (both are
    /// verified with the first two probes).
    ///
    /// With [`CrossoverRefiner::model_seed`] on (the default) and a
    /// simulating budget, a free analytic-model bisection first shrinks the
    /// bracket to a window around the model-predicted crossover, and the
    /// simulated probes bisect only that window; when the simulation
    /// disagrees with the model about an end of the window (model bias
    /// larger than the safety margin), the refiner transparently falls back
    /// to the full bracket.
    pub fn refine(
        &self,
        pure_side: f64,
        composite_side: f64,
    ) -> Result<CrossoverRefinement, SweepError> {
        self.refine_with_bias(pure_side, composite_side, None)
    }

    /// [`CrossoverRefiner::refine`] with a measured model−simulation bias
    /// (typically [`SweepResults::crossover_model_sim_bias`] from the
    /// seeding grid) sizing the model-seeded window: the window reaches `2 ×
    /// bias` beyond the model crossover instead of the fixed 5 % fallback
    /// margin.  A window sized from the measured disagreement is verified
    /// and accepted where a fixed margin smaller than the bias would be
    /// rejected — wasting its two verification probes — and is narrower
    /// than a fixed margin much larger than the bias.
    pub fn refine_with_bias(
        &self,
        pure_side: f64,
        composite_side: f64,
        bias: Option<f64>,
    ) -> Result<CrossoverRefinement, SweepError> {
        if self.model_seed && self.spec.budget.runs_simulation() {
            let model_refiner = CrossoverRefiner {
                spec: SweepSpec {
                    budget: ReplicationBudget::Fixed(0),
                    ..self.spec.clone()
                },
                model_seed: false,
                ..self.clone()
            };
            if let Ok(model) = model_refiner.bisect(pure_side, composite_side) {
                // Window around the model crossover: a few model-bracket
                // widths, floored at twice the measured model−simulation
                // bias (or 5 % of the coordinate when no bias was
                // measured), clamped to the original bracket — wide enough
                // to absorb the model's actual disagreement with the
                // simulation, narrow enough to save most of the decade-wide
                // grid bracket's bisection steps.
                let (mp, mc) = model.bracket;
                let floor = bias.map_or(0.05 * model.crossover.abs(), |b| 2.0 * b);
                let shift = (3.0 * (mc - mp).abs()).max(floor);
                let toward = |from: f64, limit: f64| {
                    let d = limit - from;
                    if d.abs() <= shift {
                        limit
                    } else {
                        from + shift * d.signum()
                    }
                };
                match self.bisect_with(
                    toward(mp, pure_side),
                    toward(mc, composite_side),
                    Vec::new(),
                ) {
                    Ok(mut refinement) => {
                        refinement.model_crossover = Some(model.crossover);
                        return Ok(refinement);
                    }
                    // The simulation rejected the seeded window (model bias
                    // larger than the safety margin): fall back to the full
                    // bracket, *carrying the spent window probes* so the
                    // refinement's probe list and execution accounting stay
                    // honest about the seeding attempt's cost.
                    Err((_, wasted)) => {
                        return self
                            .bisect_with(pure_side, composite_side, wasted)
                            .map_err(|(e, _)| e);
                    }
                }
            }
        }
        self.bisect(pure_side, composite_side)
    }

    /// The bisection core of [`CrossoverRefiner::refine`], always working on
    /// the bracket it is given.
    fn bisect(
        &self,
        pure_side: f64,
        composite_side: f64,
    ) -> Result<CrossoverRefinement, SweepError> {
        self.bisect_with(pure_side, composite_side, Vec::new())
            .map_err(|(e, _)| e)
    }

    /// [`CrossoverRefiner::bisect`] with previously spent probes carried
    /// into the accounting: `carried` probes are prepended to the
    /// refinement's probe list (and probe-seed indices continue after them),
    /// and on error the probes spent so far ride along so the caller can
    /// keep charging them.
    fn bisect_with(
        &self,
        pure_side: f64,
        composite_side: f64,
        carried: Vec<CrossoverProbe>,
    ) -> Result<CrossoverRefinement, (SweepError, Vec<CrossoverProbe>)> {
        if !pure_side.is_finite() || !composite_side.is_finite() {
            return Err((
                SweepError("bisection brackets must be finite coordinates".into()),
                carried,
            ));
        }
        let mut probes = carried;
        let lo_probe = match self.probe(pure_side, probes.len() as u64) {
            Ok(p) => p,
            Err(e) => return Err((e, probes)),
        };
        probes.push(lo_probe);
        let hi_probe = match self.probe(composite_side, probes.len() as u64) {
            Ok(p) => p,
            Err(e) => return Err((e, probes)),
        };
        probes.push(hi_probe);
        let mut confidence: Option<f64> = None;
        let note_decision = |c: f64, confidence: &mut Option<f64>| {
            *confidence = Some(confidence.map_or(c, |m: f64| m.min(c)));
        };
        note_decision(Self::probe_confidence(&lo_probe), &mut confidence);
        note_decision(Self::probe_confidence(&hi_probe), &mut confidence);
        let bracket_ok = !lo_probe.composite_beats && hi_probe.composite_beats;
        if !bracket_ok {
            return Err((
                SweepError(format!(
                    "not a crossover bracket: composite {} at {} and {} at {}",
                    if lo_probe.composite_beats { "wins" } else { "loses" },
                    pure_side,
                    if hi_probe.composite_beats { "wins" } else { "loses" },
                    composite_side,
                )),
                probes,
            ));
        }
        let (mut pure_at, mut composite_at) = (pure_side, composite_side);
        // Wide positive brackets (node counts, MTBFs spanning decades):
        // bisect in log space, which keeps the relative tolerance uniform
        // across the bracket.  Narrow or zero-touching brackets (fractions
        // like α, ρ, a Weibull shape): plain arithmetic bisection.
        let (lo, hi) = (
            pure_side.min(composite_side),
            pure_side.max(composite_side),
        );
        let geometric = lo > 0.0 && hi / lo >= 4.0;
        let midpoint = move |a: f64, b: f64| {
            if geometric {
                (a * b).sqrt()
            } else {
                0.5 * (a + b)
            }
        };
        let width = move |a: f64, b: f64| {
            let mid = midpoint(a, b);
            if mid.abs() > 0.0 {
                (a - b).abs() / mid.abs()
            } else {
                f64::INFINITY
            }
        };
        while width(pure_at, composite_at) > self.rel_tolerance && probes.len() < self.max_probes {
            let mid = midpoint(pure_at, composite_at);
            // Sequential sign test: pool up to `sign_repeats` independent
            // probes of the midpoint inverse-variance, stopping as soon as
            // the pooled statistic resolves the sign at 95 %.
            let mut sum_w = 0.0;
            let mut sum_wd = 0.0;
            let mut composite_beats = false;
            let mut decision_confidence = 1.0;
            for _ in 0..self.sign_repeats.max(1) {
                let probe = match self.probe(mid, probes.len() as u64) {
                    Ok(p) => p,
                    Err(e) => return Err((e, probes)),
                };
                probes.push(probe);
                if probe.ci95 <= 0.0 {
                    // Exact (model) probe: the sign is certain.
                    composite_beats = probe.composite_beats;
                    decision_confidence = 1.0;
                    break;
                }
                let se = probe.ci95 / 1.96;
                let w = 1.0 / (se * se);
                sum_w += w;
                sum_wd += w * probe.delta;
                let pooled_mean = sum_wd / sum_w;
                let z = pooled_mean * sum_w.sqrt();
                composite_beats = pooled_mean < 0.0;
                decision_confidence = normal_cdf(z.abs());
                if z.abs() >= 1.96 || probes.len() >= self.max_probes {
                    break;
                }
            }
            note_decision(decision_confidence, &mut confidence);
            if composite_beats {
                composite_at = mid;
            } else {
                pure_at = mid;
            }
        }
        let achieved = width(pure_at, composite_at);
        Ok(CrossoverRefinement {
            axis: self.axis,
            bracket: (pure_at, composite_at),
            crossover: midpoint(pure_at, composite_at),
            rel_tolerance: self.rel_tolerance,
            achieved_tolerance: achieved,
            converged: achieved <= self.rel_tolerance,
            model_crossover: None,
            confidence,
            probes,
        })
    }

    /// Refines starting from a grid-level sweep's crossover bracket
    /// ([`SweepResults::crossover_bracket`]).  When the seeding sweep also
    /// carried a simulation arm, its measured model−simulation bias
    /// ([`SweepResults::crossover_model_sim_bias`]) sizes the model-seeded
    /// window.
    pub fn refine_from(&self, results: &SweepResults) -> Result<CrossoverRefinement, SweepError> {
        let (below, value) = results.crossover_bracket(self.axis).ok_or_else(|| {
            SweepError(format!(
                "the seeding sweep shows no crossover along `{}`",
                self.axis.label()
            ))
        })?;
        self.refine_with_bias(below, value, results.crossover_model_sim_bias(self.axis))
    }
}

/// Formats a coordinate for display: integral values (node counts, seconds)
/// print without a fractional part, fractions keep four digits.  Shared by
/// the grid tables, the crossover footers and the `crossover` binary.
pub fn format_value(parameter: Parameter, v: f64) -> String {
    match parameter {
        Parameter::Alpha | Parameter::Rho | Parameter::Phi | Parameter::WeibullShape => {
            format!("{v:.4}")
        }
        _ if v == v.trunc() && v.abs() < 1e15 => format!("{v:.0}"),
        _ => format!("{v:.4}"),
    }
}

/// Parses the shared `--failure-model`/`--weibull-shape` flags into a
/// [`FailureSpec`]: `None` when `--failure-model` is absent, a CLI error
/// exit on unknown models or invalid shapes.
pub fn failure_spec_from_args(args: &Args) -> Option<FailureSpec> {
    let model_name = args.string("--failure-model", "");
    if model_name.is_empty() {
        return None;
    }
    let shape: f64 = args.value("--weibull-shape", 0.7);
    let spec = FailureSpec::parse(&model_name, shape).unwrap_or_else(|| {
        eprintln!("unknown --failure-model `{model_name}`; use exponential|weibull");
        std::process::exit(2);
    });
    if spec.validate().is_err() {
        eprintln!("--weibull-shape must be a positive finite number, got {shape}");
        std::process::exit(2);
    }
    Some(spec)
}

/// Applies the shared CLI knobs (`--replications`, `--precision`,
/// `--delta-precision`, `--min-replications`, `--max-replications`,
/// `--paired`, `--antithetic`, `--model-gap`, `--failure-model`,
/// `--weibull-shape`, `--seed`, `--epochs`, `--threads`, `--batch-lanes`)
/// to a spec, runs it
/// (serially with `--serial`) and prints the header, the rendered grid
/// (`--format table|csv|json`, with `--csv` as a shorthand) and a
/// throughput footer.  Returns the results for binary-specific footers.
///
/// `--precision 0.02` switches the budget to adaptive sequential stopping:
/// each point replicates until the waste CI95 half-width falls below 2 % of
/// the mean (bracketed by `--min-replications`/`--max-replications`).
/// `--delta-precision 0.05` instead targets the **paired waste difference**
/// (implies `--paired`): a point stops as soon as every protocol-versus-
/// baseline comparison is resolved.  `--paired` replays the same failure
/// traces to every protocol and adds the paired waste-difference columns.
/// `--antithetic` runs every replication seed together with its antithetic
/// partner (`1 − u` uniforms) and accumulates pair means — tighter CIs per
/// simulated execution on smooth responses.  `--failure-model weibull
/// --weibull-shape 0.7` swaps the failure description of **both** arms: the
/// simulation clock draws Weibull inter-arrivals and the model arm uses the
/// Weibull-corrected closed form, so the `diff`/`ci95` columns report a
/// genuine model−simulation gap.  `--model-gap` adds the per-point model
/// label, relative-gap and gap-significance columns plus a grid-level gap
/// summary footer (and gives model-only specs a default simulation budget).
/// `--scenario trace[:<path>]|cascade|diurnal|wearout` replaces the
/// simulation clock with a recorded-trace playback or a synthesized
/// non-stationary source calibrated to each point's MTBF, while the model
/// arm keeps the matched-MTBF i.i.d. prediction (and its labels say so) —
/// the gap columns then measure the effect of breaking the i.i.d.
/// assumption.
/// `--batch-lanes` resizes the batched SoA simulation engine (`1` falls
/// back to the scalar engine) — a pure throughput knob: the batch engine is
/// bit-exact with the scalar one, so every reported figure is identical at
/// any width.  `--point-threads` splits each point's replication blocks
/// across that many OS threads inside the batch drivers (`0` = host
/// parallelism) — also bit-exact at every value, and composes with the
/// whole-grid `--threads` parallelism.
pub fn run_cli(mut spec: SweepSpec, args: &Args) -> SweepResults {
    if let Some(n) = args.maybe_value::<usize>("--replications") {
        spec.budget = ReplicationBudget::Fixed(n);
    }
    let precision: f64 = args.value("--precision", 0.0);
    if precision > 0.0 {
        spec.budget = ReplicationBudget::Adaptive {
            rel_precision: precision,
            min: args.value("--min-replications", 100),
            max: args.value("--max-replications", 10_000),
        };
    }
    let delta_precision: f64 = args.value("--delta-precision", 0.0);
    if delta_precision > 0.0 {
        spec.budget = ReplicationBudget::AdaptiveDelta {
            rel_precision: delta_precision,
            min: args.value("--min-replications", 100),
            max: args.value("--max-replications", 10_000),
        };
        spec.paired = true;
    }
    if args.flag("--paired") {
        spec.paired = true;
    }
    if args.flag("--antithetic") {
        spec.antithetic = true;
    }
    if let Some(failure) = failure_spec_from_args(args) {
        spec.failure = failure;
    }
    let scenario_text = args.string("--scenario", "");
    if !scenario_text.is_empty() {
        spec.failure_scenario = ScenarioSpec::parse(&scenario_text).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    }
    if args.flag("--model-gap") {
        // A gap needs both arms: give model-only specs the default
        // simulation budget instead of printing empty gap columns.  (A
        // fixed default, not `--replications` again — an explicit
        // `--replications 0` would otherwise defeat exactly the fallback
        // this branch exists for.)
        spec = spec.model_gap(true).with_simulation_arm();
    }
    spec.seed = args.value("--seed", spec.seed);
    spec.epochs = args.value("--epochs", spec.epochs).max(1);
    spec.batch_lanes = args.value("--batch-lanes", spec.batch_lanes);
    spec.point_threads = args.value("--point-threads", spec.point_threads);
    let threads: usize = args.value("--threads", 0);
    if threads > 0 {
        let _ = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global();
    }
    // Validate the output format *before* spending CPU on the grid.
    let format = if args.flag("--csv") {
        OutputFormat::Csv
    } else {
        OutputFormat::parse(&args.string("--format", "table")).unwrap_or_else(|| {
            eprintln!("unknown --format; use table|csv|json");
            std::process::exit(2);
        })
    };
    let run = if args.flag("--serial") {
        spec.run_serial()
    } else {
        spec.run()
    };
    let results = run.unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    println!("# {}", results.name);
    println!(
        "# {} grid points x {} protocols, budget {} per task{}, {} failures{}, {} epochs",
        results.grid_points(),
        spec.protocols.len(),
        spec.plan(),
        if spec.paired { " (paired)" } else { "" },
        spec.failure,
        if spec.failure_scenario.is_iid() {
            String::new()
        } else {
            format!(" under scenario {}", spec.failure_scenario)
        },
        spec.epochs,
    );
    print!("{}", results.render(format));
    if spec.model_gap {
        if let Some(summary) = results.model_gap_summary() {
            println!(
                "# model-simulation gap: {summary} (model arm per row in the `model` column)"
            );
        }
    }
    println!(
        "# {} tasks ({} simulated executions) in {:.2} s ({:.0} tasks/s) on {} threads",
        results.results.len(),
        results.total_executions(),
        results.elapsed_seconds,
        results.tasks_per_second(),
        rayon::current_num_threads(),
    );
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure7_base;
    use ft_platform::units::minutes;

    #[test]
    fn expansion_is_a_cartesian_product_with_the_last_axis_fastest() {
        let spec = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::Mtbf, vec![minutes(60.0), minutes(120.0)]))
            .axis(Axis::values(Parameter::Alpha, vec![0.0, 0.5, 1.0]));
        let grid = spec.expand().unwrap();
        assert_eq!(grid.len(), 6);
        assert_eq!(grid[0].coordinates[0].1, minutes(60.0));
        assert_eq!(grid[0].coordinates[1].1, 0.0);
        assert_eq!(grid[1].coordinates[1].1, 0.5);
        assert_eq!(grid[3].coordinates[0].1, minutes(120.0));
        let resolved = grid[4].params.unwrap();
        assert!((resolved.alpha - 0.5).abs() < 1e-12);
        assert!((resolved.platform_mtbf - minutes(120.0)).abs() < 1e-9);
    }

    #[test]
    fn invalid_values_and_missing_scenarios_are_rejected() {
        let bad = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::Phi, vec![0.5]));
        assert!(bad.expand().is_err());
        let orphan_nodes = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::Nodes, vec![1e4]));
        assert!(orphan_nodes.expand().is_err());
        let empty = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::Alpha, vec![]));
        assert!(empty.expand().is_err());
    }

    #[test]
    fn model_only_run_covers_every_task() {
        let spec = SweepSpec::new("t", figure7_base())
            .axis(Axis::linspace(Parameter::Alpha, 0.0, 1.0, 3));
        let results = spec.run().unwrap();
        assert_eq!(results.grid_points(), 3);
        assert_eq!(results.results.len(), 9);
        assert_eq!(results.total_replications(), 0);
        for r in &results.results {
            assert!(r.model_waste >= 0.0 && r.model_waste <= 1.0);
            assert!(r.sim.is_none());
            assert!(r.paired.is_none());
            assert!(r.expected_failures.is_finite());
        }
    }

    #[test]
    fn parallel_and_serial_runs_agree_exactly() {
        let spec = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::Mtbf, vec![minutes(90.0), minutes(180.0)]))
            .axis(Axis::values(Parameter::Alpha, vec![0.2, 0.8]))
            .replications(20);
        let par = spec.run().unwrap();
        let ser = spec.run_serial().unwrap();
        assert_eq!(par.results, ser.results);
        // And the whole run is reproducible.
        let again = spec.run().unwrap();
        assert_eq!(par.results, again.results);
    }

    #[test]
    fn task_seeds_differ_per_point_and_protocol() {
        let a = task_seed(42, 0, Some(Protocol::PurePeriodicCkpt));
        let b = task_seed(42, 1, Some(Protocol::PurePeriodicCkpt));
        let c = task_seed(42, 0, Some(Protocol::AbftPeriodicCkpt));
        let d = task_seed(43, 0, Some(Protocol::PurePeriodicCkpt));
        let e = task_seed(42, 0, None);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a, e);
        assert_eq!(a, task_seed(42, 0, Some(Protocol::PurePeriodicCkpt)));
    }

    #[test]
    fn scenario_sweeps_reproduce_the_scaling_point_values() {
        let scenario = ft_composite::scaling::WeakScalingScenario::figure8();
        let spec = SweepSpec::scaling("fig8", scenario)
            .axis(Axis::decades(Parameter::Nodes, 3, 6, 1));
        let results = spec.run().unwrap();
        assert_eq!(results.grid_points(), 4);
        for (i, &nodes) in paper_node_counts().iter().enumerate() {
            let sp = scenario.point(nodes).unwrap();
            let pure = results.waste_at(i, Protocol::PurePeriodicCkpt).unwrap();
            assert!((pure - sp.pure.waste.value()).abs() < 1e-12);
            let composite = results.waste_at(i, Protocol::AbftPeriodicCkpt).unwrap();
            assert!((composite - sp.composite.waste.value()).abs() < 1e-12);
        }
        // The crossover matches the direct evaluation (§V-C: near 10⁵).
        let x = results.crossover(Parameter::Nodes).unwrap();
        assert!(x >= 1e5, "crossover at {x}");
    }

    #[test]
    fn scenario_simulation_arm_is_commensurable_with_the_scenario_model() {
        // The model arm amortizes checkpoints over the scenario's epoch
        // count; the simulation arm must unfold the same application, so on
        // a calm point the two wastes agree closely.
        let scenario = ft_composite::scaling::WeakScalingScenario {
            epochs: 4,
            ..ft_composite::scaling::WeakScalingScenario::figure8()
        };
        let spec = SweepSpec::scaling("t", scenario)
            .axis(Axis::values(Parameter::Nodes, vec![100_000.0]))
            .protocols(vec![Protocol::AbftPeriodicCkpt])
            .replications(20);
        let results = spec.run().unwrap();
        let r = &results.results[0];
        let sim = r.sim.expect("simulation arm ran");
        assert!(
            (sim.mean_waste - r.model_waste).abs() < 0.02,
            "sim {} vs model {}",
            sim.mean_waste,
            r.model_waste
        );
    }

    #[test]
    fn simulation_arm_reports_statistics_and_gaps() {
        let spec = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::Alpha, vec![0.5]))
            .protocols(vec![Protocol::AbftPeriodicCkpt])
            .replications(50);
        let results = spec.run().unwrap();
        assert_eq!(results.results.len(), 1);
        let r = &results.results[0];
        let sim = r.sim.expect("simulation arm ran");
        assert_eq!(sim.replications, 50);
        assert_eq!(results.total_replications(), 50);
        assert!(sim.mean_waste > 0.0 && sim.mean_waste < 1.0);
        assert!(results.worst_model_sim_gap().unwrap() < 0.06);
        let table = results.to_table();
        assert!(!table.is_empty());
    }

    #[test]
    fn adaptive_budget_uses_fewer_replications_per_easy_point() {
        let spec = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::Alpha, vec![0.3, 0.8]))
            .protocols(vec![Protocol::AbftPeriodicCkpt])
            .budget(ReplicationBudget::Adaptive {
                rel_precision: 0.05,
                min: 50,
                max: 1_000,
            });
        let results = spec.run().unwrap();
        for r in &results.results {
            let sim = r.sim.expect("adaptive budgets always simulate");
            assert!(sim.replications >= 50);
            assert!(
                sim.replications < 1_000,
                "5 % precision should stop early, used {}",
                sim.replications
            );
            assert!(sim.ci95_waste <= 0.05 * sim.mean_waste);
        }
        // The rendered table reports the replications actually used.
        let table = results.to_table();
        assert!(results.render(OutputFormat::Csv).lines().next().unwrap().contains("reps"));
        assert!(!table.is_empty());
    }

    #[test]
    fn paired_sweeps_report_deltas_and_match_serial_execution() {
        let spec = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::Alpha, vec![0.8]))
            .replications(60)
            .paired(true);
        let par = spec.run().unwrap();
        let ser = spec.run_serial().unwrap();
        assert_eq!(par.results, ser.results);
        assert_eq!(par.results.len(), 3);
        // Baseline row (pure) carries no delta; the others do.
        assert!(par.results[0].paired.is_none());
        for r in &par.results[1..] {
            let d = r.paired.expect("non-baseline rows carry a delta");
            assert_eq!(d.baseline, Protocol::PurePeriodicCkpt);
            let sim = r.sim.unwrap();
            let marginal = sim.mean_waste - par.results[0].sim.unwrap().mean_waste;
            assert!((d.mean - marginal).abs() < 1e-12);
            // CRN pairing: the delta interval is no wider than the
            // independent-runs interval.
            let independent = (sim.ci95_waste.powi(2)
                + par.results[0].sim.unwrap().ci95_waste.powi(2))
            .sqrt();
            assert!(d.ci95 <= independent, "paired {} vs independent {independent}", d.ci95);
        }
        let csv = par.render(OutputFormat::Csv);
        assert!(csv.lines().next().unwrap().contains("paired_delta"));
    }

    /// A hand-built result set: `wastes[i] = (pure, composite)` per point.
    fn synthetic(
        axes: Vec<Parameter>,
        points: Vec<Vec<(Parameter, f64)>>,
        wastes: &[(f64, f64)],
    ) -> SweepResults {
        let results = wastes
            .iter()
            .enumerate()
            .flat_map(|(i, &(pure, composite))| {
                [
                    (Protocol::PurePeriodicCkpt, pure),
                    (Protocol::AbftPeriodicCkpt, composite),
                ]
                .map(|(protocol, waste)| PointResult {
                    index: i,
                    protocol,
                    model_waste: waste,
                    expected_failures: 0.0,
                    sim: None,
                    paired: None,
                })
            })
            .collect();
        SweepResults {
            name: "synthetic".into(),
            budget: ReplicationBudget::Fixed(0),
            paired: false,
            failure: FailureSpec::Exponential,
            failure_scenario: ScenarioSpec::Iid,
            antithetic: false,
            model_gap: false,
            axes,
            points,
            elapsed_seconds: 0.0,
            results,
        }
    }

    #[test]
    fn crossover_walks_the_axis_slice_not_raw_grid_order() {
        // 3 MTBF x 2 alpha grid, last axis fastest.  The composite wins at
        // (mtbf=100, alpha=0.9) — a point of a *different* alpha slice that
        // raw grid order visits early — and genuinely crosses over on the
        // origin slice (alpha = 0.1) between mtbf 200 and 300.  The old
        // first-satisfying-point walk reported 100; the slice walk must
        // report the true sign change at 300.
        let mut points = Vec::new();
        for mtbf in [100.0, 200.0, 300.0] {
            for alpha in [0.1, 0.9] {
                points.push(vec![(Parameter::Mtbf, mtbf), (Parameter::Alpha, alpha)]);
            }
        }
        let wastes = [
            (0.5, 0.6), // (100, 0.1): pure wins
            (0.5, 0.4), // (100, 0.9): composite wins — wrong slice!
            (0.5, 0.6), // (200, 0.1): pure wins
            (0.5, 0.4), // (200, 0.9)
            (0.5, 0.4), // (300, 0.1): composite wins — the real crossover
            (0.5, 0.4), // (300, 0.9)
        ];
        let results = synthetic(
            vec![Parameter::Mtbf, Parameter::Alpha],
            points,
            &wastes,
        );
        assert_eq!(results.crossover(Parameter::Mtbf), Some(300.0));
        assert_eq!(results.crossover_bracket(Parameter::Mtbf), Some((200.0, 300.0)));
        // The alpha axis' origin slice (mtbf = 100) has its own sign change
        // between alpha 0.1 and 0.9.
        assert_eq!(results.crossover(Parameter::Alpha), Some(0.9));
        // An axis that was never swept has no slice at all.
        assert_eq!(results.crossover(Parameter::Rho), None);
    }

    #[test]
    fn crossover_requires_a_true_sign_change_and_sorts_the_axis() {
        let points = |values: &[f64]| {
            values
                .iter()
                .map(|&v| vec![(Parameter::Nodes, v)])
                .collect::<Vec<_>>()
        };
        // Composite dominant from the first point: no sign change in range.
        let dominant = synthetic(
            vec![Parameter::Nodes],
            points(&[1e3, 1e4, 1e5]),
            &[(0.5, 0.4), (0.5, 0.4), (0.5, 0.3)],
        );
        assert_eq!(
            dominant.crossover_outcome(Parameter::Nodes),
            CrossoverOutcome::CompositeDominant
        );
        assert_eq!(dominant.crossover(Parameter::Nodes), None);
        // Composite never wins.
        let never = synthetic(
            vec![Parameter::Nodes],
            points(&[1e3, 1e4]),
            &[(0.5, 0.6), (0.5, 0.7)],
        );
        assert_eq!(never.crossover_outcome(Parameter::Nodes), CrossoverOutcome::NoCrossover);
        assert_eq!(never.crossover(Parameter::Nodes), None);
        // Axis values declared in descending order: the walk is by ascending
        // coordinate, so the crossover is still the smallest winning value.
        let descending = synthetic(
            vec![Parameter::Nodes],
            points(&[1e5, 1e4, 1e3]),
            &[(0.5, 0.4), (0.5, 0.4), (0.5, 0.6)],
        );
        assert_eq!(descending.crossover(Parameter::Nodes), Some(1e4));
        assert_eq!(descending.crossover_bracket(Parameter::Nodes), Some((1e3, 1e4)));
    }

    #[test]
    fn weibull_shape_axis_drives_the_simulation_clock() {
        let spec = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::WeibullShape, vec![0.7, 1.0]))
            .protocols(vec![Protocol::AbftPeriodicCkpt])
            .replications(30);
        let results = spec.run().unwrap();
        assert_eq!(results.grid_points(), 2);
        let shape07 = results.results[0].sim.unwrap();
        let shape10 = results.results[1].sim.unwrap();
        // Different shapes, same seed stream: genuinely different adversity.
        assert_ne!(shape07.mean_waste, shape10.mean_waste);
        // The model arm follows the clock: the k = 0.7 point carries the
        // Weibull-corrected (lower) prediction, the k = 1 point the
        // exponential one, bit for bit.
        assert!(results.results[0].model_waste < results.results[1].model_waste);
        assert_eq!(results.model_label(0), "weibull-corrected(k=0.7)");
        let exponential_model = ft_sim::validate::model_waste(
            Protocol::AbftPeriodicCkpt,
            &figure7_base(),
        );
        assert_eq!(results.results[1].model_waste.to_bits(), exponential_model.to_bits());
        // Weibull with k = 1 degenerates to the exponential clock (up to the
        // ulp-level rounding of the Lanczos Γ(2) in the scale calibration).
        let exponential = SweepSpec::new("t", figure7_base())
            .protocols(vec![Protocol::AbftPeriodicCkpt])
            .replications(30)
            .run()
            .unwrap();
        // Seeds differ per point index; compare against a one-point weibull
        // sweep so the indices line up.
        let k1 = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::WeibullShape, vec![1.0]))
            .protocols(vec![Protocol::AbftPeriodicCkpt])
            .replications(30)
            .run()
            .unwrap();
        let (a, b) = (
            k1.results[0].sim.unwrap().mean_waste,
            exponential.results[0].sim.unwrap().mean_waste,
        );
        assert!((a - b).abs() < 1e-9, "k=1 {a} vs exponential {b}");
    }

    #[test]
    fn sweep_wide_weibull_spec_and_invalid_shapes() {
        let weibull = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::Alpha, vec![0.5]))
            .protocols(vec![Protocol::AbftPeriodicCkpt])
            .failure_model(FailureSpec::Weibull { shape: 0.7 })
            .replications(25);
        let exponential = weibull.clone().failure_model(FailureSpec::Exponential);
        let w = weibull.run().unwrap();
        assert_eq!(w.failure, FailureSpec::Weibull { shape: 0.7 });
        let e = exponential.run().unwrap();
        assert_ne!(
            w.results[0].sim.unwrap().mean_waste,
            e.results[0].sim.unwrap().mean_waste
        );
        // Invalid shapes are rejected at expansion, not mid-grid.
        assert!(weibull
            .clone()
            .failure_model(FailureSpec::Weibull { shape: 0.0 })
            .expand()
            .is_err());
        let bad_axis = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::WeibullShape, vec![0.7, -1.0]));
        assert!(bad_axis.expand().is_err());
    }

    #[test]
    fn antithetic_sweeps_pair_seeds_and_tighten_intervals() {
        let base = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::Alpha, vec![0.5]))
            .protocols(vec![Protocol::PurePeriodicCkpt]);
        let anti = base.clone().replications(100).antithetic(true).run().unwrap();
        let plain = base.replications(200).run().unwrap();
        assert!(anti.antithetic);
        // 100 pair samples = 200 executions, matching the plain run.
        assert_eq!(anti.total_replications(), 100);
        assert_eq!(anti.total_executions(), 200);
        assert_eq!(plain.total_executions(), 200);
        let (a, p) = (anti.results[0].sim.unwrap(), plain.results[0].sim.unwrap());
        assert!((a.mean_waste - p.mean_waste).abs() < 0.01);
        assert!(
            a.ci95_waste < p.ci95_waste,
            "antithetic {} vs plain {}",
            a.ci95_waste,
            p.ci95_waste
        );
        // Reproducible, and paired mode composes with antithetic pairing.
        assert_eq!(anti.results, anti.clone().results);
        let paired = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::Alpha, vec![0.5]))
            .replications(40)
            .paired(true)
            .antithetic(true)
            .run()
            .unwrap();
        assert_eq!(paired.results.len(), 3);
        for r in &paired.results[1..] {
            assert!(r.paired.is_some());
        }
    }

    #[test]
    fn model_gap_columns_and_summary_follow_the_failure_spec() {
        let spec = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::Alpha, vec![0.5]))
            .protocols(vec![Protocol::PurePeriodicCkpt])
            .replications(150)
            .model_gap(true);
        let exponential = spec.clone().run().unwrap();
        let weibull = spec
            .failure_model(FailureSpec::Weibull { shape: 0.7 })
            .run()
            .unwrap();
        // Gap bookkeeping: gap, its CI (the simulated waste's Welford CI)
        // and significance are exposed per task.
        let r = &exponential.results[0];
        assert_eq!(r.model_sim_gap_ci95(), Some(r.sim.unwrap().ci95_waste));
        assert!(r.model_sim_gap_significant().is_some());
        // The Weibull-corrected model arm tracks the Weibull clock far
        // better than the exponential formula would: its |gap| must be
        // well below the correction it applies.
        let exp_model = r.model_waste;
        let weibull_r = &weibull.results[0];
        assert!(weibull_r.model_waste < exp_model);
        let corrected_gap = weibull_r.model_sim_gap().unwrap().abs();
        let uncorrected_gap = (weibull_r.sim.unwrap().mean_waste - exp_model).abs();
        assert!(
            corrected_gap < uncorrected_gap,
            "corrected {corrected_gap} vs uncorrected {uncorrected_gap}"
        );
        // Rendered output carries the gap columns and the model label.
        let csv = weibull.render(OutputFormat::Csv);
        let header = csv.lines().next().unwrap();
        assert!(header.contains("model") && header.contains("gap_rel") && header.contains("gap_sig"));
        assert!(csv.contains("weibull-corrected(k=0.7)"));
        assert_eq!(weibull.model_label(0), "weibull-corrected(k=0.7)");
        assert!(weibull.mean_abs_model_sim_gap().is_some());
        let (significant, total) = weibull.significant_gap_counts();
        assert_eq!(total, 1);
        assert!(significant <= total);
    }

    #[test]
    fn model_seeded_refinement_spends_fewer_simulated_probes() {
        let budget = ReplicationBudget::AdaptiveDelta {
            rel_precision: 0.05,
            min: 40,
            max: 400,
        };
        let spec = SweepSpec::scaling("t", WeakScalingScenario::figure9()).budget(budget);
        let seeded = CrossoverRefiner::new(spec.clone(), Parameter::Nodes)
            .tolerance(0.02)
            .refine(1e5, 1e6)
            .unwrap();
        let unseeded = CrossoverRefiner::new(spec, Parameter::Nodes)
            .tolerance(0.02)
            .model_seed(false)
            .refine(1e5, 1e6)
            .unwrap();
        assert!(seeded.converged && unseeded.converged);
        assert!(seeded.model_crossover.is_some());
        assert!(unseeded.model_crossover.is_none());
        // Both land on compatible crossovers…
        let gap = (seeded.crossover - unseeded.crossover).abs() / unseeded.crossover;
        assert!(gap < 0.05, "seeded {} vs unseeded {}", seeded.crossover, unseeded.crossover);
        // …but the seeded run bisects a window around the model crossover
        // instead of the full decade bracket: fewer simulated probes and
        // fewer simulated executions.
        assert!(
            seeded.probes.len() < unseeded.probes.len(),
            "seeded {} probes vs unseeded {}",
            seeded.probes.len(),
            unseeded.probes.len()
        );
        assert!(seeded.total_replications() < unseeded.total_replications());
    }

    #[test]
    fn bias_aware_window_survives_the_fig9_weibull_model_bias() {
        // Under a Weibull k=0.7 clock the fig9 model crossover used to sit
        // ~13 % from the simulated one, so the fixed 5 % seed window was
        // rejected and wasted its two verification probes.  The blended
        // rework law shrank that bias to ~3 %, so the real-world rejection
        // case is gone (asserted below — the fixed window now survives);
        // the reject-then-fall-back path is pinned instead with a window
        // deliberately sized from a far-too-small bias, and the window
        // sized from the seeding grid's *measured* bias must survive it.
        let mut spec = SweepSpec::scaling("t", WeakScalingScenario::figure9()).seed(42);
        spec.failure = FailureSpec::Weibull { shape: 0.7 };
        spec.budget = ReplicationBudget::AdaptiveDelta {
            rel_precision: 0.05,
            min: 100,
            max: 1000,
        };
        let seeding = SweepSpec {
            budget: ReplicationBudget::Fixed(0),
            paired: false,
            axes: vec![Axis::decades(Parameter::Nodes, 3, 6, 1)],
            protocols: vec![Protocol::PurePeriodicCkpt, Protocol::AbftPeriodicCkpt],
            ..spec.clone()
        };
        let (below, above) = seeding
            .run()
            .unwrap()
            .crossover_bracket(Parameter::Nodes)
            .unwrap();
        let gap = SweepSpec {
            budget: spec.budget,
            ..seeding
        }
        .model_gap(true)
        .with_simulation_arm()
        .run()
        .unwrap();
        let bias = gap
            .crossover_model_sim_bias(Parameter::Nodes)
            .expect("the simulated seeding grid measures a crossover bias");

        // A tight tolerance keeps the model bracket (and with it the
        // `3 × bracket` component of the window margin) far below the
        // measured bias, so an under-sized bias is *guaranteed* to produce
        // a window the simulation rejects.
        let refiner = CrossoverRefiner::new(spec, Parameter::Nodes).tolerance(0.002);
        let fixed = refiner.refine_with_bias(below, above, None).unwrap();
        assert!(
            fixed.model_crossover.is_some(),
            "the blended rework law holds the fig9 k=0.7 model bias inside \
             the fixed 5% margin — the fixed window must now survive"
        );
        let narrow = refiner.refine_with_bias(below, above, Some(1.0)).unwrap();
        assert!(
            narrow.model_crossover.is_none(),
            "a window sized from a 1-node bias cannot contain the simulated \
             crossover — it must be rejected and fall back to the bracket"
        );
        let aware = refiner.refine_with_bias(below, above, Some(bias)).unwrap();
        assert!(aware.model_crossover.is_some(), "bias-sized window rejected");
        // The accepted window skips the rejected attempt's wasted
        // verification probes and the full-bracket bisection they force.
        assert!(
            aware.probes.len() < narrow.probes.len(),
            "bias-aware {} probes vs rejected-window {}",
            aware.probes.len(),
            narrow.probes.len()
        );
        assert!(aware.total_replications() < narrow.total_replications());
        // All runs still localise compatible crossovers inside the bracket.
        let gap_rel = (aware.crossover - narrow.crossover).abs() / narrow.crossover;
        assert!(gap_rel < 0.05, "aware {} vs rejected {}", aware.crossover, narrow.crossover);
        // refine_from wires the measured bias through end to end.
        let from_grid = refiner.refine_from(&gap).unwrap();
        assert!(from_grid.model_crossover.is_some());
    }

    #[test]
    fn refiner_localises_the_model_crossover_of_fig9() {
        let spec = SweepSpec::scaling("t", WeakScalingScenario::figure9());
        let grid = SweepSpec {
            axes: vec![Axis::decades(Parameter::Nodes, 3, 6, 1)],
            ..spec.clone()
        }
        .run()
        .unwrap();
        let refiner = CrossoverRefiner::new(spec, Parameter::Nodes).tolerance(0.01);
        let refinement = refiner.refine_from(&grid).unwrap();
        assert!(refinement.converged);
        assert!(refinement.achieved_tolerance <= 0.01);
        // Model probes are exact and free.
        assert_eq!(refinement.total_replications(), 0);
        assert!(refinement.probes.iter().all(|p| p.decided));
        // The located coordinate separates the two regimes: the bracket ends
        // carry opposite signs by construction.
        let (pure_at, composite_at) = refinement.bracket;
        assert!(pure_at < refinement.crossover && refinement.crossover < composite_at);
        assert!(refinement.crossover > 1e5 && refinement.crossover < 2e5);
        // A degenerate "bracket" with equal signs is rejected.
        let refiner = CrossoverRefiner::new(
            SweepSpec::scaling("t", WeakScalingScenario::figure9()),
            Parameter::Nodes,
        );
        assert!(refiner.refine(1e3, 1e4).is_err());
        assert!(refiner.refine(-1.0, 1e4).is_err());
    }

    #[test]
    fn rendering_covers_all_three_formats() {
        let spec = SweepSpec::new("t", figure7_base())
            .axis(Axis::values(Parameter::Alpha, vec![0.0, 1.0]))
            .protocols(vec![Protocol::PurePeriodicCkpt]);
        let results = spec.run().unwrap();
        let text = results.render(OutputFormat::Table);
        assert!(text.contains("model_waste"));
        let csv = results.render(OutputFormat::Csv);
        assert!(csv.lines().next().unwrap().starts_with("alpha,protocol"));
        let json = results.render(OutputFormat::Json);
        assert!(json.trim_start().starts_with('['));
        assert!(json.contains("\"model_waste\""));
    }
}
