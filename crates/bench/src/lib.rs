//! # ft-bench — benchmark harness, sweep subsystem and figure regeneration
//!
//! The [`experiment`] module is the heart of the crate: a declarative
//! [`SweepSpec`] expands `(α × ρ × µ × N × C × φ)`
//! axes into a point grid and executes the **whole grid in parallel** with
//! deterministic per-task seeds.  The binaries of this crate are thin
//! `SweepSpec` definitions regenerating every figure of the paper's
//! evaluation section:
//!
//! | Binary | Paper artefact | Sweep definition |
//! |--------|----------------|------------------|
//! | `fig7` | Figures 7a–7f  | MTBF × α grid, model + simulation arms, per protocol |
//! | `fig8` | Figure 8       | node-count axis, fixed α = 0.8, bandwidth-bound checkpoints |
//! | `fig9` | Figure 9       | node-count axis, variable α (LIBRARY `O(n³)`, GENERAL `O(n²)`) |
//! | `fig10`| Figure 10      | same with constant checkpoint cost; `--break-even` adds a C = R axis |
//! | `sweep`| generic        | any one-dimensional parameter axis around the headline scenario |
//! | `crossover` | §V-C crossover | [`CrossoverRefiner`] bisection on paired-delta adaptive probes |
//!
//! Every binary shares the CLI knobs `--replications`, `--precision`,
//! `--delta-precision`, `--paired`, `--antithetic`, `--model-gap`,
//! `--failure-model`/`--weibull-shape`, `--seed`, `--epochs`, `--threads`,
//! `--serial` and `--format table|csv|json`, and renders through the shared
//! writer in [`output`] (the full flag-reference table lives in the
//! top-level `README.md`).
//!
//! The Criterion benches (`benches/`) measure the performance of the
//! reproduction itself (whole-grid sweep throughput, simulator throughput,
//! ABFT factorization overhead, checkpoint capture/restore costs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiment;
pub mod output;

pub use experiment::{
    report_crossover, run_cli, Axis, CrossoverOutcome, CrossoverProbe, CrossoverRefinement,
    CrossoverRefiner, Parameter, SweepResults, SweepSpec,
};
pub use output::{
    csv_line, host_json_fields, host_logical_cores, render_table, OutputFormat, Table,
};

use ft_composite::params::ModelParams;

/// Parses `--key value` style arguments from a raw argument list.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments (skipping the binary name).
    pub fn capture() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds an argument set from explicit strings (for tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Self { raw }
    }

    /// Whether a bare flag (e.g. `--break-even`) is present.
    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    /// The value following `--name`, parsed, or `default`.
    pub fn value<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.maybe_value(name).unwrap_or(default)
    }

    /// The value following `--name`, parsed, when the flag is present.
    pub fn maybe_value<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// The string value following `--name`, or `default`.
    pub fn string(&self, name: &str, default: &str) -> String {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

/// The base parameter set of the Figure-7 study (everything but MTBF and α).
pub fn figure7_base() -> ModelParams {
    ModelParams::paper_figure7(0.5, ft_platform::units::minutes(120.0))
        .expect("paper parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_values_and_defaults() {
        let args = Args::from_vec(
            ["--replications", "250", "--protocol", "pure", "--break-even"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(args.value("--replications", 100usize), 250);
        assert_eq!(args.value("--missing", 7u32), 7);
        assert_eq!(args.string("--protocol", "all"), "pure");
        assert_eq!(args.string("--other", "all"), "all");
        assert!(args.flag("--break-even"));
        assert!(!args.flag("--simulate"));
    }

    #[test]
    fn figure7_base_matches_the_paper() {
        let p = figure7_base();
        assert_eq!(p.rho, 0.8);
        assert_eq!(p.phi, 1.03);
        assert_eq!(p.abft_reconstruction, 2.0);
    }
}
