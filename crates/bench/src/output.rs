//! Plain-text output helpers shared by the figure binaries.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        render_table(&self.headers, &self.rows)
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_line(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&csv_line(row));
            out.push('\n');
        }
        out
    }
}

/// Renders one CSV line.
pub fn csv_line<S: AsRef<str>>(cells: &[S]) -> String {
    cells
        .iter()
        .map(|c| c.as_ref().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders a column-aligned text table.
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a crude ASCII heatmap of `values[row][col]` using a density ramp;
/// used by the `heatmap` example and the `fig7` binary's `--ascii` mode.
pub fn ascii_heatmap(values: &[Vec<f64>], min: f64, max: f64) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let span = (max - min).max(1e-12);
    let mut out = String::new();
    for row in values {
        for &v in row {
            let t = ((v - min) / span).clamp(0.0, 1.0);
            let idx = ((RAMP.len() - 1) as f64 * t).round() as usize;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = Table::new(&["nodes", "waste"]);
        t.push_row(vec!["1000".into(), "0.01".into()]);
        t.push_row(vec!["1000000".into(), "0.35".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.render();
        assert!(text.contains("nodes"));
        assert!(text.lines().count() >= 4);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "nodes,waste");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn heatmap_uses_denser_glyphs_for_larger_values() {
        let map = ascii_heatmap(&[vec![0.0, 1.0]], 0.0, 1.0);
        let chars: Vec<char> = map.trim_end().chars().collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0], ' ');
        assert_eq!(chars[1], '@');
    }

    #[test]
    fn csv_line_joins_cells() {
        assert_eq!(csv_line(&["a", "b", "c"]), "a,b,c");
    }
}
