//! The shared output writer of the figure binaries and the sweep subsystem:
//! one [`Table`] representation rendered as aligned text, CSV or JSON.

/// The output format of a sweep or figure binary
/// (`--format table|csv|json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Column-aligned human-readable text.
    #[default]
    Table,
    /// Comma-separated values with a header line.
    Csv,
    /// A JSON array of one object per row.
    Json,
}

impl OutputFormat {
    /// Parses the CLI spelling.
    pub fn parse(name: &str) -> Option<OutputFormat> {
        match name {
            "table" | "text" => Some(OutputFormat::Table),
            "csv" => Some(OutputFormat::Csv),
            "json" => Some(OutputFormat::Json),
            _ => None,
        }
    }
}

/// Logical cores of the host, recorded in every `BENCH_*.json` payload so
/// the files are interpretable (single-core containers vs real hosts).
pub fn host_logical_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The uniform host block every bench reporter embeds: the logical core
/// count and, on single-core hosts, an explicit annotation instead of a
/// silently meaningless parallel figure (grid- and point-parallel paths
/// collapse to serial there, so any recorded speedup measures engine
/// substitution only).
pub fn host_json_fields() -> String {
    let cores = host_logical_cores();
    if cores == 1 {
        format!(
            "\"host_logical_cores\": {cores}, \"single_core_annotation\": \
             \"single logical core: thread-parallel paths collapse to \
             serial; speedups measure engine substitution only\""
        )
    } else {
        format!("\"host_logical_cores\": {cores}")
    }
}

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        render_table(&self.headers, &self.rows)
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_line(&self.headers));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&csv_line(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a JSON array of objects (one per row, keyed by
    /// the column headers).  Cells that parse as finite numbers are emitted
    /// as JSON numbers, non-finite ones as `null`, everything else as
    /// strings.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("  {");
            for (j, (header, cell)) in self.headers.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(header));
                out.push_str(": ");
                out.push_str(&json_cell(cell));
            }
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }

    /// Renders the table in the requested format.
    pub fn write(&self, format: OutputFormat) -> String {
        match format {
            OutputFormat::Table => self.render(),
            OutputFormat::Csv => self.to_csv(),
            OutputFormat::Json => self.to_json(),
        }
    }
}

/// Encodes one table cell as a JSON value.
fn json_cell(cell: &str) -> String {
    match cell.parse::<f64>() {
        Ok(v) if v.is_finite() => {
            // Keep the cell's decimal rendering (it is already a valid JSON
            // number unless it carries an explicit '+').
            cell.trim_start_matches('+').to_string()
        }
        Ok(_) => "null".to_string(),
        Err(_) if cell.is_empty() => "null".to_string(),
        Err(_) => json_string(cell),
    }
}

/// Encodes a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders one CSV line.
pub fn csv_line<S: AsRef<str>>(cells: &[S]) -> String {
    cells
        .iter()
        .map(|c| c.as_ref().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders a column-aligned text table.
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a crude ASCII heatmap of `values[row][col]` using a density ramp;
/// used by the `heatmap` example and the `fig7` binary's `--ascii` mode.
pub fn ascii_heatmap(values: &[Vec<f64>], min: f64, max: f64) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let span = (max - min).max(1e-12);
    let mut out = String::new();
    for row in values {
        for &v in row {
            let t = ((v - min) / span).clamp(0.0, 1.0);
            let idx = ((RAMP.len() - 1) as f64 * t).round() as usize;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_and_csv() {
        let mut t = Table::new(&["nodes", "waste"]);
        t.push_row(vec!["1000".into(), "0.01".into()]);
        t.push_row(vec!["1000000".into(), "0.35".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.render();
        assert!(text.contains("nodes"));
        assert!(text.lines().count() >= 4);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "nodes,waste");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn heatmap_uses_denser_glyphs_for_larger_values() {
        let map = ascii_heatmap(&[vec![0.0, 1.0]], 0.0, 1.0);
        let chars: Vec<char> = map.trim_end().chars().collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0], ' ');
        assert_eq!(chars[1], '@');
    }

    #[test]
    fn csv_line_joins_cells() {
        assert_eq!(csv_line(&["a", "b", "c"]), "a,b,c");
    }

    #[test]
    fn json_rendering_types_cells() {
        let mut t = Table::new(&["nodes", "protocol", "diff", "gap"]);
        t.push_row(vec!["1000".into(), "ABFT&PeriodicCkpt".into(), "+0.01".into(), "inf".into()]);
        t.push_row(vec!["2000".into(), "Pure".into(), "-0.02".into(), "".into()]);
        let json = t.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"nodes\": 1000"));
        assert!(json.contains("\"protocol\": \"ABFT&PeriodicCkpt\""));
        assert!(json.contains("\"diff\": 0.01"), "{json}");
        assert!(json.contains("\"diff\": -0.02"));
        assert!(json.contains("\"gap\": null"));
        // Exactly one comma between the two row objects.
        assert_eq!(json.matches("},\n").count(), 1);
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("x\\y"), "\"x\\\\y\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
    }

    #[test]
    fn format_parsing_and_dispatch() {
        assert_eq!(OutputFormat::parse("table"), Some(OutputFormat::Table));
        assert_eq!(OutputFormat::parse("csv"), Some(OutputFormat::Csv));
        assert_eq!(OutputFormat::parse("json"), Some(OutputFormat::Json));
        assert_eq!(OutputFormat::parse("yaml"), None);
        let mut t = Table::new(&["a"]);
        t.push_row(vec!["1".into()]);
        assert_eq!(t.write(OutputFormat::Csv), t.to_csv());
        assert_eq!(t.write(OutputFormat::Json), t.to_json());
        assert_eq!(t.write(OutputFormat::Table), t.render());
    }
}
