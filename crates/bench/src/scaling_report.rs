//! Shared driver for the weak-scaling figures (Figures 8, 9 and 10).

use ft_composite::scaling::{paper_node_counts, ScalingPoint, WeakScalingScenario};

use crate::{Args, Table};

/// Node counts to evaluate: the paper's four decades by default, optionally
/// densified with `--points-per-decade`.
pub fn node_axis(args: &Args) -> Vec<f64> {
    let per_decade: usize = args.value("--points-per-decade", 1);
    if per_decade <= 1 {
        return paper_node_counts();
    }
    let mut nodes = Vec::new();
    let (lo, hi) = (3.0_f64, 6.0_f64); // 10^3 .. 10^6
    let steps = ((hi - lo) * per_decade as f64).round() as usize;
    for i in 0..=steps {
        nodes.push(10f64.powf(lo + i as f64 / per_decade as f64));
    }
    nodes
}

/// Evaluates the scenario over the node axis and renders the figure's rows.
pub fn report(title: &str, scenario: &WeakScalingScenario, args: &Args) -> (Vec<ScalingPoint>, String) {
    let nodes = node_axis(args);
    let points = scenario
        .sweep(&nodes)
        .expect("paper node counts are valid");
    let mut table = Table::new(&[
        "nodes",
        "alpha",
        "waste_pure",
        "waste_bi",
        "waste_abft",
        "faults_pure",
        "faults_bi",
        "faults_abft",
    ]);
    for p in &points {
        table.push_row(vec![
            format!("{:.0}", p.nodes),
            format!("{:.3}", p.alpha),
            format!("{:.4}", p.pure.waste.value()),
            format!("{:.4}", p.bi.waste.value()),
            format!("{:.4}", p.composite.waste.value()),
            format!("{:.1}", p.pure.expected_failures),
            format!("{:.1}", p.bi.expected_failures),
            format!("{:.1}", p.composite.expected_failures),
        ]);
    }
    let body = if args.flag("--csv") {
        table.to_csv()
    } else {
        table.render()
    };
    let mut out = format!("# {title}\n");
    out.push_str(&format!(
        "# reference: {} nodes, epoch {:.0} s, C = R = {:.0} s, MTBF {:.0} s, {} epochs\n",
        scenario.reference_nodes,
        scenario.epoch_at_reference,
        scenario.checkpoint_at_reference,
        scenario.mtbf_at_reference,
        scenario.epochs
    ));
    out.push_str(&body);
    (points, out)
}

/// Finds the crossover node count (smallest evaluated count at which the
/// composite protocol's waste drops below PurePeriodicCkpt's), if any.
pub fn crossover(points: &[ScalingPoint]) -> Option<f64> {
    points
        .iter()
        .find(|p| p.composite.waste.value() < p.pure.waste.value())
        .map(|p| p.nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_axis_is_the_papers_four_decades() {
        let args = Args::from_vec(vec![]);
        assert_eq!(node_axis(&args), vec![1e3, 1e4, 1e5, 1e6]);
        let dense = Args::from_vec(vec!["--points-per-decade".into(), "2".into()]);
        let axis = node_axis(&dense);
        assert_eq!(axis.len(), 7);
        assert!((axis[0] - 1e3).abs() < 1e-6);
        assert!((axis[6] - 1e6).abs() < 1.0);
    }

    #[test]
    fn report_produces_one_row_per_node_count() {
        let args = Args::from_vec(vec![]);
        let (points, text) = report("Figure 8", &WeakScalingScenario::figure8(), &args);
        assert_eq!(points.len(), 4);
        assert!(text.contains("waste_abft"));
        assert!(text.lines().count() >= 7);
    }

    #[test]
    fn crossover_is_detected_in_figure8() {
        let args = Args::from_vec(vec![]);
        let (points, _) = report("Figure 8", &WeakScalingScenario::figure8(), &args);
        let x = crossover(&points).expect("composite must win somewhere");
        assert!(x >= 1e5, "crossover at {x}");
    }
}
