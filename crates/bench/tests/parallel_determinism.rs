//! Tier-2 determinism contract: a whole-grid parallel sweep ([`SweepSpec::run`],
//! rayon-scheduled) must be *bit-identical* to the serial execution
//! ([`SweepSpec::run_serial`], the `--serial` CLI path) on a pinned-seed grid —
//! for every budget shape, variance-reduction mode and engine the sweep
//! subsystem dispatches to.
//!
//! The in-module unit tests pin the plain fixed-budget and paired cases; this
//! suite extends the contract across the dimensions that each derive their
//! replication counts or trace reuse at run time (adaptive stopping,
//! paired-delta stopping, antithetic pairs, Weibull clocks, the batched SoA
//! engine at several lane widths, scenario grids and the model-gap arm), where
//! a scheduling-order dependence would actually have room to hide.

use ft_bench::{figure7_base, Axis, Parameter, SweepSpec};
use ft_composite::scaling::WeakScalingScenario;
use ft_platform::failure::FailureSpec;
use ft_platform::units::minutes;
use ft_sim::ReplicationBudget;

/// Asserts `run()` == `run_serial()` field-for-field (all sim summaries are
/// `f64`s compared exactly, so this is bit-identity of every mean, CI and
/// replication count), plus run-to-run reproducibility of the parallel path.
fn assert_parallel_matches_serial(label: &str, spec: &SweepSpec) {
    let par = spec.run().unwrap();
    let ser = spec.run_serial().unwrap();
    assert_eq!(par.results, ser.results, "{label}: parallel != serial");
    let again = spec.run().unwrap();
    assert_eq!(par.results, again.results, "{label}: parallel not reproducible");
}

fn small_fig7_grid() -> SweepSpec {
    SweepSpec::new("determinism grid", figure7_base())
        .axis(Axis::values(Parameter::Mtbf, vec![minutes(90.0), minutes(240.0)]))
        .axis(Axis::values(Parameter::Alpha, vec![0.2, 0.8]))
        .seed(0xD5EE)
}

#[test]
fn adaptive_budgets_are_schedule_independent() {
    // Adaptive stopping decides each task's replication count from its own
    // running CI — the count must come out identical whichever worker ran it.
    let spec = small_fig7_grid().budget(ReplicationBudget::Adaptive {
        rel_precision: 0.10,
        min: 20,
        max: 200,
    });
    assert_parallel_matches_serial("adaptive", &spec);
}

#[test]
fn paired_delta_budgets_are_schedule_independent() {
    let spec = small_fig7_grid()
        .paired(true)
        .budget(ReplicationBudget::AdaptiveDelta {
            rel_precision: 0.10,
            min: 20,
            max: 200,
        });
    assert_parallel_matches_serial("paired-delta", &spec);
}

#[test]
fn antithetic_sweeps_are_schedule_independent() {
    let spec = small_fig7_grid().replications(30).antithetic(true);
    assert_parallel_matches_serial("antithetic", &spec);
}

#[test]
fn weibull_clocks_are_schedule_independent() {
    let mut spec = small_fig7_grid().replications(30);
    spec.failure = FailureSpec::Weibull { shape: 0.7 };
    assert_parallel_matches_serial("weibull", &spec);
}

#[test]
fn batch_lane_widths_are_schedule_independent_and_width_invariant() {
    // The batched SoA engine must neither perturb parallel-vs-serial
    // determinism nor the results themselves: every lane width reproduces
    // the scalar (lanes = 1) sweep bit-for-bit.
    let scalar = small_fig7_grid().replications(45).batch_lanes(1);
    let baseline = scalar.run_serial().unwrap();
    for lanes in [1usize, 7, 64, 256] {
        let spec = small_fig7_grid().replications(45).batch_lanes(lanes);
        assert_parallel_matches_serial(&format!("batch lanes {lanes}"), &spec);
        assert_eq!(
            spec.run().unwrap().results,
            baseline.results,
            "batch lanes {lanes} drifted from the scalar engine"
        );
    }
}

#[test]
fn point_threads_are_schedule_independent_and_thread_count_invariant() {
    // The intra-point parallel block driver must compose with grid-level
    // rayon parallelism without perturbing a bit: at every `point_threads`
    // the sweep reproduces the fully serial (point_threads = 1) results,
    // whichever of the two parallelism layers actually ran the work.
    for budget in [
        ReplicationBudget::Fixed(45),
        ReplicationBudget::Adaptive {
            rel_precision: 0.10,
            min: 20,
            max: 200,
        },
    ] {
        let serial = small_fig7_grid()
            .budget(budget)
            .batch_lanes(64)
            .point_threads(1);
        let baseline = serial.run_serial().unwrap();
        for threads in [0usize, 2, 4] {
            let spec = small_fig7_grid()
                .budget(budget)
                .batch_lanes(64)
                .point_threads(threads);
            assert_parallel_matches_serial(&format!("{budget:?} point threads {threads}"), &spec);
            assert_eq!(
                spec.run().unwrap().results,
                baseline.results,
                "{budget:?} point threads {threads} drifted from the serial block driver"
            );
        }
    }
}

#[test]
fn paired_point_threads_are_thread_count_invariant() {
    // Same contract for the paired (common-random-numbers) arm, whose
    // stopping rule reads per-trace deltas accumulated in replication order.
    let serial = small_fig7_grid()
        .paired(true)
        .budget(ReplicationBudget::AdaptiveDelta {
            rel_precision: 0.10,
            min: 20,
            max: 200,
        })
        .batch_lanes(32)
        .point_threads(1);
    let baseline = serial.run_serial().unwrap();
    for threads in [2usize, 3] {
        let spec = small_fig7_grid()
            .paired(true)
            .budget(ReplicationBudget::AdaptiveDelta {
                rel_precision: 0.10,
                min: 20,
                max: 200,
            })
            .batch_lanes(32)
            .point_threads(threads);
        assert_parallel_matches_serial(&format!("paired point threads {threads}"), &spec);
        assert_eq!(
            spec.run().unwrap().results,
            baseline.results,
            "paired point threads {threads} drifted from the serial block driver"
        );
    }
}

#[test]
fn scenario_grids_with_model_gap_are_schedule_independent() {
    // Scenario (weak-scaling) grids derive per-point parameters, and the
    // model-gap arm attaches model wastes alongside the simulation.
    let spec = SweepSpec::scaling("fig9 determinism", WeakScalingScenario::figure9())
        .axis(Axis::decades(Parameter::Nodes, 3, 5, 2))
        .replications(25)
        .seed(0xD5EE)
        .model_gap(true)
        .with_simulation_arm();
    assert_parallel_matches_serial("fig9 model-gap", &spec);
}
