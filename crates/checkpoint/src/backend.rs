//! Pluggable storage backends for serialized checkpoint streams.
//!
//! A [`CheckpointBackend`] stores opaque frame streams keyed by generation.
//! Three implementations ship with the crate:
//!
//! * [`MemoryBackend`] — a `BTreeMap`, for tests and simulation;
//! * [`ChunkedFileBackend`] — real files in a private temp directory, written
//!   in bounded chunks, fsync'd, and **committed by atomic rename** so a
//!   crash mid-write leaves either no generation or a complete one;
//! * [`FaultInjectingBackend`] — a decorator that deterministically (seeded)
//!   damages writes (bit flips, truncations, torn writes at frame
//!   boundaries) and makes reads fail transiently, so the restore path's
//!   verification and graceful degradation can be exercised under a
//!   controlled fault matrix.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ft_platform::rng::{DeterministicRng, Xoshiro256};

use crate::frame::frame_boundaries;

/// Why a backend operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreFault {
    /// The requested generation is not stored.
    Missing {
        /// The generation that was requested.
        generation: u64,
    },
    /// A transient fault (timeout, contention): retrying may succeed.
    Transient {
        /// The generation the operation targeted.
        generation: u64,
    },
    /// A hard I/O error from the underlying medium.
    Io {
        /// Human-readable description of the failure.
        detail: String,
    },
}

impl std::fmt::Display for StoreFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreFault::Missing { generation } => {
                write!(f, "generation {generation} is not stored")
            }
            StoreFault::Transient { generation } => {
                write!(f, "transient fault accessing generation {generation}")
            }
            StoreFault::Io { detail } => write!(f, "storage I/O error: {detail}"),
        }
    }
}

impl std::error::Error for StoreFault {}

/// A store of opaque checkpoint streams keyed by generation.
///
/// Backends store bytes; they do not interpret frames.  `put` must be
/// all-or-nothing from the reader's perspective wherever the medium allows
/// (the file backend commits by rename); `generations` lists what is
/// retrievable, in ascending order.
pub trait CheckpointBackend {
    /// Stores `bytes` under `generation`, replacing any previous content.
    fn put(&mut self, generation: u64, bytes: &[u8]) -> Result<(), StoreFault>;

    /// Retrieves the bytes stored under `generation`.
    fn get(&mut self, generation: u64) -> Result<Vec<u8>, StoreFault>;

    /// Generations currently stored, ascending.
    fn generations(&self) -> Vec<u64>;

    /// Removes a generation (absence is not an error).
    fn delete(&mut self, generation: u64) -> Result<(), StoreFault>;

    /// Short human-readable name of the backend.
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

/// The reference backend: streams live in a `BTreeMap`.
#[derive(Debug, Default, Clone)]
pub struct MemoryBackend {
    streams: BTreeMap<u64, Vec<u8>>,
}

impl MemoryBackend {
    /// An empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently stored.
    pub fn stored_bytes(&self) -> usize {
        self.streams.values().map(Vec::len).sum()
    }
}

impl CheckpointBackend for MemoryBackend {
    fn put(&mut self, generation: u64, bytes: &[u8]) -> Result<(), StoreFault> {
        self.streams.insert(generation, bytes.to_vec());
        Ok(())
    }

    fn get(&mut self, generation: u64) -> Result<Vec<u8>, StoreFault> {
        self.streams
            .get(&generation)
            .cloned()
            .ok_or(StoreFault::Missing { generation })
    }

    fn generations(&self) -> Vec<u64> {
        self.streams.keys().copied().collect()
    }

    fn delete(&mut self, generation: u64) -> Result<(), StoreFault> {
        self.streams.remove(&generation);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "memory"
    }
}

// ---------------------------------------------------------------------------
// Chunked-file backend
// ---------------------------------------------------------------------------

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A real-file backend: each generation is one file in a private temporary
/// directory, written in bounded chunks to `gen-<id>.tmp`, `sync_all`'d, and
/// atomically renamed to `gen-<id>.ckpt`.  A crash between `put` calls can
/// therefore never expose a half-written generation: either the `.ckpt` file
/// exists complete, or the generation is absent.
#[derive(Debug)]
pub struct ChunkedFileBackend {
    dir: PathBuf,
    chunk: usize,
}

impl ChunkedFileBackend {
    /// Creates the backend with its own fresh directory under the system
    /// temp dir.  `chunk` bounds the size of individual write calls.
    pub fn new(chunk: usize) -> Result<Self, StoreFault> {
        let dir = std::env::temp_dir().join(format!(
            "ft-ckpt-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).map_err(|e| StoreFault::Io {
            detail: format!("create {}: {e}", dir.display()),
        })?;
        Ok(Self {
            dir,
            chunk: chunk.max(1),
        })
    }

    /// Directory holding the committed generation files.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn committed_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation:016x}.ckpt"))
    }
}

impl Drop for ChunkedFileBackend {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

impl CheckpointBackend for ChunkedFileBackend {
    fn put(&mut self, generation: u64, bytes: &[u8]) -> Result<(), StoreFault> {
        let tmp = self.dir.join(format!("gen-{generation:016x}.tmp"));
        let io = |what: &str, e: std::io::Error| StoreFault::Io {
            detail: format!("{what}: {e}"),
        };
        let mut f = fs::File::create(&tmp).map_err(|e| io("create tmp", e))?;
        for piece in bytes.chunks(self.chunk) {
            f.write_all(piece).map_err(|e| io("write chunk", e))?;
        }
        // Order matters: data must be durable before the rename publishes it.
        f.sync_all().map_err(|e| io("fsync", e))?;
        drop(f);
        fs::rename(&tmp, self.committed_path(generation)).map_err(|e| io("commit rename", e))?;
        Ok(())
    }

    fn get(&mut self, generation: u64) -> Result<Vec<u8>, StoreFault> {
        match fs::read(self.committed_path(generation)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreFault::Missing { generation })
            }
            Err(e) => Err(StoreFault::Io {
                detail: format!("read: {e}"),
            }),
        }
    }

    fn generations(&self) -> Vec<u64> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut gens: Vec<u64> = entries
            .filter_map(|e| {
                let name = e.ok()?.file_name().into_string().ok()?;
                let hex = name.strip_prefix("gen-")?.strip_suffix(".ckpt")?;
                u64::from_str_radix(hex, 16).ok()
            })
            .collect();
        gens.sort_unstable();
        gens
    }

    fn delete(&mut self, generation: u64) -> Result<(), StoreFault> {
        match fs::remove_file(self.committed_path(generation)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreFault::Io {
                detail: format!("delete: {e}"),
            }),
        }
    }

    fn name(&self) -> &'static str {
        "chunked-file"
    }
}

// ---------------------------------------------------------------------------
// Fault-injecting decorator
// ---------------------------------------------------------------------------

/// What the injector did to a generation's stored stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedKind {
    /// One bit of the stored stream was flipped.
    BitFlip,
    /// The stream was cut mid-frame at an arbitrary byte.
    Truncate,
    /// The stream was cut exactly at a frame boundary (complete frames, no
    /// trailer) — what a crash between write and commit looks like.
    TornWrite,
}

/// Per-operation fault probabilities of a [`FaultInjectingBackend`].
///
/// Write faults (`bit_flip`, `truncate`, `torn_write`) are drawn in the
/// fixed order torn → truncate → flip and at most one applies per `put`.
/// `transient` is drawn on `get`; a triggered transient makes
/// `max_transient_repeats` consecutive `get`s of that generation fail
/// (including the triggering one) before clearing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a `put` stores a bit-flipped copy.
    pub bit_flip: f64,
    /// Probability a `put` stores a copy truncated mid-frame.
    pub truncate: f64,
    /// Probability a `put` stores only a frame-aligned prefix (torn write).
    pub torn_write: f64,
    /// Probability a `get` fails transiently.
    pub transient: f64,
    /// How many consecutive retries a triggered transient keeps failing.
    pub max_transient_repeats: u32,
}

impl FaultPlan {
    /// A plan that injects nothing — the decorator becomes transparent.
    pub fn none() -> Self {
        Self {
            bit_flip: 0.0,
            truncate: 0.0,
            torn_write: 0.0,
            transient: 0.0,
            max_transient_repeats: 0,
        }
    }

    /// A plan injecting only the given write-fault kind with probability `p`.
    pub fn only(kind: InjectedKind, p: f64) -> Self {
        let mut plan = Self::none();
        match kind {
            InjectedKind::BitFlip => plan.bit_flip = p,
            InjectedKind::Truncate => plan.truncate = p,
            InjectedKind::TornWrite => plan.torn_write = p,
        }
        plan
    }

    /// A plan injecting only transient read faults with probability `p`,
    /// each trigger failing `repeats` consecutive reads in total.
    pub fn transient_only(p: f64, repeats: u32) -> Self {
        Self {
            transient: p,
            max_transient_repeats: repeats,
            ..Self::none()
        }
    }
}

/// A decorator around any backend that deterministically injects storage
/// faults, recording everything it injected so tests can assert that each
/// damaged generation was detected (never silently restored).
#[derive(Debug)]
pub struct FaultInjectingBackend<B: CheckpointBackend> {
    inner: B,
    plan: FaultPlan,
    rng: Xoshiro256,
    injected: Vec<(u64, InjectedKind)>,
    pending_transients: BTreeMap<u64, u32>,
}

impl<B: CheckpointBackend> FaultInjectingBackend<B> {
    /// Wraps `inner`, injecting per `plan`, seeded deterministically.
    pub fn new(inner: B, plan: FaultPlan, seed: u64) -> Self {
        Self {
            inner,
            plan,
            rng: Xoshiro256::seed_from_u64(seed),
            injected: Vec::new(),
            pending_transients: BTreeMap::new(),
        }
    }

    /// Everything injected so far, in order: `(generation, kind)`.
    pub fn injected(&self) -> &[(u64, InjectedKind)] {
        &self.injected
    }

    /// Write-fault kinds injected into one generation.
    pub fn injected_into(&self, generation: u64) -> Vec<InjectedKind> {
        self.injected
            .iter()
            .filter(|(g, _)| *g == generation)
            .map(|&(_, k)| k)
            .collect()
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Mutable access to the fault plan — lets a test arm or disarm
    /// injection between writes (e.g. commit one generation intact, then
    /// corrupt the next).
    pub fn plan_mut(&mut self) -> &mut FaultPlan {
        &mut self.plan
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.next_f64() < p
    }
}

impl<B: CheckpointBackend> CheckpointBackend for FaultInjectingBackend<B> {
    fn put(&mut self, generation: u64, bytes: &[u8]) -> Result<(), StoreFault> {
        // Draw in a fixed order so a given seed produces the same faults
        // regardless of which probabilities are non-zero.
        let torn = self.chance(self.plan.torn_write);
        let truncate = self.chance(self.plan.truncate);
        let flip = self.chance(self.plan.bit_flip);
        let mut damaged = bytes.to_vec();
        if torn {
            let bounds = frame_boundaries(bytes);
            // Keep a strict prefix of whole frames (possibly zero frames):
            // the final boundary is the full stream, so never pick it.
            if bounds.len() > 1 {
                let cut = (self.rng.next_u64() as usize) % (bounds.len() - 1);
                damaged.truncate(bounds[cut]);
            } else {
                damaged.clear();
            }
            self.injected.push((generation, InjectedKind::TornWrite));
        } else if truncate {
            if damaged.len() > 1 {
                let cut = 1 + (self.rng.next_u64() as usize) % (damaged.len() - 1);
                damaged.truncate(cut);
            }
            self.injected.push((generation, InjectedKind::Truncate));
        } else if flip {
            if !damaged.is_empty() {
                let bit = (self.rng.next_u64() as usize) % (damaged.len() * 8);
                damaged[bit / 8] ^= 1 << (bit % 8);
            }
            self.injected.push((generation, InjectedKind::BitFlip));
        }
        self.inner.put(generation, &damaged)
    }

    fn get(&mut self, generation: u64) -> Result<Vec<u8>, StoreFault> {
        if let Some(left) = self.pending_transients.get_mut(&generation) {
            if *left > 0 {
                *left -= 1;
                return Err(StoreFault::Transient { generation });
            }
            self.pending_transients.remove(&generation);
        } else if self.chance(self.plan.transient) {
            if self.plan.max_transient_repeats > 1 {
                self.pending_transients
                    .insert(generation, self.plan.max_transient_repeats - 1);
            }
            return Err(StoreFault::Transient { generation });
        }
        self.inner.get(generation)
    }

    fn generations(&self) -> Vec<u64> {
        self.inner.generations()
    }

    fn delete(&mut self, generation: u64) -> Result<(), StoreFault> {
        self.inner.delete(generation)
    }

    fn name(&self) -> &'static str {
        "fault-injecting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_stream, FrameHeader, PayloadKind};
    use ft_platform::checksum::Crc32;

    fn stream(generation: u64) -> Vec<u8> {
        let header = FrameHeader {
            generation,
            payload: PayloadKind::State,
            time: generation as f64,
        };
        let body: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        encode_stream(header, &body, 256, Crc32::new())
    }

    fn backend_round_trip<B: CheckpointBackend>(mut b: B) {
        assert!(b.generations().is_empty());
        assert!(matches!(b.get(0), Err(StoreFault::Missing { generation: 0 })));
        for generation in [3u64, 1, 7] {
            b.put(generation, &stream(generation)).unwrap();
        }
        assert_eq!(b.generations(), vec![1, 3, 7]);
        for generation in [1u64, 3, 7] {
            assert_eq!(b.get(generation).unwrap(), stream(generation));
        }
        b.delete(3).unwrap();
        b.delete(3).unwrap(); // absent is fine
        assert_eq!(b.generations(), vec![1, 7]);
        assert!(b.get(3).is_err());
        // Overwrite replaces.
        b.put(1, b"short").unwrap();
        assert_eq!(b.get(1).unwrap(), b"short");
    }

    #[test]
    fn memory_backend_round_trips() {
        backend_round_trip(MemoryBackend::new());
        assert_eq!(MemoryBackend::new().name(), "memory");
    }

    #[test]
    fn file_backend_round_trips_and_cleans_up() {
        let b = ChunkedFileBackend::new(128).unwrap();
        let dir = b.dir().to_path_buf();
        assert!(dir.exists());
        backend_round_trip(b);
        assert!(!dir.exists(), "drop must remove the backend directory");
    }

    #[test]
    fn file_backend_commit_is_atomic_no_tmp_files_remain() {
        let mut b = ChunkedFileBackend::new(64).unwrap();
        for generation in 0..5u64 {
            b.put(generation, &stream(generation)).unwrap();
        }
        let leftovers: Vec<_> = std::fs::read_dir(b.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files must be renamed away");
        assert_eq!(b.generations(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn injector_with_empty_plan_is_transparent() {
        let mut b = FaultInjectingBackend::new(MemoryBackend::new(), FaultPlan::none(), 42);
        b.put(0, &stream(0)).unwrap();
        assert_eq!(b.get(0).unwrap(), stream(0));
        assert!(b.injected().is_empty());
        backend_round_trip(FaultInjectingBackend::new(
            MemoryBackend::new(),
            FaultPlan::none(),
            7,
        ));
    }

    #[test]
    fn injector_damages_exactly_what_it_records() {
        for kind in [InjectedKind::BitFlip, InjectedKind::Truncate, InjectedKind::TornWrite] {
            let mut b =
                FaultInjectingBackend::new(MemoryBackend::new(), FaultPlan::only(kind, 0.5), 99);
            let mut damaged = 0;
            for generation in 0..40u64 {
                let clean = stream(generation);
                b.put(generation, &clean).unwrap();
                let stored = b.get(generation).unwrap();
                let was_injected = !b.injected_into(generation).is_empty();
                if was_injected {
                    damaged += 1;
                    assert_ne!(stored, clean, "{kind:?} on generation {generation}");
                } else {
                    assert_eq!(stored, clean);
                }
            }
            assert!(damaged > 5, "{kind:?}: seed produced too few injections");
            assert!(damaged < 35, "{kind:?}: seed damaged nearly everything");
        }
    }

    #[test]
    fn torn_write_cuts_exactly_at_a_frame_boundary() {
        let mut b = FaultInjectingBackend::new(
            MemoryBackend::new(),
            FaultPlan::only(InjectedKind::TornWrite, 1.0),
            5,
        );
        let clean = stream(9);
        let bounds = frame_boundaries(&clean);
        b.put(9, &clean).unwrap();
        let stored = b.get(9).unwrap();
        assert!(stored.len() < clean.len());
        assert!(bounds.contains(&stored.len()), "cut must be frame-aligned");
        assert_eq!(stored[..], clean[..stored.len()]);
    }

    #[test]
    fn transients_clear_after_the_configured_retries() {
        // A trigger fails `repeats` consecutive gets, then the read succeeds
        // (the pending counter suppresses a fresh draw on the clearing get).
        let mut b = FaultInjectingBackend::new(
            MemoryBackend::new(),
            FaultPlan::transient_only(1.0, 2),
            11,
        );
        b.put(0, &stream(0)).unwrap();
        assert!(matches!(b.get(0), Err(StoreFault::Transient { .. })));
        assert!(matches!(b.get(0), Err(StoreFault::Transient { .. })));
        assert_eq!(b.get(0).unwrap(), stream(0));
        // With p = 1.0 the next get re-triggers a fresh transient burst.
        assert!(matches!(b.get(0), Err(StoreFault::Transient { .. })));
    }

    #[test]
    fn injection_sequence_is_deterministic_per_seed() {
        let run = |seed| {
            let mut b = FaultInjectingBackend::new(
                MemoryBackend::new(),
                FaultPlan {
                    bit_flip: 0.2,
                    truncate: 0.2,
                    torn_write: 0.2,
                    transient: 0.0,
                    max_transient_repeats: 0,
                },
                seed,
            );
            for generation in 0..30u64 {
                b.put(generation, &stream(generation)).unwrap();
            }
            b.injected().to_vec()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
