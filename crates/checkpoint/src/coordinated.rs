//! Coordinated (globally consistent) checkpoints.
//!
//! A coordinated checkpoint captures the state of *every* process of a
//! [`ProcessSet`] at the same logical instant — the classic
//! Chandy–Lamport-style snapshot that periodic checkpointing relies on.
//! Because our processes are virtual, "coordination" reduces to quiescing
//! (no in-flight messages to flush) and copying every region of every
//! process; the interesting part for the study is *what* is captured and how
//! many bytes it amounts to, which is what drives the checkpoint cost `C`.

use serde::{Deserialize, Serialize};

use crate::state::{DatasetKind, ProcessSet};

/// Snapshot of one memory region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSnapshot {
    /// Region id within its process.
    pub region_id: usize,
    /// Dataset the region belongs to.
    pub kind: DatasetKind,
    /// Captured contents.
    pub data: Vec<u8>,
    /// Generation of the region at capture time.
    pub generation: u64,
}

/// Snapshot of one process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessSnapshot {
    /// Rank of the captured process.
    pub rank: usize,
    /// Captured regions (possibly a subset, for partial checkpoints).
    pub regions: Vec<RegionSnapshot>,
    /// Captured computation progress.
    pub progress: f64,
}

impl ProcessSnapshot {
    /// Bytes captured for this process.
    pub fn bytes(&self) -> usize {
        self.regions.iter().map(|r| r.data.len()).sum()
    }
}

/// A complete coordinated checkpoint of a process set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordinatedCheckpoint {
    /// Application time (seconds) at which the checkpoint was taken.
    pub time: f64,
    /// Per-process snapshots, indexed by rank.
    pub snapshots: Vec<ProcessSnapshot>,
}

impl CoordinatedCheckpoint {
    /// Captures a coordinated checkpoint of every region of every process.
    pub fn capture(set: &ProcessSet, time: f64) -> Self {
        let snapshots = set
            .iter()
            .map(|p| ProcessSnapshot {
                rank: p.rank(),
                regions: p
                    .regions()
                    .iter()
                    .map(|r| RegionSnapshot {
                        region_id: r.id,
                        kind: r.kind,
                        data: r.data().to_vec(),
                        generation: r.generation(),
                    })
                    .collect(),
                progress: p.progress(),
            })
            .collect();
        Self { time, snapshots }
    }

    /// Number of processes covered.
    pub fn ranks(&self) -> usize {
        self.snapshots.len()
    }

    /// Total captured volume in bytes.
    pub fn bytes(&self) -> usize {
        self.snapshots.iter().map(ProcessSnapshot::bytes).sum()
    }

    /// Captured volume restricted to one dataset, in bytes.
    pub fn bytes_of(&self, kind: DatasetKind) -> usize {
        self.snapshots
            .iter()
            .flat_map(|s| s.regions.iter())
            .filter(|r| r.kind == kind)
            .map(|r| r.data.len())
            .sum()
    }

    /// Rebuilds a live [`ProcessSet`] from this checkpoint image — the
    /// crash-resume path where no process survives to be restored in place
    /// (the runtime reloads a frame stream and reconstitutes the whole set).
    ///
    /// Region ids must be sequential per process (the invariant
    /// [`CoordinatedCheckpoint::capture`] guarantees); a gap means the image
    /// does not describe a materialisable layout.
    pub fn materialize(&self) -> crate::error::Result<ProcessSet> {
        let mut set = ProcessSet::new(self.snapshots.len());
        for snap in &self.snapshots {
            let process = set.process_mut(snap.rank)?;
            for r in &snap.regions {
                let id = process.add_region(r.kind, Vec::new());
                if id != r.region_id {
                    return Err(crate::error::CkptError::UnknownRegion {
                        rank: snap.rank,
                        region: r.region_id,
                    });
                }
                process
                    .region_mut(id)?
                    .restore(r.data.clone(), r.generation);
            }
            process.set_progress(snap.progress);
        }
        Ok(set)
    }

    /// Per-(rank, region) generations at capture time — the baseline an
    /// incremental checkpoint is computed against.
    pub fn generations(&self) -> Vec<(usize, usize, u64)> {
        self.snapshots
            .iter()
            .flat_map(|s| {
                s.regions
                    .iter()
                    .map(move |r| (s.rank, r.region_id, r.generation))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ProcessSet;

    #[test]
    fn capture_covers_every_byte() {
        let set = ProcessSet::uniform(3, 100, 50);
        let ckpt = CoordinatedCheckpoint::capture(&set, 42.0);
        assert_eq!(ckpt.ranks(), 3);
        assert_eq!(ckpt.bytes(), set.total_footprint());
        assert_eq!(ckpt.bytes_of(DatasetKind::Library), 300);
        assert_eq!(ckpt.bytes_of(DatasetKind::Remainder), 150);
        assert_eq!(ckpt.time, 42.0);
    }

    #[test]
    fn capture_preserves_contents() {
        let set = ProcessSet::uniform(2, 16, 8);
        let ckpt = CoordinatedCheckpoint::capture(&set, 0.0);
        for snap in &ckpt.snapshots {
            let p = set.process(snap.rank).unwrap();
            for r in &snap.regions {
                assert_eq!(r.data.as_slice(), p.region(r.region_id).unwrap().data());
            }
            assert_eq!(snap.progress, p.progress());
        }
    }

    #[test]
    fn capture_is_a_copy_not_a_view() {
        let mut set = ProcessSet::uniform(1, 8, 8);
        let ckpt = CoordinatedCheckpoint::capture(&set, 0.0);
        let before = ckpt.snapshots[0].regions[0].data.clone();
        set.process_mut(0)
            .unwrap()
            .region_mut(0)
            .unwrap()
            .update(|d| d.iter_mut().for_each(|b| *b = 0xAA));
        assert_eq!(ckpt.snapshots[0].regions[0].data, before);
    }

    #[test]
    fn materialize_rebuilds_an_identical_process_set() {
        let mut set = ProcessSet::uniform(3, 64, 32);
        set.process_mut(1).unwrap().advance(12.5);
        set.process_mut(2).unwrap().region_mut(0).unwrap().write(vec![3; 64]);
        let ckpt = CoordinatedCheckpoint::capture(&set, 8.0);
        let rebuilt = ckpt.materialize().unwrap();
        assert_eq!(rebuilt.fingerprint(), set.fingerprint());
        assert_eq!(rebuilt.len(), set.len());
        // Generations survive the round trip (restore, not rewrite).
        assert_eq!(
            rebuilt.process(2).unwrap().region(0).unwrap().generation(),
            set.process(2).unwrap().region(0).unwrap().generation()
        );
    }

    #[test]
    fn generations_baseline_matches_capture() {
        let mut set = ProcessSet::uniform(2, 8, 8);
        set.process_mut(0).unwrap().region_mut(0).unwrap().write(vec![9; 8]);
        let ckpt = CoordinatedCheckpoint::capture(&set, 0.0);
        let gens = ckpt.generations();
        assert_eq!(gens.len(), 4);
        assert!(gens.contains(&(0, 0, 1)));
        assert!(gens.contains(&(1, 0, 0)));
    }
}
