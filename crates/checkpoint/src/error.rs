//! Error type for the checkpoint substrate.

use std::fmt;

/// Errors produced by checkpoint construction, storage and restoration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The referenced process rank does not exist in the process set.
    UnknownRank {
        /// The offending rank.
        rank: usize,
        /// The number of ranks in the process set.
        size: usize,
    },
    /// The referenced memory region does not exist on the process.
    UnknownRegion {
        /// Rank owning (or not) the region.
        rank: usize,
        /// Identifier of the missing region.
        region: usize,
    },
    /// A checkpoint was applied to a process set of a different shape than
    /// the one it was taken from.
    ShapeMismatch {
        /// Ranks covered by the checkpoint.
        checkpoint_ranks: usize,
        /// Ranks of the process set it was applied to.
        target_ranks: usize,
    },
    /// A split checkpoint was assembled from partial checkpoints that do not
    /// cover complementary datasets.
    IncompatiblePartials,
    /// A restore was requested but the store holds no suitable checkpoint.
    NoCheckpointAvailable,
    /// Attempted to register a checkpoint with a timestamp earlier than the
    /// newest stored one.
    NonMonotonicTimestamp {
        /// Timestamp of the newest stored checkpoint.
        newest: u64,
        /// The (earlier) timestamp that was offered.
        offered: u64,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::UnknownRank { rank, size } => {
                write!(f, "rank {rank} does not exist (process set has {size} ranks)")
            }
            CkptError::UnknownRegion { rank, region } => {
                write!(f, "region {region} does not exist on rank {rank}")
            }
            CkptError::ShapeMismatch {
                checkpoint_ranks,
                target_ranks,
            } => write!(
                f,
                "checkpoint covers {checkpoint_ranks} ranks but target process set has {target_ranks}"
            ),
            CkptError::IncompatiblePartials => {
                write!(f, "partial checkpoints do not cover complementary datasets")
            }
            CkptError::NoCheckpointAvailable => write!(f, "no checkpoint available to restore from"),
            CkptError::NonMonotonicTimestamp { newest, offered } => write!(
                f,
                "checkpoint timestamp {offered} is older than the newest stored checkpoint {newest}"
            ),
        }
    }
}

impl std::error::Error for CkptError {}

/// Result alias for checkpoint operations.
pub type Result<T> = std::result::Result<T, CkptError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CkptError::UnknownRank { rank: 9, size: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = CkptError::ShapeMismatch {
            checkpoint_ranks: 2,
            target_ranks: 3,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));
    }
}
