//! Checksummed checkpoint frames: the wire format of the durable pipeline.
//!
//! A serialized checkpoint is a **frame stream**:
//!
//! ```text
//! [header frame][chunk frame]…[chunk frame][trailer frame]
//! ```
//!
//! Every frame is `[kind: u8][payload_len: u32 LE][payload][checksum: u32 LE]`
//! where the checksum (a pluggable [`ChecksumGen`] — CRC-32 in production,
//! the null generator in benchmarks) covers the kind byte, the length field
//! and the payload.  The header carries the stream's identity (magic,
//! version, generation, payload kind, logical time); the chunk frames carry
//! the body in bounded pieces so a torn write is detectable at chunk
//! granularity; the trailer repeats the body length and chunk count and adds
//! a whole-body checksum, so a stream that merely *ends early* (torn write)
//! is distinguishable from one whose bytes *rotted* (corrupt frame).
//!
//! The body itself is a hand-rolled little-endian codec for the checkpoint
//! images of this crate ([`CoordinatedCheckpoint`], [`IncrementalCheckpoint`]
//! as delta-against-base, [`PartialCheckpoint`] as dataset-delta) plus
//! opaque `State` payloads (the simulator's crash-resume snapshots).

use ft_platform::checksum::ChecksumGen;

use crate::coordinated::{CoordinatedCheckpoint, ProcessSnapshot, RegionSnapshot};
use crate::incremental::IncrementalCheckpoint;
use crate::partial::PartialCheckpoint;
use crate::state::DatasetKind;

/// Stream magic: the first bytes of every header frame payload.
pub const FRAME_MAGIC: [u8; 4] = *b"FTCK";
/// Current version of the frame format.
pub const FRAME_VERSION: u16 = 1;
/// Default payload chunk size of the frame writer.
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

const KIND_HEADER: u8 = 1;
const KIND_CHUNK: u8 = 2;
const KIND_TRAILER: u8 = 3;

/// What a frame stream's body contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// A complete [`CoordinatedCheckpoint`] image.
    Full,
    /// An [`IncrementalCheckpoint`] delta against a base generation.
    Delta {
        /// Generation the delta must be applied onto.
        base: u64,
    },
    /// A [`PartialCheckpoint`] (one dataset) against a base generation —
    /// the `(1 − ρ)C` / `ρC` forced checkpoints of the composite protocol.
    Partial {
        /// Dataset the partial checkpoint covers.
        dataset: DatasetKind,
        /// Generation whose image supplies the complementary dataset.
        base: u64,
    },
    /// An opaque state snapshot (e.g. a simulator crash-resume snapshot).
    State,
}

impl PayloadKind {
    fn tag(self) -> u8 {
        match self {
            PayloadKind::Full => 0,
            PayloadKind::Delta { .. } => 1,
            PayloadKind::Partial { .. } => 2,
            PayloadKind::State => 3,
        }
    }

    fn base(self) -> u64 {
        match self {
            PayloadKind::Delta { base } | PayloadKind::Partial { base, .. } => base,
            _ => 0,
        }
    }

    fn dataset_tag(self) -> u8 {
        match self {
            PayloadKind::Partial { dataset, .. } => match dataset {
                DatasetKind::Library => 0,
                DatasetKind::Remainder => 1,
            },
            _ => 0xFF,
        }
    }
}

/// The self-describing identity of a frame stream, carried by its header
/// frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameHeader {
    /// Generation identifier of the checkpoint the stream serializes.
    pub generation: u64,
    /// What the body contains.
    pub payload: PayloadKind,
    /// Logical (application) time of the checkpoint.
    pub time: f64,
}

/// Why a frame stream failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameFault {
    /// A frame's checksum (or the stream checksum, magic, version or
    /// trailer bookkeeping) does not match its contents: the stored bytes
    /// rotted in place.
    CorruptFrame {
        /// Index of the offending frame within the stream (0 = header).
        frame_index: usize,
    },
    /// The stream ends before its trailer: the write never completed
    /// (partial frame, or complete frames with no commit record).
    TornWrite {
        /// Index of the frame at which the stream breaks off.
        frame_index: usize,
    },
    /// Frames verified but the body does not decode as the declared payload.
    Decode {
        /// What failed to decode.
        what: &'static str,
    },
}

impl std::fmt::Display for FrameFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameFault::CorruptFrame { frame_index } => {
                write!(f, "frame {frame_index} failed checksum verification")
            }
            FrameFault::TornWrite { frame_index } => {
                write!(f, "stream breaks off at frame {frame_index} (torn write)")
            }
            FrameFault::Decode { what } => write!(f, "body does not decode: {what}"),
        }
    }
}

impl std::error::Error for FrameFault {}

// ---------------------------------------------------------------------------
// Frame writer
// ---------------------------------------------------------------------------

/// Streaming writer of one frame stream: emits the header on construction,
/// chunk frames as payload bytes are pushed, and the trailer on
/// [`FrameWriter::finish`].
#[derive(Debug)]
pub struct FrameWriter<C: ChecksumGen + Clone> {
    out: Vec<u8>,
    frame_gen: C,
    stream_gen: C,
    chunk_size: usize,
    pending: Vec<u8>,
    chunks: u32,
    body_len: u64,
}

fn emit_frame<C: ChecksumGen>(out: &mut Vec<u8>, gen: &mut C, kind: u8, payload: &[u8]) {
    let len = payload.len() as u32;
    out.push(kind);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    gen.reset();
    gen.push(&[kind]);
    gen.push(&len.to_le_bytes());
    gen.push(payload);
    out.extend_from_slice(&gen.value().to_le_bytes());
}

impl<C: ChecksumGen + Clone> FrameWriter<C> {
    /// Starts a stream: the header frame is emitted immediately.
    pub fn new(header: FrameHeader, chunk_size: usize, checksum: C) -> Self {
        let mut stream_gen = checksum.clone();
        stream_gen.reset();
        let mut w = Self {
            out: Vec::new(),
            frame_gen: checksum,
            stream_gen,
            chunk_size: chunk_size.max(1),
            pending: Vec::new(),
            chunks: 0,
            body_len: 0,
        };
        let mut payload = Vec::with_capacity(32);
        payload.extend_from_slice(&FRAME_MAGIC);
        payload.extend_from_slice(&FRAME_VERSION.to_le_bytes());
        payload.push(header.payload.tag());
        payload.extend_from_slice(&header.payload.base().to_le_bytes());
        payload.push(header.payload.dataset_tag());
        payload.extend_from_slice(&header.generation.to_le_bytes());
        payload.extend_from_slice(&header.time.to_bits().to_le_bytes());
        emit_frame(&mut w.out, &mut w.frame_gen, KIND_HEADER, &payload);
        w
    }

    /// Appends body bytes; full chunks are framed and emitted as they fill.
    pub fn push(&mut self, data: &[u8]) {
        self.stream_gen.push(data);
        self.body_len += data.len() as u64;
        self.pending.extend_from_slice(data);
        while self.pending.len() >= self.chunk_size {
            let rest = self.pending.split_off(self.chunk_size);
            emit_frame(&mut self.out, &mut self.frame_gen, KIND_CHUNK, &self.pending);
            self.chunks += 1;
            self.pending = rest;
        }
    }

    /// Flushes any partial chunk, emits the trailer and returns the encoded
    /// stream.
    pub fn finish(mut self) -> Vec<u8> {
        if !self.pending.is_empty() {
            let pending = std::mem::take(&mut self.pending);
            emit_frame(&mut self.out, &mut self.frame_gen, KIND_CHUNK, &pending);
            self.chunks += 1;
        }
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&self.body_len.to_le_bytes());
        payload.extend_from_slice(&self.chunks.to_le_bytes());
        payload.extend_from_slice(&self.stream_gen.value().to_le_bytes());
        emit_frame(&mut self.out, &mut self.frame_gen, KIND_TRAILER, &payload);
        self.out
    }
}

/// Encodes one complete frame stream from a contiguous body.
pub fn encode_stream<C: ChecksumGen + Clone>(
    header: FrameHeader,
    body: &[u8],
    chunk_size: usize,
    checksum: C,
) -> Vec<u8> {
    let mut w = FrameWriter::new(header, chunk_size, checksum);
    w.push(body);
    w.finish()
}

// ---------------------------------------------------------------------------
// Frame reader
// ---------------------------------------------------------------------------

/// Parses and verifies a frame stream, returning its header and body.
///
/// Every frame checksum is validated, the stream checksum of the reassembled
/// body is validated against the trailer, and the trailer's bookkeeping
/// (body length, chunk count) must match what was read.  Violations are
/// classified: bytes that end mid-frame or a stream with no trailer are a
/// [`FrameFault::TornWrite`]; everything else is a
/// [`FrameFault::CorruptFrame`].
pub fn decode_stream<C: ChecksumGen + Clone>(
    bytes: &[u8],
    checksum: C,
) -> Result<(FrameHeader, Vec<u8>), FrameFault> {
    let mut frame_gen = checksum.clone();
    let mut stream_gen = checksum;
    stream_gen.reset();
    let mut at = 0usize;
    let mut frame_index = 0usize;
    let mut header: Option<FrameHeader> = None;
    let mut body: Vec<u8> = Vec::new();
    let mut chunks = 0u32;
    loop {
        if at == bytes.len() {
            // Ran out of bytes without seeing a trailer.
            return Err(FrameFault::TornWrite { frame_index });
        }
        if bytes.len() - at < 9 {
            return Err(FrameFault::TornWrite { frame_index });
        }
        let kind = bytes[at];
        let len = u32::from_le_bytes(bytes[at + 1..at + 5].try_into().expect("4 bytes"));
        let total = 5usize
            .checked_add(len as usize)
            .and_then(|n| n.checked_add(4))
            .ok_or(FrameFault::CorruptFrame { frame_index })?;
        if bytes.len() - at < total {
            return Err(FrameFault::TornWrite { frame_index });
        }
        let payload = &bytes[at + 5..at + 5 + len as usize];
        let stored =
            u32::from_le_bytes(bytes[at + 5 + len as usize..at + total].try_into().expect("4 bytes"));
        frame_gen.reset();
        frame_gen.push(&bytes[at..at + 5]);
        frame_gen.push(payload);
        if frame_gen.value() != stored {
            return Err(FrameFault::CorruptFrame { frame_index });
        }
        match (kind, frame_index) {
            (KIND_HEADER, 0) => {
                header = Some(parse_header(payload).ok_or(FrameFault::CorruptFrame { frame_index })?);
            }
            (KIND_CHUNK, i) if i > 0 => {
                stream_gen.push(payload);
                body.extend_from_slice(payload);
                chunks += 1;
            }
            (KIND_TRAILER, i) if i > 0 => {
                if payload.len() != 16 {
                    return Err(FrameFault::CorruptFrame { frame_index });
                }
                let body_len = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
                let chunk_count = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
                let stream_sum = u32::from_le_bytes(payload[12..16].try_into().expect("4 bytes"));
                if body_len != body.len() as u64
                    || chunk_count != chunks
                    || stream_sum != stream_gen.value()
                    || at + total != bytes.len()
                {
                    return Err(FrameFault::CorruptFrame { frame_index });
                }
                let header = header.ok_or(FrameFault::CorruptFrame { frame_index })?;
                return Ok((header, body));
            }
            _ => return Err(FrameFault::CorruptFrame { frame_index }),
        }
        at += total;
        frame_index += 1;
    }
}

fn parse_header(payload: &[u8]) -> Option<FrameHeader> {
    if payload.len() != 32 || payload[0..4] != FRAME_MAGIC {
        return None;
    }
    let version = u16::from_le_bytes(payload[4..6].try_into().ok()?);
    if version != FRAME_VERSION {
        return None;
    }
    let tag = payload[6];
    let base = u64::from_le_bytes(payload[7..15].try_into().ok()?);
    let dataset = match payload[15] {
        0 => Some(DatasetKind::Library),
        1 => Some(DatasetKind::Remainder),
        0xFF => None,
        _ => return None,
    };
    let generation = u64::from_le_bytes(payload[16..24].try_into().ok()?);
    let time = f64::from_bits(u64::from_le_bytes(payload[24..32].try_into().ok()?));
    let payload = match (tag, dataset) {
        (0, None) => PayloadKind::Full,
        (1, None) => PayloadKind::Delta { base },
        (2, Some(dataset)) => PayloadKind::Partial { dataset, base },
        (3, None) => PayloadKind::State,
        _ => return None,
    };
    Some(FrameHeader {
        generation,
        payload,
        time,
    })
}

/// Byte offsets of the frame boundaries of a stream (start of each frame,
/// plus the end of the stream), parsed **structurally** — checksums are not
/// verified.  The fault-injecting backend uses this to tear a write at a
/// frame boundary.
pub fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut at = 0usize;
    let mut bounds = vec![0];
    while bytes.len() - at >= 9 {
        let len = u32::from_le_bytes(bytes[at + 1..at + 5].try_into().expect("4 bytes")) as usize;
        let Some(total) = 9usize.checked_add(len) else {
            break;
        };
        if bytes.len() - at < total {
            break;
        }
        at += total;
        bounds.push(at);
    }
    bounds
}

// ---------------------------------------------------------------------------
// Body codec
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], FrameFault> {
        if self.bytes.len() - self.at < n {
            return Err(FrameFault::Decode { what });
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, FrameFault> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, FrameFault> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, FrameFault> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, FrameFault> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn dataset_to_tag(kind: DatasetKind) -> u8 {
    match kind {
        DatasetKind::Library => 0,
        DatasetKind::Remainder => 1,
    }
}

fn dataset_from_tag(tag: u8) -> Result<DatasetKind, FrameFault> {
    match tag {
        0 => Ok(DatasetKind::Library),
        1 => Ok(DatasetKind::Remainder),
        _ => Err(FrameFault::Decode { what: "dataset tag" }),
    }
}

fn write_snapshots(out: &mut Vec<u8>, snapshots: &[ProcessSnapshot]) {
    out.extend_from_slice(&(snapshots.len() as u32).to_le_bytes());
    for s in snapshots {
        out.extend_from_slice(&(s.rank as u64).to_le_bytes());
        out.extend_from_slice(&s.progress.to_bits().to_le_bytes());
        out.extend_from_slice(&(s.regions.len() as u32).to_le_bytes());
        for r in &s.regions {
            out.extend_from_slice(&(r.region_id as u64).to_le_bytes());
            out.push(dataset_to_tag(r.kind));
            out.extend_from_slice(&r.generation.to_le_bytes());
            out.extend_from_slice(&(r.data.len() as u64).to_le_bytes());
            out.extend_from_slice(&r.data);
        }
    }
}

fn read_snapshots(r: &mut Reader<'_>) -> Result<Vec<ProcessSnapshot>, FrameFault> {
    let count = r.u32("snapshot count")? as usize;
    let mut snapshots = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let rank = r.u64("rank")? as usize;
        let progress = r.f64("progress")?;
        let regions_len = r.u32("region count")? as usize;
        let mut regions = Vec::with_capacity(regions_len.min(1 << 16));
        for _ in 0..regions_len {
            let region_id = r.u64("region id")? as usize;
            let kind = dataset_from_tag(r.u8("region kind")?)?;
            let generation = r.u64("region generation")?;
            let len = r.u64("region length")? as usize;
            let data = r.take(len, "region data")?.to_vec();
            regions.push(RegionSnapshot {
                region_id,
                kind,
                data,
                generation,
            });
        }
        snapshots.push(ProcessSnapshot {
            rank,
            regions,
            progress,
        });
    }
    Ok(snapshots)
}

/// Encodes a [`CoordinatedCheckpoint`] body.
pub fn encode_coordinated(ckpt: &CoordinatedCheckpoint) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&ckpt.time.to_bits().to_le_bytes());
    write_snapshots(&mut out, &ckpt.snapshots);
    out
}

/// Decodes a [`CoordinatedCheckpoint`] body.
pub fn decode_coordinated(bytes: &[u8]) -> Result<CoordinatedCheckpoint, FrameFault> {
    let mut r = Reader::new(bytes);
    let time = r.f64("time")?;
    let snapshots = read_snapshots(&mut r)?;
    if !r.done() {
        return Err(FrameFault::Decode { what: "trailing bytes" });
    }
    Ok(CoordinatedCheckpoint { time, snapshots })
}

/// Encodes an [`IncrementalCheckpoint`] body (the delta payload).
pub fn encode_incremental(ckpt: &IncrementalCheckpoint) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&ckpt.time.to_bits().to_le_bytes());
    write_snapshots(&mut out, &ckpt.snapshots);
    out
}

/// Decodes an [`IncrementalCheckpoint`] body.
pub fn decode_incremental(bytes: &[u8]) -> Result<IncrementalCheckpoint, FrameFault> {
    let mut r = Reader::new(bytes);
    let time = r.f64("time")?;
    let snapshots = read_snapshots(&mut r)?;
    if !r.done() {
        return Err(FrameFault::Decode { what: "trailing bytes" });
    }
    Ok(IncrementalCheckpoint { time, snapshots })
}

/// Encodes a [`PartialCheckpoint`] body (the dataset-delta payload).
pub fn encode_partial(ckpt: &PartialCheckpoint) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(dataset_to_tag(ckpt.kind));
    out.extend_from_slice(&ckpt.time.to_bits().to_le_bytes());
    write_snapshots(&mut out, &ckpt.snapshots);
    out
}

/// Decodes a [`PartialCheckpoint`] body.
pub fn decode_partial(bytes: &[u8]) -> Result<PartialCheckpoint, FrameFault> {
    let mut r = Reader::new(bytes);
    let kind = dataset_from_tag(r.u8("partial kind")?)?;
    let time = r.f64("time")?;
    let snapshots = read_snapshots(&mut r)?;
    if !r.done() {
        return Err(FrameFault::Decode { what: "trailing bytes" });
    }
    Ok(PartialCheckpoint {
        kind,
        time,
        snapshots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ProcessSet;
    use ft_platform::checksum::{Crc32, NullChecksum};

    fn image() -> CoordinatedCheckpoint {
        let mut set = ProcessSet::uniform(3, 300, 150);
        set.process_mut(1).unwrap().advance(7.5);
        CoordinatedCheckpoint::capture(&set, 12.25)
    }

    fn header(generation: u64) -> FrameHeader {
        FrameHeader {
            generation,
            payload: PayloadKind::Full,
            time: 12.25,
        }
    }

    #[test]
    fn round_trip_preserves_header_and_body() {
        let body = encode_coordinated(&image());
        for chunk in [1usize, 64, 4096, 1 << 20] {
            let bytes = encode_stream(header(42), &body, chunk, Crc32::new());
            let (h, decoded) = decode_stream(&bytes, Crc32::new()).unwrap();
            assert_eq!(h, header(42), "chunk {chunk}");
            assert_eq!(decoded, body, "chunk {chunk}");
            let ckpt = decode_coordinated(&decoded).unwrap();
            assert_eq!(ckpt, image());
        }
    }

    #[test]
    fn every_payload_kind_round_trips() {
        let set = ProcessSet::uniform(2, 64, 32);
        let base = CoordinatedCheckpoint::capture(&set, 1.0);
        let inc = IncrementalCheckpoint::capture_since(&set, &base, 2.0);
        let part = PartialCheckpoint::capture(&set, DatasetKind::Remainder, 3.0);

        for (payload, body) in [
            (PayloadKind::Full, encode_coordinated(&base)),
            (PayloadKind::Delta { base: 7 }, encode_incremental(&inc)),
            (
                PayloadKind::Partial {
                    dataset: DatasetKind::Remainder,
                    base: 7,
                },
                encode_partial(&part),
            ),
            (PayloadKind::State, vec![1, 2, 3, 4]),
        ] {
            let h = FrameHeader {
                generation: 9,
                payload,
                time: 3.0,
            };
            let bytes = encode_stream(h, &body, 128, Crc32::new());
            let (decoded_h, decoded_body) = decode_stream(&bytes, Crc32::new()).unwrap();
            assert_eq!(decoded_h, h);
            assert_eq!(decoded_body, body);
        }
        assert_eq!(decode_incremental(&encode_incremental(&inc)).unwrap(), inc);
        assert_eq!(decode_partial(&encode_partial(&part)).unwrap(), part);
    }

    #[test]
    fn any_single_bit_flip_is_caught() {
        let body = encode_coordinated(&image());
        let clean = encode_stream(header(0), &body, 256, Crc32::new());
        // Flip a spread of bits across the stream: header, chunks, trailer.
        let step = (clean.len() * 8 / 97).max(1);
        for bit in (0..clean.len() * 8).step_by(step) {
            let mut bytes = clean.clone();
            bytes[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_stream(&bytes, Crc32::new()).is_err(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_classified_as_torn_write() {
        let body = encode_coordinated(&image());
        let clean = encode_stream(header(0), &body, 256, Crc32::new());
        // Cut inside a frame payload and at a frame boundary.
        let bounds = frame_boundaries(&clean);
        assert!(bounds.len() > 3);
        assert_eq!(*bounds.last().unwrap(), clean.len());
        let mid_frame = bounds[1] + 3;
        assert!(matches!(
            decode_stream(&clean[..mid_frame], Crc32::new()),
            Err(FrameFault::TornWrite { .. })
        ));
        assert!(matches!(
            decode_stream(&clean[..bounds[2]], Crc32::new()),
            Err(FrameFault::TornWrite { .. })
        ));
        // An empty byte string is torn, not corrupt.
        assert!(matches!(
            decode_stream(&[], Crc32::new()),
            Err(FrameFault::TornWrite { frame_index: 0 })
        ));
    }

    #[test]
    fn null_checksum_still_catches_structural_damage() {
        let body = encode_coordinated(&image());
        let clean = encode_stream(header(0), &body, 256, NullChecksum);
        assert!(decode_stream(&clean, NullChecksum).is_ok());
        // Truncation (structure) is still caught …
        assert!(decode_stream(&clean[..clean.len() - 10], NullChecksum).is_err());
        // … but a payload bit flip sails through: that is the benchmark
        // trade-off the null generator exists to measure.
        let mut flipped = clean.clone();
        let bounds = frame_boundaries(&clean);
        flipped[bounds[1] + 20] ^= 0x01;
        assert!(decode_stream(&flipped, NullChecksum).is_ok());
        // The CRC reader rejects a null-checksummed stream (wrong algorithm).
        assert!(decode_stream(&clean, Crc32::new()).is_err());
    }

    #[test]
    fn decode_rejects_malformed_bodies() {
        assert!(decode_coordinated(&[]).is_err());
        let mut body = encode_coordinated(&image());
        body.push(0); // trailing garbage
        assert!(matches!(
            decode_coordinated(&body),
            Err(FrameFault::Decode { what: "trailing bytes" })
        ));
        // A declared region length pointing past the end of the body.
        let set = ProcessSet::uniform(1, 16, 8);
        let full = CoordinatedCheckpoint::capture(&set, 0.0);
        let mut enc = encode_coordinated(&full);
        let n = enc.len();
        enc.truncate(n - 4);
        assert!(decode_coordinated(&enc).is_err());
    }

    #[test]
    fn streaming_writer_matches_one_shot_encoding() {
        let body = encode_coordinated(&image());
        let one_shot = encode_stream(header(3), &body, 512, Crc32::new());
        let mut w = FrameWriter::new(header(3), 512, Crc32::new());
        for piece in body.chunks(100) {
            w.push(piece);
        }
        assert_eq!(w.finish(), one_shot);
    }

    #[test]
    fn empty_body_streams_round_trip() {
        let h = FrameHeader {
            generation: 0,
            payload: PayloadKind::State,
            time: 0.0,
        };
        let bytes = encode_stream(h, &[], 4096, Crc32::new());
        let (decoded, body) = decode_stream(&bytes, Crc32::new()).unwrap();
        assert_eq!(decoded, h);
        assert!(body.is_empty());
    }
}
