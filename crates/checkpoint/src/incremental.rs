//! Incremental checkpoints.
//!
//! The BiPeriodicCkpt protocol of the paper (§III-B, §IV-C) exploits the fact
//! that during a LIBRARY phase only the LIBRARY dataset is modified: an
//! incremental checkpoint captures only what changed since a baseline
//! checkpoint, shrinking the checkpoint cost from `C` to `C_L = ρ C`.
//!
//! Our regions carry a generation counter bumped on every write;
//! [`IncrementalCheckpoint::capture_since`] snapshots exactly the regions
//! whose generation moved past the baseline, and
//! [`IncrementalCheckpoint::apply_onto`] folds an increment back into a base
//! [`CoordinatedCheckpoint`] to rebuild the complete restorable image (the
//! paper's remark that "the different incremental checkpoints must be
//! combined to recover the entire dataset at rollback time", which is why the
//! *recovery* cost stays `R` even when the *checkpoint* cost drops to `C_L`).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::coordinated::{CoordinatedCheckpoint, ProcessSnapshot, RegionSnapshot};
use crate::error::{CkptError, Result};
use crate::state::ProcessSet;

/// A checkpoint containing only the regions modified since a baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementalCheckpoint {
    /// Application time at which the increment was taken.
    pub time: f64,
    /// Per-process snapshots containing only the dirty regions.
    pub snapshots: Vec<ProcessSnapshot>,
}

impl IncrementalCheckpoint {
    /// Captures the regions of `set` whose generation is strictly greater
    /// than the generation recorded in `baseline` (region missing from the
    /// baseline counts as dirty).
    pub fn capture_since(set: &ProcessSet, baseline: &CoordinatedCheckpoint, time: f64) -> Self {
        // Index the baseline generations by (rank, region).
        let mut base: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        for (rank, region, generation) in baseline.generations() {
            base.insert((rank, region), generation);
        }
        let snapshots = set
            .iter()
            .map(|p| ProcessSnapshot {
                rank: p.rank(),
                regions: p
                    .regions()
                    .iter()
                    .filter(|r| {
                        base.get(&(p.rank(), r.id))
                            .map(|&g| r.generation() > g)
                            .unwrap_or(true)
                    })
                    .map(|r| RegionSnapshot {
                        region_id: r.id,
                        kind: r.kind,
                        data: r.data().to_vec(),
                        generation: r.generation(),
                    })
                    .collect(),
                progress: p.progress(),
            })
            .collect();
        Self { time, snapshots }
    }

    /// Volume of the increment in bytes.
    pub fn bytes(&self) -> usize {
        self.snapshots.iter().map(ProcessSnapshot::bytes).sum()
    }

    /// Number of dirty regions captured.
    pub fn dirty_regions(&self) -> usize {
        self.snapshots.iter().map(|s| s.regions.len()).sum()
    }

    /// Folds this increment onto a base coordinated checkpoint, producing the
    /// complete checkpoint an application would restore from.
    pub fn apply_onto(&self, base: &CoordinatedCheckpoint) -> Result<CoordinatedCheckpoint> {
        if base.ranks() != self.snapshots.len() {
            return Err(CkptError::ShapeMismatch {
                checkpoint_ranks: base.ranks(),
                target_ranks: self.snapshots.len(),
            });
        }
        let mut combined = base.clone();
        combined.time = self.time;
        for (snap, inc) in combined.snapshots.iter_mut().zip(self.snapshots.iter()) {
            debug_assert_eq!(snap.rank, inc.rank);
            snap.progress = inc.progress;
            for dirty in &inc.regions {
                if let Some(existing) = snap
                    .regions
                    .iter_mut()
                    .find(|r| r.region_id == dirty.region_id)
                {
                    *existing = dirty.clone();
                } else {
                    snap.regions.push(dirty.clone());
                    snap.regions.sort_by_key(|r| r.region_id);
                }
            }
        }
        Ok(combined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restore::restore_full;
    use crate::state::{DatasetKind, ProcessSet};

    #[test]
    fn clean_state_produces_empty_increment() {
        let set = ProcessSet::uniform(3, 32, 32);
        let base = CoordinatedCheckpoint::capture(&set, 0.0);
        let inc = IncrementalCheckpoint::capture_since(&set, &base, 1.0);
        assert_eq!(inc.bytes(), 0);
        assert_eq!(inc.dirty_regions(), 0);
    }

    #[test]
    fn only_dirty_regions_are_captured() {
        let mut set = ProcessSet::uniform(3, 100, 50);
        let base = CoordinatedCheckpoint::capture(&set, 0.0);

        // A library phase modifies only the LIBRARY regions of every process.
        for p in set.iter_mut() {
            let ids: Vec<usize> = p.regions_of(DatasetKind::Library).map(|r| r.id).collect();
            for id in ids {
                p.region_mut(id).unwrap().update(|d| d[0] ^= 0xFF);
            }
        }
        let inc = IncrementalCheckpoint::capture_since(&set, &base, 2.0);
        // Exactly the LIBRARY bytes: 3 processes × 100 B — the ρ C reduction.
        assert_eq!(inc.bytes(), 300);
        assert_eq!(inc.dirty_regions(), 3);
        assert!(inc
            .snapshots
            .iter()
            .flat_map(|s| s.regions.iter())
            .all(|r| r.kind == DatasetKind::Library));
    }

    #[test]
    fn increment_applied_on_base_equals_full_checkpoint() {
        let mut set = ProcessSet::uniform(2, 64, 64);
        let base = CoordinatedCheckpoint::capture(&set, 0.0);

        // Modify a mix of regions and progress.
        set.process_mut(0).unwrap().region_mut(0).unwrap().write(vec![7; 64]);
        set.process_mut(1).unwrap().region_mut(1).unwrap().write(vec![9; 64]);
        set.process_mut(0).unwrap().advance(10.0);

        let inc = IncrementalCheckpoint::capture_since(&set, &base, 3.0);
        let combined = inc.apply_onto(&base).unwrap();
        let reference = CoordinatedCheckpoint::capture(&set, 3.0);

        assert_eq!(combined.bytes(), reference.bytes());
        // Restoring from the combined image reproduces the exact state.
        let fp = set.fingerprint();
        let mut scratch = set.clone();
        scratch.process_mut(0).unwrap().crash();
        scratch.process_mut(1).unwrap().crash();
        restore_full(&combined, &mut scratch).unwrap();
        assert_eq!(scratch.fingerprint(), fp);
    }

    #[test]
    fn chained_increments_compose() {
        let mut set = ProcessSet::uniform(2, 32, 32);
        let base = CoordinatedCheckpoint::capture(&set, 0.0);

        set.process_mut(0).unwrap().region_mut(0).unwrap().write(vec![1; 32]);
        let inc1 = IncrementalCheckpoint::capture_since(&set, &base, 1.0);
        let image1 = inc1.apply_onto(&base).unwrap();

        set.process_mut(1).unwrap().region_mut(1).unwrap().write(vec![2; 32]);
        let inc2 = IncrementalCheckpoint::capture_since(&set, &image1, 2.0);
        // The second increment only carries the second modification.
        assert_eq!(inc2.bytes(), 32);
        let image2 = inc2.apply_onto(&image1).unwrap();

        let fp = set.fingerprint();
        let mut scratch = set.clone();
        scratch.process_mut(0).unwrap().crash();
        restore_full(&image2, &mut scratch).unwrap();
        assert_eq!(scratch.fingerprint(), fp);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let small = ProcessSet::uniform(2, 8, 8);
        let big = ProcessSet::uniform(3, 8, 8);
        let base_small = CoordinatedCheckpoint::capture(&small, 0.0);
        let inc_big = IncrementalCheckpoint::capture_since(&big, &CoordinatedCheckpoint::capture(&big, 0.0), 1.0);
        assert!(inc_big.apply_onto(&base_small).is_err());
    }
}
