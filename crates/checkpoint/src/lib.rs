//! # ft-ckpt — checkpoint/restart substrate
//!
//! An in-memory implementation of the checkpointing machinery the composite
//! protocol of Bosilca et al. (APDCM 2014) relies on:
//!
//! * [`state`] — per-process application state, organised in memory regions
//!   tagged as LIBRARY or REMAINDER dataset, with modification tracking;
//! * [`coordinated`] — coordinated (globally consistent) checkpoints across a
//!   set of processes;
//! * [`partial`] — partial checkpoints covering only one dataset, and the
//!   *split checkpoint* formed by composing the entry checkpoint (REMAINDER)
//!   with the exit checkpoint (LIBRARY) of a library call (paper §III-A);
//! * [`incremental`] — incremental checkpoints capturing only the regions
//!   modified since the previous checkpoint (paper §III-B);
//! * [`restore`] — rollback recovery, full or partial;
//! * [`store`] — checkpoint repositories with storage-cost accounting on top
//!   of the `ft-platform` storage models;
//! * [`manager`] — the periodic-checkpoint manager: interval policy,
//!   phase-aware enabling/disabling, forced checkpoints at phase switches;
//! * [`frame`] — the checksummed frame wire format checkpoints are
//!   serialized into (header/chunks/trailer, each carrying a checksum);
//! * [`backend`] — pluggable stores for serialized streams: in-memory,
//!   chunked files with fsync + atomic-rename commit, and a deterministic
//!   fault-injecting decorator (bit flips, truncations, torn writes,
//!   transient read faults);
//! * [`verify`] — verified retrieval with a typed failure taxonomy and
//!   bounded deterministic retry/backoff for transients;
//! * [`pipeline`] — the durable pipeline tying the above together: commit
//!   full/delta/partial/state generations, restore the newest *verifiable*
//!   one with graceful walk-back, and measure per-generation
//!   write/verify/restore costs.
//!
//! The substrate is exercised directly by unit/property tests, by the
//! integration tests at the workspace root, and by `ft-sim`'s protocol
//! executors when they need actual dataset semantics (what exactly is
//! restored after a rollback) rather than just costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod coordinated;
pub mod error;
pub mod frame;
pub mod incremental;
pub mod manager;
pub mod partial;
pub mod pipeline;
pub mod restore;
pub mod state;
pub mod store;
pub mod verify;

pub use backend::{
    CheckpointBackend, ChunkedFileBackend, FaultInjectingBackend, FaultPlan, InjectedKind,
    MemoryBackend, StoreFault,
};
pub use coordinated::CoordinatedCheckpoint;
pub use error::CkptError;
pub use frame::{FrameFault, FrameHeader, FrameWriter, PayloadKind};
pub use incremental::IncrementalCheckpoint;
pub use manager::{CheckpointDecision, PeriodicManager, Phase};
pub use partial::{PartialCheckpoint, SplitCheckpoint};
pub use pipeline::{
    apply_partial_onto, CheckpointPipeline, CostSummary, GenerationCost, PipelineOp,
    RestoreOutcome,
};
pub use restore::{restore_full, restore_partial, RestoreReport};
pub use state::{DatasetKind, MemoryRegion, ProcessSet, ProcessState};
pub use store::{CheckpointStore, StoredCheckpoint};
pub use verify::{fetch_verified, RestoreFault, RetryPolicy, VerifiedStream};
