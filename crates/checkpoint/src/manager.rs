//! Phase-aware periodic checkpoint manager.
//!
//! The manager decides *when* to checkpoint and *what kind* of checkpoint to
//! take, implementing the three policies the paper compares:
//!
//! * **PurePeriodicCkpt** — one period, full checkpoints, oblivious to phases;
//! * **BiPeriodicCkpt** — one period per phase, incremental (LIBRARY-only)
//!   checkpoints during LIBRARY phases;
//! * **ABFT&PeriodicCkpt** — periodic checkpoints during GENERAL phases only,
//!   forced partial checkpoints at library entry/exit, periodic checkpointing
//!   disabled inside the library call.
//!
//! The manager is pure decision logic (no time advances, no cost accounting);
//! both the composite runtime in `ft-composite` and the protocol executors in
//! `ft-sim` drive it.

use serde::{Deserialize, Serialize};

/// The phase the application is currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// ABFT-unaware application code: only checkpointing can protect it.
    General,
    /// ABFT-capable library call.
    Library,
}

/// What the manager asks the runtime to do at a given instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointDecision {
    /// Nothing to do.
    Skip,
    /// Take a full coordinated checkpoint (GENERAL-phase periodic checkpoint,
    /// or any PurePeriodicCkpt checkpoint).
    PeriodicFull,
    /// Take an incremental (LIBRARY-dataset-only) checkpoint — BiPeriodicCkpt
    /// inside a LIBRARY phase.
    PeriodicIncremental,
    /// Take the forced partial checkpoint of the REMAINDER dataset when
    /// entering an ABFT-protected library call.
    ForcedEntry,
    /// Take the forced partial checkpoint of the LIBRARY dataset when leaving
    /// an ABFT-protected library call.
    ForcedExit,
}

/// Which of the three checkpointing policies the manager implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Single period, phase-oblivious, full checkpoints.
    PurePeriodic,
    /// Per-phase periods, incremental checkpoints during LIBRARY phases.
    BiPeriodic,
    /// Periodic checkpoints in GENERAL phases only; forced partial
    /// checkpoints around ABFT-protected library calls.
    AbftComposite,
}

/// Phase-aware periodic checkpoint manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodicManager {
    policy: Policy,
    /// Checkpoint interval during GENERAL phases (work time between
    /// checkpoint completions, excluding the checkpoint itself).
    period_general: f64,
    /// Checkpoint interval during LIBRARY phases (BiPeriodic only).
    period_library: f64,
    phase: Phase,
    /// Whether the current LIBRARY phase is ABFT-protected (composite policy
    /// with the safeguard possibly deciding otherwise).
    abft_active: bool,
    /// Work executed since the last checkpoint completed.
    work_since_checkpoint: f64,
}

impl PeriodicManager {
    /// Creates a PurePeriodicCkpt manager.
    pub fn pure_periodic(period: f64) -> Self {
        Self {
            policy: Policy::PurePeriodic,
            period_general: period,
            period_library: period,
            phase: Phase::General,
            abft_active: false,
            work_since_checkpoint: 0.0,
        }
    }

    /// Creates a BiPeriodicCkpt manager with distinct GENERAL/LIBRARY periods.
    pub fn bi_periodic(period_general: f64, period_library: f64) -> Self {
        Self {
            policy: Policy::BiPeriodic,
            period_general,
            period_library,
            phase: Phase::General,
            abft_active: false,
            work_since_checkpoint: 0.0,
        }
    }

    /// Creates an ABFT&PeriodicCkpt manager; periodic checkpoints use
    /// `period_general` and only happen during GENERAL phases.
    pub fn abft_composite(period_general: f64) -> Self {
        Self {
            policy: Policy::AbftComposite,
            period_general,
            // When the safeguard keeps ABFT off, the library phase is
            // protected like a general phase, with the same period.
            period_library: period_general,
            phase: Phase::General,
            abft_active: false,
            work_since_checkpoint: 0.0,
        }
    }

    /// The policy the manager implements.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Whether ABFT protection is active (composite policy, inside a library
    /// call, safeguard passed).
    pub fn abft_active(&self) -> bool {
        self.abft_active
    }

    /// The checkpoint period applicable right now.
    pub fn current_period(&self) -> f64 {
        match self.phase {
            Phase::General => self.period_general,
            Phase::Library => {
                if self.policy == Policy::AbftComposite && self.abft_active {
                    f64::INFINITY
                } else {
                    self.period_library
                }
            }
        }
    }

    /// Work remaining before the next periodic checkpoint is due.
    pub fn work_until_due(&self) -> f64 {
        (self.current_period() - self.work_since_checkpoint).max(0.0)
    }

    /// Records that `work` seconds of useful work have been executed and
    /// returns the decision for this instant.
    pub fn advance_work(&mut self, work: f64) -> CheckpointDecision {
        self.work_since_checkpoint += work;
        if self.work_since_checkpoint + 1e-12 >= self.current_period() {
            match (self.policy, self.phase) {
                (Policy::BiPeriodic, Phase::Library) => CheckpointDecision::PeriodicIncremental,
                _ => CheckpointDecision::PeriodicFull,
            }
        } else {
            CheckpointDecision::Skip
        }
    }

    /// Records that a checkpoint has completed (of any kind): the periodic
    /// clock restarts.
    pub fn checkpoint_completed(&mut self) {
        self.work_since_checkpoint = 0.0;
    }

    /// Notifies the manager that the application enters a LIBRARY phase;
    /// `abft_protected` tells whether the safeguard enabled ABFT for this
    /// call. Returns the decision to apply *before* the call starts.
    pub fn enter_library(&mut self, abft_protected: bool) -> CheckpointDecision {
        self.phase = Phase::Library;
        match self.policy {
            Policy::AbftComposite if abft_protected => {
                self.abft_active = true;
                CheckpointDecision::ForcedEntry
            }
            _ => {
                self.abft_active = false;
                CheckpointDecision::Skip
            }
        }
    }

    /// Notifies the manager that the library call returned. Returns the
    /// decision to apply *after* the call (forced exit checkpoint when ABFT
    /// was active).
    pub fn exit_library(&mut self) -> CheckpointDecision {
        self.phase = Phase::General;
        if self.abft_active {
            self.abft_active = false;
            CheckpointDecision::ForcedExit
        } else {
            CheckpointDecision::Skip
        }
    }

    /// Resets the work counter after a rollback (the re-executed work counts
    /// from the restored checkpoint).
    pub fn rollback(&mut self) {
        self.work_since_checkpoint = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_periodic_fires_every_period_regardless_of_phase() {
        let mut m = PeriodicManager::pure_periodic(100.0);
        assert_eq!(m.advance_work(50.0), CheckpointDecision::Skip);
        assert_eq!(m.advance_work(50.0), CheckpointDecision::PeriodicFull);
        m.checkpoint_completed();
        // Entering a library phase changes nothing for the pure policy.
        assert_eq!(m.enter_library(true), CheckpointDecision::Skip);
        assert!(!m.abft_active());
        assert_eq!(m.advance_work(100.0), CheckpointDecision::PeriodicFull);
        m.checkpoint_completed();
        assert_eq!(m.exit_library(), CheckpointDecision::Skip);
    }

    #[test]
    fn bi_periodic_switches_period_and_kind_in_library_phase() {
        let mut m = PeriodicManager::bi_periodic(100.0, 80.0);
        assert_eq!(m.current_period(), 100.0);
        m.enter_library(false);
        assert_eq!(m.current_period(), 80.0);
        assert_eq!(m.advance_work(80.0), CheckpointDecision::PeriodicIncremental);
        m.checkpoint_completed();
        m.exit_library();
        assert_eq!(m.current_period(), 100.0);
        assert_eq!(m.advance_work(100.0), CheckpointDecision::PeriodicFull);
    }

    #[test]
    fn composite_forces_entry_exit_and_disables_periodic_inside() {
        let mut m = PeriodicManager::abft_composite(100.0);
        assert_eq!(m.advance_work(60.0), CheckpointDecision::Skip);
        assert_eq!(m.enter_library(true), CheckpointDecision::ForcedEntry);
        assert!(m.abft_active());
        // No periodic checkpoint can fire inside the ABFT-protected call.
        assert_eq!(m.current_period(), f64::INFINITY);
        assert_eq!(m.advance_work(10_000.0), CheckpointDecision::Skip);
        assert_eq!(m.exit_library(), CheckpointDecision::ForcedExit);
        assert!(!m.abft_active());
        assert_eq!(m.phase(), Phase::General);
    }

    #[test]
    fn composite_safeguard_falls_back_to_periodic() {
        // If the safeguard decides ABFT is not worth it, the library phase is
        // protected like a general phase (checkpointing stays active).
        let mut m = PeriodicManager::abft_composite(100.0);
        assert_eq!(m.enter_library(false), CheckpointDecision::Skip);
        assert!(!m.abft_active());
        assert_eq!(m.current_period(), 100.0);
        m.checkpoint_completed();
        assert_eq!(m.advance_work(100.0), CheckpointDecision::PeriodicFull);
        assert_eq!(m.exit_library(), CheckpointDecision::Skip);
    }

    #[test]
    fn rollback_resets_the_periodic_clock() {
        let mut m = PeriodicManager::pure_periodic(100.0);
        m.advance_work(90.0);
        m.rollback();
        assert_eq!(m.work_until_due(), 100.0);
        assert_eq!(m.advance_work(50.0), CheckpointDecision::Skip);
    }

    #[test]
    fn work_until_due_never_negative() {
        let mut m = PeriodicManager::pure_periodic(10.0);
        m.advance_work(25.0);
        assert_eq!(m.work_until_due(), 0.0);
    }
}
