//! Partial checkpoints and the split checkpoint of the composite protocol.
//!
//! The composite protocol never takes a full checkpoint around a library
//! call.  Instead (paper §III-A):
//!
//! * entering the call, it captures only the **REMAINDER** dataset (the
//!   LIBRARY dataset will be recoverable through ABFT);
//! * leaving the call, it captures only the **LIBRARY** dataset (now holding
//!   the results of the call).
//!
//! The two *partial checkpoints* together form a **split checkpoint** which
//! is equivalent to a full coordinated checkpoint taken at the end of the
//! call — that is [`SplitCheckpoint::into_coordinated`].

use serde::{Deserialize, Serialize};

use crate::coordinated::{CoordinatedCheckpoint, ProcessSnapshot, RegionSnapshot};
use crate::error::{CkptError, Result};
use crate::state::{DatasetKind, ProcessSet};

/// A checkpoint covering only one dataset of every process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialCheckpoint {
    /// Which dataset is covered.
    pub kind: DatasetKind,
    /// Application time at which the partial checkpoint was taken.
    pub time: f64,
    /// Per-process snapshots containing only regions of `kind`.
    pub snapshots: Vec<ProcessSnapshot>,
}

impl PartialCheckpoint {
    /// Captures the regions of `kind` on every process.
    pub fn capture(set: &ProcessSet, kind: DatasetKind, time: f64) -> Self {
        let snapshots = set
            .iter()
            .map(|p| ProcessSnapshot {
                rank: p.rank(),
                regions: p
                    .regions_of(kind)
                    .map(|r| RegionSnapshot {
                        region_id: r.id,
                        kind: r.kind,
                        data: r.data().to_vec(),
                        generation: r.generation(),
                    })
                    .collect(),
                progress: p.progress(),
            })
            .collect();
        Self { kind, time, snapshots }
    }

    /// Number of processes covered.
    pub fn ranks(&self) -> usize {
        self.snapshots.len()
    }

    /// Captured volume in bytes.
    pub fn bytes(&self) -> usize {
        self.snapshots.iter().map(ProcessSnapshot::bytes).sum()
    }
}

/// The split checkpoint of the composite protocol: the entry partial
/// checkpoint (REMAINDER dataset, taken when entering the library call)
/// completed by the exit partial checkpoint (LIBRARY dataset, taken when the
/// call returns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitCheckpoint {
    /// REMAINDER-dataset checkpoint taken at library entry.
    pub entry: PartialCheckpoint,
    /// LIBRARY-dataset checkpoint taken at library exit.
    pub exit: PartialCheckpoint,
}

impl SplitCheckpoint {
    /// Assembles a split checkpoint, verifying that the two halves cover
    /// complementary datasets and the same set of ranks.
    pub fn new(entry: PartialCheckpoint, exit: PartialCheckpoint) -> Result<Self> {
        if entry.kind != DatasetKind::Remainder || exit.kind != DatasetKind::Library {
            return Err(CkptError::IncompatiblePartials);
        }
        if entry.ranks() != exit.ranks() {
            return Err(CkptError::ShapeMismatch {
                checkpoint_ranks: entry.ranks(),
                target_ranks: exit.ranks(),
            });
        }
        Ok(Self { entry, exit })
    }

    /// Total volume of the split checkpoint in bytes.
    pub fn bytes(&self) -> usize {
        self.entry.bytes() + self.exit.bytes()
    }

    /// Combines the two halves into a complete coordinated checkpoint,
    /// timestamped at the exit time (the instant from which execution can
    /// resume after the library call).
    pub fn into_coordinated(self) -> CoordinatedCheckpoint {
        let time = self.exit.time;
        let mut snapshots: Vec<ProcessSnapshot> = Vec::with_capacity(self.entry.ranks());
        for (entry_snap, exit_snap) in self.entry.snapshots.into_iter().zip(self.exit.snapshots) {
            debug_assert_eq!(entry_snap.rank, exit_snap.rank);
            let mut regions = entry_snap.regions;
            regions.extend(exit_snap.regions);
            regions.sort_by_key(|r| r.region_id);
            snapshots.push(ProcessSnapshot {
                rank: exit_snap.rank,
                regions,
                // The REMAINDER dataset was captured at entry but is not
                // modified during the call, so the state as of `exit.time`
                // is the entry REMAINDER + exit LIBRARY + exit progress.
                progress: exit_snap.progress,
            });
        }
        CoordinatedCheckpoint { time, snapshots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinated::CoordinatedCheckpoint;
    use crate::state::ProcessSet;

    #[test]
    fn partial_capture_covers_only_requested_dataset() {
        let set = ProcessSet::uniform(3, 100, 40);
        let lib = PartialCheckpoint::capture(&set, DatasetKind::Library, 1.0);
        let rem = PartialCheckpoint::capture(&set, DatasetKind::Remainder, 1.0);
        assert_eq!(lib.bytes(), 300);
        assert_eq!(rem.bytes(), 120);
        assert!(lib
            .snapshots
            .iter()
            .flat_map(|s| s.regions.iter())
            .all(|r| r.kind == DatasetKind::Library));
    }

    #[test]
    fn split_checkpoint_requires_complementary_datasets() {
        let set = ProcessSet::uniform(2, 10, 10);
        let lib = PartialCheckpoint::capture(&set, DatasetKind::Library, 1.0);
        let rem = PartialCheckpoint::capture(&set, DatasetKind::Remainder, 0.0);
        // Correct order: entry = remainder, exit = library.
        assert!(SplitCheckpoint::new(rem.clone(), lib.clone()).is_ok());
        // Swapped halves are rejected.
        assert_eq!(
            SplitCheckpoint::new(lib.clone(), rem.clone()).unwrap_err(),
            CkptError::IncompatiblePartials
        );
        // Same dataset twice is rejected.
        assert!(SplitCheckpoint::new(rem.clone(), rem).is_err());
    }

    #[test]
    fn split_checkpoint_equals_full_checkpoint_when_remainder_untouched() {
        // Scenario of §III-A: entry checkpoint (remainder), then the library
        // call modifies only the LIBRARY dataset, then exit checkpoint
        // (library). The combination must equal a full coordinated checkpoint
        // taken at exit time.
        let mut set = ProcessSet::uniform(3, 64, 32);
        let entry = PartialCheckpoint::capture(&set, DatasetKind::Remainder, 10.0);

        // Library call: mutate every LIBRARY region, leave REMAINDER alone.
        for p in set.iter_mut() {
            let lib_ids: Vec<usize> = p
                .regions_of(DatasetKind::Library)
                .map(|r| r.id)
                .collect();
            for id in lib_ids {
                p.region_mut(id).unwrap().update(|d| {
                    for b in d.iter_mut() {
                        *b = b.wrapping_add(42);
                    }
                });
            }
            p.advance(100.0);
        }

        let exit = PartialCheckpoint::capture(&set, DatasetKind::Library, 25.0);
        let split = SplitCheckpoint::new(entry, exit).unwrap();
        assert_eq!(split.bytes(), set.total_footprint());

        let combined = split.into_coordinated();
        let reference = CoordinatedCheckpoint::capture(&set, 25.0);
        assert_eq!(combined.time, 25.0);
        assert_eq!(combined.bytes(), reference.bytes());
        for (a, b) in combined.snapshots.iter().zip(reference.snapshots.iter()) {
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.progress, b.progress);
            assert_eq!(a.regions.len(), b.regions.len());
            for (ra, rb) in a.regions.iter().zip(b.regions.iter()) {
                assert_eq!(ra.region_id, rb.region_id);
                assert_eq!(ra.data, rb.data);
            }
        }
    }

    #[test]
    fn mismatched_rank_counts_are_rejected() {
        let small = ProcessSet::uniform(2, 8, 8);
        let big = ProcessSet::uniform(3, 8, 8);
        let entry = PartialCheckpoint::capture(&small, DatasetKind::Remainder, 0.0);
        let exit = PartialCheckpoint::capture(&big, DatasetKind::Library, 1.0);
        assert!(matches!(
            SplitCheckpoint::new(entry, exit),
            Err(CkptError::ShapeMismatch { .. })
        ));
    }
}
