//! The durable checkpoint pipeline: framing + backend + verified restore.
//!
//! [`CheckpointPipeline`] is the write/read orchestrator the runtime and the
//! simulator talk to.  On the way **down** it serializes checkpoint images
//! into checksummed frame streams ([`crate::frame`]) and commits them to a
//! pluggable [`CheckpointBackend`]; on the way **up** it fetches, verifies
//! ([`crate::verify`]), resolves delta/partial chains, and — when a
//! generation turns out damaged — **walks back** to the newest generation
//! that still verifies, reporting exactly what was rejected and how much
//! recomputation (rework) the fallback costs.  The pipeline never hands the
//! caller unverified state: every failure mode surfaces as a typed
//! [`RestoreFault`].
//!
//! Every operation is wall-clock timed into a [`GenerationCost`] record, so
//! benchmarks can replace the scalar `C`/`R` parameters of the analytic
//! waste models with measured write/verify/restore distributions.

use std::collections::BTreeMap;

use ft_platform::checksum::ChecksumGen;
use ft_platform::clock::Stopwatch;

use crate::backend::{CheckpointBackend, StoreFault};
use crate::coordinated::CoordinatedCheckpoint;
use crate::frame::{
    decode_coordinated, decode_incremental, decode_partial, encode_coordinated,
    encode_incremental, encode_partial, encode_stream, FrameHeader, PayloadKind,
    DEFAULT_CHUNK_SIZE,
};
use crate::incremental::IncrementalCheckpoint;
use crate::partial::PartialCheckpoint;
use crate::verify::{fetch_verified, RestoreFault, RetryPolicy};

/// Which pipeline operation a [`GenerationCost`] record measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineOp {
    /// Serializing + committing a full coordinated checkpoint.
    WriteFull,
    /// Serializing + committing an incremental (delta) checkpoint.
    WriteDelta,
    /// Serializing + committing a partial (one-dataset) checkpoint.
    WritePartial,
    /// Serializing + committing an opaque state snapshot.
    WriteState,
    /// Fetching + frame-verifying a generation (no image reconstruction).
    Verify,
    /// A full verified restore including chain resolution and fallback.
    Restore,
}

/// One timed pipeline operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationCost {
    /// Generation the operation targeted (for restores: the generation that
    /// was eventually restored).
    pub generation: u64,
    /// What was measured.
    pub op: PipelineOp,
    /// Unframed payload bytes.
    pub raw_bytes: usize,
    /// Bytes actually stored/fetched (framing overhead included).
    pub stored_bytes: usize,
    /// Wall-clock seconds the operation took.
    pub seconds: f64,
}

/// Aggregate statistics over the [`GenerationCost`] records of one op class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSummary {
    /// Operation class summarised.
    pub op: PipelineOp,
    /// Number of records.
    pub count: usize,
    /// Minimum seconds.
    pub min_seconds: f64,
    /// Mean seconds.
    pub mean_seconds: f64,
    /// Maximum seconds.
    pub max_seconds: f64,
    /// Total payload bytes across the records.
    pub total_raw_bytes: usize,
}

/// Outcome of a verified restore, including what graceful degradation cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RestoreOutcome {
    /// Generation actually restored (the newest verifiable one).
    pub generation: u64,
    /// How many newer image generations had to be rejected first.
    pub fallback_depth: usize,
    /// The rejected generations with the fault that disqualified each.
    pub rejected: Vec<(u64, RestoreFault)>,
    /// Total extra read attempts spent on transient faults.
    pub transient_retries: u32,
    /// Total simulated backoff seconds spent retrying transients.
    pub backoff_cost: f64,
    /// Application seconds lost by restoring an older generation than the
    /// newest committed one (`newest committed time − restored time`) — the
    /// extra rework the simulator should charge as waste.
    pub rework: f64,
}

#[derive(Debug, Clone, Copy)]
struct LedgerEntry {
    payload: PayloadKind,
    time: f64,
}

/// The durable pipeline over a checksum generator and a storage backend.
#[derive(Debug)]
pub struct CheckpointPipeline<C: ChecksumGen + Clone, B: CheckpointBackend> {
    checksum: C,
    backend: B,
    chunk_size: usize,
    retry: RetryPolicy,
    next_generation: u64,
    ledger: BTreeMap<u64, LedgerEntry>,
    costs: Vec<GenerationCost>,
}

impl<C: ChecksumGen + Clone, B: CheckpointBackend> CheckpointPipeline<C, B> {
    /// Creates a pipeline with the default chunk size and retry policy.
    pub fn new(checksum: C, backend: B) -> Self {
        Self::with_config(checksum, backend, DEFAULT_CHUNK_SIZE, RetryPolicy::default_policy())
    }

    /// Creates a pipeline with explicit chunking and retry configuration.
    pub fn with_config(checksum: C, backend: B, chunk_size: usize, retry: RetryPolicy) -> Self {
        Self {
            checksum,
            backend,
            chunk_size: chunk_size.max(1),
            retry,
            next_generation: 0,
            ledger: BTreeMap::new(),
            costs: Vec::new(),
        }
    }

    /// The storage backend (e.g. to inspect injected faults in tests).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the storage backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Generations currently committed, ascending.
    pub fn generations(&self) -> Vec<u64> {
        self.backend.generations()
    }

    /// All timed operation records, in order.
    pub fn costs(&self) -> &[GenerationCost] {
        &self.costs
    }

    fn commit(
        &mut self,
        payload: PayloadKind,
        time: f64,
        body: &[u8],
        op: PipelineOp,
    ) -> Result<u64, StoreFault> {
        let generation = self.next_generation;
        let started = Stopwatch::start();
        let header = FrameHeader {
            generation,
            payload,
            time,
        };
        let bytes = encode_stream(header, body, self.chunk_size, self.checksum.clone());
        self.backend.put(generation, &bytes)?;
        self.costs.push(GenerationCost {
            generation,
            op,
            raw_bytes: body.len(),
            stored_bytes: bytes.len(),
            seconds: started.elapsed_seconds(),
        });
        self.next_generation += 1;
        self.ledger.insert(generation, LedgerEntry { payload, time });
        Ok(generation)
    }

    /// Commits a full coordinated checkpoint; returns its generation.
    pub fn commit_full(&mut self, image: &CoordinatedCheckpoint) -> Result<u64, StoreFault> {
        let body = encode_coordinated(image);
        self.commit(PayloadKind::Full, image.time, &body, PipelineOp::WriteFull)
    }

    /// Commits an incremental checkpoint as a delta frame against `base`.
    pub fn commit_delta(
        &mut self,
        delta: &IncrementalCheckpoint,
        base: u64,
    ) -> Result<u64, StoreFault> {
        let body = encode_incremental(delta);
        self.commit(
            PayloadKind::Delta { base },
            delta.time,
            &body,
            PipelineOp::WriteDelta,
        )
    }

    /// Commits a partial (one-dataset, `(1−ρ)C` / `ρC`) checkpoint against
    /// `base`, which supplies the complementary dataset at restore time.
    pub fn commit_partial(
        &mut self,
        partial: &PartialCheckpoint,
        base: u64,
    ) -> Result<u64, StoreFault> {
        let body = encode_partial(partial);
        self.commit(
            PayloadKind::Partial {
                dataset: partial.kind,
                base,
            },
            partial.time,
            &body,
            PipelineOp::WritePartial,
        )
    }

    /// Commits an opaque state snapshot (e.g. a crash-resume snapshot).
    pub fn commit_state(&mut self, bytes: &[u8], time: f64) -> Result<u64, StoreFault> {
        self.commit(PayloadKind::State, time, bytes, PipelineOp::WriteState)
    }

    /// Fetches and frame-verifies one generation without reconstructing the
    /// image; records the verification cost.
    pub fn verify(&mut self, generation: u64) -> Result<(), RestoreFault> {
        let started = Stopwatch::start();
        let v = fetch_verified(&mut self.backend, generation, &self.checksum, self.retry)?;
        self.costs.push(GenerationCost {
            generation,
            op: PipelineOp::Verify,
            raw_bytes: v.body.len(),
            stored_bytes: v.body.len(),
            seconds: started.elapsed_seconds(),
        });
        Ok(())
    }

    /// Resolves one generation into a complete coordinated image, following
    /// delta/partial chains down to their full base.  `budget` tracks
    /// transient retries and backoff across the chain.
    fn resolve_chain(
        &mut self,
        generation: u64,
        retries: &mut u32,
        backoff: &mut f64,
    ) -> Result<CoordinatedCheckpoint, RestoreFault> {
        let v = fetch_verified(&mut self.backend, generation, &self.checksum, self.retry)?;
        *retries += v.attempts - 1;
        *backoff += v.backoff_cost;
        fn corrupted<E>(generation: u64) -> impl Fn(E) -> RestoreFault {
            move |_| RestoreFault::CorruptFrame {
                generation,
                frame_index: 0,
            }
        }
        match v.header.payload {
            PayloadKind::Full => decode_coordinated(&v.body).map_err(corrupted(generation)),
            PayloadKind::Delta { base } => {
                let base_image = self.resolve_chain(base, retries, backoff)?;
                let delta = decode_incremental(&v.body).map_err(corrupted(generation))?;
                delta.apply_onto(&base_image).map_err(corrupted(generation))
            }
            PayloadKind::Partial { base, .. } => {
                let base_image = self.resolve_chain(base, retries, backoff)?;
                let partial = decode_partial(&v.body).map_err(corrupted(generation))?;
                Ok(apply_partial_onto(&partial, &base_image))
            }
            // A state snapshot is not a restorable image; reaching one
            // through a base chain means the chain metadata is wrong.
            PayloadKind::State => Err(RestoreFault::CorruptFrame {
                generation,
                frame_index: 0,
            }),
        }
    }

    fn newest_image_time(&self) -> Option<f64> {
        self.ledger
            .values()
            .filter(|e| !matches!(e.payload, PayloadKind::State))
            .map(|e| e.time)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }

    /// Restores the newest **verifiable** coordinated image, walking back
    /// over damaged generations.
    ///
    /// Returns the reconstructed image plus a [`RestoreOutcome`] describing
    /// the degradation: which generations were rejected and why, how much
    /// retry backoff was paid, and how much rework the fallback costs
    /// (computed against the newest image committed *through this pipeline
    /// instance*; zero when nothing newer is known).
    pub fn restore_latest(
        &mut self,
    ) -> Result<(CoordinatedCheckpoint, RestoreOutcome), RestoreFault> {
        let started = Stopwatch::start();
        let mut rejected: Vec<(u64, RestoreFault)> = Vec::new();
        let mut retries = 0u32;
        let mut backoff = 0.0f64;
        let mut candidates: Vec<u64> = self.backend.generations();
        candidates.reverse();
        for generation in candidates {
            // State snapshots are not images: skip without penalty.
            if matches!(
                self.ledger.get(&generation).map(|e| e.payload),
                Some(PayloadKind::State)
            ) {
                continue;
            }
            match self.resolve_chain(generation, &mut retries, &mut backoff) {
                Ok(image) => {
                    let rework = self
                        .newest_image_time()
                        .map(|newest| (newest - image.time).max(0.0))
                        .unwrap_or(0.0);
                    let outcome = RestoreOutcome {
                        generation,
                        fallback_depth: rejected.len(),
                        rejected,
                        transient_retries: retries,
                        backoff_cost: backoff,
                        rework,
                    };
                    self.costs.push(GenerationCost {
                        generation,
                        op: PipelineOp::Restore,
                        raw_bytes: image.bytes(),
                        stored_bytes: 0,
                        seconds: started.elapsed_seconds(),
                    });
                    return Ok((image, outcome));
                }
                Err(fault) => {
                    // An unledgered generation that turns out to be a state
                    // snapshot is also skipped silently: it was never an
                    // image candidate.
                    if let RestoreFault::CorruptFrame { .. } | RestoreFault::TornWrite { .. }
                    | RestoreFault::MissingGeneration { .. } | RestoreFault::Transient { .. } =
                        &fault
                    {
                        if self.is_state_generation(generation) {
                            continue;
                        }
                    }
                    rejected.push((generation, fault));
                }
            }
        }
        Err(RestoreFault::NoVerifiableGeneration { rejected })
    }

    fn is_state_generation(&mut self, generation: u64) -> bool {
        if let Some(entry) = self.ledger.get(&generation) {
            return matches!(entry.payload, PayloadKind::State);
        }
        // Unledgered: peek at the header if the stream is readable.
        fetch_verified(&mut self.backend, generation, &self.checksum, RetryPolicy::no_retry())
            .map(|v| matches!(v.header.payload, PayloadKind::State))
            .unwrap_or(false)
    }

    /// Restores the newest verifiable **state snapshot** (payload kind
    /// `State`), walking back over damaged ones like
    /// [`CheckpointPipeline::restore_latest`].
    pub fn restore_state(&mut self) -> Result<(Vec<u8>, RestoreOutcome), RestoreFault> {
        let mut rejected: Vec<(u64, RestoreFault)> = Vec::new();
        let mut retries = 0u32;
        let mut backoff = 0.0f64;
        let mut candidates: Vec<u64> = self.backend.generations();
        candidates.reverse();
        for generation in candidates {
            if let Some(entry) = self.ledger.get(&generation) {
                if !matches!(entry.payload, PayloadKind::State) {
                    continue;
                }
            }
            match fetch_verified(&mut self.backend, generation, &self.checksum, self.retry) {
                Ok(v) => {
                    if !matches!(v.header.payload, PayloadKind::State) {
                        continue;
                    }
                    retries += v.attempts - 1;
                    backoff += v.backoff_cost;
                    let outcome = RestoreOutcome {
                        generation,
                        fallback_depth: rejected.len(),
                        rejected,
                        transient_retries: retries,
                        backoff_cost: backoff,
                        rework: 0.0,
                    };
                    return Ok((v.body, outcome));
                }
                Err(fault) => {
                    // Only count generations that were (or might be) state
                    // snapshots.
                    if self
                        .ledger
                        .get(&generation)
                        .map(|e| matches!(e.payload, PayloadKind::State))
                        .unwrap_or(true)
                    {
                        rejected.push((generation, fault));
                    }
                }
            }
        }
        Err(RestoreFault::NoVerifiableGeneration { rejected })
    }

    /// Keeps the newest `keep` generations plus every generation reachable
    /// as a base of a kept delta/partial chain; deletes the rest.
    pub fn retain_latest(&mut self, keep: usize) -> Result<(), StoreFault> {
        let generations = self.backend.generations();
        if generations.len() <= keep {
            return Ok(());
        }
        let mut keep_set: std::collections::BTreeSet<u64> =
            generations.iter().rev().take(keep).copied().collect();
        // Close over base chains so retained deltas stay resolvable.
        let mut frontier: Vec<u64> = keep_set.iter().copied().collect();
        while let Some(generation) = frontier.pop() {
            if let Some(entry) = self.ledger.get(&generation) {
                match entry.payload {
                    PayloadKind::Delta { base } | PayloadKind::Partial { base, .. }
                        if keep_set.insert(base) =>
                    {
                        frontier.push(base);
                    }
                    _ => {}
                }
            }
        }
        for generation in generations {
            if !keep_set.contains(&generation) {
                self.backend.delete(generation)?;
                self.ledger.remove(&generation);
            }
        }
        Ok(())
    }

    /// Per-operation-class aggregates over [`CheckpointPipeline::costs`].
    pub fn cost_summary(&self) -> Vec<CostSummary> {
        let classes = [
            PipelineOp::WriteFull,
            PipelineOp::WriteDelta,
            PipelineOp::WritePartial,
            PipelineOp::WriteState,
            PipelineOp::Verify,
            PipelineOp::Restore,
        ];
        classes
            .iter()
            .filter_map(|&op| {
                let records: Vec<&GenerationCost> =
                    self.costs.iter().filter(|c| c.op == op).collect();
                if records.is_empty() {
                    return None;
                }
                let count = records.len();
                let total: f64 = records.iter().map(|c| c.seconds).sum();
                Some(CostSummary {
                    op,
                    count,
                    min_seconds: records.iter().map(|c| c.seconds).fold(f64::MAX, f64::min),
                    mean_seconds: total / count as f64,
                    max_seconds: records.iter().map(|c| c.seconds).fold(0.0, f64::max),
                    total_raw_bytes: records.iter().map(|c| c.raw_bytes).sum(),
                })
            })
            .collect()
    }
}

/// Folds a partial (one-dataset) checkpoint onto a complete base image: the
/// covered dataset's regions and the per-process progress come from the
/// partial; everything else stays as in the base.  Region sets are matched
/// by `region_id`; a full-overlap partial simply replaces every region of
/// its dataset, an empty partial only updates progress and time.
pub fn apply_partial_onto(
    partial: &PartialCheckpoint,
    base: &CoordinatedCheckpoint,
) -> CoordinatedCheckpoint {
    let mut combined = base.clone();
    combined.time = partial.time;
    for snap in &mut combined.snapshots {
        if let Some(part) = partial.snapshots.iter().find(|p| p.rank == snap.rank) {
            snap.progress = part.progress;
            for region in &part.regions {
                if let Some(existing) = snap
                    .regions
                    .iter_mut()
                    .find(|r| r.region_id == region.region_id)
                {
                    *existing = region.clone();
                } else {
                    snap.regions.push(region.clone());
                    snap.regions.sort_by_key(|r| r.region_id);
                }
            }
        }
    }
    combined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FaultInjectingBackend, FaultPlan, InjectedKind, MemoryBackend};
    use crate::state::{DatasetKind, ProcessSet};
    use ft_platform::checksum::Crc32;

    fn pipeline() -> CheckpointPipeline<Crc32, MemoryBackend> {
        CheckpointPipeline::new(Crc32::new(), MemoryBackend::new())
    }

    #[test]
    fn full_commit_and_restore_round_trip() {
        let set = ProcessSet::uniform(3, 200, 100);
        let image = CoordinatedCheckpoint::capture(&set, 10.0);
        let mut p = pipeline();
        let generation = p.commit_full(&image).unwrap();
        let (restored, outcome) = p.restore_latest().unwrap();
        assert_eq!(restored, image);
        assert_eq!(outcome.generation, generation);
        assert_eq!(outcome.fallback_depth, 0);
        assert!(outcome.rejected.is_empty());
        assert_eq!(outcome.rework, 0.0);
    }

    #[test]
    fn delta_chain_resolves_to_the_combined_image() {
        let mut set = ProcessSet::uniform(2, 64, 64);
        let base_image = CoordinatedCheckpoint::capture(&set, 0.0);
        let mut p = pipeline();
        let base_generation = p.commit_full(&base_image).unwrap();

        set.process_mut(0).unwrap().region_mut(0).unwrap().write(vec![7; 64]);
        set.process_mut(0).unwrap().advance(5.0);
        let delta = IncrementalCheckpoint::capture_since(&set, &base_image, 4.0);
        p.commit_delta(&delta, base_generation).unwrap();

        let (restored, outcome) = p.restore_latest().unwrap();
        let reference = delta.apply_onto(&base_image).unwrap();
        assert_eq!(restored, reference);
        assert_eq!(outcome.fallback_depth, 0);
        // Restoring the newest image costs no rework.
        assert_eq!(outcome.rework, 0.0);
    }

    #[test]
    fn partial_chain_overlays_one_dataset() {
        let mut set = ProcessSet::uniform(2, 32, 16);
        let base_image = CoordinatedCheckpoint::capture(&set, 0.0);
        let mut p = pipeline();
        let base_generation = p.commit_full(&base_image).unwrap();

        // Library phase: mutate LIBRARY regions only.
        for proc in set.iter_mut() {
            let ids: Vec<usize> = proc.regions_of(DatasetKind::Library).map(|r| r.id).collect();
            for id in ids {
                proc.region_mut(id).unwrap().update(|d| d.iter_mut().for_each(|b| *b = b.wrapping_add(1)));
            }
            proc.advance(3.0);
        }
        let partial = PartialCheckpoint::capture(&set, DatasetKind::Library, 7.0);
        p.commit_partial(&partial, base_generation).unwrap();

        let (restored, _) = p.restore_latest().unwrap();
        let reference = CoordinatedCheckpoint::capture(&set, 7.0);
        assert_eq!(restored, reference);
    }

    #[test]
    fn corrupt_newest_generation_falls_back_with_rework() {
        let set = ProcessSet::uniform(2, 128, 64);
        let older = CoordinatedCheckpoint::capture(&set, 10.0);
        let newer = CoordinatedCheckpoint::capture(&set, 20.0);
        let mut p = pipeline();
        p.commit_full(&older).unwrap();
        let newest = p.commit_full(&newer).unwrap();
        // Corrupt the newest stream in place.
        let mut bytes = p.backend_mut().get(newest).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0xFF;
        p.backend_mut().put(newest, &bytes).unwrap();

        let (restored, outcome) = p.restore_latest().unwrap();
        assert_eq!(restored.time, 10.0);
        assert_eq!(outcome.fallback_depth, 1);
        assert_eq!(outcome.rejected.len(), 1);
        assert!(matches!(
            outcome.rejected[0],
            (g, RestoreFault::CorruptFrame { .. }) if g == newest
        ));
        // Fallback from t=20 to t=10 costs 10 s of rework.
        assert!((outcome.rework - 10.0).abs() < 1e-12);
    }

    #[test]
    fn corrupt_base_disqualifies_the_delta_that_needs_it() {
        let mut set = ProcessSet::uniform(2, 64, 32);
        let mut p = pipeline();
        let safety = p.commit_full(&CoordinatedCheckpoint::capture(&set, 1.0)).unwrap();
        let base_image = CoordinatedCheckpoint::capture(&set, 2.0);
        let base_generation = p.commit_full(&base_image).unwrap();
        set.process_mut(1).unwrap().region_mut(0).unwrap().write(vec![9; 64]);
        let delta = IncrementalCheckpoint::capture_since(&set, &base_image, 3.0);
        p.commit_delta(&delta, base_generation).unwrap();

        // Corrupt the delta's base: both the delta and the base are now
        // unrestorable; the pipeline must fall back to the safety image.
        let mut bytes = p.backend_mut().get(base_generation).unwrap();
        bytes[10] ^= 0x01;
        p.backend_mut().put(base_generation, &bytes).unwrap();

        let (restored, outcome) = p.restore_latest().unwrap();
        assert_eq!(outcome.generation, safety);
        assert_eq!(restored.time, 1.0);
        assert_eq!(outcome.fallback_depth, 2);
    }

    #[test]
    fn all_generations_damaged_is_a_typed_exhaustion_error() {
        let set = ProcessSet::uniform(1, 32, 32);
        let mut p = CheckpointPipeline::with_config(
            Crc32::new(),
            FaultInjectingBackend::new(
                MemoryBackend::new(),
                FaultPlan::only(InjectedKind::BitFlip, 1.0),
                13,
            ),
            512,
            RetryPolicy::no_retry(),
        );
        for t in [1.0, 2.0, 3.0] {
            p.commit_full(&CoordinatedCheckpoint::capture(&set, t)).unwrap();
        }
        match p.restore_latest() {
            Err(RestoreFault::NoVerifiableGeneration { rejected }) => {
                assert_eq!(rejected.len(), 3);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn state_snapshots_are_invisible_to_image_restore_and_vice_versa() {
        let set = ProcessSet::uniform(1, 16, 16);
        let image = CoordinatedCheckpoint::capture(&set, 5.0);
        let mut p = pipeline();
        p.commit_full(&image).unwrap();
        let state_generation = p.commit_state(b"resume-cursor", 6.0).unwrap();

        // Image restore skips the newer state snapshot entirely.
        let (restored, outcome) = p.restore_latest().unwrap();
        assert_eq!(restored, image);
        assert_eq!(outcome.fallback_depth, 0);
        assert!(outcome.rejected.is_empty());

        // State restore finds the snapshot.
        let (state, state_outcome) = p.restore_state().unwrap();
        assert_eq!(state, b"resume-cursor");
        assert_eq!(state_outcome.generation, state_generation);
    }

    #[test]
    fn transient_faults_are_retried_and_accounted() {
        let set = ProcessSet::uniform(1, 64, 0);
        let mut p = CheckpointPipeline::with_config(
            Crc32::new(),
            FaultInjectingBackend::new(
                MemoryBackend::new(),
                FaultPlan::transient_only(1.0, 2),
                7,
            ),
            512,
            RetryPolicy {
                max_attempts: 3,
                base_backoff: 0.5,
            },
        );
        p.commit_full(&CoordinatedCheckpoint::capture(&set, 1.0)).unwrap();
        let (_, outcome) = p.restore_latest().unwrap();
        assert!(outcome.transient_retries >= 1);
        assert!(outcome.backoff_cost > 0.0);
    }

    #[test]
    fn retention_preserves_base_chains() {
        let mut set = ProcessSet::uniform(1, 32, 32);
        let mut p = pipeline();
        let base_image = CoordinatedCheckpoint::capture(&set, 0.0);
        let base_generation = p.commit_full(&base_image).unwrap();
        for k in 1..=4u32 {
            p.commit_full(&CoordinatedCheckpoint::capture(&set, f64::from(k)))
                .unwrap();
        }
        set.process_mut(0).unwrap().region_mut(0).unwrap().write(vec![1; 32]);
        let delta = IncrementalCheckpoint::capture_since(&set, &base_image, 5.0);
        let delta_generation = p.commit_delta(&delta, base_generation).unwrap();

        p.retain_latest(1).unwrap();
        let kept = p.generations();
        // The delta and its base survive; the middle fulls are gone.
        assert!(kept.contains(&delta_generation));
        assert!(kept.contains(&base_generation));
        assert_eq!(kept.len(), 2);
        let (restored, _) = p.restore_latest().unwrap();
        assert_eq!(restored, delta.apply_onto(&base_image).unwrap());
    }

    #[test]
    fn costs_are_recorded_per_operation_class() {
        let set = ProcessSet::uniform(2, 64, 64);
        let image = CoordinatedCheckpoint::capture(&set, 1.0);
        let mut p = pipeline();
        let generation = p.commit_full(&image).unwrap();
        p.verify(generation).unwrap();
        p.restore_latest().unwrap();
        let summary = p.cost_summary();
        let ops: Vec<PipelineOp> = summary.iter().map(|s| s.op).collect();
        assert!(ops.contains(&PipelineOp::WriteFull));
        assert!(ops.contains(&PipelineOp::Verify));
        assert!(ops.contains(&PipelineOp::Restore));
        for s in &summary {
            assert_eq!(s.count, 1);
            assert!(s.min_seconds <= s.mean_seconds && s.mean_seconds <= s.max_seconds);
        }
        // Framing adds overhead: stored > raw for the write.
        let write = p.costs().iter().find(|c| c.op == PipelineOp::WriteFull).unwrap();
        assert!(write.stored_bytes > write.raw_bytes);
    }

    #[test]
    fn empty_partial_only_moves_progress_and_time() {
        let set = ProcessSet::uniform(2, 16, 16);
        let base = CoordinatedCheckpoint::capture(&set, 1.0);
        let empty = PartialCheckpoint {
            kind: DatasetKind::Library,
            time: 9.0,
            snapshots: base
                .snapshots
                .iter()
                .map(|s| crate::coordinated::ProcessSnapshot {
                    rank: s.rank,
                    regions: Vec::new(),
                    progress: 42.0,
                })
                .collect(),
        };
        let combined = apply_partial_onto(&empty, &base);
        assert_eq!(combined.time, 9.0);
        assert_eq!(combined.bytes(), base.bytes());
        assert!(combined.snapshots.iter().all(|s| s.progress == 42.0));
    }
}
