//! Rollback recovery: applying checkpoints back onto a process set.

use serde::{Deserialize, Serialize};

use crate::coordinated::CoordinatedCheckpoint;
use crate::error::{CkptError, Result};
use crate::partial::PartialCheckpoint;
use crate::state::ProcessSet;

/// Summary of what a restore operation touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestoreReport {
    /// Number of processes whose state was (at least partly) rewritten.
    pub ranks_restored: usize,
    /// Number of memory regions rewritten.
    pub regions_restored: usize,
    /// Number of bytes rewritten.
    pub bytes_restored: usize,
}

impl RestoreReport {
    fn accumulate(&mut self, other: RestoreReport) {
        self.ranks_restored += other.ranks_restored;
        self.regions_restored += other.regions_restored;
        self.bytes_restored += other.bytes_restored;
    }
}

/// Restores every process from a coordinated checkpoint (classic rollback
/// recovery: all processes go back to the snapshot, whatever their state).
pub fn restore_full(ckpt: &CoordinatedCheckpoint, set: &mut ProcessSet) -> Result<RestoreReport> {
    if ckpt.ranks() != set.len() {
        return Err(CkptError::ShapeMismatch {
            checkpoint_ranks: ckpt.ranks(),
            target_ranks: set.len(),
        });
    }
    let mut report = RestoreReport {
        ranks_restored: 0,
        regions_restored: 0,
        bytes_restored: 0,
    };
    for snap in &ckpt.snapshots {
        let process = set.process_mut(snap.rank)?;
        let mut regions = 0;
        let mut bytes = 0;
        for r in &snap.regions {
            let region = process.region_mut(r.region_id)?;
            region.restore(r.data.clone(), r.generation);
            regions += 1;
            bytes += r.data.len();
        }
        process.set_progress(snap.progress);
        report.accumulate(RestoreReport {
            ranks_restored: 1,
            regions_restored: regions,
            bytes_restored: bytes,
        });
    }
    Ok(report)
}

/// Restores only the dataset covered by a partial checkpoint, on the given
/// ranks (or on every rank when `ranks` is `None`).
///
/// This is the recovery path of the composite protocol when a failure strikes
/// *inside* a library call: the REMAINDER dataset of the failed process is
/// reloaded from the entry partial checkpoint, while the LIBRARY dataset is
/// rebuilt by ABFT (not by this function).
pub fn restore_partial(
    ckpt: &PartialCheckpoint,
    set: &mut ProcessSet,
    ranks: Option<&[usize]>,
) -> Result<RestoreReport> {
    if ckpt.ranks() != set.len() {
        return Err(CkptError::ShapeMismatch {
            checkpoint_ranks: ckpt.ranks(),
            target_ranks: set.len(),
        });
    }
    let mut report = RestoreReport {
        ranks_restored: 0,
        regions_restored: 0,
        bytes_restored: 0,
    };
    for snap in &ckpt.snapshots {
        if let Some(filter) = ranks {
            if !filter.contains(&snap.rank) {
                continue;
            }
        }
        let process = set.process_mut(snap.rank)?;
        let mut regions = 0;
        let mut bytes = 0;
        for r in &snap.regions {
            let region = process.region_mut(r.region_id)?;
            region.restore(r.data.clone(), r.generation);
            regions += 1;
            bytes += r.data.len();
        }
        // Partial restores do not rewind progress on their own: the caller
        // decides (the composite protocol restores the stack "before
        // quitting the library routine", i.e. progress is handled at the
        // protocol level).
        report.accumulate(RestoreReport {
            ranks_restored: 1,
            regions_restored: regions,
            bytes_restored: bytes,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{DatasetKind, ProcessSet};

    fn scramble(set: &mut ProcessSet) {
        for p in set.iter_mut() {
            let ids: Vec<usize> = p.regions().iter().map(|r| r.id).collect();
            for id in ids {
                p.region_mut(id).unwrap().update(|d| {
                    for b in d.iter_mut() {
                        *b = b.wrapping_mul(3).wrapping_add(17);
                    }
                });
            }
            p.advance(999.0);
        }
    }

    #[test]
    fn full_restore_round_trips() {
        let mut set = ProcessSet::uniform(4, 64, 32);
        let original_fp = set.fingerprint();
        let ckpt = CoordinatedCheckpoint::capture(&set, 5.0);

        scramble(&mut set);
        assert_ne!(set.fingerprint(), original_fp);

        let report = restore_full(&ckpt, &mut set).unwrap();
        assert_eq!(set.fingerprint(), original_fp);
        assert_eq!(report.ranks_restored, 4);
        assert_eq!(report.regions_restored, 8);
        assert_eq!(report.bytes_restored, set.total_footprint());
    }

    #[test]
    fn full_restore_rejects_shape_mismatch() {
        let set = ProcessSet::uniform(2, 8, 8);
        let ckpt = CoordinatedCheckpoint::capture(&set, 0.0);
        let mut other = ProcessSet::uniform(3, 8, 8);
        assert!(matches!(
            restore_full(&ckpt, &mut other),
            Err(CkptError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn partial_restore_touches_only_its_dataset() {
        let mut set = ProcessSet::uniform(3, 64, 32);
        let rem_ckpt = PartialCheckpoint::capture(&set, DatasetKind::Remainder, 0.0);

        // Record library fingerprints, then scramble everything.
        let lib_fps: Vec<u64> = set
            .iter()
            .flat_map(|p| p.regions_of(DatasetKind::Library).map(|r| r.fingerprint()))
            .collect();
        scramble(&mut set);
        let scrambled_lib_fps: Vec<u64> = set
            .iter()
            .flat_map(|p| p.regions_of(DatasetKind::Library).map(|r| r.fingerprint()))
            .collect();
        assert_ne!(lib_fps, scrambled_lib_fps);

        let report = restore_partial(&rem_ckpt, &mut set, None).unwrap();
        assert_eq!(report.ranks_restored, 3);
        assert_eq!(report.bytes_restored, 3 * 32);

        // REMAINDER regions recovered their original content...
        for (p, reference) in set.iter().zip(rem_ckpt.snapshots.iter()) {
            for (region, snap) in p.regions_of(DatasetKind::Remainder).zip(reference.regions.iter()) {
                assert_eq!(region.data(), snap.data.as_slice());
            }
        }
        // ...while LIBRARY regions kept their scrambled content.
        let lib_after: Vec<u64> = set
            .iter()
            .flat_map(|p| p.regions_of(DatasetKind::Library).map(|r| r.fingerprint()))
            .collect();
        assert_eq!(lib_after, scrambled_lib_fps);
    }

    #[test]
    fn partial_restore_can_target_a_single_rank() {
        let mut set = ProcessSet::uniform(3, 16, 16);
        let ckpt = PartialCheckpoint::capture(&set, DatasetKind::Remainder, 0.0);
        scramble(&mut set);
        let fp_rank1_before = set.process(1).unwrap().fingerprint();

        let report = restore_partial(&ckpt, &mut set, Some(&[0])).unwrap();
        assert_eq!(report.ranks_restored, 1);
        // Rank 1 untouched.
        assert_eq!(set.process(1).unwrap().fingerprint(), fp_rank1_before);
    }
}
