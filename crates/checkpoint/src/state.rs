//! Per-process application state.
//!
//! The composite protocol reasons about *datasets*: during a LIBRARY phase
//! only the LIBRARY dataset is accessed, the rest is the REMAINDER dataset
//! (paper §III).  [`ProcessState`] materialises that view: each process owns
//! a set of [`MemoryRegion`]s, each tagged with a [`DatasetKind`], plus an
//! abstract notion of computation progress.  Regions carry a generation
//! counter bumped on every write, which is what incremental checkpoints use
//! to find dirty data.

use serde::{Deserialize, Serialize};

use crate::error::{CkptError, Result};

/// Which dataset a memory region belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Data accessed (and recoverable) by the ABFT-protected library call.
    Library,
    /// Everything else: data only the GENERAL phase touches.
    Remainder,
}

impl DatasetKind {
    /// The other dataset.
    #[inline]
    pub fn complement(self) -> Self {
        match self {
            DatasetKind::Library => DatasetKind::Remainder,
            DatasetKind::Remainder => DatasetKind::Library,
        }
    }
}

/// A contiguous, tagged region of a process's memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryRegion {
    /// Identifier of the region, unique within its process.
    pub id: usize,
    /// Dataset the region belongs to.
    pub kind: DatasetKind,
    data: Vec<u8>,
    generation: u64,
}

impl MemoryRegion {
    /// Creates a region with initial contents.
    pub fn new(id: usize, kind: DatasetKind, data: Vec<u8>) -> Self {
        Self {
            id,
            kind,
            data,
            generation: 0,
        }
    }

    /// Read-only view of the region contents.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Size of the region in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the region is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Generation counter: how many times the region has been written.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Overwrites the region contents, bumping the generation.
    pub fn write(&mut self, data: Vec<u8>) {
        self.data = data;
        self.generation += 1;
    }

    /// Mutates the region contents in place through a closure, bumping the
    /// generation.
    pub fn update<F: FnOnce(&mut Vec<u8>)>(&mut self, f: F) {
        f(&mut self.data);
        self.generation += 1;
    }

    /// Restores the region to previously captured contents *without* counting
    /// as an application write: the generation is set to the captured value.
    pub(crate) fn restore(&mut self, data: Vec<u8>, generation: u64) {
        self.data = data;
        self.generation = generation;
    }

    /// FNV-1a fingerprint of the contents; used by tests and by the ABFT/
    /// checkpoint integration to assert exact restoration cheaply.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.data)
    }
}

/// FNV-1a over a byte slice.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The full state of one (virtual) process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessState {
    rank: usize,
    regions: Vec<MemoryRegion>,
    progress: f64,
}

impl ProcessState {
    /// Creates an empty process state.
    pub fn new(rank: usize) -> Self {
        Self {
            rank,
            regions: Vec::new(),
            progress: 0.0,
        }
    }

    /// Rank of the process.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Adds a region and returns its id.
    pub fn add_region(&mut self, kind: DatasetKind, data: Vec<u8>) -> usize {
        let id = self.regions.len();
        self.regions.push(MemoryRegion::new(id, kind, data));
        id
    }

    /// All regions.
    #[inline]
    pub fn regions(&self) -> &[MemoryRegion] {
        &self.regions
    }

    /// Regions belonging to a dataset.
    pub fn regions_of(&self, kind: DatasetKind) -> impl Iterator<Item = &MemoryRegion> {
        self.regions.iter().filter(move |r| r.kind == kind)
    }

    /// Immutable access to a region.
    pub fn region(&self, id: usize) -> Result<&MemoryRegion> {
        self.regions.get(id).ok_or(CkptError::UnknownRegion {
            rank: self.rank,
            region: id,
        })
    }

    /// Mutable access to a region.
    pub fn region_mut(&mut self, id: usize) -> Result<&mut MemoryRegion> {
        let rank = self.rank;
        self.regions.get_mut(id).ok_or(CkptError::UnknownRegion { rank, region: id })
    }

    /// Total footprint of the process in bytes.
    pub fn footprint(&self) -> usize {
        self.regions.iter().map(MemoryRegion::len).sum()
    }

    /// Footprint of one dataset in bytes.
    pub fn footprint_of(&self, kind: DatasetKind) -> usize {
        self.regions_of(kind).map(MemoryRegion::len).sum()
    }

    /// Abstract computation progress (application-defined work units).
    #[inline]
    pub fn progress(&self) -> f64 {
        self.progress
    }

    /// Advances the computation progress.
    pub fn advance(&mut self, work: f64) {
        self.progress += work;
    }

    /// Sets the progress. Intended for recovery paths (a restore rewinds the
    /// process to the progress recorded in the checkpoint; an ABFT recovery
    /// restores the progress the surviving processes vouch for).
    pub fn set_progress(&mut self, progress: f64) {
        self.progress = progress;
    }

    /// Simulates a crash: all region contents are lost (zeroed) and progress
    /// is reset. Region structure (ids, kinds, sizes) survives because a
    /// replacement process is started with the same memory layout.
    pub fn crash(&mut self) {
        for r in &mut self.regions {
            let len = r.data.len();
            r.data = vec![0; len];
            r.generation += 1;
        }
        self.progress = 0.0;
    }

    /// Fingerprint of the whole process state (regions of all datasets plus
    /// progress), for cheap equality assertions.
    pub fn fingerprint(&self) -> u64 {
        let mut acc: u64 = 0xCBF2_9CE4_8422_2325;
        for r in &self.regions {
            acc ^= r.fingerprint().rotate_left((r.id % 63) as u32);
            acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
        }
        acc ^ self.progress.to_bits()
    }
}

/// A set of processes that checkpoint and recover together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessSet {
    processes: Vec<ProcessState>,
}

impl ProcessSet {
    /// Creates `n` empty processes with ranks `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            processes: (0..n).map(ProcessState::new).collect(),
        }
    }

    /// Creates `n` processes, each holding one LIBRARY region of
    /// `library_bytes` and one REMAINDER region of `remainder_bytes`, filled
    /// with a rank-dependent pattern so that restorations are distinguishable.
    pub fn uniform(n: usize, library_bytes: usize, remainder_bytes: usize) -> Self {
        let mut set = Self::new(n);
        for rank in 0..n {
            let lib: Vec<u8> = (0..library_bytes).map(|i| ((i + rank) % 251) as u8).collect();
            let rem: Vec<u8> = (0..remainder_bytes)
                .map(|i| ((i * 7 + rank * 13) % 253) as u8)
                .collect();
            let p = &mut set.processes[rank];
            p.add_region(DatasetKind::Library, lib);
            p.add_region(DatasetKind::Remainder, rem);
        }
        set
    }

    /// Number of processes.
    #[inline]
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Immutable access to a process.
    pub fn process(&self, rank: usize) -> Result<&ProcessState> {
        self.processes.get(rank).ok_or(CkptError::UnknownRank {
            rank,
            size: self.processes.len(),
        })
    }

    /// Mutable access to a process.
    pub fn process_mut(&mut self, rank: usize) -> Result<&mut ProcessState> {
        let size = self.processes.len();
        self.processes.get_mut(rank).ok_or(CkptError::UnknownRank { rank, size })
    }

    /// Iterator over the processes.
    pub fn iter(&self) -> impl Iterator<Item = &ProcessState> {
        self.processes.iter()
    }

    /// Mutable iterator over the processes.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut ProcessState> {
        self.processes.iter_mut()
    }

    /// Total footprint across all processes, in bytes.
    pub fn total_footprint(&self) -> usize {
        self.processes.iter().map(ProcessState::footprint).sum()
    }

    /// Footprint of one dataset across all processes, in bytes.
    pub fn footprint_of(&self, kind: DatasetKind) -> usize {
        self.processes.iter().map(|p| p.footprint_of(kind)).sum()
    }

    /// Fingerprint of the whole process set.
    pub fn fingerprint(&self) -> u64 {
        let mut acc: u64 = 14_695_981_039_346_656_037;
        for p in &self.processes {
            acc ^= p.fingerprint();
            acc = acc.wrapping_mul(1_099_511_628_211);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_complement_is_involutive() {
        assert_eq!(DatasetKind::Library.complement(), DatasetKind::Remainder);
        assert_eq!(DatasetKind::Remainder.complement(), DatasetKind::Library);
        assert_eq!(DatasetKind::Library.complement().complement(), DatasetKind::Library);
    }

    #[test]
    fn writes_bump_generation() {
        let mut r = MemoryRegion::new(0, DatasetKind::Library, vec![1, 2, 3]);
        assert_eq!(r.generation(), 0);
        r.write(vec![4, 5]);
        assert_eq!(r.generation(), 1);
        assert_eq!(r.data(), &[4, 5]);
        r.update(|d| d.push(6));
        assert_eq!(r.generation(), 2);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn fingerprint_changes_with_content() {
        let a = MemoryRegion::new(0, DatasetKind::Library, vec![1, 2, 3]);
        let mut b = MemoryRegion::new(0, DatasetKind::Library, vec![1, 2, 3]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.write(vec![1, 2, 4]);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn process_footprints_split_by_dataset() {
        let mut p = ProcessState::new(0);
        p.add_region(DatasetKind::Library, vec![0; 100]);
        p.add_region(DatasetKind::Remainder, vec![0; 40]);
        p.add_region(DatasetKind::Library, vec![0; 60]);
        assert_eq!(p.footprint(), 200);
        assert_eq!(p.footprint_of(DatasetKind::Library), 160);
        assert_eq!(p.footprint_of(DatasetKind::Remainder), 40);
    }

    #[test]
    fn crash_wipes_contents_but_keeps_layout() {
        let mut set = ProcessSet::uniform(2, 64, 32);
        let before = set.process(1).unwrap().fingerprint();
        set.process_mut(1).unwrap().crash();
        let p = set.process(1).unwrap();
        assert_ne!(p.fingerprint(), before);
        assert_eq!(p.footprint(), 96);
        assert!(p.regions().iter().all(|r| r.data().iter().all(|&b| b == 0)));
        assert_eq!(p.progress(), 0.0);
    }

    #[test]
    fn uniform_set_has_expected_shape() {
        let set = ProcessSet::uniform(4, 128, 64);
        assert_eq!(set.len(), 4);
        assert_eq!(set.total_footprint(), 4 * (128 + 64));
        assert_eq!(set.footprint_of(DatasetKind::Library), 4 * 128);
        assert_eq!(set.footprint_of(DatasetKind::Remainder), 4 * 64);
        // Different ranks hold different data.
        assert_ne!(
            set.process(0).unwrap().fingerprint(),
            set.process(1).unwrap().fingerprint()
        );
    }

    #[test]
    fn rank_and_region_lookup_errors() {
        let mut set = ProcessSet::uniform(2, 8, 8);
        assert!(matches!(set.process(2), Err(CkptError::UnknownRank { rank: 2, size: 2 })));
        assert!(set.process_mut(5).is_err());
        let p = set.process_mut(0).unwrap();
        assert!(matches!(p.region(7), Err(CkptError::UnknownRegion { region: 7, .. })));
        assert!(p.region_mut(9).is_err());
    }

    #[test]
    fn progress_accumulates_and_resets_on_crash() {
        let mut p = ProcessState::new(0);
        p.advance(10.0);
        p.advance(5.0);
        assert_eq!(p.progress(), 15.0);
        p.crash();
        assert_eq!(p.progress(), 0.0);
    }

    #[test]
    fn set_fingerprint_detects_any_change() {
        let set = ProcessSet::uniform(3, 32, 16);
        let fp = set.fingerprint();
        let mut modified = set.clone();
        modified
            .process_mut(2)
            .unwrap()
            .region_mut(0)
            .unwrap()
            .update(|d| d[0] ^= 0xFF);
        assert_ne!(fp, modified.fingerprint());
    }
}
