//! Checkpoint repositories with storage-cost accounting.
//!
//! The store keeps the checkpoints an execution has taken, knows how long
//! each of them took to write (through an `ft-platform` [`StorageModel`]),
//! and serves the most recent restorable image on demand.  It is what a
//! protocol executor interrogates when a failure strikes: "what is the newest
//! checkpoint not younger than the failure, and how long will reloading it
//! take?".

use ft_platform::storage::StorageModel;
use serde::{Deserialize, Serialize};

use crate::coordinated::CoordinatedCheckpoint;
use crate::error::{CkptError, Result};

/// A stored checkpoint together with its accounting metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredCheckpoint {
    /// Monotonically increasing sequence number.
    pub sequence: u64,
    /// Application time the checkpoint represents (restore target).
    pub time: f64,
    /// Time it took to write the checkpoint, per the storage model.
    pub write_cost: f64,
    /// Time it will take to read it back.
    pub read_cost: f64,
    /// The checkpoint image itself.
    pub image: CoordinatedCheckpoint,
}

/// An ordered collection of checkpoints plus aggregate accounting.
#[derive(Debug, Clone)]
pub struct CheckpointStore<S: StorageModel> {
    storage: S,
    nodes: usize,
    checkpoints: Vec<StoredCheckpoint>,
    retention: usize,
    total_write_cost: f64,
    total_bytes_written: f64,
    next_sequence: u64,
}

impl<S: StorageModel> CheckpointStore<S> {
    /// Creates a store over the given storage model; `nodes` is the number of
    /// nodes writing concurrently (relevant for node-scaling storage models),
    /// `retention` is how many checkpoints are kept (older ones are pruned,
    /// but their cost remains accounted).
    pub fn new(storage: S, nodes: usize, retention: usize) -> Self {
        Self {
            storage,
            nodes,
            checkpoints: Vec::new(),
            retention: retention.max(1),
            total_write_cost: 0.0,
            total_bytes_written: 0.0,
            next_sequence: 0,
        }
    }

    /// Stores a checkpoint, computing its write/read costs from the storage
    /// model. Returns the stored record (cloned metadata, not the image).
    pub fn push(&mut self, image: CoordinatedCheckpoint) -> Result<(u64, f64)> {
        if let Some(last) = self.checkpoints.last() {
            if image.time < last.image.time {
                return Err(CkptError::NonMonotonicTimestamp {
                    newest: last.sequence,
                    offered: self.next_sequence,
                });
            }
        }
        let bytes = image.bytes() as f64;
        let write_cost = self.storage.write_cost(bytes, self.nodes);
        let read_cost = self.storage.read_cost(bytes, self.nodes);
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.total_write_cost += write_cost;
        self.total_bytes_written += bytes;
        self.checkpoints.push(StoredCheckpoint {
            sequence,
            time: image.time,
            write_cost,
            read_cost,
            image,
        });
        if self.checkpoints.len() > self.retention {
            let excess = self.checkpoints.len() - self.retention;
            self.checkpoints.drain(0..excess);
        }
        Ok((sequence, write_cost))
    }

    /// The newest stored checkpoint, if any.
    pub fn latest(&self) -> Option<&StoredCheckpoint> {
        self.checkpoints.last()
    }

    /// The newest checkpoint whose application time is `<= time`.
    pub fn latest_before(&self, time: f64) -> Option<&StoredCheckpoint> {
        self.checkpoints.iter().rev().find(|c| c.time <= time)
    }

    /// The newest checkpoint, or an error if the store is empty — the restore
    /// path of the protocol executors.
    pub fn restore_source(&self) -> Result<&StoredCheckpoint> {
        self.latest().ok_or(CkptError::NoCheckpointAvailable)
    }

    /// Number of checkpoints currently retained.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Whether the store holds no checkpoint.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Cumulative time spent writing checkpoints since the store was created.
    pub fn total_write_cost(&self) -> f64 {
        self.total_write_cost
    }

    /// Cumulative volume written since the store was created, in bytes.
    pub fn total_bytes_written(&self) -> f64 {
        self.total_bytes_written
    }

    /// The underlying storage model.
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// The retained checkpoints, oldest first.
    pub fn checkpoints(&self) -> &[StoredCheckpoint] {
        &self.checkpoints
    }

    /// The configured retention bound.
    pub fn retention(&self) -> usize {
        self.retention
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ProcessSet;
    use ft_platform::storage::{BandwidthBound, ConstantCost};

    fn ckpt_at(set: &ProcessSet, t: f64) -> CoordinatedCheckpoint {
        CoordinatedCheckpoint::capture(set, t)
    }

    #[test]
    fn push_accounts_costs_with_bandwidth_model() {
        let set = ProcessSet::uniform(4, 1000, 500);
        // 1000 B/s bandwidth → cost = bytes / 1000.
        let storage = BandwidthBound::new(1000.0, 0.0).unwrap();
        let mut store = CheckpointStore::new(storage, 4, 10);
        let (seq, cost) = store.push(ckpt_at(&set, 1.0)).unwrap();
        assert_eq!(seq, 0);
        let expected = set.total_footprint() as f64 / 1000.0;
        assert!((cost - expected).abs() < 1e-9);
        assert!((store.total_write_cost() - expected).abs() < 1e-9);
        assert_eq!(store.total_bytes_written(), set.total_footprint() as f64);
    }

    #[test]
    fn constant_cost_model_ignores_volume() {
        let set = ProcessSet::uniform(2, 10_000, 10_000);
        let mut store = CheckpointStore::new(ConstantCost::symmetric(60.0).unwrap(), 2, 4);
        let (_, cost) = store.push(ckpt_at(&set, 0.0)).unwrap();
        assert_eq!(cost, 60.0);
        assert_eq!(store.latest().unwrap().read_cost, 60.0);
    }

    #[test]
    fn latest_before_finds_the_right_image() {
        let set = ProcessSet::uniform(1, 16, 16);
        let mut store = CheckpointStore::new(ConstantCost::symmetric(1.0).unwrap(), 1, 10);
        for t in [10.0, 20.0, 30.0] {
            store.push(ckpt_at(&set, t)).unwrap();
        }
        assert_eq!(store.latest_before(25.0).unwrap().time, 20.0);
        assert_eq!(store.latest_before(30.0).unwrap().time, 30.0);
        assert_eq!(store.latest_before(5.0), None);
        assert_eq!(store.latest().unwrap().time, 30.0);
    }

    #[test]
    fn retention_prunes_but_keeps_accounting() {
        let set = ProcessSet::uniform(1, 100, 0);
        let mut store = CheckpointStore::new(BandwidthBound::new(100.0, 0.0).unwrap(), 1, 2);
        for t in [1.0, 2.0, 3.0, 4.0] {
            store.push(ckpt_at(&set, t)).unwrap();
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.latest().unwrap().time, 4.0);
        // 4 checkpoints of 100 B at 100 B/s = 4 s of cumulated write cost.
        assert!((store.total_write_cost() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_push_is_rejected_and_empty_restore_errors() {
        let set = ProcessSet::uniform(1, 8, 8);
        let mut store = CheckpointStore::new(ConstantCost::symmetric(1.0).unwrap(), 1, 3);
        assert!(matches!(store.restore_source(), Err(CkptError::NoCheckpointAvailable)));
        store.push(ckpt_at(&set, 10.0)).unwrap();
        assert!(store.push(ckpt_at(&set, 5.0)).is_err());
        assert!(store.restore_source().is_ok());
    }
}
