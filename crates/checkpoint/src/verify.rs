//! Verified retrieval: fetch a generation, validate every frame, classify
//! what went wrong, retry what is retryable.
//!
//! This is the trust boundary of the pipeline: nothing read from a
//! [`CheckpointBackend`] is handed to a restore path before its frame
//! checksums, stream checksum and trailer bookkeeping all verify.  Failures
//! are *classified* ([`RestoreFault`]) so the caller can degrade gracefully —
//! retry a transient, walk back a generation on corruption — instead of
//! restoring silently wrong state.
//!
//! Retries use a deterministic bounded exponential backoff expressed in
//! *simulated* seconds: no thread ever sleeps; the accumulated backoff cost
//! is reported so the simulator can charge it as waste.

use ft_platform::checksum::ChecksumGen;

use crate::backend::{CheckpointBackend, StoreFault};
use crate::frame::{decode_stream, FrameFault, FrameHeader};

/// Why a generation could not be verifiably restored.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreFault {
    /// A frame of the stored stream failed checksum verification.
    CorruptFrame {
        /// Generation whose stream is corrupt.
        generation: u64,
        /// Index of the offending frame.
        frame_index: usize,
    },
    /// The stored stream ends before its trailer — the write never
    /// completed.
    TornWrite {
        /// Generation whose stream is torn.
        generation: u64,
    },
    /// The generation is not present in the backend at all.
    MissingGeneration {
        /// The absent generation.
        generation: u64,
    },
    /// The backend kept failing transiently for the whole retry budget.
    Transient {
        /// Generation the reads targeted.
        generation: u64,
        /// How many attempts were made.
        attempts: u32,
    },
    /// No stored generation could be verified — the restore chain is
    /// exhausted.
    NoVerifiableGeneration {
        /// Each rejected generation with the fault that disqualified it.
        rejected: Vec<(u64, RestoreFault)>,
    },
}

impl std::fmt::Display for RestoreFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreFault::CorruptFrame {
                generation,
                frame_index,
            } => write!(f, "generation {generation}: frame {frame_index} is corrupt"),
            RestoreFault::TornWrite { generation } => {
                write!(f, "generation {generation}: torn write (stream incomplete)")
            }
            RestoreFault::MissingGeneration { generation } => {
                write!(f, "generation {generation} is missing from the backend")
            }
            RestoreFault::Transient {
                generation,
                attempts,
            } => write!(
                f,
                "generation {generation}: still failing transiently after {attempts} attempts"
            ),
            RestoreFault::NoVerifiableGeneration { rejected } => write!(
                f,
                "no verifiable generation ({} rejected)",
                rejected.len()
            ),
        }
    }
}

impl std::error::Error for RestoreFault {}

/// Bounded retry policy for transient backend faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of read attempts (including the first).
    pub max_attempts: u32,
    /// Backoff before retry `k` is `base_backoff · 2^(k−1)` simulated
    /// seconds.
    pub base_backoff: f64,
}

impl RetryPolicy {
    /// Three attempts, one simulated second of base backoff.
    pub fn default_policy() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: 1.0,
        }
    }

    /// A single attempt: transients are immediately fatal.
    pub fn no_retry() -> Self {
        Self {
            max_attempts: 1,
            base_backoff: 0.0,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::default_policy()
    }
}

/// A generation that passed full frame verification.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedStream {
    /// The stream's verified header.
    pub header: FrameHeader,
    /// The reassembled, checksum-verified body.
    pub body: Vec<u8>,
    /// How many read attempts it took.
    pub attempts: u32,
    /// Accumulated simulated backoff seconds spent on retries.
    pub backoff_cost: f64,
}

/// Fetches `generation` from the backend and verifies every frame,
/// retrying transient faults per `retry`.
///
/// Hard I/O errors are treated like transients (the medium may recover);
/// a missing generation and any frame-verification failure are final.
pub fn fetch_verified<B, C>(
    backend: &mut B,
    generation: u64,
    checksum: &C,
    retry: RetryPolicy,
) -> Result<VerifiedStream, RestoreFault>
where
    B: CheckpointBackend,
    C: ChecksumGen + Clone,
{
    let max_attempts = retry.max_attempts.max(1);
    let mut backoff_cost = 0.0;
    let mut attempts = 0;
    let bytes = loop {
        attempts += 1;
        match backend.get(generation) {
            Ok(bytes) => break bytes,
            Err(StoreFault::Missing { .. }) => {
                return Err(RestoreFault::MissingGeneration { generation });
            }
            Err(StoreFault::Transient { .. } | StoreFault::Io { .. }) => {
                if attempts >= max_attempts {
                    return Err(RestoreFault::Transient {
                        generation,
                        attempts,
                    });
                }
                backoff_cost += retry.base_backoff * f64::from(1u32 << (attempts - 1).min(20));
            }
        }
    };
    match decode_stream(&bytes, checksum.clone()) {
        Ok((header, body)) => Ok(VerifiedStream {
            header,
            body,
            attempts,
            backoff_cost,
        }),
        Err(FrameFault::TornWrite { .. }) => Err(RestoreFault::TornWrite { generation }),
        Err(FrameFault::CorruptFrame { frame_index }) => Err(RestoreFault::CorruptFrame {
            generation,
            frame_index,
        }),
        // A body that verified but does not decode means the frames lie
        // about their content: treat as corruption of frame 0.
        Err(FrameFault::Decode { .. }) => Err(RestoreFault::CorruptFrame {
            generation,
            frame_index: 0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{
        FaultInjectingBackend, FaultPlan, InjectedKind, MemoryBackend,
    };
    use crate::frame::{encode_stream, PayloadKind};
    use ft_platform::checksum::Crc32;

    fn stream(generation: u64) -> Vec<u8> {
        let header = FrameHeader {
            generation,
            payload: PayloadKind::State,
            time: 1.5,
        };
        let body: Vec<u8> = (0..1500u32).map(|i| (i % 241) as u8).collect();
        encode_stream(header, &body, 200, Crc32::new())
    }

    #[test]
    fn clean_stream_verifies_first_try() {
        let mut b = MemoryBackend::new();
        b.put(5, &stream(5)).unwrap();
        let v = fetch_verified(&mut b, 5, &Crc32::new(), RetryPolicy::default_policy()).unwrap();
        assert_eq!(v.header.generation, 5);
        assert_eq!(v.attempts, 1);
        assert_eq!(v.backoff_cost, 0.0);
        assert_eq!(v.body.len(), 1500);
    }

    #[test]
    fn missing_generation_is_final() {
        let mut b = MemoryBackend::new();
        assert_eq!(
            fetch_verified(&mut b, 9, &Crc32::new(), RetryPolicy::default_policy()).unwrap_err(),
            RestoreFault::MissingGeneration { generation: 9 }
        );
    }

    #[test]
    fn corruption_and_tearing_are_classified() {
        let mut b = MemoryBackend::new();
        let clean = stream(0);
        let mut flipped = clean.clone();
        flipped[clean.len() / 2] ^= 0x10;
        b.put(0, &flipped).unwrap();
        assert!(matches!(
            fetch_verified(&mut b, 0, &Crc32::new(), RetryPolicy::no_retry()).unwrap_err(),
            RestoreFault::CorruptFrame { generation: 0, .. }
        ));
        b.put(1, &clean[..clean.len() - 7]).unwrap();
        assert_eq!(
            fetch_verified(&mut b, 1, &Crc32::new(), RetryPolicy::no_retry()).unwrap_err(),
            RestoreFault::TornWrite { generation: 1 }
        );
    }

    #[test]
    fn transients_are_retried_with_exponential_backoff() {
        // Transient persists for 2 retries, then clears: 3 attempts succeed.
        let mut b = FaultInjectingBackend::new(
            MemoryBackend::new(),
            FaultPlan::transient_only(1.0, 2),
            3,
        );
        b.put(0, &stream(0)).unwrap();
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: 1.0,
        };
        let v = fetch_verified(&mut b, 0, &Crc32::new(), policy).unwrap();
        assert_eq!(v.attempts, 3);
        // Backoff after attempt 1 is 1 s, after attempt 2 is 2 s.
        assert!((v.backoff_cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn exhausted_retries_report_transient() {
        let mut b = FaultInjectingBackend::new(
            MemoryBackend::new(),
            FaultPlan::transient_only(1.0, 100),
            3,
        );
        b.put(0, &stream(0)).unwrap();
        assert_eq!(
            fetch_verified(&mut b, 0, &Crc32::new(), RetryPolicy::default_policy()).unwrap_err(),
            RestoreFault::Transient {
                generation: 0,
                attempts: 3
            }
        );
    }

    #[test]
    fn injected_write_faults_are_always_detected() {
        for kind in [InjectedKind::BitFlip, InjectedKind::Truncate, InjectedKind::TornWrite] {
            let mut b =
                FaultInjectingBackend::new(MemoryBackend::new(), FaultPlan::only(kind, 1.0), 17);
            for generation in 0..10u64 {
                b.put(generation, &stream(generation)).unwrap();
                let got =
                    fetch_verified(&mut b, generation, &Crc32::new(), RetryPolicy::no_retry());
                assert!(got.is_err(), "{kind:?} on generation {generation} undetected");
            }
        }
    }
}
