//! Corruption-injection matrix: every fault class × every backend × every
//! payload kind.
//!
//! The acceptance criterion of the durable pipeline: a damaged generation is
//! either restored *verified* from an older intact generation (with the
//! degradation reported) or rejected with a typed error — **never** silently
//! restored into a wrong state.  Every cell checks that the restored image
//! is byte-identical to what was committed as the generation the outcome
//! reports.

use ft_ckpt::backend::{
    CheckpointBackend, ChunkedFileBackend, FaultInjectingBackend, FaultPlan, InjectedKind,
    MemoryBackend,
};
use ft_ckpt::coordinated::CoordinatedCheckpoint;
use ft_ckpt::incremental::IncrementalCheckpoint;
use ft_ckpt::partial::PartialCheckpoint;
use ft_ckpt::pipeline::{apply_partial_onto, CheckpointPipeline};
use ft_ckpt::state::{DatasetKind, ProcessSet};
use ft_ckpt::verify::RestoreFault;
use ft_platform::checksum::Crc32;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Payload {
    Full,
    Incremental,
    Partial,
}

const PAYLOADS: [Payload; 3] = [Payload::Full, Payload::Incremental, Payload::Partial];
const WRITE_FAULTS: [InjectedKind; 3] = [
    InjectedKind::BitFlip,
    InjectedKind::Truncate,
    InjectedKind::TornWrite,
];

fn base_set() -> ProcessSet {
    ProcessSet::uniform(3, 96, 48)
}

fn evolve(set: &mut ProcessSet, round: u8) {
    for p in set.iter_mut() {
        let ids: Vec<usize> = p.regions().iter().map(|r| r.id).collect();
        for id in ids {
            p.region_mut(id).unwrap().update(|d| {
                for (k, b) in d.iter_mut().enumerate() {
                    *b = b.wrapping_add(round).wrapping_add(k as u8);
                }
            });
        }
        p.advance(1.0);
    }
}

/// Runs one matrix cell against a concrete backend: commit an intact base
/// generation, commit a `payload`-kind generation with `fault` armed, then
/// restore and check the verified-or-typed-error contract.
fn check_write_fault_cell<B: CheckpointBackend>(backend: B, payload: Payload, fault: InjectedKind) {
    let injector = FaultInjectingBackend::new(backend, FaultPlan::none(), 0xBAD5EED);
    let mut pipeline = CheckpointPipeline::new(Crc32::new(), injector);

    let mut set = base_set();
    let base_image = CoordinatedCheckpoint::capture(&set, 10.0);
    let gen_base = pipeline.commit_full(&base_image).unwrap();

    evolve(&mut set, 3);
    *pipeline.backend_mut().plan_mut() = FaultPlan::only(fault, 1.0);
    let (gen_damaged, expected_damaged) = match payload {
        Payload::Full => {
            let image = CoordinatedCheckpoint::capture(&set, 20.0);
            (pipeline.commit_full(&image).unwrap(), image)
        }
        Payload::Incremental => {
            let delta = IncrementalCheckpoint::capture_since(&set, &base_image, 20.0);
            let expected = delta.apply_onto(&base_image).unwrap();
            (pipeline.commit_delta(&delta, gen_base).unwrap(), expected)
        }
        Payload::Partial => {
            let partial = PartialCheckpoint::capture(&set, DatasetKind::Library, 20.0);
            let expected = apply_partial_onto(&partial, &base_image);
            (pipeline.commit_partial(&partial, gen_base).unwrap(), expected)
        }
    };
    *pipeline.backend_mut().plan_mut() = FaultPlan::none();
    assert_eq!(
        pipeline.backend().injected_into(gen_damaged).len(),
        1,
        "{payload:?}/{fault:?}: exactly the damaged generation is injected"
    );

    // The damaged generation itself must be rejected with a typed fault
    // naming it — never decoded into a wrong image.
    match pipeline.verify(gen_damaged) {
        Err(RestoreFault::CorruptFrame { generation, .. })
        | Err(RestoreFault::TornWrite { generation }) => assert_eq!(generation, gen_damaged),
        other => panic!("{payload:?}/{fault:?}: verify returned {other:?}"),
    }

    // The restore degrades gracefully to the intact base generation, and
    // the restored bytes match the generation the outcome reports.
    let (restored, outcome) = pipeline.restore_latest().unwrap();
    assert_eq!(outcome.generation, gen_base, "{payload:?}/{fault:?}");
    assert_eq!(outcome.fallback_depth, 1);
    assert_eq!(outcome.rejected.len(), 1);
    assert_eq!(outcome.rejected[0].0, gen_damaged);
    assert!(outcome.rework > 0.0, "fallback loses the newer image's work");
    assert_eq!(restored, base_image, "{payload:?}/{fault:?}: silent wrong state");
    assert_ne!(restored, expected_damaged);
    assert_eq!(
        restored.materialize().unwrap().fingerprint(),
        base_image.materialize().unwrap().fingerprint()
    );
}

/// Transient cell: reads fail transiently but retry through; the *newest*
/// generation is restored exactly, with the retries accounted.
fn check_transient_cell<B: CheckpointBackend>(backend: B, payload: Payload) {
    let injector = FaultInjectingBackend::new(backend, FaultPlan::none(), 0x7EE7);
    let mut pipeline = CheckpointPipeline::new(Crc32::new(), injector);

    let mut set = base_set();
    let base_image = CoordinatedCheckpoint::capture(&set, 10.0);
    let gen_base = pipeline.commit_full(&base_image).unwrap();
    evolve(&mut set, 5);
    let (gen_new, expected) = match payload {
        Payload::Full => {
            let image = CoordinatedCheckpoint::capture(&set, 20.0);
            (pipeline.commit_full(&image).unwrap(), image)
        }
        Payload::Incremental => {
            let delta = IncrementalCheckpoint::capture_since(&set, &base_image, 20.0);
            let expected = delta.apply_onto(&base_image).unwrap();
            (pipeline.commit_delta(&delta, gen_base).unwrap(), expected)
        }
        Payload::Partial => {
            let partial = PartialCheckpoint::capture(&set, DatasetKind::Library, 20.0);
            let expected = apply_partial_onto(&partial, &base_image);
            (pipeline.commit_partial(&partial, gen_base).unwrap(), expected)
        }
    };

    // Every get now fails twice before succeeding; the default retry policy
    // (3 attempts) absorbs that.
    *pipeline.backend_mut().plan_mut() = FaultPlan::transient_only(1.0, 2);
    let (restored, outcome) = pipeline.restore_latest().unwrap();
    assert_eq!(outcome.generation, gen_new, "{payload:?}");
    assert_eq!(outcome.fallback_depth, 0);
    assert!(outcome.transient_retries >= 1, "{payload:?}");
    assert!(outcome.backoff_cost > 0.0);
    assert_eq!(outcome.rework, 0.0);
    assert_eq!(restored, expected, "{payload:?}: transient retry changed bytes");
}

#[test]
fn write_fault_matrix_on_the_memory_backend() {
    for payload in PAYLOADS {
        for fault in WRITE_FAULTS {
            check_write_fault_cell(MemoryBackend::new(), payload, fault);
        }
    }
}

#[test]
fn write_fault_matrix_on_the_chunked_file_backend() {
    for payload in PAYLOADS {
        for fault in WRITE_FAULTS {
            check_write_fault_cell(ChunkedFileBackend::new(1024).unwrap(), payload, fault);
        }
    }
}

#[test]
fn transient_faults_retry_through_on_both_backends() {
    for payload in PAYLOADS {
        check_transient_cell(MemoryBackend::new(), payload);
        check_transient_cell(ChunkedFileBackend::new(1024).unwrap(), payload);
    }
}

/// Damaging *every* generation leaves no verifiable candidate: the restore
/// must report the full rejection list, not fabricate a state.
#[test]
fn exhausting_every_generation_yields_a_typed_error_not_a_state() {
    for fault in WRITE_FAULTS {
        let injector =
            FaultInjectingBackend::new(MemoryBackend::new(), FaultPlan::only(fault, 1.0), 31);
        let mut pipeline = CheckpointPipeline::new(Crc32::new(), injector);
        let set = base_set();
        pipeline.commit_full(&CoordinatedCheckpoint::capture(&set, 1.0)).unwrap();
        pipeline.commit_full(&CoordinatedCheckpoint::capture(&set, 2.0)).unwrap();
        match pipeline.restore_latest() {
            Err(RestoreFault::NoVerifiableGeneration { rejected }) => {
                assert_eq!(rejected.len(), 2, "{fault:?}");
            }
            other => panic!("{fault:?}: expected exhaustion, got {other:?}"),
        }
    }
}
