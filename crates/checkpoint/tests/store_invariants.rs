//! Property-based invariants of the checkpoint repositories.
//!
//! [`CheckpointStore`] sits on the protocol executors' failure path — its
//! retention, ordering and accounting behaviour must hold for *any* push
//! sequence, not just the ones the unit tests script.

use ft_ckpt::coordinated::CoordinatedCheckpoint;
use ft_ckpt::incremental::IncrementalCheckpoint;
use ft_ckpt::restore::{restore_full, restore_partial};
use ft_ckpt::state::{DatasetKind, ProcessSet};
use ft_ckpt::store::CheckpointStore;
use ft_platform::storage::{BandwidthBound, StorageModel};
use proptest::prelude::*;

/// One scripted push: region sizes of the captured set and the time step
/// since the previous checkpoint.
fn arb_pushes() -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((1usize..200, 0usize..100, 0.0f64..50.0), 1..24)
}

fn store(retention: usize) -> CheckpointStore<BandwidthBound> {
    CheckpointStore::new(BandwidthBound::new(1000.0, 0.0).unwrap(), 2, retention)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store never retains more than `retention` checkpoints, evicts
    /// oldest-first, and keeps what it retains sorted by time and sequence.
    #[test]
    fn retention_bound_and_ordering_hold(pushes in arb_pushes(), retention in 1usize..6) {
        let mut store = store(retention);
        let mut time = 0.0;
        for (i, &(lib, rem, dt)) in pushes.iter().enumerate() {
            time += dt;
            let set = ProcessSet::uniform(2, lib, rem);
            store.push(CoordinatedCheckpoint::capture(&set, time)).unwrap();
            prop_assert!(store.len() <= store.retention());
            prop_assert_eq!(store.len(), (i + 1).min(retention));
            // Oldest-first eviction ⇒ the newest push always survives.
            prop_assert_eq!(store.latest().unwrap().sequence, i as u64);
        }
        let kept = store.checkpoints();
        for pair in kept.windows(2) {
            prop_assert!(pair[0].time <= pair[1].time);
            prop_assert!(pair[0].sequence < pair[1].sequence);
        }
    }

    /// `latest_before` is monotone in its argument and always returns the
    /// newest retained checkpoint not younger than the query.
    #[test]
    fn latest_before_is_monotone_and_maximal(pushes in arb_pushes(), retention in 1usize..6) {
        let mut store = store(retention);
        let mut time = 0.0;
        for &(lib, rem, dt) in &pushes {
            time += dt;
            let set = ProcessSet::uniform(2, lib, rem);
            store.push(CoordinatedCheckpoint::capture(&set, time)).unwrap();
        }
        let horizon = time + 1.0;
        let mut last: Option<f64> = None;
        let mut query = 0.0;
        while query <= horizon {
            let found = store.latest_before(query).map(|c| c.time);
            if let Some(t) = found {
                prop_assert!(t <= query);
                // Maximality: no retained checkpoint sits in (t, query].
                for c in store.checkpoints() {
                    prop_assert!(!(c.time > t && c.time <= query));
                }
                // Monotonicity: a later query never returns an older image.
                if let Some(prev) = last {
                    prop_assert!(t >= prev);
                }
                last = Some(t);
            } else {
                prop_assert!(last.is_none(), "result vanished as the query grew");
            }
            query += horizon / 16.0;
        }
    }

    /// Accounting is conserved across eviction: cumulative bytes/cost keep
    /// every push ever made, no matter how many images were pruned.
    #[test]
    fn accounting_is_conserved_across_eviction(pushes in arb_pushes(), retention in 1usize..4) {
        let mut store = store(retention);
        let mut time = 0.0;
        let mut expected_bytes = 0.0;
        for &(lib, rem, dt) in &pushes {
            time += dt;
            let set = ProcessSet::uniform(2, lib, rem);
            expected_bytes += set.total_footprint() as f64;
            store.push(CoordinatedCheckpoint::capture(&set, time)).unwrap();
        }
        prop_assert!((store.total_bytes_written() - expected_bytes).abs() < 1e-6);
        // BandwidthBound at 1000 B/s, 2 nodes ⇒ cost is volume-proportional.
        let expected_cost = store.storage().write_cost(expected_bytes, 2);
        prop_assert!((store.total_write_cost() - expected_cost).abs() < 1e-6);
    }

    /// `restore_partial` / incremental-delta edge cases: an empty delta is
    /// an identity (only time moves), and a full-overlap delta reproduces a
    /// fresh full capture exactly.
    #[test]
    fn empty_and_full_overlap_deltas_restore_exactly(lib in 1usize..100, rem in 1usize..100) {
        let mut set = ProcessSet::uniform(3, lib, rem);
        let base = CoordinatedCheckpoint::capture(&set, 1.0);

        // Empty delta: nothing changed since the base.
        let empty = IncrementalCheckpoint::capture_since(&set, &base, 2.0);
        prop_assert_eq!(empty.bytes(), 0);
        let rebuilt = empty.apply_onto(&base).unwrap();
        prop_assert_eq!(rebuilt.bytes(), base.bytes());
        let mut target = ProcessSet::uniform(3, lib, rem);
        restore_full(&rebuilt, &mut target).unwrap();
        prop_assert_eq!(target.fingerprint(), set.fingerprint());

        // Full-overlap delta: every region rewritten since the base.
        for p in set.iter_mut() {
            let ids: Vec<usize> = p.regions().iter().map(|r| r.id).collect();
            for id in ids {
                p.region_mut(id).unwrap().update(|d| {
                    d.iter_mut().for_each(|b| *b = b.wrapping_add(7));
                });
            }
        }
        let full = IncrementalCheckpoint::capture_since(&set, &base, 3.0);
        prop_assert_eq!(full.bytes(), set.total_footprint());
        let rebuilt = full.apply_onto(&base).unwrap();
        let fresh = CoordinatedCheckpoint::capture(&set, 3.0);
        prop_assert_eq!(&rebuilt, &fresh);

        // And restore_partial of one dataset touches only that dataset.
        let partial = ft_ckpt::partial::PartialCheckpoint::capture(
            &set,
            DatasetKind::Library,
            3.0,
        );
        let mut victim = ProcessSet::uniform(3, lib, rem);
        let before_rem: Vec<u64> = victim
            .iter()
            .flat_map(|p| p.regions_of(DatasetKind::Remainder).map(|r| r.generation()))
            .collect();
        restore_partial(&partial, &mut victim, None).unwrap();
        let after_rem: Vec<u64> = victim
            .iter()
            .flat_map(|p| p.regions_of(DatasetKind::Remainder).map(|r| r.generation()))
            .collect();
        prop_assert_eq!(before_rem, after_rem);
        for (vp, sp) in victim.iter().zip(set.iter()) {
            for (vr, sr) in vp
                .regions_of(DatasetKind::Library)
                .zip(sp.regions_of(DatasetKind::Library))
            {
                prop_assert_eq!(vr.data(), sr.data());
            }
        }
    }
}
