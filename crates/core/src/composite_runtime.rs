//! An executable state machine of the composite protocol.
//!
//! [`CompositeRuntime`] drives the `ft-ckpt` substrate with the decisions of
//! the ABFT&PeriodicCkpt protocol on *real process state*: forced partial
//! checkpoints at library entry/exit, periodic coordinated checkpoints in
//! GENERAL phases, rollback recovery for GENERAL-phase failures and
//! ABFT-style reconstruction (an erasure-coded parity of the LIBRARY dataset
//! maintained at phase boundaries) for LIBRARY-phase failures.
//!
//! The runtime is *not* the performance simulator (`ft-sim` is): its role is
//! to demonstrate, with byte-exact data, that the protocol's recovery paths
//! restore the exact application state the failure destroyed, and to produce
//! the decision trace shown by the `composite_trace` example.  Time is
//! accounted with the costs of a [`ModelParams`] value.

use std::ops::Range;

use ft_ckpt::coordinated::CoordinatedCheckpoint;
use ft_ckpt::frame::{decode_coordinated, encode_coordinated};
use ft_ckpt::partial::PartialCheckpoint;
use ft_ckpt::restore::{restore_full, restore_partial};
use ft_ckpt::state::{DatasetKind, ProcessSet};
use serde::{Deserialize, Serialize};

use crate::error::{ModelError, Result};
use crate::params::ModelParams;
use crate::scenario::{ApplicationProfile, PhaseKind};
use crate::young_daly::paper_optimal_period;

/// One entry of the runtime's decision/event trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RuntimeEvent {
    /// A periodic coordinated checkpoint completed.
    PeriodicCheckpoint {
        /// Completion time.
        time: f64,
    },
    /// The forced REMAINDER-dataset checkpoint at library entry completed.
    EntryCheckpoint {
        /// Completion time.
        time: f64,
        /// Epoch index.
        epoch: usize,
    },
    /// The forced LIBRARY-dataset checkpoint at library exit completed.
    ExitCheckpoint {
        /// Completion time.
        time: f64,
        /// Epoch index.
        epoch: usize,
    },
    /// A failure struck.
    Failure {
        /// Failure time.
        time: f64,
        /// Victim rank.
        rank: usize,
        /// Phase during which the failure struck.
        phase: PhaseKind,
    },
    /// A rollback recovery (GENERAL-phase failure) completed.
    RollbackRecovery {
        /// Completion time.
        time: f64,
        /// Work that had to be re-executed.
        lost_work: f64,
    },
    /// An ABFT reconstruction (LIBRARY-phase failure) completed.
    AbftRecovery {
        /// Completion time.
        time: f64,
        /// Victim rank whose LIBRARY data was rebuilt.
        rank: usize,
    },
    /// An epoch completed.
    EpochComplete {
        /// Completion time.
        time: f64,
        /// Epoch index.
        epoch: usize,
    },
}

/// A failure scripted into a runtime execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedFailure {
    /// Epoch during which the failure strikes.
    pub epoch: usize,
    /// Phase during which it strikes.
    pub phase: PhaseKind,
    /// Position within the phase, as a fraction of its work in `[0, 1)`.
    pub fraction: f64,
    /// Victim rank.
    pub rank: usize,
}

/// Result of a runtime execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Total (simulated) wall-clock time of the run.
    pub total_time: f64,
    /// Failure-free work contained in the profile.
    pub useful_work: f64,
    /// The event trace.
    pub events: Vec<RuntimeEvent>,
    /// Fingerprint of the final process state.
    pub final_fingerprint: u64,
}

impl RunReport {
    /// The waste observed on this particular run.
    pub fn waste(&self) -> f64 {
        if self.total_time <= 0.0 {
            0.0
        } else {
            (1.0 - self.useful_work / self.total_time).max(0.0)
        }
    }

    /// Number of events matching a predicate (helper for assertions).
    pub fn count_events(&self, predicate: impl Fn(&RuntimeEvent) -> bool) -> usize {
        self.events.iter().filter(|e| predicate(e)).count()
    }
}

/// A serializable snapshot of a [`CompositeRuntime`] at an epoch boundary —
/// everything the runtime needs to continue bit-identically: the live
/// process image, the rollback target, the accounted clock, the event trace
/// so far and the next epoch to execute.  The LIBRARY parity is *not*
/// stored: at an epoch boundary it is a pure function of the process image
/// (last refreshed at library exit, with no mutation since) and is
/// recomputed on resume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeSnapshot {
    /// Index of the next epoch to execute.
    pub next_epoch: usize,
    /// Accounted wall-clock time at capture, raw `f64` bits.
    pub clock_bits: u64,
    /// Event trace up to the capture point.
    pub events: Vec<RuntimeEvent>,
    /// The live process state.
    pub image: CoordinatedCheckpoint,
    /// The newest rollback target (the coordinated checkpoint a
    /// GENERAL-phase failure would restore).
    pub last_full_checkpoint: CoordinatedCheckpoint,
}

impl RuntimeSnapshot {
    /// Serializes the snapshot into a little-endian byte stream suitable for
    /// an `ft-ckpt` `State` frame payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.next_epoch as u64).to_le_bytes());
        out.extend_from_slice(&self.clock_bits.to_le_bytes());
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for event in &self.events {
            encode_event(event, &mut out);
        }
        for image in [&self.image, &self.last_full_checkpoint] {
            let body = encode_coordinated(image);
            out.extend_from_slice(&(body.len() as u64).to_le_bytes());
            out.extend_from_slice(&body);
        }
        out
    }

    /// Deserializes a snapshot; `None` on any malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = SnapReader { bytes, at: 0 };
        let next_epoch = r.u64()? as usize;
        let clock_bits = r.u64()?;
        let count = r.u32()? as usize;
        let mut events = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            events.push(decode_event(&mut r)?);
        }
        let image_len = r.u64()? as usize;
        let image = decode_coordinated(r.take(image_len)?).ok()?;
        let lfc_len = r.u64()? as usize;
        let last_full_checkpoint = decode_coordinated(r.take(lfc_len)?).ok()?;
        if r.at != bytes.len() {
            return None;
        }
        Some(Self {
            next_epoch,
            clock_bits,
            events,
            image,
            last_full_checkpoint,
        })
    }
}

struct SnapReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> SnapReader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
}

fn encode_event(event: &RuntimeEvent, out: &mut Vec<u8>) {
    let (tag, time) = match event {
        RuntimeEvent::PeriodicCheckpoint { time } => (0u8, *time),
        RuntimeEvent::EntryCheckpoint { time, .. } => (1, *time),
        RuntimeEvent::ExitCheckpoint { time, .. } => (2, *time),
        RuntimeEvent::Failure { time, .. } => (3, *time),
        RuntimeEvent::RollbackRecovery { time, .. } => (4, *time),
        RuntimeEvent::AbftRecovery { time, .. } => (5, *time),
        RuntimeEvent::EpochComplete { time, .. } => (6, *time),
    };
    out.push(tag);
    out.extend_from_slice(&time.to_bits().to_le_bytes());
    match event {
        RuntimeEvent::PeriodicCheckpoint { .. } => {}
        RuntimeEvent::EntryCheckpoint { epoch, .. }
        | RuntimeEvent::ExitCheckpoint { epoch, .. }
        | RuntimeEvent::EpochComplete { epoch, .. } => {
            out.extend_from_slice(&(*epoch as u64).to_le_bytes());
        }
        RuntimeEvent::Failure { rank, phase, .. } => {
            out.extend_from_slice(&(*rank as u64).to_le_bytes());
            out.push(match phase {
                PhaseKind::General => 0,
                PhaseKind::Library => 1,
            });
        }
        RuntimeEvent::RollbackRecovery { lost_work, .. } => {
            out.extend_from_slice(&lost_work.to_bits().to_le_bytes());
        }
        RuntimeEvent::AbftRecovery { rank, .. } => {
            out.extend_from_slice(&(*rank as u64).to_le_bytes());
        }
    }
}

fn decode_event(r: &mut SnapReader<'_>) -> Option<RuntimeEvent> {
    let tag = r.u8()?;
    let time = r.f64()?;
    Some(match tag {
        0 => RuntimeEvent::PeriodicCheckpoint { time },
        1 => RuntimeEvent::EntryCheckpoint { time, epoch: r.u64()? as usize },
        2 => RuntimeEvent::ExitCheckpoint { time, epoch: r.u64()? as usize },
        3 => {
            let rank = r.u64()? as usize;
            let phase = match r.u8()? {
                0 => PhaseKind::General,
                1 => PhaseKind::Library,
                _ => return None,
            };
            RuntimeEvent::Failure { time, rank, phase }
        }
        4 => RuntimeEvent::RollbackRecovery { time, lost_work: r.f64()? },
        5 => RuntimeEvent::AbftRecovery { time, rank: r.u64()? as usize },
        6 => RuntimeEvent::EpochComplete { time, epoch: r.u64()? as usize },
        _ => return None,
    })
}

/// The composite-protocol runtime.
#[derive(Debug, Clone)]
pub struct CompositeRuntime {
    processes: ProcessSet,
    params: ModelParams,
    clock: f64,
    events: Vec<RuntimeEvent>,
    last_full_checkpoint: CoordinatedCheckpoint,
    library_parity: Vec<u8>,
    next_epoch: usize,
}

impl CompositeRuntime {
    /// Creates a runtime over an initial process set; an initial coordinated
    /// checkpoint is taken at time 0 (cost accounted), and the LIBRARY-parity
    /// redundancy is initialised.
    pub fn new(processes: ProcessSet, params: ModelParams) -> Self {
        let mut rt = Self {
            library_parity: Vec::new(),
            last_full_checkpoint: CoordinatedCheckpoint::capture(&processes, 0.0),
            processes,
            params,
            clock: 0.0,
            events: Vec::new(),
            next_epoch: 0,
        };
        rt.clock += rt.params.checkpoint_cost;
        rt.refresh_parity();
        rt
    }

    /// The current process set.
    pub fn processes(&self) -> &ProcessSet {
        &self.processes
    }

    /// Recomputes the XOR parity of all LIBRARY regions (the runtime's
    /// stand-in for the ABFT checksums maintained by the library call).
    fn refresh_parity(&mut self) {
        let mut parity: Vec<u8> = Vec::new();
        for p in self.processes.iter() {
            for r in p.regions_of(DatasetKind::Library) {
                if parity.len() < r.len() {
                    parity.resize(r.len(), 0);
                }
                for (acc, b) in parity.iter_mut().zip(r.data()) {
                    *acc ^= b;
                }
            }
        }
        self.library_parity = parity;
    }

    /// Rebuilds the LIBRARY regions of `rank` from the parity and the
    /// surviving ranks.
    fn reconstruct_library(&mut self, rank: usize) -> Result<()> {
        let mut rebuilt = self.library_parity.clone();
        for p in self.processes.iter() {
            if p.rank() == rank {
                continue;
            }
            for r in p.regions_of(DatasetKind::Library) {
                for (acc, b) in rebuilt.iter_mut().zip(r.data()) {
                    *acc ^= b;
                }
            }
        }
        let process = self
            .processes
            .process_mut(rank)
            .map_err(|_| ModelError::OutsideValidityDomain { what: "victim rank" })?;
        let ids: Vec<(usize, usize)> = process
            .regions_of(DatasetKind::Library)
            .map(|r| (r.id, r.len()))
            .collect();
        for (id, len) in ids {
            let data = rebuilt[..len.min(rebuilt.len())].to_vec();
            process
                .region_mut(id)
                .map_err(|_| ModelError::OutsideValidityDomain { what: "library region" })?
                .write(data);
        }
        Ok(())
    }

    /// Applies the deterministic GENERAL-phase computation of `epoch` to the
    /// REMAINDER dataset.
    fn apply_general_op(&mut self, epoch: usize) {
        for p in self.processes.iter_mut() {
            let ids: Vec<usize> = p.regions_of(DatasetKind::Remainder).map(|r| r.id).collect();
            for id in ids {
                p.region_mut(id)
                    .expect("region enumerated above")
                    .update(|d| {
                        for b in d.iter_mut() {
                            *b = b.wrapping_add(1 + epoch as u8);
                        }
                    });
            }
            p.advance(1.0);
        }
    }

    /// Applies the deterministic LIBRARY-phase computation of `epoch` to the
    /// LIBRARY dataset.
    fn apply_library_op(&mut self, epoch: usize) {
        for p in self.processes.iter_mut() {
            let rank = p.rank() as u8;
            let ids: Vec<usize> = p.regions_of(DatasetKind::Library).map(|r| r.id).collect();
            for id in ids {
                p.region_mut(id)
                    .expect("region enumerated above")
                    .update(|d| {
                        for (k, b) in d.iter_mut().enumerate() {
                            *b = b
                                .wrapping_mul(3)
                                .wrapping_add(epoch as u8)
                                .wrapping_add(rank)
                                .wrapping_add(k as u8);
                        }
                    });
            }
            p.advance(1.0);
        }
    }

    /// Executes a profile with the given scripted failures and returns the
    /// run report. Failures targeting a phase that does not exist are ignored.
    pub fn run(
        &mut self,
        profile: &ApplicationProfile,
        failures: &[PlannedFailure],
    ) -> Result<RunReport> {
        self.run_range(profile, failures, 0..profile.epochs().len())?;
        Ok(self.report(profile))
    }

    /// Captures a consistent snapshot at the current epoch boundary.  Only
    /// valid between [`CompositeRuntime::run_range`] calls (the runtime's
    /// state machine is consistent at epoch boundaries).
    pub fn snapshot(&self) -> RuntimeSnapshot {
        RuntimeSnapshot {
            next_epoch: self.next_epoch,
            clock_bits: self.clock.to_bits(),
            events: self.events.clone(),
            image: CoordinatedCheckpoint::capture(&self.processes, self.clock),
            last_full_checkpoint: self.last_full_checkpoint.clone(),
        }
    }

    /// Reconstitutes a runtime from a snapshot — the crash-resume path where
    /// no live process survives.  The LIBRARY parity is recomputed from the
    /// materialized image (exact at epoch boundaries); continuing with
    /// [`CompositeRuntime::run_range`] from `snapshot.next_epoch` reproduces
    /// the uninterrupted run bit-identically.
    pub fn resume_from(snapshot: &RuntimeSnapshot, params: ModelParams) -> Result<Self> {
        let processes = snapshot
            .image
            .materialize()
            .map_err(|_| ModelError::OutsideValidityDomain { what: "snapshot image" })?;
        let mut rt = Self {
            library_parity: Vec::new(),
            last_full_checkpoint: snapshot.last_full_checkpoint.clone(),
            processes,
            params,
            clock: f64::from_bits(snapshot.clock_bits),
            events: snapshot.events.clone(),
            next_epoch: snapshot.next_epoch,
        };
        rt.refresh_parity();
        Ok(rt)
    }

    /// Builds the run report for the work executed so far.
    pub fn report(&self, profile: &ApplicationProfile) -> RunReport {
        RunReport {
            total_time: self.clock,
            useful_work: profile.total_duration(),
            events: self.events.clone(),
            final_fingerprint: self.processes.fingerprint(),
        }
    }

    /// Executes the epochs `range` of a profile (both ends are epoch
    /// indices). Ranges outside the profile are rejected; an empty range is
    /// a no-op.  Splitting a run into consecutive ranges — optionally
    /// crossing a [`RuntimeSnapshot`] round trip between them — produces the
    /// same state, clock and trace as one full-range call.
    pub fn run_range(
        &mut self,
        profile: &ApplicationProfile,
        failures: &[PlannedFailure],
        range: Range<usize>,
    ) -> Result<()> {
        if range.end > profile.epochs().len() {
            return Err(ModelError::OutsideValidityDomain { what: "epoch range" });
        }
        let period = paper_optimal_period(
            self.params.checkpoint_cost,
            self.params.platform_mtbf,
            self.params.downtime,
            self.params.recovery_cost,
        )?;
        for epoch_index in range {
            let epoch = &profile.epochs()[epoch_index];
            // ---- GENERAL phase -------------------------------------------------
            if epoch.general > 0.0 {
                let phase_failures: Vec<&PlannedFailure> = failures
                    .iter()
                    .filter(|f| f.epoch == epoch_index && f.phase == PhaseKind::General)
                    .collect();
                let mut executed = 0.0;
                let mut since_checkpoint = 0.0;
                // Sort scripted failures by position.
                let mut pending = phase_failures.clone();
                pending.sort_by(|a, b| a.fraction.total_cmp(&b.fraction));
                let mut pending = pending.into_iter().peekable();
                while executed < epoch.general {
                    let next_failure_at = pending
                        .peek()
                        .map(|f| f.fraction.clamp(0.0, 1.0) * epoch.general)
                        .unwrap_or(f64::INFINITY);
                    let next_checkpoint_at = executed + (period - since_checkpoint);
                    let phase_end = epoch.general;
                    let target = phase_end.min(next_checkpoint_at).min(next_failure_at.max(executed));
                    let slice = target - executed;
                    self.clock += slice;
                    executed = target;
                    since_checkpoint += slice;
                    if (next_failure_at - executed).abs() < 1e-9 && pending.peek().is_some() {
                        let failure = pending.next().expect("peeked");
                        self.events.push(RuntimeEvent::Failure {
                            time: self.clock,
                            rank: failure.rank,
                            phase: PhaseKind::General,
                        });
                        // Crash, then classic rollback recovery.
                        self.processes
                            .process_mut(failure.rank)
                            .map_err(|_| ModelError::OutsideValidityDomain { what: "victim rank" })?
                            .crash();
                        restore_full(&self.last_full_checkpoint, &mut self.processes)
                            .map_err(|_| ModelError::OutsideValidityDomain { what: "rollback" })?;
                        self.clock += self.params.downtime + self.params.recovery_cost;
                        // All work since the last checkpoint is lost.
                        let lost = since_checkpoint;
                        executed -= lost;
                        self.clock += 0.0; // the lost work will be re-executed by the loop
                        since_checkpoint = 0.0;
                        self.events.push(RuntimeEvent::RollbackRecovery {
                            time: self.clock,
                            lost_work: lost,
                        });
                        continue;
                    }
                    if executed < phase_end && (next_checkpoint_at - executed).abs() < 1e-9 {
                        // Periodic checkpoint.
                        self.apply_general_op_partial();
                        self.last_full_checkpoint =
                            CoordinatedCheckpoint::capture(&self.processes, self.clock);
                        self.clock += self.params.checkpoint_cost;
                        since_checkpoint = 0.0;
                        self.events
                            .push(RuntimeEvent::PeriodicCheckpoint { time: self.clock });
                    }
                }
                // The phase's computation lands in the REMAINDER dataset.
                self.apply_general_op(epoch_index);
            }

            // ---- LIBRARY phase -------------------------------------------------
            if epoch.library > 0.0 {
                // Forced entry checkpoint of the REMAINDER dataset.
                let entry =
                    PartialCheckpoint::capture(&self.processes, DatasetKind::Remainder, self.clock);
                self.clock += self.params.checkpoint_cost_remainder();
                self.events.push(RuntimeEvent::EntryCheckpoint {
                    time: self.clock,
                    epoch: epoch_index,
                });
                self.refresh_parity();

                let abft_duration = self.params.phi * epoch.library;
                let mut phase_failures: Vec<&PlannedFailure> = failures
                    .iter()
                    .filter(|f| f.epoch == epoch_index && f.phase == PhaseKind::Library)
                    .collect();
                phase_failures.sort_by(|a, b| a.fraction.total_cmp(&b.fraction));
                let mut executed = 0.0;
                for failure in phase_failures {
                    let at = failure.fraction.clamp(0.0, 1.0) * abft_duration;
                    if at > executed {
                        self.clock += at - executed;
                        executed = at;
                    }
                    self.events.push(RuntimeEvent::Failure {
                        time: self.clock,
                        rank: failure.rank,
                        phase: PhaseKind::Library,
                    });
                    self.processes
                        .process_mut(failure.rank)
                        .map_err(|_| ModelError::OutsideValidityDomain { what: "victim rank" })?
                        .crash();
                    // ABFT recovery: REMAINDER from the entry checkpoint,
                    // LIBRARY from the parity redundancy. No rollback.
                    restore_partial(&entry, &mut self.processes, Some(&[failure.rank]))
                        .map_err(|_| ModelError::OutsideValidityDomain { what: "entry restore" })?;
                    self.reconstruct_library(failure.rank)?;
                    // Restore the process stack (progress) to the value the
                    // entry checkpoint recorded — the library call resumes
                    // where the surviving processes are.
                    if let Some(snap) = entry.snapshots.iter().find(|s| s.rank == failure.rank) {
                        self.processes
                            .process_mut(failure.rank)
                            .map_err(|_| ModelError::OutsideValidityDomain { what: "victim rank" })?
                            .set_progress(snap.progress);
                    }
                    self.clock += self.params.downtime
                        + self.params.recovery_cost_remainder()
                        + self.params.abft_reconstruction;
                    self.events.push(RuntimeEvent::AbftRecovery {
                        time: self.clock,
                        rank: failure.rank,
                    });
                }
                if executed < abft_duration {
                    self.clock += abft_duration - executed;
                }
                // The library call's results land in the LIBRARY dataset.
                self.apply_library_op(epoch_index);
                self.refresh_parity();

                // Forced exit checkpoint of the LIBRARY dataset; combined with
                // the entry checkpoint it forms the split coordinated
                // checkpoint the next phase can roll back to.
                let exit =
                    PartialCheckpoint::capture(&self.processes, DatasetKind::Library, self.clock);
                self.clock += self.params.checkpoint_cost_library();
                self.events.push(RuntimeEvent::ExitCheckpoint {
                    time: self.clock,
                    epoch: epoch_index,
                });
                let split = ft_ckpt::partial::SplitCheckpoint::new(entry, exit)
                    .map_err(|_| ModelError::OutsideValidityDomain { what: "split checkpoint" })?;
                self.last_full_checkpoint = split.into_coordinated();
            }

            self.events.push(RuntimeEvent::EpochComplete {
                time: self.clock,
                epoch: epoch_index,
            });
            self.next_epoch = epoch_index + 1;
        }

        Ok(())
    }

    /// Progress marker applied when a periodic checkpoint is taken mid-phase
    /// (keeps successive checkpoints distinguishable without changing the
    /// deterministic end-of-phase state).
    fn apply_general_op_partial(&mut self) {
        for p in self.processes.iter_mut() {
            p.advance(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_platform::units::{hours, minutes};

    fn params(alpha: f64) -> ModelParams {
        ModelParams::builder()
            .epoch_duration(hours(4.0))
            .alpha(alpha)
            .checkpoint_cost(minutes(10.0))
            .recovery_cost(minutes(10.0))
            .downtime(minutes(1.0))
            .rho(0.8)
            .phi(1.03)
            .abft_reconstruction(2.0)
            .platform_mtbf(hours(6.0))
            .build()
            .unwrap()
    }

    fn processes() -> ProcessSet {
        ProcessSet::uniform(4, 256, 64)
    }

    #[test]
    fn failure_free_run_takes_forced_checkpoints_per_epoch() {
        let params = params(0.5);
        let profile = ApplicationProfile::from_params_repeated(&params, 3);
        let mut rt = CompositeRuntime::new(processes(), params);
        let report = rt.run(&profile, &[]).unwrap();
        assert_eq!(report.count_events(|e| matches!(e, RuntimeEvent::EntryCheckpoint { .. })), 3);
        assert_eq!(report.count_events(|e| matches!(e, RuntimeEvent::ExitCheckpoint { .. })), 3);
        assert_eq!(report.count_events(|e| matches!(e, RuntimeEvent::EpochComplete { .. })), 3);
        assert!(report.total_time > report.useful_work);
        assert!(report.waste() > 0.0 && report.waste() < 0.5);
    }

    #[test]
    fn library_failure_is_recovered_without_rollback_and_state_matches() {
        let params = params(0.5);
        let profile = ApplicationProfile::from_params_repeated(&params, 2);

        let mut clean = CompositeRuntime::new(processes(), params);
        let clean_report = clean.run(&profile, &[]).unwrap();

        let failure = PlannedFailure {
            epoch: 1,
            phase: PhaseKind::Library,
            fraction: 0.5,
            rank: 2,
        };
        let mut faulty = CompositeRuntime::new(processes(), params);
        let faulty_report = faulty.run(&profile, &[failure]).unwrap();

        // Same final application state, longer execution, ABFT recovery (and
        // no rollback) in the trace.
        assert_eq!(clean_report.final_fingerprint, faulty_report.final_fingerprint);
        assert!(faulty_report.total_time > clean_report.total_time);
        assert_eq!(
            faulty_report.count_events(|e| matches!(e, RuntimeEvent::AbftRecovery { .. })),
            1
        );
        assert_eq!(
            faulty_report.count_events(|e| matches!(e, RuntimeEvent::RollbackRecovery { .. })),
            0
        );
        // The ABFT recovery is much cheaper than a rollback: the overhead is
        // bounded by D + R_L̄ + Recons plus scheduling noise.
        let overhead = faulty_report.total_time - clean_report.total_time;
        let bound = params.downtime + params.recovery_cost_remainder() + params.abft_reconstruction;
        assert!(overhead <= bound + 1.0, "overhead {overhead} > bound {bound}");
    }

    #[test]
    fn general_failure_rolls_back_and_state_matches() {
        let params = params(0.3);
        let profile = ApplicationProfile::from_params_repeated(&params, 2);

        let mut clean = CompositeRuntime::new(processes(), params);
        let clean_report = clean.run(&profile, &[]).unwrap();

        let failure = PlannedFailure {
            epoch: 0,
            phase: PhaseKind::General,
            fraction: 0.6,
            rank: 1,
        };
        let mut faulty = CompositeRuntime::new(processes(), params);
        let faulty_report = faulty.run(&profile, &[failure]).unwrap();

        assert_eq!(clean_report.final_fingerprint, faulty_report.final_fingerprint);
        assert!(faulty_report.total_time > clean_report.total_time);
        assert_eq!(
            faulty_report.count_events(|e| matches!(e, RuntimeEvent::RollbackRecovery { .. })),
            1
        );
    }

    #[test]
    fn long_general_phase_takes_periodic_checkpoints() {
        // A 4-hour GENERAL-only epoch with a ~49-minute period: several
        // periodic checkpoints must appear.
        let params = params(0.0);
        let profile = ApplicationProfile::from_params(&params);
        let mut rt = CompositeRuntime::new(processes(), params);
        let report = rt.run(&profile, &[]).unwrap();
        let periodic = report.count_events(|e| matches!(e, RuntimeEvent::PeriodicCheckpoint { .. }));
        assert!(periodic >= 2, "only {periodic} periodic checkpoints");
        // And no forced entry/exit checkpoints since there is no library phase.
        assert_eq!(report.count_events(|e| matches!(e, RuntimeEvent::EntryCheckpoint { .. })), 0);
    }

    #[test]
    fn snapshot_resume_matches_uninterrupted_run_bit_identically() {
        let params = params(0.5);
        let profile = ApplicationProfile::from_params_repeated(&params, 4);
        let failures = vec![
            PlannedFailure { epoch: 0, phase: PhaseKind::General, fraction: 0.4, rank: 1 },
            PlannedFailure { epoch: 1, phase: PhaseKind::Library, fraction: 0.3, rank: 2 },
            PlannedFailure { epoch: 3, phase: PhaseKind::Library, fraction: 0.8, rank: 0 },
        ];

        let mut full = CompositeRuntime::new(processes(), params);
        let full_report = full.run(&profile, &failures).unwrap();

        for split_at in 1..=3 {
            // Run a prefix, kill, round-trip the snapshot through its byte
            // codec, resume in a fresh runtime, run the suffix.
            let mut prefix = CompositeRuntime::new(processes(), params);
            prefix.run_range(&profile, &failures, 0..split_at).unwrap();
            let snapshot = prefix.snapshot();
            drop(prefix);

            let bytes = snapshot.to_bytes();
            let reloaded = RuntimeSnapshot::from_bytes(&bytes).unwrap();
            assert_eq!(reloaded, snapshot);

            let mut resumed = CompositeRuntime::resume_from(&reloaded, params).unwrap();
            resumed
                .run_range(&profile, &failures, split_at..profile.epochs().len())
                .unwrap();
            let resumed_report = resumed.report(&profile);

            assert_eq!(resumed_report.final_fingerprint, full_report.final_fingerprint);
            assert_eq!(
                resumed_report.total_time.to_bits(),
                full_report.total_time.to_bits(),
                "split at epoch {split_at}"
            );
            assert_eq!(resumed_report.events, full_report.events);
        }
    }

    #[test]
    fn run_range_rejects_out_of_profile_epochs_and_tolerates_empty_ranges() {
        let params = params(0.5);
        let profile = ApplicationProfile::from_params_repeated(&params, 2);
        let mut rt = CompositeRuntime::new(processes(), params);
        assert!(rt.run_range(&profile, &[], 0..3).is_err());
        rt.run_range(&profile, &[], 1..1).unwrap();
        assert!(rt.report(&profile).events.is_empty());
    }

    #[test]
    fn snapshot_codec_rejects_malformed_bytes() {
        let params = params(0.5);
        let profile = ApplicationProfile::from_params(&params);
        let mut rt = CompositeRuntime::new(processes(), params);
        rt.run(&profile, &[]).unwrap();
        let bytes = rt.snapshot().to_bytes();
        assert!(RuntimeSnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(RuntimeSnapshot::from_bytes(&[]).is_none());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(RuntimeSnapshot::from_bytes(&padded).is_none());
        let mut bad_tag = bytes;
        // First event tag byte lives right after next_epoch/clock/count.
        bad_tag[8 + 8 + 4] = 99;
        assert!(RuntimeSnapshot::from_bytes(&bad_tag).is_none());
    }

    #[test]
    fn multiple_failures_in_the_same_library_phase_are_survived() {
        let params = params(0.8);
        let profile = ApplicationProfile::from_params(&params);
        let failures = vec![
            PlannedFailure { epoch: 0, phase: PhaseKind::Library, fraction: 0.2, rank: 0 },
            PlannedFailure { epoch: 0, phase: PhaseKind::Library, fraction: 0.7, rank: 3 },
        ];
        let mut clean = CompositeRuntime::new(processes(), params);
        let clean_report = clean.run(&profile, &[]).unwrap();
        let mut faulty = CompositeRuntime::new(processes(), params);
        let report = faulty.run(&profile, &failures).unwrap();
        assert_eq!(report.final_fingerprint, clean_report.final_fingerprint);
        assert_eq!(report.count_events(|e| matches!(e, RuntimeEvent::AbftRecovery { .. })), 2);
    }
}
