//! Error type for the model and the composite runtime.

use std::fmt;

/// Errors produced while building model parameters or evaluating the model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A parameter that must be strictly positive was not.
    NonPositiveParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A fraction-valued parameter fell outside `[0, 1]`.
    FractionOutOfRange {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The ABFT overhead factor `φ` must be at least 1.
    PhiBelowOne {
        /// Offending value.
        value: f64,
    },
    /// A required parameter was not supplied to the builder.
    MissingParameter {
        /// Parameter name.
        name: &'static str,
    },
    /// The MTBF is too small compared with the per-failure overheads: the
    /// first-order model (and any rollback protocol) cannot make progress.
    MtbfTooSmall {
        /// Platform MTBF supplied.
        mtbf: f64,
        /// The sum of overheads it must dominate (`D + R`).
        overheads: f64,
    },
    /// The model produced a non-finite or non-positive execution time, which
    /// means the parameters are outside its validity domain (waste ≥ 1).
    OutsideValidityDomain {
        /// Human-readable description of the quantity that diverged.
        what: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be > 0 (got {value})")
            }
            ModelError::FractionOutOfRange { name, value } => {
                write!(f, "parameter `{name}` must lie in [0, 1] (got {value})")
            }
            ModelError::PhiBelowOne { value } => {
                write!(f, "ABFT overhead factor phi must be >= 1 (got {value})")
            }
            ModelError::MissingParameter { name } => {
                write!(f, "required parameter `{name}` was not provided")
            }
            ModelError::MtbfTooSmall { mtbf, overheads } => write!(
                f,
                "platform MTBF ({mtbf} s) must exceed the per-failure overheads D + R ({overheads} s)"
            ),
            ModelError::OutsideValidityDomain { what } => write!(
                f,
                "model outside its validity domain: {what} diverged (waste would reach 1)"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// Result alias for model operations.
pub type Result<T> = std::result::Result<T, ModelError>;

pub(crate) fn ensure_positive(name: &'static str, value: f64) -> Result<f64> {
    if value > 0.0 && value.is_finite() {
        Ok(value)
    } else {
        Err(ModelError::NonPositiveParameter { name, value })
    }
}

pub(crate) fn ensure_non_negative(name: &'static str, value: f64) -> Result<f64> {
    if value >= 0.0 && value.is_finite() {
        Ok(value)
    } else {
        Err(ModelError::NonPositiveParameter { name, value })
    }
}

pub(crate) fn ensure_fraction(name: &'static str, value: f64) -> Result<f64> {
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(ModelError::FractionOutOfRange { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validators() {
        assert!(ensure_positive("x", 1.0).is_ok());
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_non_negative("x", 0.0).is_ok());
        assert!(ensure_non_negative("x", -1.0).is_err());
        assert!(ensure_fraction("x", 0.5).is_ok());
        assert!(ensure_fraction("x", 1.5).is_err());
    }

    #[test]
    fn display_names_parameters() {
        assert!(ensure_positive("mtbf", -1.0).unwrap_err().to_string().contains("mtbf"));
        let e = ModelError::MissingParameter { name: "alpha" };
        assert!(e.to_string().contains("alpha"));
    }
}
