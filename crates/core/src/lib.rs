//! # ft-composite — the composite ABFT + checkpointing study
//!
//! This crate is the Rust embodiment of the contribution of
//! *Assessing the Impact of ABFT and Checkpoint Composite Strategies*
//! (Bosilca, Bouteiller, Hérault, Robert, Dongarra — APDCM/IPDPSW 2014):
//!
//! * [`params`] — the model parameters of Section IV-A (`T0`, `α`, `C`, `R`,
//!   `D`, `ρ`, `φ`, `Recons_ABFT`, `µ`, …) with validation;
//! * [`young_daly`] — Young's and Daly's optimal checkpoint periods and the
//!   paper's refinement `P_opt = √(2C(µ − D − R))` (Equation 11);
//! * [`model`] — closed-form expected execution times and waste for the three
//!   protocols of the paper: [`model::pure`] (PurePeriodicCkpt),
//!   [`model::bi`] (BiPeriodicCkpt) and [`model::composite`]
//!   (ABFT&PeriodicCkpt) — Equations (1)–(14) — generic over the
//!   [`model::analytic::WasteModel`] failure law (exponential first-order or
//!   Weibull-corrected, dispatched from a `FailureSpec`);
//! * [`safeguard`] — the runtime rule of Section III-B that skips ABFT when
//!   the projected library-call duration is below the optimal checkpoint
//!   period;
//! * [`scenario`] — application profiles (sequences of GENERAL/LIBRARY
//!   phases) consumed by the simulator and by the composite runtime;
//! * [`composite_runtime`] — an executable state machine of the composite
//!   protocol driving the `ft-ckpt` and `ft-abft` substrates on real process
//!   state;
//! * [`scaling`] — the weak-scaling scenario generators behind Figures 8, 9
//!   and 10 of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod composite_runtime;
pub mod error;
pub mod model;
pub mod params;
pub mod safeguard;
pub mod scaling;
pub mod scenario;
pub mod young_daly;

pub use composite_runtime::{CompositeRuntime, RuntimeEvent, RuntimeSnapshot};
pub use error::ModelError;
pub use model::analytic::{AnyWasteModel, FirstOrderExponential, WasteModel, WeibullCorrected};
pub use model::waste::Waste;
pub use params::ModelParams;
pub use scenario::{ApplicationProfile, Epoch};
