//! The analytic waste-model subsystem: one trait, two failure laws.
//!
//! The paper derives its closed-form waste (Equations (9)–(12)) under the
//! exponential failure assumption of Section V-A: failures arrive at rate
//! `1/µ` and a failure striking a checkpoint period of length `P` destroys
//! `P/2` of work on average.  The simulator, however, also runs under
//! **Weibull** clocks (`--failure-model weibull`), and under those clocks the
//! exponential formula is systematically biased: for `k < 1` failures
//! cluster — each failure in a burst strikes shortly after the previous
//! restart and destroys far *less* than `P/2` — so the exponential model
//! over-predicts the waste (by ≈ 8 points at `k = 0.5` on the paper's
//! headline scenario).
//!
//! [`WasteModel`] abstracts exactly the two quantities the first-order
//! derivation takes from the failure law:
//!
//! * [`WasteModel::expected_rework`] — `E[lost work]` given that a failure
//!   strikes within a protection window of a given extent (`extent/2` under
//!   the exponential law);
//! * [`WasteModel::optimal_period`] — the checkpoint period balancing
//!   checkpoint overhead against that expected rework (Equation (11) under
//!   the exponential law).
//!
//! [`FirstOrderExponential`] is the paper's formula, bit-identical to the
//! historical code path.  [`WeibullCorrected`] replaces `extent/2` by the
//! **conditional mean failure age**
//!
//! ```text
//! E_k[X | X ≤ τ] = λ γ(1 + 1/k, (τ/λ)^k) / (1 − e^{−(τ/λ)^k}),   λ = µ/Γ(1 + 1/k)
//! ```
//!
//! (`γ` the lower incomplete Gamma function — see
//! `ft_platform::special`), *blended* with the uniform-strike value `τ/2`
//! on the first-arrival mass `F_k(τ)` and applied as the ratio correction
//!
//! ```text
//! rework = (extent/2) · blend_k(τ) / blend_1(τ),
//! blend_k(τ) = F_k(τ)·E_k[X|X≤τ] + (1 − F_k(τ))·τ/2
//! ```
//!
//! and solves the balance condition `C/P = rework(P)/(µ − D − R)` by fixed
//! point for the corrected period.  Both corrections are exact identities at
//! `k = 1` (the ratio is literally `x/x` and the fixed point starts
//! converged), so the Weibull model degenerates **bit-for-bit** to the
//! exponential one — the property `tests/weibull_model.rs` pins across the
//! Figure 8–10 grids.
//!
//! [`AnyWasteModel::from_spec`] dispatches a [`FailureSpec`] to the matching
//! model, so the analytic arm and the simulation clock of a sweep always
//! share one failure description.

use ft_platform::failure::FailureSpec;
use serde::{Deserialize, Serialize};

use crate::error::{ensure_positive, ModelError, Result};
use crate::young_daly::paper_optimal_period;

/// The failure-law-dependent core of the first-order waste derivation.
///
/// Implementations provide the expected rework per failure and the optimal
/// checkpoint period; everything else (the phase formula, the per-protocol
/// predictions, the weak-scaling evaluation) is generic over this trait —
/// see [`crate::model::phase::checkpointed_phase_with`] and the
/// `prediction_with` entry points of [`crate::model::pure`],
/// [`crate::model::bi`] and [`crate::model::composite`].
pub trait WasteModel {
    /// Human-readable label of the model (used in sweep output).
    fn label(&self) -> String;

    /// Expected work lost to one failure striking within a protection window
    /// of `extent` seconds (the time since the last durable state), on a
    /// platform of MTBF `mtbf`.
    fn expected_rework(&self, extent: f64, mtbf: f64) -> f64;

    /// The optimal checkpoint period for periodic checkpoints of cost
    /// `checkpoint_cost`: the period balancing checkpoint overhead against
    /// the expected rework, `C/P = rework(P)/(µ − D − R)`.
    ///
    /// Errors when `µ ≤ D + R` (no period can help).
    fn optimal_period(
        &self,
        checkpoint_cost: f64,
        mtbf: f64,
        downtime: f64,
        recovery_cost: f64,
    ) -> Result<f64>;

    /// First-order waste of periodic checkpointing at an arbitrary period
    /// under this model's rework law:
    /// `1 − (1 − C/P)(1 − (D + R + rework(P))/µ)`.
    ///
    /// The exponential instance reproduces
    /// [`crate::young_daly::waste_at_period`]; the Weibull instance is the
    /// period-sensitivity curve a shape-`k` clock actually induces.
    fn waste_at_period(
        &self,
        period: f64,
        checkpoint_cost: f64,
        mtbf: f64,
        downtime: f64,
        recovery_cost: f64,
    ) -> Result<f64> {
        ensure_positive("period", period)?;
        ensure_positive("checkpoint_cost", checkpoint_cost)?;
        ensure_positive("mtbf", mtbf)?;
        let x = (1.0 - checkpoint_cost / period)
            * (1.0 - (downtime + recovery_cost + self.expected_rework(period, mtbf)) / mtbf);
        Ok(1.0 - x)
    }
}

/// The paper's first-order exponential waste model (Equations (9)–(12)):
/// `E[lost work] = extent/2`, `P_opt = √(2C(µ − D − R))`.
///
/// This is the exact historical code path — the generic machinery
/// instantiated with this model is bit-identical to the pre-refactor
/// formulas (guarded by the engine-regression and scaling tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FirstOrderExponential;

impl WasteModel for FirstOrderExponential {
    fn label(&self) -> String {
        "first-order(exponential)".to_string()
    }

    #[inline]
    fn expected_rework(&self, extent: f64, _mtbf: f64) -> f64 {
        extent / 2.0
    }

    #[inline]
    fn optimal_period(
        &self,
        checkpoint_cost: f64,
        mtbf: f64,
        downtime: f64,
        recovery_cost: f64,
    ) -> Result<f64> {
        paper_optimal_period(checkpoint_cost, mtbf, downtime, recovery_cost)
    }
}

/// The Weibull-corrected first-order waste model for a shape-`k` failure
/// clock calibrated to the platform MTBF (`λ = µ/Γ(1 + 1/k)`).
///
/// The exponential derivation loses `extent/2` per failure because a
/// memoryless failure falls uniformly inside the window it interrupts.
/// Under a Weibull clock the failure *age* within the window follows the
/// inter-arrival law conditioned below the window extent **when the window
/// starts at a clock renewal** — i.e. when the interrupting failure is the
/// first arrival after the previous one.  That happens with probability
/// `F_k(τ)`; otherwise the strike lands deep into the clock's life where
/// the hazard is locally flat and the strike age is near-uniform, giving
/// `τ/2` back.  The model therefore blends the conditional mean
/// `E_k[X | X ≤ τ]` (an incomplete-Gamma moment) with `τ/2` on exactly
/// those weights and applies the blend as a ratio against the same
/// expression at `k = 1`:
///
/// ```text
/// rework_k(τ) = (τ/2) · blend_k(τ) / blend₁(τ),
/// blend_k(τ) = F_k(τ)·E_k[X | X ≤ τ] + (1 − F_k(τ))·τ/2
/// ```
///
/// which keeps the `k = 1` limit an *exact identity* (the ratio is `x/x`)
/// rather than an approximation: at `k = 1` every prediction is bit-equal to
/// [`FirstOrderExponential`]'s.  For `k < 1` the ratio is below one
/// (clustered failures strike early and destroy little), for `k > 1` above
/// one — matching the direction the simulation measures.  The unblended
/// ratio `E_k/E₁` overshoots for wear-out clocks (−0.040 waste versus the
/// simulation at `k = 1.5` on the Figure-7 base point); the `F_k(τ)`
/// weighting removes the overshoot while leaving the bursty regime's
/// correction intact.
///
/// The corrected optimal period solves the balance condition
/// `C/P = rework_k(P) / (µ − D − R)` (the generalisation of Equation (11),
/// which it reduces to at `k = 1`) by damped fixed-point iteration seeded
/// from the exponential period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeibullCorrected {
    shape: f64,
}

impl WeibullCorrected {
    /// Creates the model for a shape-`k` Weibull clock.
    pub fn new(shape: f64) -> Result<Self> {
        ensure_positive("shape", shape)?;
        if !shape.is_finite() {
            return Err(ModelError::OutsideValidityDomain {
                what: "Weibull shape must be finite",
            });
        }
        Ok(Self { shape })
    }

    /// The shape parameter `k`.
    #[inline]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The blended conditional-age rework term for one shape: the
    /// conditional mean `E_k[X | X ≤ τ]` weighted by `F_k(τ)` — the
    /// probability that the *first* arrival of a freshly renewed clock falls
    /// inside the window — blended with the uniform-strike value `τ/2` on
    /// the complementary weight.  Failures that are not the first arrival
    /// after a renewal strike far from the clock origin, where the Weibull
    /// hazard is locally flat and the strike age is near-uniform; weighting
    /// the shape-sensitive moment by exactly the first-arrival mass keeps
    /// the bursty correction and removes the wear-out overshoot the pure
    /// conditional-age ratio exhibits (≈ −0.040 waste at `k = 1.5`).
    fn blended_rework(shape: f64, extent: f64, mtbf: f64) -> f64 {
        let spec = FailureSpec::Weibull { shape };
        let in_window = spec.cdf(mtbf, extent);
        let conditional = spec.conditional_mean_below(mtbf, extent);
        in_window * conditional + (1.0 - in_window) * (extent / 2.0)
    }

    /// The blended conditional-age ratio
    ///
    /// ```text
    /// F_k(τ)·E_k[X|X≤τ] + (1 − F_k(τ))·τ/2
    /// ─────────────────────────────────────
    /// F₁(τ)·E₁[X|X≤τ] + (1 − F₁(τ))·τ/2
    /// ```
    ///
    /// — the multiplicative correction on the exponential `τ/2` rework.
    /// Exactly `1` at `k = 1` (numerator and denominator are the same
    /// expression, so the ratio is literally `x/x`).
    pub fn rework_ratio(&self, extent: f64, mtbf: f64) -> f64 {
        if extent <= 0.0 {
            return 1.0;
        }
        let ours = Self::blended_rework(self.shape, extent, mtbf);
        let exponential = Self::blended_rework(1.0, extent, mtbf);
        if exponential > 0.0 && ours.is_finite() {
            ours / exponential
        } else {
            1.0
        }
    }
}

impl WasteModel for WeibullCorrected {
    fn label(&self) -> String {
        format!("weibull-corrected(k={})", self.shape)
    }

    #[inline]
    fn expected_rework(&self, extent: f64, mtbf: f64) -> f64 {
        (extent / 2.0) * self.rework_ratio(extent, mtbf)
    }

    fn optimal_period(
        &self,
        checkpoint_cost: f64,
        mtbf: f64,
        downtime: f64,
        recovery_cost: f64,
    ) -> Result<f64> {
        // Seed from the exponential period (also validates the domain).
        let mut period = paper_optimal_period(checkpoint_cost, mtbf, downtime, recovery_cost)?;
        let effective = mtbf - downtime - recovery_cost;
        // Fixed point of P = √(2 C (µ−D−R) · s(P)) with
        // s(P) = (P/2) / rework(P) = 1/ratio(P).  At k = 1 the scale factor
        // is exactly 1.0 and the first iterate returns the seed unchanged.
        for _ in 0..100 {
            let rework = self.expected_rework(period, mtbf);
            if rework <= 0.0 || rework.is_nan() {
                break;
            }
            let scale = (period / 2.0) / rework;
            let next = (2.0 * checkpoint_cost * effective * scale).sqrt();
            if !next.is_finite() || next <= 0.0 {
                break;
            }
            let converged = (next - period).abs() <= 1e-13 * period;
            period = next;
            if converged {
                break;
            }
        }
        Ok(period)
    }
}

/// Enum dispatch over the two waste models, mirroring
/// [`ft_platform::failure::AnyFailureModel`] on the analytic side.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AnyWasteModel {
    /// The paper's exponential first-order formulas.
    FirstOrder(FirstOrderExponential),
    /// The Weibull-corrected formulas for a shape-`k` clock.
    Weibull(WeibullCorrected),
    /// The **fallback** arm for a lognormal clock: no lognormal-corrected
    /// analytic derivation exists yet, so predictions reuse the exponential
    /// first-order formulas at the matched MTBF.  The arm exists (rather
    /// than mapping to `FirstOrder`) so the gap is *surfaced* — the label
    /// names the approximation, and `tests/lognormal_model.rs` measures the
    /// model-versus-simulation gap it causes instead of hiding it.
    LognormalFallback {
        /// The σ of the lognormal clock the fallback stands in for.
        sigma: f64,
    },
}

impl AnyWasteModel {
    /// The analytic model matching a declarative failure spec — the single
    /// dispatch point that keeps the model arm and the simulation clock of a
    /// sweep on one failure description.
    pub fn from_spec(spec: FailureSpec) -> Result<AnyWasteModel> {
        match spec {
            FailureSpec::Exponential => Ok(AnyWasteModel::FirstOrder(FirstOrderExponential)),
            FailureSpec::Weibull { shape } => {
                Ok(AnyWasteModel::Weibull(WeibullCorrected::new(shape)?))
            }
            FailureSpec::LogNormal { sigma } => {
                ensure_positive("sigma", sigma)?;
                Ok(AnyWasteModel::LognormalFallback { sigma })
            }
        }
    }

    /// The paper's exponential first-order model.
    pub fn first_order() -> AnyWasteModel {
        AnyWasteModel::FirstOrder(FirstOrderExponential)
    }
}

impl Default for AnyWasteModel {
    fn default() -> Self {
        Self::first_order()
    }
}

impl WasteModel for AnyWasteModel {
    fn label(&self) -> String {
        match self {
            AnyWasteModel::FirstOrder(m) => m.label(),
            AnyWasteModel::Weibull(m) => m.label(),
            AnyWasteModel::LognormalFallback { sigma } => {
                format!("first-order(exponential fallback for lognormal(sigma={sigma}))")
            }
        }
    }

    #[inline]
    fn expected_rework(&self, extent: f64, mtbf: f64) -> f64 {
        match self {
            AnyWasteModel::FirstOrder(m) => m.expected_rework(extent, mtbf),
            AnyWasteModel::Weibull(m) => m.expected_rework(extent, mtbf),
            AnyWasteModel::LognormalFallback { .. } => {
                FirstOrderExponential.expected_rework(extent, mtbf)
            }
        }
    }

    #[inline]
    fn optimal_period(
        &self,
        checkpoint_cost: f64,
        mtbf: f64,
        downtime: f64,
        recovery_cost: f64,
    ) -> Result<f64> {
        match self {
            AnyWasteModel::FirstOrder(m) => {
                m.optimal_period(checkpoint_cost, mtbf, downtime, recovery_cost)
            }
            AnyWasteModel::Weibull(m) => {
                m.optimal_period(checkpoint_cost, mtbf, downtime, recovery_cost)
            }
            AnyWasteModel::LognormalFallback { .. } => {
                FirstOrderExponential.optimal_period(checkpoint_cost, mtbf, downtime, recovery_cost)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::young_daly::{paper_optimal_period, waste_at_period};
    use ft_platform::units::{hours, minutes};

    #[test]
    fn first_order_reproduces_the_paper_formulas() {
        let m = FirstOrderExponential;
        assert_eq!(m.expected_rework(100.0, 7200.0).to_bits(), 50.0f64.to_bits());
        let (c, mu, d, r) = (minutes(10.0), hours(2.0), minutes(1.0), minutes(10.0));
        assert_eq!(
            m.optimal_period(c, mu, d, r).unwrap().to_bits(),
            paper_optimal_period(c, mu, d, r).unwrap().to_bits()
        );
        let p = m.optimal_period(c, mu, d, r).unwrap();
        assert_eq!(
            m.waste_at_period(p, c, mu, d, r).unwrap().to_bits(),
            waste_at_period(p, c, mu, d, r).unwrap().to_bits()
        );
    }

    #[test]
    fn weibull_at_shape_one_is_bit_identical_to_first_order() {
        let w = WeibullCorrected::new(1.0).unwrap();
        let e = FirstOrderExponential;
        let (c, mu, d, r) = (minutes(10.0), hours(2.0), minutes(1.0), minutes(10.0));
        for extent in [30.0, 600.0, 2_801.0, 50_000.0] {
            assert_eq!(
                w.expected_rework(extent, mu).to_bits(),
                e.expected_rework(extent, mu).to_bits(),
                "extent {extent}"
            );
        }
        assert_eq!(
            w.optimal_period(c, mu, d, r).unwrap().to_bits(),
            e.optimal_period(c, mu, d, r).unwrap().to_bits()
        );
        let p = e.optimal_period(c, mu, d, r).unwrap();
        assert_eq!(
            w.waste_at_period(p, c, mu, d, r).unwrap().to_bits(),
            e.waste_at_period(p, c, mu, d, r).unwrap().to_bits()
        );
    }

    #[test]
    fn bursty_shapes_lose_less_work_per_failure_and_checkpoint_less_often() {
        let mu = hours(2.0);
        let (c, d, r) = (minutes(10.0), minutes(1.0), minutes(10.0));
        let exponential = FirstOrderExponential;
        let p1 = exponential.optimal_period(c, mu, d, r).unwrap();
        let mut previous_ratio = 0.0;
        for shape in [0.5, 0.7, 0.9] {
            let w = WeibullCorrected::new(shape).unwrap();
            let ratio = w.rework_ratio(p1, mu);
            assert!(
                ratio > previous_ratio && ratio < 1.0,
                "shape {shape}: ratio {ratio}"
            );
            previous_ratio = ratio;
            // Less rework per failure → longer corrected period.
            let pk = w.optimal_period(c, mu, d, r).unwrap();
            assert!(pk > p1, "shape {shape}: {pk} !> {p1}");
            // And the corrected period beats the exponential period under
            // the corrected waste law (it is that law's optimiser).
            let at_corrected = w.waste_at_period(pk, c, mu, d, r).unwrap();
            let at_exponential = w.waste_at_period(p1, c, mu, d, r).unwrap();
            assert!(at_corrected <= at_exponential + 1e-12);
        }
        // Wear-out shapes go the other way.
        let w = WeibullCorrected::new(2.0).unwrap();
        assert!(w.rework_ratio(p1, mu) > 1.0);
        assert!(w.optimal_period(c, mu, d, r).unwrap() < p1);
    }

    #[test]
    fn wear_out_blend_dampens_the_pure_conditional_age_ratio() {
        // The regression the blend exists for: for k > 1 the unblended
        // ratio E_k/E₁ over-corrects (−0.040 waste at k = 1.5 versus the
        // simulation), so the blended ratio must sit strictly between 1 and
        // the unblended value.  For k < 1 the bursty correction must
        // survive the blend (ratio still well below 1).
        let mu = hours(2.0);
        let pure_ratio = |shape: f64, tau: f64| {
            FailureSpec::Weibull { shape }.conditional_mean_below(mu, tau)
                / FailureSpec::Weibull { shape: 1.0 }.conditional_mean_below(mu, tau)
        };
        for tau in [600.0, 2_801.0, 7_200.0] {
            for shape in [1.3, 1.5, 2.0] {
                let w = WeibullCorrected::new(shape).unwrap();
                let blended = w.rework_ratio(tau, mu);
                let pure = pure_ratio(shape, tau);
                assert!(
                    1.0 < blended && blended < pure,
                    "k={shape} tau={tau}: blended {blended} vs pure {pure}"
                );
            }
            for shape in [0.5, 0.7] {
                let w = WeibullCorrected::new(shape).unwrap();
                let blended = w.rework_ratio(tau, mu);
                let pure = pure_ratio(shape, tau);
                assert!(
                    pure < blended && blended < 1.0,
                    "k={shape} tau={tau}: blended {blended} vs pure {pure}"
                );
            }
        }
    }

    #[test]
    fn corrected_period_solves_the_balance_condition() {
        let mu = hours(2.0);
        let (c, d, r) = (minutes(10.0), minutes(1.0), minutes(10.0));
        for shape in [0.5, 0.7, 1.3, 2.0] {
            let w = WeibullCorrected::new(shape).unwrap();
            let p = w.optimal_period(c, mu, d, r).unwrap();
            // C/P = rework(P) / (µ − D − R) at the fixed point.
            let lhs = c / p;
            let rhs = w.expected_rework(p, mu) / (mu - d - r);
            assert!(
                (lhs - rhs).abs() / lhs < 1e-9,
                "shape {shape}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn model_validity_domain_matches_the_paper() {
        let w = WeibullCorrected::new(0.7).unwrap();
        assert!(w.optimal_period(600.0, 500.0, 60.0, 600.0).is_err());
        assert!(WeibullCorrected::new(0.0).is_err());
        assert!(WeibullCorrected::new(-1.0).is_err());
        assert!(WeibullCorrected::new(f64::INFINITY).is_err());
    }

    #[test]
    fn spec_dispatch_matches_the_families() {
        let exp = AnyWasteModel::from_spec(FailureSpec::Exponential).unwrap();
        assert!(matches!(exp, AnyWasteModel::FirstOrder(_)));
        assert_eq!(exp.label(), "first-order(exponential)");
        let weibull = AnyWasteModel::from_spec(FailureSpec::Weibull { shape: 0.7 }).unwrap();
        assert!(matches!(weibull, AnyWasteModel::Weibull(_)));
        assert_eq!(weibull.label(), "weibull-corrected(k=0.7)");
        assert!(AnyWasteModel::from_spec(FailureSpec::Weibull { shape: 0.0 }).is_err());
        assert_eq!(AnyWasteModel::default(), AnyWasteModel::first_order());
        // The lognormal arm is an *explicit* exponential fallback: numerically
        // identical to first-order, but labelled so the gap is visible.
        let lognormal = AnyWasteModel::from_spec(FailureSpec::LogNormal { sigma: 0.9 }).unwrap();
        assert!(matches!(lognormal, AnyWasteModel::LognormalFallback { .. }));
        assert_eq!(
            lognormal.label(),
            "first-order(exponential fallback for lognormal(sigma=0.9))"
        );
        let mu_ln = hours(2.0);
        assert_eq!(
            lognormal.expected_rework(1_000.0, mu_ln).to_bits(),
            FirstOrderExponential.expected_rework(1_000.0, mu_ln).to_bits()
        );
        assert_eq!(
            lognormal
                .optimal_period(600.0, mu_ln, 60.0, 600.0)
                .unwrap()
                .to_bits(),
            FirstOrderExponential
                .optimal_period(600.0, mu_ln, 60.0, 600.0)
                .unwrap()
                .to_bits()
        );
        assert!(AnyWasteModel::from_spec(FailureSpec::LogNormal { sigma: 0.0 }).is_err());
        // Enum dispatch forwards to the concrete impls.
        let mu = hours(2.0);
        let bare = WeibullCorrected::new(0.7).unwrap();
        assert_eq!(
            weibull.expected_rework(1_000.0, mu).to_bits(),
            bare.expected_rework(1_000.0, mu).to_bits()
        );
        assert_eq!(
            weibull
                .optimal_period(600.0, mu, 60.0, 600.0)
                .unwrap()
                .to_bits(),
            bare.optimal_period(600.0, mu, 60.0, 600.0).unwrap().to_bits()
        );
    }

    #[test]
    fn rework_stays_physical() {
        // 0 < rework(τ) < τ for every model and τ, and degenerate extents
        // are safe.
        let mu = hours(2.0);
        for shape in [0.5, 1.0, 2.0] {
            let w = WeibullCorrected::new(shape).unwrap();
            for tau in [1e-6, 1.0, 600.0, 7200.0, 1e6] {
                let rework = w.expected_rework(tau, mu);
                assert!(rework > 0.0 && rework < tau, "k={shape} tau={tau}: {rework}");
            }
            assert_eq!(w.expected_rework(0.0, mu), 0.0);
            assert_eq!(w.rework_ratio(0.0, mu), 1.0);
        }
    }
}
