//! BiPeriodicCkpt: phase-aware periodic checkpointing with incremental
//! checkpoints during LIBRARY phases (Section IV-C, Equations (13)–(14)).
//!
//! The GENERAL phase is protected exactly like PurePeriodicCkpt; during the
//! LIBRARY phase only the LIBRARY dataset is modified, so incremental
//! checkpoints of cost `C_L = ρC` are taken, at their own optimal period
//! `P_opt = √(2 C_L (µ − D − R))`.  The *recovery* cost after a failure stays
//! `R` (a rollback must recombine the incremental checkpoints into the full
//! image).

use crate::error::Result;
use crate::model::analytic::{FirstOrderExponential, WasteModel};
use crate::model::phase::{checkpointed_phase_with, PhaseParams};
use crate::model::waste::{Prediction, Waste};
use crate::params::ModelParams;

/// Full prediction for one epoch under BiPeriodicCkpt, under the paper's
/// exponential first-order model.
pub fn prediction(params: &ModelParams) -> Result<Prediction> {
    prediction_with(&FirstOrderExponential, params)
}

/// [`prediction`] under an arbitrary [`WasteModel`] (e.g. the
/// Weibull-corrected formulas of a `--failure-model weibull` sweep).
pub fn prediction_with<M: WasteModel + ?Sized>(
    model: &M,
    params: &ModelParams,
) -> Result<Prediction> {
    let general = checkpointed_phase_with(model, &PhaseParams {
        work: params.general_duration(),
        periodic_checkpoint: params.checkpoint_cost,
        trailing_checkpoint: params.checkpoint_cost,
        recovery: params.recovery_cost,
        downtime: params.downtime,
        mtbf: params.platform_mtbf,
    })?;
    let library = checkpointed_phase_with(model, &PhaseParams {
        work: params.library_duration(),
        periodic_checkpoint: params.checkpoint_cost_library(),
        trailing_checkpoint: params.checkpoint_cost_library(),
        // Rollback still reloads the whole dataset (incremental checkpoints
        // are combined at restore time).
        recovery: params.recovery_cost,
        downtime: params.downtime,
        mtbf: params.platform_mtbf,
    })?;
    let final_time = general.final_time + library.final_time;
    Ok(Prediction {
        general_final_time: general.final_time,
        library_final_time: library.final_time,
        waste: Waste::from_times(params.epoch_duration, final_time),
        general_period: general.period,
        library_period: library.period,
        expected_failures: final_time / params.platform_mtbf,
    })
}

/// Expected execution time of one epoch under BiPeriodicCkpt.
pub fn final_time(params: &ModelParams) -> Result<f64> {
    Ok(prediction(params)?.final_time())
}

/// Waste of BiPeriodicCkpt on one epoch.
pub fn waste(params: &ModelParams) -> Result<Waste> {
    Ok(prediction(params)?.waste)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::pure;
    use ft_platform::units::minutes;

    #[test]
    fn degenerates_to_pure_when_alpha_is_zero() {
        // α → 0: the epoch is one big GENERAL phase; BiPeriodicCkpt and
        // PurePeriodicCkpt coincide (Section V-B).
        let params = ModelParams::paper_figure7(0.0, minutes(120.0)).unwrap();
        let bi = waste(&params).unwrap().value();
        let pure = pure::waste(&params).unwrap().value();
        assert!((bi - pure).abs() < 1e-9);
    }

    #[test]
    fn never_worse_than_pure() {
        for alpha in [0.0, 0.2, 0.5, 0.8, 1.0] {
            for mtbf in [60.0, 120.0, 240.0] {
                let params = ModelParams::paper_figure7(alpha, minutes(mtbf)).unwrap();
                let bi = waste(&params).unwrap().value();
                let pure = pure::waste(&params).unwrap().value();
                assert!(
                    bi <= pure + 1e-9,
                    "alpha={alpha} mtbf={mtbf}: bi {bi} > pure {pure}"
                );
            }
        }
    }

    #[test]
    fn benefit_grows_with_alpha() {
        // The more time is spent in the LIBRARY phase, the more the cheaper
        // incremental checkpoints pay off (Figure 7c).
        let mtbf = minutes(90.0);
        let mut previous_gain = -1.0;
        for alpha in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let params = ModelParams::paper_figure7(alpha, mtbf).unwrap();
            let gain = pure::waste(&params).unwrap().value() - waste(&params).unwrap().value();
            assert!(gain >= previous_gain - 1e-12, "alpha={alpha}");
            previous_gain = gain;
        }
        assert!(previous_gain > 0.0);
    }

    #[test]
    fn library_period_is_shorter_than_general_period() {
        // C_L = 0.8 C < C, so the optimal period during the LIBRARY phase is
        // shorter.
        let params = ModelParams::paper_figure7(0.5, minutes(120.0)).unwrap();
        let p = prediction(&params).unwrap();
        let pg = p.general_period.unwrap();
        let pl = p.library_period.unwrap();
        assert!(pl < pg);
        assert!((pl / pg - 0.8_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn rho_one_means_no_gain_over_pure() {
        // If the LIBRARY phase touches all the memory (ρ = 1), incremental
        // checkpoints are as expensive as full ones.
        let params = ModelParams::builder()
            .epoch_duration(ft_platform::units::weeks(1.0))
            .alpha(0.8)
            .checkpoint_cost(minutes(10.0))
            .recovery_cost(minutes(10.0))
            .downtime(minutes(1.0))
            .rho(1.0)
            .phi(1.03)
            .abft_reconstruction(2.0)
            .platform_mtbf(minutes(120.0))
            .build()
            .unwrap();
        let bi = waste(&params).unwrap().value();
        let pure = pure::waste(&params).unwrap().value();
        assert!((bi - pure).abs() < 1e-9);
    }
}
