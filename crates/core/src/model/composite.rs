//! ABFT&PeriodicCkpt: the composite protocol (Section IV-B).
//!
//! * The GENERAL phase is protected by periodic checkpointing; when it is
//!   shorter than the optimal period, only the forced entry checkpoint
//!   (REMAINDER dataset, cost `C_L̄`) is taken — Equations (1), (9);
//! * the LIBRARY phase runs under ABFT: the work is inflated by `φ`, a forced
//!   exit checkpoint of cost `C_L` is added, and a failure costs
//!   `D + R_L̄ + Recons_ABFT` instead of a rollback — Equations (2), (8);
//! * the safeguard of Section III-B falls back to checkpoint-only protection
//!   when the projected ABFT-protected call is shorter than the optimal
//!   checkpoint period.

use crate::error::{ModelError, Result};
use crate::model::analytic::{FirstOrderExponential, WasteModel};
use crate::model::phase::{checkpointed_phase_with, PhaseParams};
use crate::model::waste::{Prediction, Waste};
use crate::model::{bi, pure};
use crate::params::ModelParams;

/// Expected execution time of the LIBRARY phase under ABFT protection
/// (Equation 8).
pub fn library_final_time(params: &ModelParams) -> Result<f64> {
    let work = params.library_duration();
    if work <= 0.0 {
        return Ok(0.0);
    }
    let fault_free = params.phi * work + params.checkpoint_cost_library();
    let per_failure = params.downtime + params.recovery_cost_remainder() + params.abft_reconstruction;
    let loss_rate = per_failure / params.platform_mtbf;
    if loss_rate >= 1.0 {
        return Err(ModelError::OutsideValidityDomain {
            what: "ABFT library-phase final time",
        });
    }
    Ok(fault_free / (1.0 - loss_rate))
}

/// Expected execution time of the GENERAL phase of the composite protocol
/// (Equations (1), (9), (10)).
pub fn general_final_time(params: &ModelParams) -> Result<(f64, Option<f64>)> {
    general_final_time_with(&FirstOrderExponential, params)
}

/// [`general_final_time`] under an arbitrary [`WasteModel`].
pub fn general_final_time_with<M: WasteModel + ?Sized>(
    model: &M,
    params: &ModelParams,
) -> Result<(f64, Option<f64>)> {
    let outcome = checkpointed_phase_with(model, &PhaseParams {
        work: params.general_duration(),
        periodic_checkpoint: params.checkpoint_cost,
        // When the GENERAL phase is short, only the forced entry checkpoint
        // of the REMAINDER dataset is taken before switching to ABFT mode.
        trailing_checkpoint: params.checkpoint_cost_remainder(),
        recovery: params.recovery_cost,
        downtime: params.downtime,
        mtbf: params.platform_mtbf,
    })?;
    Ok((outcome.final_time, outcome.period))
}

/// Full prediction for one epoch under ABFT&PeriodicCkpt (safeguard not
/// applied — ABFT is always used for the LIBRARY phase).
pub fn prediction(params: &ModelParams) -> Result<Prediction> {
    prediction_with(&FirstOrderExponential, params)
}

/// [`prediction`] under an arbitrary [`WasteModel`].  Only the GENERAL
/// (checkpoint-protected) phase depends on the rework law; the
/// ABFT-protected LIBRARY phase loses no work to failures (Equation (8)'s
/// per-failure cost is `D + R_L̄ + Recons`, no half-period term), so its
/// formula is identical under every failure model of the same MTBF.
pub fn prediction_with<M: WasteModel + ?Sized>(
    model: &M,
    params: &ModelParams,
) -> Result<Prediction> {
    let (general_time, general_period) = general_final_time_with(model, params)?;
    let library_time = library_final_time(params)?;
    let final_time = general_time + library_time;
    Ok(Prediction {
        general_final_time: general_time,
        library_final_time: library_time,
        waste: Waste::from_times(params.epoch_duration, final_time),
        general_period,
        library_period: None,
        expected_failures: final_time / params.platform_mtbf,
    })
}

/// Expected execution time of one epoch under ABFT&PeriodicCkpt.
pub fn final_time(params: &ModelParams) -> Result<f64> {
    Ok(prediction(params)?.final_time())
}

/// Waste of ABFT&PeriodicCkpt on one epoch.
pub fn waste(params: &ModelParams) -> Result<Waste> {
    Ok(prediction(params)?.waste)
}

/// Which protection the safeguard selected for the LIBRARY phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SafeguardChoice {
    /// The LIBRARY phase is long enough: ABFT is used.
    Abft,
    /// The projected ABFT-protected call is shorter than the optimal
    /// checkpoint period: fall back to checkpoint-only protection
    /// (BiPeriodicCkpt when incremental checkpoints are available,
    /// PurePeriodicCkpt otherwise).
    CheckpointOnly,
}

/// Prediction with the Section III-B safeguard applied.
///
/// When the projected duration of the ABFT-protected library call
/// (`φ·T_L + C_L`) is smaller than the optimal checkpoint period, ABFT is not
/// activated and the epoch is protected by periodic checkpointing only
/// (with incremental checkpoints when `incremental` is true).
pub fn prediction_with_safeguard(
    params: &ModelParams,
    incremental: bool,
) -> Result<(Prediction, SafeguardChoice)> {
    prediction_with_safeguard_model(&FirstOrderExponential, params, incremental)
}

/// [`prediction_with_safeguard`] under an arbitrary [`WasteModel`]: the
/// safeguard threshold is that model's optimal period (a Weibull-corrected
/// model checkpoints at its own period, so the activation rule compares
/// against it).
pub fn prediction_with_safeguard_model<M: WasteModel + ?Sized>(
    model: &M,
    params: &ModelParams,
    incremental: bool,
) -> Result<(Prediction, SafeguardChoice)> {
    let period = model.optimal_period(
        params.checkpoint_cost,
        params.platform_mtbf,
        params.downtime,
        params.recovery_cost,
    )?;
    let projected = params.phi * params.library_duration() + params.checkpoint_cost_library();
    if projected < period {
        let fallback = if incremental {
            bi::prediction_with(model, params)?
        } else {
            pure::prediction_with(model, params)?
        };
        Ok((fallback, SafeguardChoice::CheckpointOnly))
    } else {
        Ok((prediction_with(model, params)?, SafeguardChoice::Abft))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_platform::units::{minutes, weeks};

    #[test]
    fn degenerates_to_pure_when_alpha_is_zero() {
        // Section V-B: "when α tends toward 0, the protocol behaves as
        // PurePeriodicCkpt".
        let params = ModelParams::paper_figure7(0.0, minutes(120.0)).unwrap();
        let composite = waste(&params).unwrap().value();
        let pure = pure::waste(&params).unwrap().value();
        assert!((composite - pure).abs() < 1e-9);
    }

    #[test]
    fn approaches_phi_overhead_when_alpha_is_one_and_failures_are_rare() {
        // Section V-B: "when considering the extreme case of 100% of the time
        // spent in the LIBRARY phases, the overhead tends to reach the
        // overhead induced by the slowdown factor of ABFT (φ = 1.03, hence 3%
        // overhead)" — exactly true in the limit of large MTBF.
        let params = ModelParams::builder()
            .epoch_duration(weeks(1.0))
            .alpha(1.0)
            .checkpoint_cost(minutes(10.0))
            .recovery_cost(minutes(10.0))
            .downtime(minutes(1.0))
            .rho(0.8)
            .phi(1.03)
            .abft_reconstruction(2.0)
            .platform_mtbf(weeks(50.0))
            .build()
            .unwrap();
        let w = waste(&params).unwrap().value();
        let phi_overhead = 1.0 - 1.0 / 1.03;
        assert!((w - phi_overhead).abs() < 0.005, "waste {w} vs {phi_overhead}");
    }

    #[test]
    fn beats_both_checkpoint_protocols_at_half_library_time() {
        // Section V-B: at α = 0.5 and the paper's parameters the composite
        // protocol already wins against both PurePeriodicCkpt and
        // BiPeriodicCkpt.
        for mtbf in [60.0, 120.0, 240.0] {
            let params = ModelParams::paper_figure7(0.5, minutes(mtbf)).unwrap();
            let composite = waste(&params).unwrap().value();
            let pure = pure::waste(&params).unwrap().value();
            let bi = bi::waste(&params).unwrap().value();
            assert!(composite < pure, "mtbf {mtbf}: {composite} !< {pure}");
            assert!(composite < bi, "mtbf {mtbf}: {composite} !< {bi}");
        }
    }

    #[test]
    fn waste_decreases_with_alpha_at_small_mtbf() {
        // Figure 7e: with a small MTBF, moving work into the ABFT-protected
        // phase reduces the waste monotonically.
        let mtbf = minutes(60.0);
        let mut previous = 1.0;
        for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let params = ModelParams::paper_figure7(alpha, mtbf).unwrap();
            let w = waste(&params).unwrap().value();
            assert!(w < previous + 1e-12, "alpha {alpha}");
            previous = w;
        }
    }

    #[test]
    fn library_failures_cost_less_than_general_failures() {
        // The per-failure cost in the LIBRARY phase is D + R_L̄ + Recons,
        // much smaller than a full rollback; with the paper's parameters the
        // library phase final time is very close to φ·T_L + C_L.
        let params = ModelParams::paper_figure7(1.0, minutes(60.0)).unwrap();
        let t = library_final_time(&params).unwrap();
        let fault_free = 1.03 * params.library_duration() + params.checkpoint_cost_library();
        assert!(t > fault_free);
        // Per-failure cost D + R_L̄ + Recons ≈ 3 min, one failure per hour:
        // ≈ 5% of the time is lost, against > 30% for a rollback protocol.
        assert!((t - fault_free) / fault_free < 0.06);
    }

    #[test]
    fn safeguard_falls_back_for_short_library_calls() {
        // A library call of 2 minutes (projected ~2.06 min + C_L) is shorter
        // than the ~49-minute optimal period: ABFT must not be activated.
        let params = ModelParams::builder()
            .epoch_duration(minutes(10.0))
            .alpha(0.2)
            .checkpoint_cost(minutes(10.0))
            .recovery_cost(minutes(10.0))
            .downtime(minutes(1.0))
            .rho(0.8)
            .phi(1.03)
            .abft_reconstruction(2.0)
            .platform_mtbf(minutes(120.0))
            .build()
            .unwrap();
        let (_, choice) = prediction_with_safeguard(&params, true).unwrap();
        assert_eq!(choice, SafeguardChoice::CheckpointOnly);

        // The paper's headline scenario keeps ABFT on.
        let params = ModelParams::paper_figure7(0.8, minutes(120.0)).unwrap();
        let (_, choice) = prediction_with_safeguard(&params, true).unwrap();
        assert_eq!(choice, SafeguardChoice::Abft);
    }

    #[test]
    fn safeguarded_prediction_never_exceeds_unsafeguarded_alternatives() {
        for alpha in [0.05, 0.3, 0.7, 0.95] {
            for mtbf in [90.0, 180.0] {
                let params = ModelParams::paper_figure7(alpha, minutes(mtbf)).unwrap();
                let (guarded, _) = prediction_with_safeguard(&params, true).unwrap();
                let composite = waste(&params).unwrap().value();
                let bi = bi::waste(&params).unwrap().value();
                assert!(guarded.waste.value() <= composite.max(bi) + 1e-9);
            }
        }
    }
}
