//! Closed-form performance models (Section IV of the paper).
//!
//! Each protocol module exposes two functions:
//!
//! * `final_time(params)` — the expected execution time of one epoch under
//!   the protocol (Equations (1)–(14));
//! * `waste(params)` — the corresponding waste `1 − T_0 / T_final`
//!   (Equation (12)).
//!
//! The shared machinery (the periodic-checkpointing phase formula and the
//! [`waste::Waste`] / [`waste::Prediction`] types) lives in [`phase`] and
//! [`waste`]; the failure-law-dependent pieces (expected rework, optimal
//! period) live behind the [`analytic::WasteModel`] trait, with the paper's
//! exponential first-order formulas ([`analytic::FirstOrderExponential`])
//! and a Weibull-corrected variant ([`analytic::WeibullCorrected`]) as the
//! two implementations — each protocol module also exposes a
//! `prediction_with(model, params)` entry point.

pub mod analytic;
pub mod bi;
pub mod composite;
pub mod phase;
pub mod pure;
pub mod waste;

pub use analytic::{AnyWasteModel, FirstOrderExponential, WasteModel, WeibullCorrected};
pub use waste::{Prediction, Waste};
