//! The periodic-checkpointing phase formula shared by all three protocols.
//!
//! The paper analyses a phase of useful work `T` protected by periodic
//! checkpoints of cost `C_p` in two regimes (Section IV-B):
//!
//! * **short phase** (`T < P_opt`): no periodic checkpoint is taken inside
//!   the phase, only a trailing checkpoint of cost `C_t` at its end;
//!   `T_ff = T + C_t` and a failure loses half of it on average
//!   (Equations (6) and (9));
//! * **long phase** (`T ≥ P_opt`): the phase is divided into periods of
//!   length `P_opt = √(2 C_p (µ − D − R))` and
//!   `T_final = T / X` with `X = (1 − C_p/P)(1 − (D + R + P/2)/µ)`
//!   (Equations (7), (10) and (11)).

use serde::{Deserialize, Serialize};

use crate::error::{ModelError, Result};
use crate::model::analytic::{FirstOrderExponential, WasteModel};

/// Outcome of the phase formula.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseOutcome {
    /// Expected execution time of the phase, failures included.
    pub final_time: f64,
    /// Failure-free execution time of the phase (work + protection overhead).
    pub fault_free_time: f64,
    /// The checkpoint period used, when the periodic regime applies.
    pub period: Option<f64>,
}

/// Parameters of a checkpoint-protected phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseParams {
    /// Useful work of the phase (seconds).
    pub work: f64,
    /// Cost of each periodic checkpoint (seconds).
    pub periodic_checkpoint: f64,
    /// Cost of the trailing checkpoint taken when the phase is too short for
    /// periodic checkpointing (seconds).
    pub trailing_checkpoint: f64,
    /// Rollback/reload cost after a failure (seconds).
    pub recovery: f64,
    /// Downtime after a failure (seconds).
    pub downtime: f64,
    /// Platform MTBF (seconds).
    pub mtbf: f64,
}

/// Evaluates the phase formula under the paper's exponential first-order
/// model — the historical entry point, bit-identical to
/// `checkpointed_phase_with(&FirstOrderExponential, p)`.
///
/// A phase with zero work contributes nothing (not even a trailing
/// checkpoint), matching the degenerate `α = 0` / `α = 1` cases of the paper.
pub fn checkpointed_phase(p: &PhaseParams) -> Result<PhaseOutcome> {
    checkpointed_phase_with(&FirstOrderExponential, p)
}

/// Evaluates the phase formula under an arbitrary [`WasteModel`]: the model
/// supplies the optimal period and the expected rework per failure, the
/// regime split and the efficiency factors are the paper's.
///
/// With [`FirstOrderExponential`] the rework is `extent/2` and this is
/// exactly Equations (9)–(11); with
/// [`crate::model::analytic::WeibullCorrected`] the rework carries the
/// incomplete-Gamma conditional-age correction of the shape-`k` clock.
pub fn checkpointed_phase_with<M: WasteModel + ?Sized>(
    model: &M,
    p: &PhaseParams,
) -> Result<PhaseOutcome> {
    if p.work <= 0.0 {
        return Ok(PhaseOutcome {
            final_time: 0.0,
            fault_free_time: 0.0,
            period: None,
        });
    }
    let period = model.optimal_period(p.periodic_checkpoint, p.mtbf, p.downtime, p.recovery)?;
    if p.work < period {
        // Short phase: Equation (9).
        let fault_free = p.work + p.trailing_checkpoint;
        let loss_rate =
            (p.downtime + p.recovery + model.expected_rework(fault_free, p.mtbf)) / p.mtbf;
        if loss_rate >= 1.0 {
            return Err(ModelError::OutsideValidityDomain {
                what: "short-phase final time",
            });
        }
        Ok(PhaseOutcome {
            final_time: fault_free / (1.0 - loss_rate),
            fault_free_time: fault_free,
            period: None,
        })
    } else {
        // Long phase: Equations (10) and (11). Each factor of X must be
        // positive on its own: a negative "time left after checkpointing" and
        // a negative "time left after failures" would otherwise cancel out.
        let f_checkpoint = 1.0 - p.periodic_checkpoint / period;
        let f_failures =
            1.0 - (p.downtime + p.recovery + model.expected_rework(period, p.mtbf)) / p.mtbf;
        if f_checkpoint <= 0.0 || f_failures <= 0.0 {
            return Err(ModelError::OutsideValidityDomain {
                what: "periodic-regime efficiency factor X",
            });
        }
        let x = f_checkpoint * f_failures;
        Ok(PhaseOutcome {
            final_time: p.work / x,
            fault_free_time: p.work / f_checkpoint,
            period: Some(period),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_platform::units::{hours, minutes, weeks};

    fn long_phase() -> PhaseParams {
        PhaseParams {
            work: weeks(1.0),
            periodic_checkpoint: minutes(10.0),
            trailing_checkpoint: minutes(10.0),
            recovery: minutes(10.0),
            downtime: minutes(1.0),
            mtbf: hours(2.0),
        }
    }

    #[test]
    fn zero_work_costs_nothing() {
        let mut p = long_phase();
        p.work = 0.0;
        let out = checkpointed_phase(&p).unwrap();
        assert_eq!(out.final_time, 0.0);
        assert_eq!(out.fault_free_time, 0.0);
    }

    #[test]
    fn long_phase_uses_the_periodic_regime() {
        let out = checkpointed_phase(&long_phase()).unwrap();
        assert!(out.period.is_some());
        assert!(out.final_time > out.fault_free_time);
        assert!(out.fault_free_time > long_phase().work);
        // With a 2-hour MTBF and 10-minute checkpoints the waste is sizeable
        // but the execution certainly completes (X not tiny).
        let waste = 1.0 - long_phase().work / out.final_time;
        assert!(waste > 0.1 && waste < 0.6, "waste = {waste}");
    }

    #[test]
    fn short_phase_takes_a_single_trailing_checkpoint() {
        let mut p = long_phase();
        p.work = minutes(5.0); // far below the ~49-minute optimal period
        p.trailing_checkpoint = minutes(2.0);
        let out = checkpointed_phase(&p).unwrap();
        assert!(out.period.is_none());
        assert!((out.fault_free_time - minutes(7.0)).abs() < 1e-9);
        assert!(out.final_time > out.fault_free_time);
    }

    #[test]
    fn final_time_decreases_with_mtbf() {
        let mut previous = f64::INFINITY;
        for mtbf_hours in [1.0, 2.0, 4.0, 8.0, 16.0] {
            let mut p = long_phase();
            p.mtbf = hours(mtbf_hours);
            let out = checkpointed_phase(&p).unwrap();
            assert!(out.final_time < previous);
            previous = out.final_time;
        }
    }

    #[test]
    fn generic_phase_with_first_order_is_bit_identical() {
        use crate::model::analytic::WeibullCorrected;
        for work in [minutes(5.0), weeks(1.0)] {
            let mut p = long_phase();
            p.work = work;
            let direct = checkpointed_phase(&p).unwrap();
            let generic = checkpointed_phase_with(&FirstOrderExponential, &p).unwrap();
            assert_eq!(direct.final_time.to_bits(), generic.final_time.to_bits());
            assert_eq!(direct.fault_free_time.to_bits(), generic.fault_free_time.to_bits());
            assert_eq!(direct.period, generic.period);
            // And the Weibull model at k = 1 degenerates to the same bits.
            let k1 = checkpointed_phase_with(&WeibullCorrected::new(1.0).unwrap(), &p).unwrap();
            assert_eq!(direct.final_time.to_bits(), k1.final_time.to_bits());
        }
    }

    #[test]
    fn weibull_phase_predicts_less_waste_for_bursty_clocks() {
        use crate::model::analytic::WeibullCorrected;
        let p = long_phase();
        let exponential = checkpointed_phase(&p).unwrap();
        let bursty =
            checkpointed_phase_with(&WeibullCorrected::new(0.7).unwrap(), &p).unwrap();
        // Clustered failures destroy less work per failure: the corrected
        // final time is shorter (the waste smaller).
        assert!(bursty.final_time < exponential.final_time);
        // Wear-out clocks go the other way.
        let wearout =
            checkpointed_phase_with(&WeibullCorrected::new(1.5).unwrap(), &p).unwrap();
        assert!(wearout.final_time > exponential.final_time);
    }

    #[test]
    fn invalid_regimes_error_out() {
        let mut p = long_phase();
        p.mtbf = minutes(10.0); // µ < D + R
        assert!(checkpointed_phase(&p).is_err());
        // µ barely above D + R: the efficiency factor X collapses.
        let mut p = long_phase();
        p.mtbf = minutes(11.5);
        assert!(checkpointed_phase(&p).is_err());
    }
}
