//! PurePeriodicCkpt: the fully conservative baseline (Section IV-C).
//!
//! The protocol is oblivious to phases: the whole epoch is protected by
//! coordinated periodic checkpoints of the full memory footprint, at the
//! optimal period `P_opt = √(2C(µ − D − R))`.

use crate::error::Result;
use crate::model::analytic::{FirstOrderExponential, WasteModel};
use crate::model::phase::{checkpointed_phase_with, PhaseParams};
use crate::model::waste::{Prediction, Waste};
use crate::params::ModelParams;

/// Expected execution time of one epoch under PurePeriodicCkpt, under the
/// paper's exponential first-order model.
pub fn prediction(params: &ModelParams) -> Result<Prediction> {
    prediction_with(&FirstOrderExponential, params)
}

/// [`prediction`] under an arbitrary [`WasteModel`] (e.g. the
/// Weibull-corrected formulas of a `--failure-model weibull` sweep).
pub fn prediction_with<M: WasteModel + ?Sized>(
    model: &M,
    params: &ModelParams,
) -> Result<Prediction> {
    let outcome = checkpointed_phase_with(model, &PhaseParams {
        work: params.epoch_duration,
        periodic_checkpoint: params.checkpoint_cost,
        trailing_checkpoint: params.checkpoint_cost,
        recovery: params.recovery_cost,
        downtime: params.downtime,
        mtbf: params.platform_mtbf,
    })?;
    Ok(Prediction {
        general_final_time: outcome.final_time,
        library_final_time: 0.0,
        waste: Waste::from_times(params.epoch_duration, outcome.final_time),
        general_period: outcome.period,
        library_period: None,
        expected_failures: outcome.final_time / params.platform_mtbf,
    })
}

/// Expected execution time of one epoch under PurePeriodicCkpt.
pub fn final_time(params: &ModelParams) -> Result<f64> {
    Ok(prediction(params)?.final_time())
}

/// Waste of PurePeriodicCkpt on one epoch.
pub fn waste(params: &ModelParams) -> Result<Waste> {
    Ok(prediction(params)?.waste)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_platform::units::minutes;

    #[test]
    fn waste_is_independent_of_alpha() {
        // Figure 7a: the PurePeriodicCkpt waste only depends on the MTBF.
        let w_low = waste(&ModelParams::paper_figure7(0.1, minutes(120.0)).unwrap()).unwrap();
        let w_high = waste(&ModelParams::paper_figure7(0.9, minutes(120.0)).unwrap()).unwrap();
        assert!((w_low.value() - w_high.value()).abs() < 1e-12);
    }

    #[test]
    fn waste_decreases_with_mtbf() {
        let mut previous = 1.0;
        for mtbf in [60.0, 90.0, 120.0, 180.0, 240.0] {
            let w = waste(&ModelParams::paper_figure7(0.5, minutes(mtbf)).unwrap())
                .unwrap()
                .value();
            assert!(w < previous, "waste {w} at MTBF {mtbf} min");
            assert!(w > 0.0 && w < 1.0);
            previous = w;
        }
    }

    #[test]
    fn paper_magnitudes_are_reproduced() {
        // With C = R = 10 min, D = 1 min: at a 1-hour MTBF the periodic
        // checkpointing waste is severe (> 45%), at 4 hours it drops well
        // below 40% (Figure 7a's colour gradient).
        let severe = waste(&ModelParams::paper_figure7(0.5, minutes(60.0)).unwrap())
            .unwrap()
            .value();
        let mild = waste(&ModelParams::paper_figure7(0.5, minutes(240.0)).unwrap())
            .unwrap()
            .value();
        assert!(severe > 0.45, "severe = {severe}");
        assert!(mild < 0.40, "mild = {mild}");
        assert!(severe > mild);
    }

    #[test]
    fn expected_failures_match_final_time() {
        let params = ModelParams::paper_figure7(0.5, minutes(120.0)).unwrap();
        let p = prediction(&params).unwrap();
        assert!((p.expected_failures - p.final_time() / params.platform_mtbf).abs() < 1e-9);
        assert!(p.expected_failures > 1.0);
    }
}
