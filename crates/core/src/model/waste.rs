//! The waste metric and per-protocol predictions.

use serde::{Deserialize, Serialize};

/// The waste of a protocol: the fraction of platform time that does not
/// progress the application (Equation 12: `WASTE = 1 − T_0 / T_final`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waste {
    base_time: f64,
    final_time: f64,
}

impl Waste {
    /// Builds a waste value from the failure-free application time `T_0` and
    /// the expected final time `T_final`.
    pub fn from_times(base_time: f64, final_time: f64) -> Self {
        Self {
            base_time,
            final_time,
        }
    }

    /// The waste value in `[0, 1)`.
    #[inline]
    pub fn value(&self) -> f64 {
        (1.0 - self.base_time / self.final_time).max(0.0)
    }

    /// The waste as a percentage.
    #[inline]
    pub fn percent(&self) -> f64 {
        self.value() * 100.0
    }

    /// The failure-free application time `T_0`.
    #[inline]
    pub fn base_time(&self) -> f64 {
        self.base_time
    }

    /// The expected final execution time `T_final`.
    #[inline]
    pub fn final_time(&self) -> f64 {
        self.final_time
    }
}

/// A full prediction for one protocol on one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Expected execution time of the GENERAL phase (including overheads).
    pub general_final_time: f64,
    /// Expected execution time of the LIBRARY phase (including overheads).
    pub library_final_time: f64,
    /// The waste of the whole epoch.
    pub waste: Waste,
    /// Optimal checkpoint period used during the GENERAL phase, when the
    /// periodic regime applies.
    pub general_period: Option<f64>,
    /// Optimal checkpoint period used during the LIBRARY phase
    /// (BiPeriodicCkpt only).
    pub library_period: Option<f64>,
    /// Expected number of failures over the epoch (`T_final / µ`).
    pub expected_failures: f64,
}

impl Prediction {
    /// Total expected execution time.
    #[inline]
    pub fn final_time(&self) -> f64 {
        self.general_final_time + self.library_final_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waste_basic_arithmetic() {
        let w = Waste::from_times(100.0, 125.0);
        assert!((w.value() - 0.2).abs() < 1e-12);
        assert!((w.percent() - 20.0).abs() < 1e-9);
        assert_eq!(w.base_time(), 100.0);
        assert_eq!(w.final_time(), 125.0);
    }

    #[test]
    fn waste_clamps_at_zero() {
        // A final time below the base time (impossible in the model, possible
        // from noisy simulation averages) must not produce a negative waste.
        let w = Waste::from_times(100.0, 99.9);
        assert_eq!(w.value(), 0.0);
    }

    #[test]
    fn prediction_total_time() {
        let p = Prediction {
            general_final_time: 40.0,
            library_final_time: 80.0,
            waste: Waste::from_times(100.0, 120.0),
            general_period: Some(10.0),
            library_period: None,
            expected_failures: 1.5,
        };
        assert_eq!(p.final_time(), 120.0);
    }
}
