//! Model parameters (Section IV-A of the paper).
//!
//! One [`ModelParams`] value describes a single *epoch*: a GENERAL phase of
//! duration `T_G = (1 − α) T_0` followed by a LIBRARY phase of duration
//! `T_L = α T_0`, executed on a platform of MTBF `µ`, protected by
//! checkpoints of cost `C` (split into `C_L = ρC` and `C_L̄ = (1 − ρ)C`),
//! recovery cost `R`, downtime `D`, with ABFT overhead `φ` and ABFT
//! reconstruction time `Recons_ABFT`.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_fraction, ensure_non_negative, ensure_positive, ModelError, Result};

/// All parameters of the analytical model, for one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Failure-free epoch duration `T_0 = T_G + T_L` (seconds).
    pub epoch_duration: f64,
    /// Fraction `α` of the epoch spent in the LIBRARY phase.
    pub alpha: f64,
    /// Full-footprint checkpoint cost `C` (seconds).
    pub checkpoint_cost: f64,
    /// Rollback/reload cost `R` for the full footprint (seconds).
    pub recovery_cost: f64,
    /// Downtime `D`: time to reboot or swap in a spare (seconds).
    pub downtime: f64,
    /// Fraction `ρ` of the memory footprint touched by the LIBRARY phase.
    pub rho: f64,
    /// ABFT slowdown factor `φ ≥ 1`.
    pub phi: f64,
    /// ABFT reconstruction time `Recons_ABFT` (seconds).
    pub abft_reconstruction: f64,
    /// Platform MTBF `µ` (seconds).
    pub platform_mtbf: f64,
}

impl ModelParams {
    /// Starts building a parameter set.
    pub fn builder() -> ModelParamsBuilder {
        ModelParamsBuilder::default()
    }

    /// The parameters of the paper's headline scenario (Section V-A,
    /// Figure 7): one-week epoch, `C = R = 10` min, `D = 1` min, `ρ = 0.8`,
    /// `φ = 1.03`, `Recons_ABFT = 2` s.  `alpha` and the MTBF are the two
    /// swept quantities, so they are taken as arguments.
    pub fn paper_figure7(alpha: f64, mtbf: f64) -> Result<Self> {
        Self::builder()
            .epoch_duration(ft_platform::units::weeks(1.0))
            .alpha(alpha)
            .checkpoint_cost(ft_platform::units::minutes(10.0))
            .recovery_cost(ft_platform::units::minutes(10.0))
            .downtime(ft_platform::units::minutes(1.0))
            .rho(0.8)
            .phi(1.03)
            .abft_reconstruction(2.0)
            .platform_mtbf(mtbf)
            .build()
    }

    /// GENERAL-phase duration `T_G = (1 − α) T_0`.
    #[inline]
    pub fn general_duration(&self) -> f64 {
        (1.0 - self.alpha) * self.epoch_duration
    }

    /// LIBRARY-phase duration `T_L = α T_0`.
    #[inline]
    pub fn library_duration(&self) -> f64 {
        self.alpha * self.epoch_duration
    }

    /// LIBRARY-dataset checkpoint cost `C_L = ρ C`.
    #[inline]
    pub fn checkpoint_cost_library(&self) -> f64 {
        self.rho * self.checkpoint_cost
    }

    /// REMAINDER-dataset checkpoint cost `C_L̄ = (1 − ρ) C`.
    #[inline]
    pub fn checkpoint_cost_remainder(&self) -> f64 {
        (1.0 - self.rho) * self.checkpoint_cost
    }

    /// REMAINDER-dataset reload cost `R_L̄`; the paper takes it proportional
    /// to the data reloaded, i.e. `(1 − ρ) R`.
    #[inline]
    pub fn recovery_cost_remainder(&self) -> f64 {
        (1.0 - self.rho) * self.recovery_cost
    }

    /// Returns a copy with a different `alpha`.
    pub fn with_alpha(mut self, alpha: f64) -> Result<Self> {
        ensure_fraction("alpha", alpha)?;
        self.alpha = alpha;
        Ok(self)
    }

    /// Returns a copy with a different platform MTBF.
    pub fn with_mtbf(mut self, mtbf: f64) -> Result<Self> {
        ensure_positive("platform_mtbf", mtbf)?;
        self.validate_mtbf(mtbf)?;
        self.platform_mtbf = mtbf;
        Ok(self)
    }

    /// Returns a copy with a different LIBRARY-dataset fraction `ρ`.
    pub fn with_rho(mut self, rho: f64) -> Result<Self> {
        ensure_fraction("rho", rho)?;
        self.rho = rho;
        Ok(self)
    }

    /// Returns a copy with a different ABFT overhead factor `φ` (must be
    /// at least 1).
    pub fn with_phi(mut self, phi: f64) -> Result<Self> {
        if phi < 1.0 {
            return Err(ModelError::PhiBelowOne { value: phi });
        }
        self.phi = phi;
        Ok(self)
    }

    /// Returns a copy with different checkpoint *and* recovery costs
    /// (`C = R`, the paper's setting for every sweep of `C`).
    pub fn with_checkpoint_cost(mut self, cost: f64) -> Result<Self> {
        ensure_positive("checkpoint_cost", cost)?;
        self.checkpoint_cost = cost;
        self.recovery_cost = cost;
        self.validate_mtbf(self.platform_mtbf)?;
        Ok(self)
    }

    /// Returns a copy with a different downtime `D`.
    pub fn with_downtime(mut self, downtime: f64) -> Result<Self> {
        ensure_non_negative("downtime", downtime)?;
        self.downtime = downtime;
        self.validate_mtbf(self.platform_mtbf)?;
        Ok(self)
    }

    /// Returns a copy with a different ABFT reconstruction time.
    pub fn with_abft_reconstruction(mut self, recons: f64) -> Result<Self> {
        ensure_non_negative("abft_reconstruction", recons)?;
        self.abft_reconstruction = recons;
        Ok(self)
    }

    /// Returns a copy with a different epoch duration `T_0`.
    pub fn with_epoch_duration(mut self, duration: f64) -> Result<Self> {
        ensure_positive("epoch_duration", duration)?;
        self.epoch_duration = duration;
        Ok(self)
    }

    fn validate_mtbf(&self, mtbf: f64) -> Result<()> {
        let overheads = self.downtime + self.recovery_cost;
        if mtbf <= overheads {
            return Err(ModelError::MtbfTooSmall { mtbf, overheads });
        }
        Ok(())
    }
}

/// Builder for [`ModelParams`].
#[derive(Debug, Clone, Default)]
pub struct ModelParamsBuilder {
    epoch_duration: Option<f64>,
    alpha: Option<f64>,
    checkpoint_cost: Option<f64>,
    recovery_cost: Option<f64>,
    downtime: Option<f64>,
    rho: Option<f64>,
    phi: Option<f64>,
    abft_reconstruction: Option<f64>,
    platform_mtbf: Option<f64>,
}

impl ModelParamsBuilder {
    /// Sets the failure-free epoch duration `T_0` (seconds).
    pub fn epoch_duration(mut self, v: f64) -> Self {
        self.epoch_duration = Some(v);
        self
    }

    /// Sets the LIBRARY-phase fraction `α`.
    pub fn alpha(mut self, v: f64) -> Self {
        self.alpha = Some(v);
        self
    }

    /// Sets the full checkpoint cost `C` (seconds).
    pub fn checkpoint_cost(mut self, v: f64) -> Self {
        self.checkpoint_cost = Some(v);
        self
    }

    /// Sets the recovery cost `R` (seconds).
    pub fn recovery_cost(mut self, v: f64) -> Self {
        self.recovery_cost = Some(v);
        self
    }

    /// Sets the downtime `D` (seconds).
    pub fn downtime(mut self, v: f64) -> Self {
        self.downtime = Some(v);
        self
    }

    /// Sets the LIBRARY-dataset memory fraction `ρ`.
    pub fn rho(mut self, v: f64) -> Self {
        self.rho = Some(v);
        self
    }

    /// Sets the ABFT overhead factor `φ`.
    pub fn phi(mut self, v: f64) -> Self {
        self.phi = Some(v);
        self
    }

    /// Sets the ABFT reconstruction time `Recons_ABFT` (seconds).
    pub fn abft_reconstruction(mut self, v: f64) -> Self {
        self.abft_reconstruction = Some(v);
        self
    }

    /// Sets the platform MTBF `µ` (seconds).
    pub fn platform_mtbf(mut self, v: f64) -> Self {
        self.platform_mtbf = Some(v);
        self
    }

    /// Validates and builds the parameter set.
    pub fn build(self) -> Result<ModelParams> {
        fn req(name: &'static str, v: Option<f64>) -> Result<f64> {
            v.ok_or(ModelError::MissingParameter { name })
        }
        let params = ModelParams {
            epoch_duration: ensure_positive("epoch_duration", req("epoch_duration", self.epoch_duration)?)?,
            alpha: ensure_fraction("alpha", req("alpha", self.alpha)?)?,
            checkpoint_cost: ensure_positive("checkpoint_cost", req("checkpoint_cost", self.checkpoint_cost)?)?,
            recovery_cost: ensure_positive("recovery_cost", req("recovery_cost", self.recovery_cost)?)?,
            downtime: ensure_non_negative("downtime", req("downtime", self.downtime)?)?,
            rho: ensure_fraction("rho", req("rho", self.rho)?)?,
            phi: {
                let phi = req("phi", self.phi)?;
                if phi < 1.0 {
                    return Err(ModelError::PhiBelowOne { value: phi });
                }
                phi
            },
            abft_reconstruction: ensure_non_negative(
                "abft_reconstruction",
                req("abft_reconstruction", self.abft_reconstruction)?,
            )?,
            platform_mtbf: ensure_positive("platform_mtbf", req("platform_mtbf", self.platform_mtbf)?)?,
        };
        params.validate_mtbf(params.platform_mtbf)?;
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_platform::units::{minutes, weeks};

    #[test]
    fn paper_scenario_builds_and_derives() {
        let p = ModelParams::paper_figure7(0.8, minutes(120.0)).unwrap();
        assert_eq!(p.epoch_duration, weeks(1.0));
        assert!((p.library_duration() - 0.8 * weeks(1.0)).abs() < 1e-6);
        assert!((p.general_duration() - 0.2 * weeks(1.0)).abs() < 1e-6);
        assert!((p.checkpoint_cost_library() - minutes(8.0)).abs() < 1e-9);
        assert!((p.checkpoint_cost_remainder() - minutes(2.0)).abs() < 1e-9);
        assert!((p.recovery_cost_remainder() - minutes(2.0)).abs() < 1e-9);
    }

    #[test]
    fn builder_rejects_missing_and_invalid() {
        assert!(matches!(
            ModelParams::builder().build(),
            Err(ModelError::MissingParameter { name: "epoch_duration" })
        ));
        let base = || {
            ModelParams::builder()
                .epoch_duration(1000.0)
                .alpha(0.5)
                .checkpoint_cost(10.0)
                .recovery_cost(10.0)
                .downtime(1.0)
                .rho(0.8)
                .phi(1.03)
                .abft_reconstruction(2.0)
                .platform_mtbf(500.0)
        };
        assert!(base().build().is_ok());
        assert!(base().alpha(1.5).build().is_err());
        assert!(base().phi(0.9).build().is_err());
        assert!(base().rho(-0.1).build().is_err());
        assert!(base().checkpoint_cost(0.0).build().is_err());
        assert!(base().downtime(-1.0).build().is_err());
        // MTBF must dominate D + R.
        assert!(matches!(
            base().platform_mtbf(10.0).build(),
            Err(ModelError::MtbfTooSmall { .. })
        ));
    }

    #[test]
    fn with_alpha_and_with_mtbf_validate() {
        let p = ModelParams::paper_figure7(0.5, minutes(120.0)).unwrap();
        assert!(p.with_alpha(0.9).is_ok());
        assert!(p.with_alpha(1.2).is_err());
        assert!(p.with_mtbf(minutes(60.0)).is_ok());
        assert!(p.with_mtbf(minutes(5.0)).is_err());
    }

    #[test]
    fn the_remaining_with_helpers_validate_their_domains() {
        let p = ModelParams::paper_figure7(0.5, minutes(120.0)).unwrap();
        assert_eq!(p.with_rho(0.3).unwrap().rho, 0.3);
        assert!(p.with_rho(1.5).is_err());
        assert_eq!(p.with_phi(1.2).unwrap().phi, 1.2);
        assert!(p.with_phi(0.99).is_err());
        // C = R is set together, like every sweep of C in the paper.
        let cheap = p.with_checkpoint_cost(30.0).unwrap();
        assert_eq!(cheap.checkpoint_cost, 30.0);
        assert_eq!(cheap.recovery_cost, 30.0);
        assert!(p.with_checkpoint_cost(0.0).is_err());
        // A checkpoint cost that pushes D + R past the MTBF is rejected.
        assert!(p.with_checkpoint_cost(minutes(121.0)).is_err());
        assert_eq!(p.with_downtime(0.0).unwrap().downtime, 0.0);
        assert!(p.with_downtime(-1.0).is_err());
        assert_eq!(p.with_abft_reconstruction(9.0).unwrap().abft_reconstruction, 9.0);
        assert!(p.with_abft_reconstruction(-1.0).is_err());
        assert_eq!(p.with_epoch_duration(100.0).unwrap().epoch_duration, 100.0);
        assert!(p.with_epoch_duration(0.0).is_err());
    }

    #[test]
    fn degenerate_alpha_values_are_allowed() {
        let p0 = ModelParams::paper_figure7(0.0, minutes(100.0)).unwrap();
        assert_eq!(p0.library_duration(), 0.0);
        let p1 = ModelParams::paper_figure7(1.0, minutes(100.0)).unwrap();
        assert_eq!(p1.general_duration(), 0.0);
    }
}
