//! The ABFT-activation safeguard (Section III-B).
//!
//! Forcing partial checkpoints at library entry and exit only pays off when
//! the library call is long enough; for a very short call the composite
//! protocol would introduce *more* checkpoints than plain periodic
//! checkpointing.  The paper's safeguard computes the projected duration of
//! the ABFT-protected call from the call parameters (problem size, resource
//! count, algorithm complexity) and keeps ABFT off when that projection is
//! below the optimal checkpoint period.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_non_negative, ensure_positive, Result};
use crate::params::ModelParams;
use crate::young_daly::paper_optimal_period;

/// Projection of a library call's duration from its algorithmic complexity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProjectedCall {
    /// Number of floating-point operations of the call (e.g. `2n³/3` for LU).
    pub flops: f64,
    /// Aggregate sustained flop rate of the platform (flop/s).
    pub flop_rate: f64,
    /// ABFT overhead factor `φ`.
    pub phi: f64,
    /// Cost of the forced exit checkpoint (`C_L`), in seconds.
    pub exit_checkpoint: f64,
}

impl ProjectedCall {
    /// Creates a projection, validating the inputs.
    pub fn new(flops: f64, flop_rate: f64, phi: f64, exit_checkpoint: f64) -> Result<Self> {
        ensure_positive("flops", flops)?;
        ensure_positive("flop_rate", flop_rate)?;
        ensure_positive("phi", phi)?;
        ensure_non_negative("exit_checkpoint", exit_checkpoint)?;
        Ok(Self {
            flops,
            flop_rate,
            phi,
            exit_checkpoint,
        })
    }

    /// Projection for a dense LU factorization of order `n` (`2n³/3` flops).
    pub fn lu(n: f64, flop_rate: f64, phi: f64, exit_checkpoint: f64) -> Result<Self> {
        Self::new(2.0 * n * n * n / 3.0, flop_rate, phi, exit_checkpoint)
    }

    /// Projected wall-clock duration of the ABFT-protected call, including
    /// the forced exit checkpoint.
    pub fn duration(&self) -> f64 {
        self.phi * self.flops / self.flop_rate + self.exit_checkpoint
    }
}

/// The safeguard rule itself: activate ABFT only when the projected
/// ABFT-protected duration is at least the optimal checkpoint period.
pub fn should_activate_abft(projected_duration: f64, optimal_period: f64) -> bool {
    projected_duration >= optimal_period
}

/// Applies the safeguard using a full parameter set: projects the LIBRARY
/// phase of `params` and compares it with the optimal checkpoint period.
pub fn activate_for_params(params: &ModelParams) -> Result<bool> {
    let period = paper_optimal_period(
        params.checkpoint_cost,
        params.platform_mtbf,
        params.downtime,
        params.recovery_cost,
    )?;
    let projected = params.phi * params.library_duration() + params.checkpoint_cost_library();
    Ok(should_activate_abft(projected, period))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_platform::units::{hours, minutes, weeks};

    #[test]
    fn projection_from_complexity() {
        // 10^4-order LU at 1 Tflop/s: 2/3 × 10^12 flops ≈ 0.67 s of work.
        let call = ProjectedCall::lu(1.0e4, 1.0e12, 1.03, 5.0).unwrap();
        let expected = 1.03 * (2.0 / 3.0 * 1.0e12) / 1.0e12 + 5.0;
        assert!((call.duration() - expected).abs() < 1e-9);
        assert!(ProjectedCall::new(0.0, 1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn rule_compares_against_period() {
        assert!(should_activate_abft(100.0, 50.0));
        assert!(!should_activate_abft(10.0, 50.0));
        assert!(should_activate_abft(50.0, 50.0));
    }

    #[test]
    fn paper_scenario_activates_abft() {
        // A multi-day library phase dwarfs the ~49-minute optimal period.
        let params = ModelParams::paper_figure7(0.8, minutes(120.0)).unwrap();
        assert!(activate_for_params(&params).unwrap());
    }

    #[test]
    fn short_library_call_keeps_abft_off() {
        let params = ModelParams::builder()
            .epoch_duration(minutes(30.0))
            .alpha(0.3)
            .checkpoint_cost(minutes(10.0))
            .recovery_cost(minutes(10.0))
            .downtime(minutes(1.0))
            .rho(0.8)
            .phi(1.03)
            .abft_reconstruction(2.0)
            .platform_mtbf(hours(4.0))
            .build()
            .unwrap();
        assert!(!activate_for_params(&params).unwrap());
    }

    #[test]
    fn rarer_failures_raise_the_bar() {
        // Larger MTBF → longer optimal period → ABFT needs a longer call to
        // be worth it. Construct a call right at the boundary for a 2-hour
        // MTBF and check it is rejected at a 50-week MTBF.
        let at_2h = ModelParams::builder()
            .epoch_duration(hours(2.0))
            .alpha(0.5)
            .checkpoint_cost(minutes(10.0))
            .recovery_cost(minutes(10.0))
            .downtime(minutes(1.0))
            .rho(0.8)
            .phi(1.03)
            .abft_reconstruction(2.0)
            .platform_mtbf(hours(2.0))
            .build()
            .unwrap();
        assert!(activate_for_params(&at_2h).unwrap());
        let at_50w = at_2h.with_mtbf(weeks(50.0)).unwrap();
        assert!(!activate_for_params(&at_50w).unwrap());
    }
}
