//! The ABFT-activation safeguard (Section III-B).
//!
//! Forcing partial checkpoints at library entry and exit only pays off when
//! the library call is long enough; for a very short call the composite
//! protocol would introduce *more* checkpoints than plain periodic
//! checkpointing.  The paper's safeguard computes the projected duration of
//! the ABFT-protected call from the call parameters (problem size, resource
//! count, algorithm complexity) and keeps ABFT off when that projection is
//! below the optimal checkpoint period.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_non_negative, ensure_positive, Result};
use crate::model;
use crate::model::waste::Waste;
use crate::params::ModelParams;
use crate::young_daly::paper_optimal_period;

/// Projection of a library call's duration from its algorithmic complexity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProjectedCall {
    /// Number of floating-point operations of the call (e.g. `2n³/3` for LU).
    pub flops: f64,
    /// Aggregate sustained flop rate of the platform (flop/s).
    pub flop_rate: f64,
    /// ABFT overhead factor `φ`.
    pub phi: f64,
    /// Cost of the forced exit checkpoint (`C_L`), in seconds.
    pub exit_checkpoint: f64,
}

impl ProjectedCall {
    /// Creates a projection, validating the inputs.
    pub fn new(flops: f64, flop_rate: f64, phi: f64, exit_checkpoint: f64) -> Result<Self> {
        ensure_positive("flops", flops)?;
        ensure_positive("flop_rate", flop_rate)?;
        ensure_positive("phi", phi)?;
        ensure_non_negative("exit_checkpoint", exit_checkpoint)?;
        Ok(Self {
            flops,
            flop_rate,
            phi,
            exit_checkpoint,
        })
    }

    /// Projection for a dense LU factorization of order `n` (`2n³/3` flops).
    pub fn lu(n: f64, flop_rate: f64, phi: f64, exit_checkpoint: f64) -> Result<Self> {
        Self::new(2.0 * n * n * n / 3.0, flop_rate, phi, exit_checkpoint)
    }

    /// Projected wall-clock duration of the ABFT-protected call, including
    /// the forced exit checkpoint.
    pub fn duration(&self) -> f64 {
        self.phi * self.flops / self.flop_rate + self.exit_checkpoint
    }
}

/// The safeguard rule itself: activate ABFT only when the projected
/// ABFT-protected duration is at least the optimal checkpoint period.
pub fn should_activate_abft(projected_duration: f64, optimal_period: f64) -> bool {
    projected_duration >= optimal_period
}

/// Applies the safeguard using a full parameter set: projects the LIBRARY
/// phase of `params` and compares it with the optimal checkpoint period.
pub fn activate_for_params(params: &ModelParams) -> Result<bool> {
    let period = paper_optimal_period(
        params.checkpoint_cost,
        params.platform_mtbf,
        params.downtime,
        params.recovery_cost,
    )?;
    let projected = params.phi * params.library_duration() + params.checkpoint_cost_library();
    Ok(should_activate_abft(projected, period))
}

/// The model-level safeguard: whether activating ABFT is projected to pay
/// off at all.
///
/// Two hazards can make the composite protocol lose to plain periodic
/// checkpointing, and the safeguard must catch both:
///
/// 1. **short calls** (the paper's §III-B rule): the forced entry/exit
///    checkpoints dominate when the projected ABFT-protected duration is
///    below the optimal checkpoint period — [`activate_for_params`];
/// 2. **reliable platforms**: ABFT pays its flat `φ − 1` slowdown on every
///    LIBRARY second, while checkpointing waste vanishes as `√(C/µ)`; on a
///    sufficiently reliable platform (or with sufficiently cheap
///    checkpoints) the flat overhead loses.  The closed-form model makes
///    this projection free, so the safeguard simply compares the two
///    predicted wastes.
pub fn activate_with_model(params: &ModelParams) -> Result<bool> {
    if !activate_for_params(params)? {
        return Ok(false);
    }
    let composite = model::composite::waste(params)?;
    let pure = model::pure::waste(params)?;
    Ok(composite.value() <= pure.value())
}

/// Model-level waste of the composite protocol *with the safeguard applied*:
/// when [`activate_with_model`] rejects ABFT the protocol keeps it off and
/// degenerates to plain periodic checkpointing.
///
/// This is the quantity behind the paper's §III-B "never worse" claim — the
/// safeguarded composite protocol's waste never exceeds PurePeriodicCkpt's
/// (up to float roundoff); the property test in `tests/properties.rs`
/// checks it across the whole parameter domain.
pub fn safeguarded_composite_waste(params: &ModelParams) -> Result<Waste> {
    if activate_with_model(params)? {
        model::composite::waste(params)
    } else {
        model::pure::waste(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_platform::units::{hours, minutes, weeks};

    #[test]
    fn projection_from_complexity() {
        // 10^4-order LU at 1 Tflop/s: 2/3 × 10^12 flops ≈ 0.67 s of work.
        let call = ProjectedCall::lu(1.0e4, 1.0e12, 1.03, 5.0).unwrap();
        let expected = 1.03 * (2.0 / 3.0 * 1.0e12) / 1.0e12 + 5.0;
        assert!((call.duration() - expected).abs() < 1e-9);
        assert!(ProjectedCall::new(0.0, 1.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn rule_compares_against_period() {
        assert!(should_activate_abft(100.0, 50.0));
        assert!(!should_activate_abft(10.0, 50.0));
        assert!(should_activate_abft(50.0, 50.0));
    }

    #[test]
    fn paper_scenario_activates_abft() {
        // A multi-day library phase dwarfs the ~49-minute optimal period.
        let params = ModelParams::paper_figure7(0.8, minutes(120.0)).unwrap();
        assert!(activate_for_params(&params).unwrap());
    }

    #[test]
    fn short_library_call_keeps_abft_off() {
        let params = ModelParams::builder()
            .epoch_duration(minutes(30.0))
            .alpha(0.3)
            .checkpoint_cost(minutes(10.0))
            .recovery_cost(minutes(10.0))
            .downtime(minutes(1.0))
            .rho(0.8)
            .phi(1.03)
            .abft_reconstruction(2.0)
            .platform_mtbf(hours(4.0))
            .build()
            .unwrap();
        assert!(!activate_for_params(&params).unwrap());
    }

    #[test]
    fn model_safeguard_keeps_abft_on_in_the_paper_scenario_and_never_hurts() {
        let params = ModelParams::paper_figure7(0.8, minutes(120.0)).unwrap();
        assert!(activate_with_model(&params).unwrap());
        let effective = safeguarded_composite_waste(&params).unwrap();
        let composite = crate::model::composite::waste(&params).unwrap();
        assert_eq!(effective.value(), composite.value());

        // A very reliable platform with cheap checkpoints: the flat ABFT
        // overhead loses, the model-level safeguard turns ABFT off and the
        // effective waste falls back to the pure protocol's.
        let reliable = ModelParams::builder()
            .epoch_duration(weeks(1.0))
            .alpha(1.0)
            .checkpoint_cost(30.0)
            .recovery_cost(30.0)
            .downtime(1.0)
            .rho(0.8)
            .phi(1.10)
            .abft_reconstruction(2.0)
            .platform_mtbf(weeks(2.0))
            .build()
            .unwrap();
        assert!(activate_for_params(&reliable).unwrap(), "duration rule alone passes");
        assert!(!activate_with_model(&reliable).unwrap(), "model comparison rejects");
        let effective = safeguarded_composite_waste(&reliable).unwrap();
        let pure = crate::model::pure::waste(&reliable).unwrap();
        assert_eq!(effective.value(), pure.value());
    }

    #[test]
    fn rarer_failures_raise_the_bar() {
        // Larger MTBF → longer optimal period → ABFT needs a longer call to
        // be worth it. Construct a call right at the boundary for a 2-hour
        // MTBF and check it is rejected at a 50-week MTBF.
        let at_2h = ModelParams::builder()
            .epoch_duration(hours(2.0))
            .alpha(0.5)
            .checkpoint_cost(minutes(10.0))
            .recovery_cost(minutes(10.0))
            .downtime(minutes(1.0))
            .rho(0.8)
            .phi(1.03)
            .abft_reconstruction(2.0)
            .platform_mtbf(hours(2.0))
            .build()
            .unwrap();
        assert!(activate_for_params(&at_2h).unwrap());
        let at_50w = at_2h.with_mtbf(weeks(50.0)).unwrap();
        assert!(!activate_for_params(&at_50w).unwrap());
    }
}
