//! Weak-scaling scenarios (Section V-C, Figures 8–10).
//!
//! The paper's scalability study considers an application of 1000 epochs on a
//! growing machine, following Gustafson's law:
//!
//! * memory per node is fixed, so the total problem size grows linearly with
//!   the node count `x`; for an `O(n³)` kernel on an `O(n²) = O(x)` dataset
//!   the parallel time grows as `√x`;
//! * the platform MTBF shrinks as `1/x`;
//! * the checkpoint cost either grows linearly with the checkpointed volume
//!   (bandwidth-bound storage — Figures 8 and 9) or stays constant
//!   (buddy/NVRAM storage — Figure 10).
//!
//! [`WeakScalingScenario`] captures those rules; [`ScalingPoint`] is the
//! model's answer for one node count (the waste and the expected failure
//! count of each of the three protocols), i.e. one x-position of the figures.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_positive, Result};
use crate::model::analytic::{FirstOrderExponential, WasteModel};
use crate::model::composite;
use crate::model::phase::{checkpointed_phase_with, PhaseOutcome, PhaseParams};
use crate::model::waste::Waste;
use crate::params::ModelParams;
use ft_platform::units::{days, minutes};

/// How the checkpoint (and recovery) cost scales with the node count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointScaling {
    /// Cost proportional to the checkpointed volume — i.e. to the node count
    /// under weak scaling (shared bandwidth-bound storage).
    LinearInNodes,
    /// Cost independent of the node count (buddy / NVRAM storage).
    Constant,
}

/// How a phase's duration scales with the node count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseScaling {
    /// `O(n³)` kernel under weak scaling: duration grows as `√(x/x_ref)`.
    CubicKernel,
    /// `O(n²)` work under weak scaling: duration stays constant.
    QuadraticKernel,
}

impl PhaseScaling {
    fn factor(&self, nodes: f64, reference: f64) -> f64 {
        match self {
            PhaseScaling::CubicKernel => (nodes / reference).sqrt(),
            PhaseScaling::QuadraticKernel => 1.0,
        }
    }
}

/// A weak-scaling scenario: all reference values plus the scaling rules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeakScalingScenario {
    /// Node count at which the reference values are given.
    pub reference_nodes: f64,
    /// Epoch duration at the reference scale (seconds).
    pub epoch_at_reference: f64,
    /// Fraction of the epoch spent in the LIBRARY phase at the reference
    /// scale.
    pub alpha_at_reference: f64,
    /// Number of epochs the application iterates over.
    pub epochs: usize,
    /// Full checkpoint cost at the reference scale (seconds); `R = C`.
    pub checkpoint_at_reference: f64,
    /// Platform MTBF at the reference scale (seconds).
    pub mtbf_at_reference: f64,
    /// Downtime (seconds), independent of scale.
    pub downtime: f64,
    /// LIBRARY-dataset memory fraction ρ.
    pub rho: f64,
    /// ABFT overhead factor φ.
    pub phi: f64,
    /// ABFT reconstruction time (seconds).
    pub abft_reconstruction: f64,
    /// Scaling law of the GENERAL phase.
    pub general_scaling: PhaseScaling,
    /// Scaling law of the LIBRARY phase.
    pub library_scaling: PhaseScaling,
    /// Scaling law of the checkpoint/recovery cost.
    pub checkpoint_scaling: CheckpointScaling,
}

impl WeakScalingScenario {
    /// The scenario of Figure 8: both phases `O(n³)`, fixed α = 0.8,
    /// bandwidth-bound checkpoints.
    ///
    /// **Calibration note.** The paper's text states a 1-minute epoch, a
    /// 1-minute checkpoint and a 1-day MTBF at the 10,000-node reference.
    /// Taken literally, those values make *every* rollback-based protocol
    /// infeasible at 10⁶ nodes (the checkpoint cost, scaled linearly, exceeds
    /// the platform MTBF), which contradicts the published curves; the
    /// figures were evidently produced with a milder calibration.  This
    /// constructor therefore keeps every *ratio and scaling law* of the paper
    /// (α = 0.8, ρ = 0.8, φ = 1.03, R = C, C ∝ nodes, µ ∝ 1/nodes, epoch ∝
    /// √nodes, 1000 epochs) but sets the reference epoch to 100 minutes and
    /// the reference MTBF to 60 days so that the checkpoint-only protocols
    /// remain evaluable across the whole 10³–10⁶ node range, reproducing the
    /// published *shape* (crossover near 10⁵ nodes, composite dominant at
    /// 10⁶).  See EXPERIMENTS.md for the paper-vs-measured discussion.
    pub fn figure8() -> Self {
        Self {
            reference_nodes: 10_000.0,
            epoch_at_reference: minutes(100.0),
            alpha_at_reference: 0.8,
            epochs: 1_000,
            checkpoint_at_reference: minutes(1.0),
            mtbf_at_reference: days(60.0),
            downtime: minutes(1.0),
            rho: 0.8,
            phi: 1.03,
            abft_reconstruction: 2.0,
            general_scaling: PhaseScaling::CubicKernel,
            library_scaling: PhaseScaling::CubicKernel,
            checkpoint_scaling: CheckpointScaling::LinearInNodes,
        }
    }

    /// The Figure-8 scenario with the *literal* reference values stated in
    /// the paper's text (1-minute epoch, 1-minute checkpoint, 1-day MTBF at
    /// 10,000 nodes).  At 10⁵–10⁶ nodes the checkpoint-only protocols
    /// saturate (waste 1): the checkpoint cost overtakes the MTBF.  Exposed
    /// for the calibration ablation bench.
    pub fn figure8_literal() -> Self {
        Self {
            epoch_at_reference: minutes(1.0),
            mtbf_at_reference: days(1.0),
            ..Self::figure8()
        }
    }

    /// The scenario of Figure 9: LIBRARY `O(n³)`, GENERAL `O(n²)` (so α grows
    /// with the node count), bandwidth-bound checkpoints.
    pub fn figure9() -> Self {
        Self {
            general_scaling: PhaseScaling::QuadraticKernel,
            ..Self::figure8()
        }
    }

    /// The scenario of Figure 10: same as Figure 9 but with constant
    /// checkpoint/recovery cost (60 s at every scale).
    pub fn figure10() -> Self {
        Self {
            checkpoint_scaling: CheckpointScaling::Constant,
            ..Self::figure9()
        }
    }

    /// GENERAL-phase duration of one epoch at `nodes` nodes.
    pub fn general_duration(&self, nodes: f64) -> f64 {
        (1.0 - self.alpha_at_reference)
            * self.epoch_at_reference
            * self.general_scaling.factor(nodes, self.reference_nodes)
    }

    /// LIBRARY-phase duration of one epoch at `nodes` nodes.
    pub fn library_duration(&self, nodes: f64) -> f64 {
        self.alpha_at_reference
            * self.epoch_at_reference
            * self.library_scaling.factor(nodes, self.reference_nodes)
    }

    /// Fraction of time spent in the LIBRARY phase at `nodes` nodes.
    pub fn alpha(&self, nodes: f64) -> f64 {
        let l = self.library_duration(nodes);
        let g = self.general_duration(nodes);
        if l + g == 0.0 {
            0.0
        } else {
            l / (l + g)
        }
    }

    /// Checkpoint (and recovery) cost at `nodes` nodes.
    pub fn checkpoint_cost(&self, nodes: f64) -> f64 {
        match self.checkpoint_scaling {
            CheckpointScaling::LinearInNodes => {
                self.checkpoint_at_reference * nodes / self.reference_nodes
            }
            CheckpointScaling::Constant => self.checkpoint_at_reference,
        }
    }

    /// Platform MTBF at `nodes` nodes.
    pub fn mtbf(&self, nodes: f64) -> f64 {
        self.mtbf_at_reference * self.reference_nodes / nodes
    }

    /// Model parameters for a *single epoch* at `nodes` nodes.
    pub fn params_at(&self, nodes: f64) -> Result<ModelParams> {
        ensure_positive("nodes", nodes)?;
        ModelParams::builder()
            .epoch_duration(self.general_duration(nodes) + self.library_duration(nodes))
            .alpha(self.alpha(nodes))
            .checkpoint_cost(self.checkpoint_cost(nodes))
            .recovery_cost(self.checkpoint_cost(nodes))
            .downtime(self.downtime)
            .rho(self.rho)
            .phi(self.phi)
            .abft_reconstruction(self.abft_reconstruction)
            .platform_mtbf(self.mtbf(nodes))
            .build()
    }

    /// Evaluates the three protocols at `nodes` nodes over the whole
    /// `epochs`-epoch application.
    ///
    /// Periodic checkpointing is not constrained by epoch boundaries, so the
    /// checkpoint-only protocols are evaluated over the *aggregate* phase
    /// durations (1000 epochs of GENERAL time form one long checkpointed
    /// stream, likewise for the LIBRARY time under BiPeriodicCkpt), while the
    /// composite protocol pays its forced entry/exit checkpoints once per
    /// epoch.
    ///
    /// With bandwidth-bound checkpoint storage and the paper's stated
    /// reference values, checkpoint-only protocols become infeasible near
    /// 10⁶ nodes (the checkpoint cost exceeds the MTBF); such points are
    /// reported as *saturated* (waste 1, infinite expected execution) rather
    /// than as an error.
    pub fn point(&self, nodes: f64) -> Result<ScalingPoint> {
        self.point_with(&FirstOrderExponential, nodes)
    }

    /// [`WeakScalingScenario::point`] under an arbitrary
    /// [`WasteModel`] — the entry point of the model arm of a
    /// `--failure-model weibull` scenario sweep, where the analytic
    /// predictions carry the same shape-`k` correction as the simulation
    /// clock.
    pub fn point_with<M: WasteModel + ?Sized>(
        &self,
        model: &M,
        nodes: f64,
    ) -> Result<ScalingPoint> {
        ensure_positive("nodes", nodes)?;
        // Model parameters describing one epoch. When the MTBF falls below
        // D + R even ABFT-protected execution is hopeless; build the raw
        // parameter pieces by hand in that case so the checkpoint-only
        // protocols still report saturation instead of erroring.
        let mtbf = self.mtbf(nodes);
        let ckpt = self.checkpoint_cost(nodes);
        let general = self.general_duration(nodes);
        let library = self.library_duration(nodes);
        let epochs = self.epochs as f64;
        let total_work = epochs * (general + library);

        // A phase evaluation that saturates instead of failing.
        let saturating = |p: PhaseParams| -> f64 {
            match checkpointed_phase_with(model, &p) {
                Ok(PhaseOutcome { final_time, .. }) => final_time,
                Err(_) => f64::INFINITY,
            }
        };

        // PurePeriodicCkpt over the whole application.
        let pure_total = saturating(PhaseParams {
            work: total_work,
            periodic_checkpoint: ckpt,
            trailing_checkpoint: ckpt,
            recovery: ckpt,
            downtime: self.downtime,
            mtbf,
        });

        // BiPeriodicCkpt: aggregate GENERAL stream + aggregate LIBRARY stream.
        let bi_general = saturating(PhaseParams {
            work: epochs * general,
            periodic_checkpoint: ckpt,
            trailing_checkpoint: ckpt,
            recovery: ckpt,
            downtime: self.downtime,
            mtbf,
        });
        let bi_library = saturating(PhaseParams {
            work: epochs * library,
            periodic_checkpoint: self.rho * ckpt,
            trailing_checkpoint: self.rho * ckpt,
            recovery: ckpt,
            downtime: self.downtime,
            mtbf,
        });
        let bi_total = bi_general + bi_library;

        // Composite: per-epoch costs, multiplied by the number of epochs.
        let composite_total = match self.params_at(nodes) {
            Ok(params) => match composite::prediction_with(model, &params) {
                Ok(p) => epochs * p.final_time(),
                Err(_) => f64::INFINITY,
            },
            Err(_) => f64::INFINITY,
        };

        Ok(ScalingPoint {
            nodes,
            alpha: self.alpha(nodes),
            total_work,
            pure: ProtocolPoint::new(total_work, pure_total, mtbf),
            bi: ProtocolPoint::new(total_work, bi_total, mtbf),
            composite: ProtocolPoint::new(total_work, composite_total, mtbf),
        })
    }

    /// Evaluates a whole sweep of node counts.
    pub fn sweep(&self, nodes: &[f64]) -> Result<Vec<ScalingPoint>> {
        nodes.iter().map(|&x| self.point(x)).collect()
    }
}

/// Waste and expected failure count of one protocol at one scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolPoint {
    /// Waste of the protocol.
    pub waste: Waste,
    /// Expected number of failures over the application run.
    pub expected_failures: f64,
}

impl ProtocolPoint {
    fn new(base: f64, final_time: f64, mtbf: f64) -> Self {
        Self {
            waste: Waste::from_times(base, final_time),
            expected_failures: final_time / mtbf,
        }
    }
}

/// One x-position of Figures 8–10: the three protocols evaluated at a given
/// node count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Node count.
    pub nodes: f64,
    /// LIBRARY-phase time fraction at this scale.
    pub alpha: f64,
    /// Total failure-free work of the application at this scale.
    pub total_work: f64,
    /// PurePeriodicCkpt result.
    pub pure: ProtocolPoint,
    /// BiPeriodicCkpt result.
    pub bi: ProtocolPoint,
    /// ABFT&PeriodicCkpt result.
    pub composite: ProtocolPoint,
}

/// The node counts used on the x-axis of Figures 8–10.
pub fn paper_node_counts() -> Vec<f64> {
    vec![1_000.0, 10_000.0, 100_000.0, 1_000_000.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_reference_point_parameters() {
        let s = WeakScalingScenario::figure8();
        let p = s.params_at(10_000.0).unwrap();
        assert!((p.epoch_duration - minutes(100.0)).abs() < 1e-9);
        assert!((p.alpha - 0.8).abs() < 1e-12);
        assert!((p.checkpoint_cost - 60.0).abs() < 1e-9);
        assert!((p.platform_mtbf - days(60.0)).abs() < 1e-6);
        // The literal variant keeps the paper's stated values.
        let lit = WeakScalingScenario::figure8_literal();
        assert!((lit.epoch_at_reference - 60.0).abs() < 1e-9);
        assert!((lit.mtbf_at_reference - days(1.0)).abs() < 1e-6);
    }

    #[test]
    fn figure9_alpha_matches_the_paper_annotations() {
        // The x-axis of Figure 9 is annotated α = 0.55, 0.8, 0.92, 0.975 at
        // 1k, 10k, 100k, 1M nodes.
        let s = WeakScalingScenario::figure9();
        let expected = [(1_000.0, 0.55), (10_000.0, 0.8), (100_000.0, 0.92), (1_000_000.0, 0.975)];
        for (nodes, alpha) in expected {
            assert!(
                (s.alpha(nodes) - alpha).abs() < 0.01,
                "alpha({nodes}) = {} expected ~{alpha}",
                s.alpha(nodes)
            );
        }
    }

    #[test]
    fn figure8_alpha_stays_fixed() {
        let s = WeakScalingScenario::figure8();
        for nodes in paper_node_counts() {
            assert!((s.alpha(nodes) - 0.8).abs() < 1e-12);
        }
    }

    #[test]
    fn mtbf_and_checkpoint_scale_as_specified() {
        let s = WeakScalingScenario::figure8();
        assert!((s.mtbf(1_000_000.0) - days(60.0) / 100.0).abs() < 1e-6);
        assert!((s.checkpoint_cost(1_000_000.0) - 6_000.0).abs() < 1e-6);
        let s10 = WeakScalingScenario::figure10();
        assert!((s10.checkpoint_cost(1_000_000.0) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn literal_calibration_saturates_checkpoint_only_protocols_at_scale() {
        // With the paper's literal reference values the checkpoint cost
        // overtakes the MTBF at 10⁶ nodes: the checkpoint-only protocols
        // saturate while the point is still reported (no error).
        let s = WeakScalingScenario::figure8_literal();
        let p = s.point(1_000_000.0).unwrap();
        assert!(p.pure.waste.value() > 0.99);
        assert!(p.bi.waste.value() > 0.99);
    }

    #[test]
    fn figure8_composite_overtakes_checkpointing_at_scale() {
        // The headline qualitative result: with bandwidth-bound checkpoints
        // the composite protocol loses at small scale (ABFT overhead) but
        // wins at large scale.
        let s = WeakScalingScenario::figure8();
        let small = s.point(1_000.0).unwrap();
        assert!(small.composite.waste.value() >= small.bi.waste.value() - 1e-9);
        let large = s.point(1_000_000.0).unwrap();
        assert!(large.composite.waste.value() < large.pure.waste.value());
        assert!(large.composite.waste.value() < large.bi.waste.value());
        // And the gap at 1M nodes is substantial.
        assert!(large.pure.waste.value() - large.composite.waste.value() > 0.05);
    }

    #[test]
    fn figure8_waste_grows_with_scale_for_checkpoint_only() {
        let s = WeakScalingScenario::figure8();
        let points = s.sweep(&paper_node_counts()).unwrap();
        for w in points.windows(2) {
            assert!(w[1].pure.waste.value() > w[0].pure.waste.value());
            assert!(w[1].bi.waste.value() > w[0].bi.waste.value());
        }
    }

    #[test]
    fn figure10_keeps_checkpoint_waste_low_but_composite_still_wins_at_1m() {
        let s = WeakScalingScenario::figure10();
        let large = s.point(1_000_000.0).unwrap();
        // With constant (scalable) checkpointing the checkpoint-only waste
        // stays moderate…
        assert!(large.pure.waste.value() < 0.25, "pure = {}", large.pure.waste.value());
        // …but the composite protocol is still at least as good at 1M nodes
        // (Section V-C: "PurePeriodicCkpt and BiPeriodicCkpt are less
        // efficient than ABFT&PeriodicCkpt at 1 million nodes, despite the
        // perfectly scalable checkpointing hypothesis").
        assert!(large.composite.waste.value() < large.pure.waste.value());
        assert!(large.composite.waste.value() < large.bi.waste.value());
    }

    #[test]
    fn expected_failures_increase_with_scale() {
        let s = WeakScalingScenario::figure8();
        let points = s.sweep(&paper_node_counts()).unwrap();
        for w in points.windows(2) {
            assert!(w[1].composite.expected_failures > w[0].composite.expected_failures);
        }
        // Fewer failures for the faster protocol at scale.
        let last = points.last().unwrap();
        assert!(last.composite.expected_failures <= last.pure.expected_failures);
    }

    #[test]
    fn figure9_number_of_failures_smaller_than_figure8() {
        // Section V-C: because the GENERAL phase stops growing, the total
        // duration grows more slowly and fewer failures are observed than in
        // the Figure-8 scenario.
        let f8 = WeakScalingScenario::figure8().point(1_000_000.0).unwrap();
        let f9 = WeakScalingScenario::figure9().point(1_000_000.0).unwrap();
        assert!(f9.composite.expected_failures < f8.composite.expected_failures);
    }

    #[test]
    fn invalid_node_count_is_rejected() {
        assert!(WeakScalingScenario::figure8().point(0.0).is_err());
    }
}
