//! Application profiles: sequences of GENERAL / LIBRARY phases.
//!
//! The model reasons about one epoch at a time; the simulator and the
//! composite runtime unfold a whole [`ApplicationProfile`] — a sequence of
//! [`Epoch`]s, each made of a GENERAL phase followed by a LIBRARY phase
//! (either of which may be empty).

use serde::{Deserialize, Serialize};

use crate::error::{ensure_non_negative, Result};
use crate::params::ModelParams;

/// Which kind of phase a work segment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// ABFT-unaware application code.
    General,
    /// ABFT-capable library call.
    Library,
}

/// One epoch: a GENERAL phase followed by a LIBRARY phase (durations are
/// failure-free work, in seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Epoch {
    /// Failure-free duration of the GENERAL phase.
    pub general: f64,
    /// Failure-free duration of the LIBRARY phase.
    pub library: f64,
}

impl Epoch {
    /// Creates an epoch, validating that both durations are non-negative.
    pub fn new(general: f64, library: f64) -> Result<Self> {
        ensure_non_negative("general", general)?;
        ensure_non_negative("library", library)?;
        Ok(Self { general, library })
    }

    /// Total failure-free duration of the epoch.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.general + self.library
    }

    /// Fraction of the epoch spent in the LIBRARY phase.
    pub fn alpha(&self) -> f64 {
        if self.duration() == 0.0 {
            0.0
        } else {
            self.library / self.duration()
        }
    }
}

/// A work segment produced by unfolding a profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Index of the epoch the segment belongs to.
    pub epoch: usize,
    /// Kind of phase.
    pub kind: PhaseKind,
    /// Failure-free duration of the segment.
    pub duration: f64,
}

/// A full application: a sequence of epochs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationProfile {
    epochs: Vec<Epoch>,
}

impl ApplicationProfile {
    /// Builds a profile from explicit epochs.
    pub fn new(epochs: Vec<Epoch>) -> Self {
        Self { epochs }
    }

    /// Builds a profile of `count` identical epochs.
    pub fn uniform(count: usize, general: f64, library: f64) -> Result<Self> {
        let epoch = Epoch::new(general, library)?;
        Ok(Self {
            epochs: vec![epoch; count],
        })
    }

    /// Builds a single-epoch profile matching a set of model parameters.
    pub fn from_params(params: &ModelParams) -> Self {
        Self {
            epochs: vec![Epoch {
                general: params.general_duration(),
                library: params.library_duration(),
            }],
        }
    }

    /// Builds an `epochs`-epoch profile matching a set of model parameters
    /// (each epoch carries `1/epochs` of the durations).
    pub fn from_params_repeated(params: &ModelParams, epochs: usize) -> Self {
        let epochs = epochs.max(1);
        let scale = 1.0 / epochs as f64;
        Self {
            epochs: vec![
                Epoch {
                    general: params.general_duration() * scale,
                    library: params.library_duration() * scale,
                };
                epochs
            ],
        }
    }

    /// The epochs.
    pub fn epochs(&self) -> &[Epoch] {
        &self.epochs
    }

    /// Number of epochs.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Whether the profile has no epoch.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Total failure-free duration.
    pub fn total_duration(&self) -> f64 {
        self.epochs.iter().map(Epoch::duration).sum()
    }

    /// Total failure-free LIBRARY time.
    pub fn total_library(&self) -> f64 {
        self.epochs.iter().map(|e| e.library).sum()
    }

    /// Overall fraction of time spent in LIBRARY phases.
    pub fn alpha(&self) -> f64 {
        let total = self.total_duration();
        if total == 0.0 {
            0.0
        } else {
            self.total_library() / total
        }
    }

    /// Unfolds the profile into an ordered list of non-empty work segments.
    pub fn segments(&self) -> Vec<Segment> {
        let mut out = Vec::with_capacity(self.epochs.len() * 2);
        for (i, e) in self.epochs.iter().enumerate() {
            if e.general > 0.0 {
                out.push(Segment {
                    epoch: i,
                    kind: PhaseKind::General,
                    duration: e.general,
                });
            }
            if e.library > 0.0 {
                out.push(Segment {
                    epoch: i,
                    kind: PhaseKind::Library,
                    duration: e.library,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_platform::units::minutes;

    #[test]
    fn epoch_arithmetic() {
        let e = Epoch::new(20.0, 80.0).unwrap();
        assert_eq!(e.duration(), 100.0);
        assert!((e.alpha() - 0.8).abs() < 1e-12);
        assert!(Epoch::new(-1.0, 5.0).is_err());
        assert_eq!(Epoch::new(0.0, 0.0).unwrap().alpha(), 0.0);
    }

    #[test]
    fn uniform_profile_totals() {
        let p = ApplicationProfile::uniform(10, 12.0, 48.0).unwrap();
        assert_eq!(p.len(), 10);
        assert_eq!(p.total_duration(), 600.0);
        assert_eq!(p.total_library(), 480.0);
        assert!((p.alpha() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn from_params_matches_model_view() {
        let params = ModelParams::paper_figure7(0.8, minutes(120.0)).unwrap();
        let p = ApplicationProfile::from_params(&params);
        assert_eq!(p.len(), 1);
        assert!((p.total_duration() - params.epoch_duration).abs() < 1e-6);
        assert!((p.alpha() - 0.8).abs() < 1e-12);

        let p10 = ApplicationProfile::from_params_repeated(&params, 10);
        assert_eq!(p10.len(), 10);
        assert!((p10.total_duration() - params.epoch_duration).abs() < 1e-6);
        assert!((p10.alpha() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn segments_skip_empty_phases() {
        let p = ApplicationProfile::new(vec![
            Epoch::new(10.0, 0.0).unwrap(),
            Epoch::new(0.0, 20.0).unwrap(),
            Epoch::new(5.0, 5.0).unwrap(),
        ]);
        let segs = p.segments();
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0].kind, PhaseKind::General);
        assert_eq!(segs[1].kind, PhaseKind::Library);
        assert_eq!(segs[1].epoch, 1);
        assert_eq!(segs[3].epoch, 2);
        let total: f64 = segs.iter().map(|s| s.duration).sum();
        assert_eq!(total, p.total_duration());
    }
}
