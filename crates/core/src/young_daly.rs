//! Optimal checkpoint periods: Young, Daly, and the paper's refinement.
//!
//! * Young (1974): `P = √(2 C µ)`;
//! * Daly (2006, higher-order): `P = √(2 C (µ + R)) ...` approximated here by
//!   its commonly used second-order form;
//! * the paper (Equation 11): `P_opt = √(2 C (µ − D − R))`, obtained by
//!   maximising `X = (1 − C/P)(1 − (D + R + P/2)/µ)` — the form every model
//!   in this crate uses.

use crate::error::{ensure_non_negative, ensure_positive, ModelError, Result};

/// Young's first-order optimal period `√(2 C µ)`.
pub fn young_period(checkpoint_cost: f64, mtbf: f64) -> Result<f64> {
    ensure_positive("checkpoint_cost", checkpoint_cost)?;
    ensure_positive("mtbf", mtbf)?;
    Ok((2.0 * checkpoint_cost * mtbf).sqrt())
}

/// Daly's higher-order estimate.
///
/// Daly (FGCS 2006) refines Young's period to
/// `P = √(2 C (µ + R)) · [1 + √(C / (2(µ+R)))/3 + C/(9·2(µ+R))] − C` when
/// `C < 2µ`, and `P = µ + R` otherwise.  (The `+R` term models the fact that
/// the lost work after a failure includes the restart.)
pub fn daly_period(checkpoint_cost: f64, mtbf: f64, recovery_cost: f64) -> Result<f64> {
    ensure_positive("checkpoint_cost", checkpoint_cost)?;
    ensure_positive("mtbf", mtbf)?;
    ensure_non_negative("recovery_cost", recovery_cost)?;
    let m = mtbf + recovery_cost;
    if checkpoint_cost >= 2.0 * m {
        return Ok(m);
    }
    let ratio = checkpoint_cost / (2.0 * m);
    let base = (2.0 * checkpoint_cost * m).sqrt();
    Ok(base * (1.0 + ratio.sqrt() / 3.0 + ratio / 9.0) - checkpoint_cost)
}

/// The paper's optimal period (Equation 11): `√(2 C (µ − D − R))`.
///
/// Returns an error when `µ ≤ D + R` (the platform fails faster than it can
/// recover: no period can help).
pub fn paper_optimal_period(
    checkpoint_cost: f64,
    mtbf: f64,
    downtime: f64,
    recovery_cost: f64,
) -> Result<f64> {
    ensure_positive("checkpoint_cost", checkpoint_cost)?;
    ensure_positive("mtbf", mtbf)?;
    ensure_non_negative("downtime", downtime)?;
    ensure_non_negative("recovery_cost", recovery_cost)?;
    let effective = mtbf - downtime - recovery_cost;
    if effective <= 0.0 {
        return Err(ModelError::MtbfTooSmall {
            mtbf,
            overheads: downtime + recovery_cost,
        });
    }
    Ok((2.0 * checkpoint_cost * effective).sqrt())
}

/// First-order waste of periodic checkpointing at period `P`:
/// `1 − (1 − C/P)(1 − (D + R + P/2)/µ)` — the complement of the `X` factor of
/// Equation (10).  Exposed for the period-sensitivity ablation bench.
pub fn waste_at_period(
    period: f64,
    checkpoint_cost: f64,
    mtbf: f64,
    downtime: f64,
    recovery_cost: f64,
) -> Result<f64> {
    ensure_positive("period", period)?;
    ensure_positive("checkpoint_cost", checkpoint_cost)?;
    ensure_positive("mtbf", mtbf)?;
    let x = (1.0 - checkpoint_cost / period)
        * (1.0 - (downtime + recovery_cost + period / 2.0) / mtbf);
    Ok(1.0 - x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_platform::units::{hours, minutes};

    #[test]
    fn young_matches_formula() {
        let p = young_period(600.0, hours(2.0)).unwrap();
        assert!((p - (2.0_f64 * 600.0 * 7200.0).sqrt()).abs() < 1e-9);
        assert!(young_period(0.0, 1.0).is_err());
    }

    #[test]
    fn paper_period_is_slightly_below_young() {
        // Subtracting D + R from µ shrinks the period.
        let y = young_period(600.0, hours(2.0)).unwrap();
        let p = paper_optimal_period(600.0, hours(2.0), 60.0, 600.0).unwrap();
        assert!(p < y);
        assert!(p > 0.9 * y);
    }

    #[test]
    fn paper_period_requires_viable_mtbf() {
        assert!(matches!(
            paper_optimal_period(600.0, 500.0, 60.0, 600.0),
            Err(ModelError::MtbfTooSmall { .. })
        ));
    }

    #[test]
    fn daly_close_to_young_when_checkpoint_is_cheap() {
        let mtbf = hours(24.0);
        let c = minutes(1.0);
        let young = young_period(c, mtbf).unwrap();
        let daly = daly_period(c, mtbf, c).unwrap();
        assert!((daly - young).abs() / young < 0.05);
        // Degenerate regime: checkpoint dominating the MTBF.
        let clamped = daly_period(10_000.0, 1_000.0, 0.0).unwrap();
        assert_eq!(clamped, 1_000.0);
    }

    #[test]
    fn optimal_period_minimises_the_waste_function() {
        let (c, mtbf, d, r) = (minutes(10.0), hours(2.0), minutes(1.0), minutes(10.0));
        let p_opt = paper_optimal_period(c, mtbf, d, r).unwrap();
        let w_opt = waste_at_period(p_opt, c, mtbf, d, r).unwrap();
        for factor in [0.5, 0.8, 1.2, 2.0] {
            let w = waste_at_period(p_opt * factor, c, mtbf, d, r).unwrap();
            assert!(
                w >= w_opt - 1e-12,
                "period {factor} x P_opt gives waste {w} < optimal {w_opt}"
            );
        }
    }

    #[test]
    fn waste_increases_when_mtbf_decreases() {
        let (c, d, r) = (minutes(10.0), minutes(1.0), minutes(10.0));
        let mut previous = 0.0;
        for mtbf_minutes in [240.0, 180.0, 120.0, 90.0, 60.0] {
            let mtbf = minutes(mtbf_minutes);
            let p = paper_optimal_period(c, mtbf, d, r).unwrap();
            let w = waste_at_period(p, c, mtbf, d, r).unwrap();
            assert!(w > previous);
            previous = w;
        }
    }
}
