//! Minimal clean crate for the self-test tree.
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

pub fn good(seed: u64, xs: &[f64]) -> f64 {
    let mut m: BTreeMap<u64, f64> = BTreeMap::new();
    for (i, x) in xs.iter().enumerate() {
        m.insert(seed.wrapping_add(i as u64), *x);
    }
    let total: f64 = m.values().sum();
    total.abs()
}

pub fn documented(xs: &[f64]) -> f64 {
    *xs.first().expect("callers pass non-empty slices")
}
