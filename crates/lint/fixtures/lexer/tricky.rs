//! Lexer edge cases: everything in this file that *looks* like a
//! violation is inside comments, strings or test code — a correct scan
//! reports nothing on the panic-free and unseeded rules.

/* block comment with .unwrap() and thread_rng()
   /* nested block comment: panic!("boom") still a comment */
   still the outer comment: Instant::now()
*/

pub fn body() -> &'static str {
    let raw = r#"raw string: x.unwrap(); rand::thread_rng(); "quoted" end"#;
    let escaped = "escaped \" quote then .expect(\"msg\") still a string";
    let multi = "a string that spans
        a newline with panic!(\"no\") inside";
    let ch = '"';
    let brace = '}';
    let _ = (escaped, multi, ch, brace);
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap() {
        body().chars().next().unwrap();
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs_f64() >= 0.0);
    }
}

pub fn after_tests() -> u64 {
    // Back outside the test module: library rules apply again here.
    7
}
