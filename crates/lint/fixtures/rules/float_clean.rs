//! Clean: parallel reduction through OutcomeAccumulator (sanctioned), and
//! serial sums (ordered by definition).
pub fn total(xs: &[f64]) -> f64 {
    let acc = xs
        .par_iter()
        .fold(OutcomeAccumulator::new, |mut acc, x| {
            acc.push_value(*x);
            acc
        })
        .reduce(OutcomeAccumulator::new, |mut a, b| {
            a.merge(&b);
            a
        });
    let serial: f64 = xs.iter().sum();
    acc.mean() + serial
}
