//! Fires: parallel float sum outside the Welford accumulator.
pub fn total(xs: &[f64]) -> f64 {
    xs.par_iter()
        .map(|x| x * 2.0)
        .sum::<f64>()
}
