//! Clean: errors are returned, panics live only in test code, and
//! "unwrap()" appears in strings/comments only.
pub fn read(xs: &[f64]) -> Option<f64> {
    // The old code called unwrap() here; see the lint rationale.
    let label = "never call .unwrap() on user input";
    xs.first().copied().filter(|_| !label.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwraps_in_tests_are_fine() {
        assert_eq!(read(&[1.0]).unwrap(), 1.0);
    }
}
