//! Fires: unwrap and panic! in non-test library code.
pub fn read(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        panic!("no data");
    }
    *xs.first().unwrap()
}
