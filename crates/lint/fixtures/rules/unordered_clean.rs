//! Clean: BTreeMap iterates in key order.
use std::collections::BTreeMap;

pub fn tally(xs: &[u64]) -> f64 {
    let mut m: BTreeMap<u64, f64> = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0.0) += 1.0;
    }
    m.values().sum()
}
