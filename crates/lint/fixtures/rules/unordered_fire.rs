//! Fires: HashMap in a result-affecting crate.
use std::collections::HashMap;

pub fn tally(xs: &[u64]) -> f64 {
    let mut m: HashMap<u64, f64> = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0.0) += 1.0;
    }
    m.values().sum()
}
