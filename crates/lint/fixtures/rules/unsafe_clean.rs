//! Clean: the unsafe site carries a SAFETY comment; `unsafeguarded` is
//! not the keyword.
pub fn peek(xs: &[u64]) -> u64 {
    let unsafeguarded = xs.len();
    // SAFETY: the caller guarantees xs is non-empty, so the pointer read
    // stays in bounds; unsafeguarded is just an identifier.
    unsafe { *xs.as_ptr().add(unsafeguarded - unsafeguarded) }
}
