//! Fires: undocumented unsafe block.

pub fn peek(xs: &[u64]) -> u64 {
    // No justification comment anywhere near the site.
    unsafe { *xs.as_ptr() }
}
