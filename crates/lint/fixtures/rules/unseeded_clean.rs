//! Clean: randomness derived from an explicit seed.
pub fn draw(seed: u64) -> u64 {
    // SplitMix64-style mix of the explicit seed.
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^ (z >> 31)
}
