//! Fires: entropy-seeded randomness.
pub fn draw() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
