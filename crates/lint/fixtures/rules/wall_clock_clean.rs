//! Clean: Duration values are fine, Instant only appears in comments,
//! strings and test code.
use std::time::Duration;

/// Not a clock read: `Instant::now()` in a doc comment does not count.
pub fn simulated(step: Duration) -> f64 {
    let s = "Instant::now() in a string is data, not a clock";
    step.as_secs_f64() + s.len() as f64 * 0.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_allowed() {
        let _ = std::time::Instant::now();
    }
}
