//! Fires: wall clock in a library crate.
use std::time::Instant;

pub fn measure() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}
