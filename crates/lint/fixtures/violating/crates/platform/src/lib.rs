//! Deliberately violating fixture: entropy seeding and a parallel sum.
pub fn bad(xs: &[f64]) -> f64 {
    let noise: f64 = rand::thread_rng().gen();
    let total: f64 = xs.par_iter().map(|x| x + noise).sum();
    total
}
