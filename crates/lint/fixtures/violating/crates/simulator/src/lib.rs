//! Deliberately violating fixture: one file, many findings.
use std::collections::HashMap;
use std::time::Instant;

pub fn bad(xs: &[f64]) -> f64 {
    let started = Instant::now();
    let mut m: HashMap<u64, f64> = HashMap::new();
    for (i, x) in xs.iter().enumerate() {
        m.insert(i as u64, *x);
    }
    let first = *xs.first().unwrap();
    let raced = unsafe { *xs.as_ptr() };
    first + raced + m.len() as f64 + started.elapsed().as_secs_f64()
}
