//! The `lint-allow.toml` allowlist: per-site suppressions with mandatory
//! written justifications.
//!
//! The build environment is offline, so this is a hand-rolled parser for
//! the small TOML subset the allowlist actually uses:
//!
//! ```toml
//! [[allow]]
//! rule = "panic-free-library"
//! path = "crates/checkpoint/src/frame.rs"
//! contains = ".expect("          # optional: narrow to matching lines
//! line = 42                      # optional: narrow to one line
//! justification = "why this site cannot misbehave"
//! ```
//!
//! Honesty guarantees enforced at load/apply time:
//!
//! * every entry must carry a non-empty `justification` — a bare
//!   suppression is itself a finding (`bad-allow`);
//! * every entry must name a known rule (`bad-allow` otherwise);
//! * an entry that suppressed nothing in the run is reported as
//!   `stale-allow`, so the allowlist can only shrink as violations are
//!   fixed — it never accretes dead weight silently.

use crate::rules::{is_known_rule, Finding, BAD_ALLOW, STALE_ALLOW};

/// One `[[allow]]` entry.
#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    /// Rule the entry suppresses.
    pub rule: String,
    /// Workspace-relative path (exact match, `/`-separated).
    pub path: String,
    /// Optional substring the raw source line must contain.
    pub contains: Option<String>,
    /// Optional 1-based line the finding must sit on.
    pub line: Option<usize>,
    /// The mandatory written justification.
    pub justification: String,
    /// Line of the entry header in the allowlist file (for diagnostics).
    pub declared_at: usize,
}

/// A parsed allowlist plus per-entry hit counters.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// The entries, in file order.
    pub entries: Vec<AllowEntry>,
    /// Path the list was loaded from, for diagnostics.
    pub source_path: String,
    hits: Vec<usize>,
}

impl Allowlist {
    /// An empty allowlist (used when the file does not exist).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses the TOML-subset allowlist format.
    ///
    /// Unknown keys and malformed lines are reported as `bad-allow`
    /// findings rather than silently ignored.
    pub fn parse(content: &str, source_path: &str) -> (Self, Vec<Finding>) {
        let mut findings = Vec::new();
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<AllowEntry> = None;

        for (idx, raw_line) in content.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_toml_comment(raw_line);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(entry) = current.take() {
                    entries.push(entry);
                }
                current = Some(AllowEntry {
                    declared_at: lineno,
                    ..AllowEntry::default()
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                findings.push(Finding::at(
                    BAD_ALLOW,
                    source_path,
                    lineno,
                    format!("unparseable allowlist line: `{line}`"),
                ));
                continue;
            };
            let Some(entry) = current.as_mut() else {
                findings.push(Finding::at(
                    BAD_ALLOW,
                    source_path,
                    lineno,
                    "key outside an [[allow]] table".to_string(),
                ));
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "rule" | "path" | "contains" | "justification" => {
                    match parse_toml_string(value) {
                        Some(s) => match key {
                            "rule" => entry.rule = s,
                            "path" => entry.path = s,
                            "contains" => entry.contains = Some(s),
                            _ => entry.justification = s,
                        },
                        None => findings.push(Finding::at(
                            BAD_ALLOW,
                            source_path,
                            lineno,
                            format!("`{key}` must be a double-quoted string"),
                        )),
                    }
                }
                "line" => match value.parse::<usize>() {
                    Ok(v) => entry.line = Some(v),
                    Err(_) => findings.push(Finding::at(
                        BAD_ALLOW,
                        source_path,
                        lineno,
                        "`line` must be an integer literal".to_string(),
                    )),
                },
                other => findings.push(Finding::at(
                    BAD_ALLOW,
                    source_path,
                    lineno,
                    format!("unknown allowlist key `{other}`"),
                )),
            }
        }
        if let Some(entry) = current.take() {
            entries.push(entry);
        }

        // Entry-level validation: justification and rule name are mandatory.
        for entry in &entries {
            if entry.justification.trim().is_empty() {
                findings.push(Finding::at(
                    BAD_ALLOW,
                    source_path,
                    entry.declared_at,
                    format!(
                        "allowlist entry for `{}` on `{}` has no justification — every \
                         suppression must explain why the site is safe",
                        entry.rule, entry.path
                    ),
                ));
            }
            if !is_known_rule(&entry.rule) {
                findings.push(Finding::at(
                    BAD_ALLOW,
                    source_path,
                    entry.declared_at,
                    format!("allowlist entry names unknown rule `{}`", entry.rule),
                ));
            }
            if entry.path.trim().is_empty() {
                findings.push(Finding::at(
                    BAD_ALLOW,
                    source_path,
                    entry.declared_at,
                    "allowlist entry has no `path`".to_string(),
                ));
            }
        }

        let hits = vec![0; entries.len()];
        (
            Self {
                entries,
                source_path: source_path.to_string(),
                hits,
            },
            findings,
        )
    }

    /// Whether `finding` (whose raw source line is `raw_line`) is
    /// suppressed; counts the hit on the matching entry.
    pub fn suppresses(&mut self, finding: &Finding, raw_line: &str) -> bool {
        for (i, entry) in self.entries.iter().enumerate() {
            if entry.rule != finding.rule || entry.path != finding.path {
                continue;
            }
            if let Some(want) = entry.line {
                if want != finding.line {
                    continue;
                }
            }
            if let Some(needle) = &entry.contains {
                if !raw_line.contains(needle.as_str()) {
                    continue;
                }
            }
            self.hits[i] += 1;
            return true;
        }
        false
    }

    /// `stale-allow` findings for entries that suppressed nothing.
    pub fn stale_entries(&self) -> Vec<Finding> {
        self.entries
            .iter()
            .zip(&self.hits)
            .filter(|(_, &hits)| hits == 0)
            .map(|(entry, _)| {
                Finding::at(
                    STALE_ALLOW,
                    &self.source_path,
                    entry.declared_at,
                    format!(
                        "allowlist entry `{}` on `{}` matched no finding — delete it \
                         (the violation it excused is gone)",
                        entry.rule, entry.path
                    ),
                )
            })
            .collect()
    }
}

/// Strips a `#`-comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parses a double-quoted TOML string with `\"` / `\\` escapes.
fn parse_toml_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => return None,
            }
        } else if c == '"' {
            return None; // Unescaped quote inside the string body.
        } else {
            out.push(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# project allowlist
[[allow]]
rule = "panic-free-library"
path = "crates/x/src/lib.rs"
contains = ".expect("
justification = "invariant-backed"

[[allow]]
rule = "wall-clock-in-library"
path = "crates/platform/src/clock.rs"
justification = "the one sanctioned clock"
"#;

    #[test]
    fn parses_entries() {
        let (list, findings) = Allowlist::parse(SAMPLE, "lint-allow.toml");
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(list.entries.len(), 2);
        assert_eq!(list.entries[0].contains.as_deref(), Some(".expect("));
    }

    #[test]
    fn missing_justification_is_a_finding() {
        let src = "[[allow]]\nrule = \"panic-free-library\"\npath = \"a.rs\"\n";
        let (_, findings) = Allowlist::parse(src, "lint-allow.toml");
        assert!(findings.iter().any(|f| f.rule == BAD_ALLOW));
    }

    #[test]
    fn unknown_rule_is_a_finding() {
        let src = "[[allow]]\nrule = \"no-such-rule\"\npath = \"a.rs\"\njustification = \"x\"\n";
        let (_, findings) = Allowlist::parse(src, "lint-allow.toml");
        assert!(findings.iter().any(|f| f.message.contains("unknown rule")));
    }

    #[test]
    fn suppression_and_staleness() {
        let (mut list, _) = Allowlist::parse(SAMPLE, "lint-allow.toml");
        let f = Finding::at(
            "panic-free-library",
            "crates/x/src/lib.rs",
            10,
            "x".to_string(),
        );
        assert!(list.suppresses(&f, "value.expect(\"msg\")"));
        assert!(!list.suppresses(&f, "value.unwrap()"), "contains filter applies");
        let stale = list.stale_entries();
        assert_eq!(stale.len(), 1, "the clock entry never matched");
        assert!(stale[0].message.contains("wall-clock-in-library"));
    }
}
