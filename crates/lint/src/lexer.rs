//! A minimal, dependency-free Rust source scanner.
//!
//! The rules in [`crate::rules`] are *lexical*: they look for tokens like
//! `Instant`, `HashMap` or `.unwrap()` in places where the workspace's
//! determinism invariants forbid them.  A plain substring search would be
//! hopelessly noisy — `// the old code used thread_rng()` in a comment, an
//! `"unwrap()"` inside a raw string fixture, or the identifier
//! `unsafeguarded` must not fire — so this module performs a real
//! character-level scan that:
//!
//! * strips `//` line comments and (nested) `/* ... */` block comments,
//!   keeping the comment text separately so the `// SAFETY:` rule can see
//!   it;
//! * blanks the *contents* of string literals (`"…"`, `b"…"`), raw string
//!   literals (`r"…"`, `r#"…"#`, `br##"…"##`) and char literals, while
//!   preserving the enclosing quotes and line structure;
//! * distinguishes char literals from lifetimes (`'a'` vs `&'a str`);
//! * tracks — approximately, by brace depth — which lines live inside a
//!   `#[cfg(test)]`-gated item or a `mod tests { … }` block, so test code
//!   is exempt from the library-only rules.
//!
//! The result is one [`SourceLine`] per input line: `code` is what rules
//! should match against, `comment` is what the `SAFETY:` check reads, and
//! `in_test` scopes the library-only rules.

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct SourceLine {
    /// The line with comment text removed and literal contents blanked.
    pub code: String,
    /// The comment text of the line (line + block comments, concatenated).
    pub comment: String,
    /// The raw, untouched source line (allowlist `contains` matches here).
    pub raw: String,
    /// Whether the line sits inside a `#[cfg(test)]` item or `mod tests`
    /// block (approximate brace-depth tracking).
    pub in_test: bool,
}

/// Returns `true` when `needle` occurs in `haystack` as a whole word
/// (not flanked by identifier characters).
pub fn contains_word(haystack: &str, needle: &str) -> bool {
    find_word(haystack, needle).is_some()
}

/// Byte offset of the first whole-word occurrence of `needle`.
pub fn find_word(haystack: &str, needle: &str) -> Option<usize> {
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len().max(1);
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Scans `source` into per-line code/comment views with test-block marks.
pub fn scan(source: &str) -> Vec<SourceLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines: Vec<SourceLine> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut i = 0usize;
    let n = chars.len();

    // Helper closures can't borrow the buffers mutably alongside the loop,
    // so line flushing is inlined at every '\n'.
    macro_rules! flush_line {
        () => {
            lines.push(SourceLine {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                raw: String::new(),
                in_test: false,
            });
        };
    }

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                flush_line!();
                i += 1;
            }
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                // Line comment: capture text until newline.
                i += 2;
                while i < n && chars[i] != '\n' {
                    comment.push(chars[i]);
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Block comment, nested per Rust's rules.
                i += 2;
                let mut depth = 1usize;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        comment.push_str("/*");
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        if depth > 0 {
                            comment.push_str("*/");
                        }
                        i += 2;
                    } else if chars[i] == '\n' {
                        flush_line!();
                        i += 1;
                    } else {
                        comment.push(chars[i]);
                        i += 1;
                    }
                }
            }
            '"' => {
                i = consume_string(&chars, i, &mut code, &mut lines, &mut comment);
            }
            'r' | 'b' if starts_literal(&chars, i) => {
                i = consume_prefixed_literal(&chars, i, &mut code, &mut lines, &mut comment);
            }
            '\'' => {
                // Char literal or lifetime.
                if is_char_literal(&chars, i) {
                    code.push('\'');
                    i += 1;
                    while i < n && chars[i] != '\'' {
                        if chars[i] == '\\' {
                            i += 1; // skip the escaped character
                        }
                        code.push(' ');
                        i += 1;
                    }
                    if i < n {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    // Lifetime: emit as-is.
                    code.push('\'');
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() || (n > 0 && !source.ends_with('\n')) {
        lines.push(SourceLine {
            code,
            comment,
            raw: String::new(),
            in_test: false,
        });
    }

    // Attach the raw text and compute the test regions.
    for (line, raw) in lines.iter_mut().zip(source.lines()) {
        line.raw = raw.to_string();
    }
    mark_test_regions(&mut lines);
    lines
}

/// `r"…"`, `r#"…"#`, `br##"…"##`, `b"…"` and plain identifiers starting
/// with `r`/`b` need disambiguation: a literal follows when the prefix is
/// `b?` + `r?` + `#*` + `"` (with at least the quote present).
fn starts_literal(chars: &[char], i: usize) -> bool {
    let mut j = i;
    // Must not be the tail of an identifier (`attr"` is impossible, but
    // `br` inside `abr"` would be).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    if j < chars.len() && chars[j] == 'b' {
        j += 1;
    }
    if j < chars.len() && chars[j] == 'r' {
        j += 1;
    }
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    j > i && j < chars.len() && chars[j] == '"' && (chars[i] == 'b' || chars[i] == 'r')
}

/// Consumes a `b"…"` / `r#"…"#`-style literal starting at `i`.
fn consume_prefixed_literal(
    chars: &[char],
    mut i: usize,
    code: &mut String,
    lines: &mut Vec<SourceLine>,
    comment: &mut String,
) -> usize {
    let mut raw = false;
    if chars[i] == 'b' {
        code.push('b');
        i += 1;
    }
    if i < chars.len() && chars[i] == 'r' {
        raw = true;
        code.push('r');
        i += 1;
    }
    let mut hashes = 0usize;
    while i < chars.len() && chars[i] == '#' {
        hashes += 1;
        code.push('#');
        i += 1;
    }
    if i >= chars.len() || chars[i] != '"' {
        return i; // Not actually a literal; already emitted the prefix.
    }
    if raw {
        code.push('"');
        i += 1;
        // Scan for `"` + hashes closing delimiter; no escapes in raw strings.
        'outer: while i < chars.len() {
            if chars[i] == '"' {
                let mut k = 0usize;
                while k < hashes && i + 1 + k < chars.len() && chars[i + 1 + k] == '#' {
                    k += 1;
                }
                if k == hashes {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    i += 1 + hashes;
                    break 'outer;
                }
            }
            if chars[i] == '\n' {
                lines.push(SourceLine {
                    code: std::mem::take(code),
                    comment: std::mem::take(comment),
                    raw: String::new(),
                    in_test: false,
                });
            } else {
                code.push(' ');
            }
            i += 1;
        }
        i
    } else {
        consume_string(chars, i, code, lines, comment)
    }
}

/// Consumes a `"…"` string with escapes starting at the opening quote.
fn consume_string(
    chars: &[char],
    mut i: usize,
    code: &mut String,
    lines: &mut Vec<SourceLine>,
    comment: &mut String,
) -> usize {
    code.push('"');
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                code.push(' ');
                // A `\` line-continuation escapes the newline itself; the
                // raw file still has a line there, so flush one to keep
                // line numbers (and allowlist raw-line lookups) aligned.
                if i + 1 < chars.len() && chars[i + 1] == '\n' {
                    lines.push(SourceLine {
                        code: std::mem::take(code),
                        comment: std::mem::take(comment),
                        raw: String::new(),
                        in_test: false,
                    });
                }
                i += 2; // skip the escaped character (incl. \" and \\)
            }
            '"' => {
                code.push('"');
                i += 1;
                return i;
            }
            '\n' => {
                lines.push(SourceLine {
                    code: std::mem::take(code),
                    comment: std::mem::take(comment),
                    raw: String::new(),
                    in_test: false,
                });
                i += 1;
            }
            _ => {
                code.push(' ');
                i += 1;
            }
        }
    }
    i
}

/// `'x'` / `'\n'` are char literals; `'a` followed by an identifier (and no
/// closing quote right after) is a lifetime.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    if i + 1 >= chars.len() {
        return false;
    }
    if chars[i + 1] == '\\' {
        return true;
    }
    i + 2 < chars.len() && chars[i + 2] == '\''
}

/// Marks the lines inside `#[cfg(test)]` items / `#[test]` functions /
/// `mod tests` blocks. Approximate: attributes arm the tracker, the next
/// opening brace starts the region, and the region ends when the brace
/// depth returns to its entry value. An armed tracker is disarmed by a
/// block-less item (a `;` before any `{`).
fn mark_test_regions(lines: &mut [SourceLine]) {
    let mut depth: i64 = 0;
    let mut armed = false;
    let mut region_exit: Option<i64> = None;

    for line in lines.iter_mut() {
        let starts_in_region = region_exit.is_some();
        if region_exit.is_none() && !armed {
            let code = &line.code;
            if code.contains("cfg(test)")
                || (code.contains("#[cfg(") && contains_word(code, "test"))
                || code.trim_start().starts_with("#[test]")
                || (contains_word(code, "mod") && contains_word(code, "tests"))
            {
                armed = true;
            }
        }

        let mut line_opened_region = false;
        for c in line.code.chars() {
            match c {
                '{' => {
                    if armed && region_exit.is_none() {
                        region_exit = Some(depth);
                        armed = false;
                        line_opened_region = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(exit) = region_exit {
                        if depth <= exit {
                            region_exit = None;
                        }
                    }
                }
                ';' if armed && region_exit.is_none() => {
                    // `#[cfg(test)] use …;` — attribute consumed by a
                    // block-less item.
                    armed = false;
                }
                _ => {}
            }
        }

        line.in_test = starts_in_region || region_exit.is_some() || line_opened_region || armed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_stripped_but_kept() {
        let lines = scan("let x = 1; // uses unwrap() here\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("unwrap()"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner unwrap() */ still comment */ b\n";
        let lines = scan(src);
        assert!(lines[0].code.contains('a'));
        assert!(lines[0].code.contains('b'));
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("inner unwrap()"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let src = "before /* one\ntwo unwrap()\nthree */ after\n";
        let lines = scan(src);
        assert_eq!(lines.len(), 3);
        assert!(!lines[1].code.contains("unwrap"));
        assert!(lines[1].comment.contains("unwrap"));
        assert!(lines[2].code.contains("after"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = scan("let s = \"call unwrap() now\";\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains('"'));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lines = scan("let s = r#\"thread_rng() \" inner\"#; let t = 1;\n");
        assert!(!lines[0].code.contains("thread_rng"));
        assert!(lines[0].code.contains("let t = 1;"));
    }

    #[test]
    fn string_line_continuations_preserve_line_numbers() {
        // `\` at end of a string line escapes the newline; the raw file
        // still has a line there, so the scan must stay 1:1 with
        // `source.lines()` or every later finding/raw-line pairing drifts.
        let src = "let s = \"first \\\n    second\";\nx.unwrap();\n";
        let lines = scan(src);
        assert_eq!(lines.len(), src.lines().count());
        assert!(lines[2].code.contains(".unwrap()"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lines = scan("let s = \"a \\\" unwrap() b\"; let u = 2;\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("let u = 2;"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let lines = scan("fn f<'a>(x: &'a str) -> char { '}' }\n");
        // The '}' char content is blanked (so brace depth stays balanced),
        // while the lifetimes survive untouched.
        assert!(lines[0].code.contains("&'a str"));
        assert!(lines[0].code.contains("' '"));
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("use std::time::Instant;", "Instant"));
        assert!(!contains_word("let unsafeguarded = 1;", "unsafe"));
        assert!(!contains_word("doctest", "test"));
        assert!(contains_word("cfg(all(test, feature))", "test"));
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test, "attribute line belongs to the region");
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn cfg_test_import_does_not_poison_the_file() {
        let src = "#[cfg(test)]\nuse helpers::x;\nfn lib() { body(); }\n";
        let lines = scan(src);
        assert!(!lines[2].in_test, "block-less item must disarm the tracker");
    }

    #[test]
    fn mod_tests_without_attribute_is_marked() {
        let src = "mod tests {\n    fn t() {}\n}\nfn lib() {}\n";
        let lines = scan(src);
        assert!(lines[1].in_test);
        assert!(!lines[3].in_test);
    }
}
