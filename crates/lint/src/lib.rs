//! # ft-lint — determinism & safety static analysis for this workspace
//!
//! Every headline claim of this reproduction — CRN trace replay, the
//! batch-vs-scalar oracle, crash-resume bit-identity, `--point-threads`
//! invariance — rests on source-level invariants that used to be enforced
//! only dynamically, by whichever test happened to exercise the offending
//! path. `ft-lint` turns them into a compile gate: a dependency-free
//! scanner ([`lexer`]) feeds seven lexical rules ([`rules`]), suppressions
//! live in a justification-carrying allowlist ([`allowlist`]), and the
//! whole pass runs as `cargo run -p ft-lint` in CI and as the root
//! `tests/tidy.rs` integration test.
//!
//! See `docs/LINTS.md` for the rule catalogue and the allowlist process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allowlist;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allowlist::Allowlist;
use rules::{Finding, SourceFile};

/// Directories never scanned: external stand-ins, build output, VCS
/// metadata, and the linter's own deliberately-violating test fixtures.
const EXCLUDED_PREFIXES: &[&str] = &["vendor/", "target/", ".git/", "crates/lint/fixtures/"];

/// The result of a workspace pass.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings that survived the allowlist, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of findings suppressed by allowlist entries.
    pub suppressed: usize,
}

impl LintReport {
    /// Whether the pass is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the findings as `path:line: [rule] message` diagnostics
    /// plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}:{}: [{}] {}\n", f.path, f.line, f.rule, f.message));
        }
        out.push_str(&format!(
            "ft-lint: {} finding(s) across {} file(s) scanned ({} suppressed by lint-allow.toml)\n",
            self.findings.len(),
            self.files_scanned,
            self.suppressed
        ));
        out
    }
}

/// Lints the workspace rooted at `root`.
///
/// `allow_path` defaults to `<root>/lint-allow.toml`; a missing allowlist
/// file is an empty allowlist, not an error.
pub fn lint_workspace(root: &Path, allow_path: Option<&Path>) -> io::Result<LintReport> {
    let default_allow = root.join("lint-allow.toml");
    let allow_path = allow_path.unwrap_or(&default_allow);
    let (mut allow, mut raw_findings) = match fs::read_to_string(allow_path) {
        Ok(content) => Allowlist::parse(&content, &rel_display(root, allow_path)),
        Err(_) => (Allowlist::empty(), Vec::new()),
    };

    // Walk and scan every .rs file in scope.
    let mut files: Vec<SourceFile> = Vec::new();
    for path in collect_rust_files(root)? {
        let rel = rel_display(root, &path);
        let content = fs::read_to_string(&path)?;
        files.push(SourceFile::scan(&rel, &content));
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    let files_scanned = files.len();

    // Per-file rules.
    for file in &files {
        raw_findings.extend(rules::check_file(file));
    }

    // Crate-level unsafe audit: one check per `crates/*` dir with a
    // src/lib.rs, plus the root package.
    let mut lib_paths: Vec<String> = files
        .iter()
        .map(|f| f.rel.clone())
        .filter(|rel| rel == "src/lib.rs" || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs")))
        .collect();
    lib_paths.sort();
    for lib_rel in lib_paths {
        let crate_prefix = lib_rel.trim_end_matches("src/lib.rs").to_string();
        let crate_files: Vec<&SourceFile> = files
            .iter()
            .filter(|f| f.rel.starts_with(&format!("{crate_prefix}src/")))
            .collect();
        if let Some(lib) = files.iter().find(|f| f.rel == lib_rel) {
            raw_findings.extend(rules::check_crate_forbids_unsafe(&lib_rel, lib, &crate_files));
        }
    }

    // Bench payload schema: BENCH_*.json at the workspace root.
    let mut bench_paths: Vec<PathBuf> = fs::read_dir(root)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    bench_paths.sort();
    for path in bench_paths {
        let rel = rel_display(root, &path);
        let content = fs::read_to_string(&path)?;
        raw_findings.extend(rules::check_bench_json(&rel, &content));
    }

    // Apply the allowlist: a finding is suppressed when an entry matches
    // its rule, path, optional line and optional raw-line substring.
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for finding in raw_findings {
        let raw_line = files
            .iter()
            .find(|f| f.rel == finding.path)
            .and_then(|f| f.lines.get(finding.line.saturating_sub(1)))
            .map(|l| l.raw.clone())
            .unwrap_or_default();
        if allow.suppresses(&finding, &raw_line) {
            suppressed += 1;
        } else {
            findings.push(finding);
        }
    }
    findings.extend(allow.stale_entries());
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    Ok(LintReport {
        findings,
        files_scanned,
        suppressed,
    })
}

/// Collects the `.rs` files in scope: `crates/*/{src,tests,benches,examples}`,
/// the root package's `src/`, `tests/` and `examples/`, minus
/// [`EXCLUDED_PREFIXES`].
fn collect_rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(_) => continue,
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let path = entry.path();
            let rel = rel_display(root, &path);
            if EXCLUDED_PREFIXES
                .iter()
                .any(|p| rel.starts_with(p) || format!("{rel}/").starts_with(p))
            {
                continue;
            }
            if path.is_dir() {
                // Hidden directories (.git, .github) hold no Rust sources
                // we police.
                if rel
                    .rsplit('/')
                    .next()
                    .is_some_and(|name| name.starts_with('.'))
                {
                    continue;
                }
                stack.push(path);
            } else if rel.ends_with(".rs") && in_scope(&rel) {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Whether a workspace-relative `.rs` path belongs to the lintable tree.
fn in_scope(rel: &str) -> bool {
    let top = rel.split('/').next().unwrap_or_default();
    match top {
        "src" | "tests" | "examples" | "benches" => true,
        "crates" => {
            // crates/<name>/{src,tests,benches,examples}/**
            let mut parts = rel.split('/');
            let _ = parts.next(); // crates
            let _ = parts.next(); // name
            matches!(parts.next(), Some("src" | "tests" | "benches" | "examples"))
        }
        _ => false,
    }
}

/// Workspace-relative `/`-separated display path.
fn rel_display(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Ascends from `start` to the first directory whose `Cargo.toml` declares
/// a `[workspace]`; falls back to `start` when none is found.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(content) = fs::read_to_string(&manifest) {
            if content.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}
