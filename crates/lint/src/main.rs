//! `ft-lint` CLI: lints the workspace and exits non-zero on findings.
//!
//! ```text
//! ft-lint [--root DIR] [--allow FILE] [--list-rules]
//! ```
//!
//! With no `--root`, the workspace root is found by ascending from the
//! current directory to the first `Cargo.toml` declaring `[workspace]`
//! (so `cargo run -p ft-lint` works from any subdirectory).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut allow: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--allow" => allow = args.next().map(PathBuf::from),
            "--list-rules" => {
                for (name, summary) in ft_lint::rules::RULES {
                    println!("{name:<28} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: ft-lint [--root DIR] [--allow FILE] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ft-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        ft_lint::find_workspace_root(&cwd)
    });

    match ft_lint::lint_workspace(&root, allow.as_deref()) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("ft-lint: i/o error while scanning {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}
