//! The rule registry: seven determinism & safety rules, each protecting a
//! concrete invariant of this reproduction (see `docs/LINTS.md` for the
//! rationale behind every rule and the allowlist process).
//!
//! All rules are lexical, operating on the comment/string-aware code view
//! produced by [`crate::lexer`]. They are deliberately conservative: a rule
//! may miss an exotic spelling of a violation (that is what review is for),
//! but what it flags is real, and what it accepts is either clean or
//! carries a written justification in `lint-allow.toml`.

use crate::lexer::{contains_word, find_word, SourceLine};

/// Wall-clock sources in library code.
pub const WALL_CLOCK: &str = "wall-clock-in-library";
/// `HashMap`/`HashSet` in result-affecting crates.
pub const UNORDERED_ITER: &str = "unordered-iteration";
/// Nondeterministically-seeded randomness.
pub const UNSEEDED_RANDOM: &str = "unseeded-randomness";
/// Parallel float reductions outside the Welford accumulator.
pub const FLOAT_ACCUM: &str = "float-accumulation-order";
/// `unwrap`/`expect`/`panic!` in non-test library code.
pub const PANIC_FREE: &str = "panic-free-library";
/// `unsafe` without `// SAFETY:`, and missing `#![forbid(unsafe_code)]`.
pub const UNSAFE_AUDIT: &str = "unsafe-audit";
/// `BENCH_*.json` host-metadata schema.
pub const BENCH_SCHEMA: &str = "bench-schema";
/// Internal: allowlist entry that suppressed nothing.
pub const STALE_ALLOW: &str = "stale-allow";
/// Internal: malformed or unjustified allowlist entry.
pub const BAD_ALLOW: &str = "bad-allow";

/// The user-facing rules (allowlistable; `stale-allow`/`bad-allow` are
/// meta-findings about the allowlist itself and cannot be suppressed).
pub const RULES: &[(&str, &str)] = &[
    (WALL_CLOCK, "std::time::{Instant, SystemTime} forbidden outside crates/bench and the sanctioned ft-platform stopwatch"),
    (UNORDERED_ITER, "HashMap/HashSet forbidden in result-affecting crates (platform, simulator, core, checkpoint); use BTreeMap/BTreeSet"),
    (UNSEEDED_RANDOM, "randomness must derive from SeedStream or an explicit seed; entropy-seeded constructors are forbidden"),
    (FLOAT_ACCUM, "parallel float reductions must flow through OutcomeAccumulator (Welford) to keep accumulation order fixed"),
    (PANIC_FREE, "unwrap/expect/panic!/unreachable! in non-test library code needs an allowlist justification"),
    (UNSAFE_AUDIT, "every unsafe block needs a // SAFETY: comment; unsafe-free crates must #![forbid(unsafe_code)]"),
    (BENCH_SCHEMA, "BENCH_*.json must record host_logical_cores (+ single_core_annotation when it is 1)"),
];

/// Whether `name` is an allowlistable rule.
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|(rule, _)| *rule == name)
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl Finding {
    /// Builds a finding; `rule` must be one of the registry constants.
    pub fn at(rule: &'static str, path: &str, line: usize, message: String) -> Self {
        Self {
            rule,
            path: path.to_string(),
            line,
            message,
        }
    }
}

/// How a scanned file participates in the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Shipped library code (`crates/*/src/**` minus `src/bin`, root `src/`).
    Library,
    /// Binary entry points (`src/main.rs`, `src/bin/**`).
    Bin,
    /// Tests, benches and examples.
    Harness,
}

/// A scanned source file ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// Scanned lines (see [`crate::lexer::scan`]).
    pub lines: Vec<SourceLine>,
    /// Participation class.
    pub class: FileClass,
    /// `crates/<dir>/…` → `Some(dir)`; root-package files → `None`.
    pub crate_dir: Option<String>,
}

/// Crates whose in-memory results feed the reproduced figures: a
/// nondeterministic iteration order anywhere here can reorder float
/// accumulation or replication scheduling and break bit-exactness.
pub const RESULT_AFFECTING: &[&str] = &["platform", "simulator", "core", "checkpoint"];

/// Classifies a workspace-relative path into (class, crate dir).
pub fn classify(rel: &str) -> (FileClass, Option<String>) {
    let crate_dir = rel
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .map(str::to_string);
    let class = if rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.starts_with("tests/")
        || rel.starts_with("examples/")
    {
        FileClass::Harness
    } else if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
        FileClass::Bin
    } else {
        FileClass::Library
    };
    (class, crate_dir)
}

impl SourceFile {
    /// Scans `content` under the given workspace-relative path.
    pub fn scan(rel: &str, content: &str) -> Self {
        let (class, crate_dir) = classify(rel);
        Self {
            rel: rel.to_string(),
            lines: crate::lexer::scan(content),
            class,
            crate_dir,
        }
    }

    fn in_result_affecting_crate(&self) -> bool {
        self.crate_dir
            .as_deref()
            .is_some_and(|d| RESULT_AFFECTING.contains(&d))
    }

    fn in_bench_crate(&self) -> bool {
        self.crate_dir.as_deref() == Some("bench")
    }

    /// Whether any non-blanked code in the file mentions `unsafe`.
    pub fn mentions_unsafe(&self) -> bool {
        self.lines.iter().any(|l| contains_word(&l.code, "unsafe"))
    }
}

/// Runs every per-file rule on `file`.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    wall_clock(file, &mut findings);
    unordered_iteration(file, &mut findings);
    unseeded_randomness(file, &mut findings);
    float_accumulation(file, &mut findings);
    panic_free(file, &mut findings);
    unsafe_safety_comments(file, &mut findings);
    findings
}

/// Rule 1 — wall-clock sources are nondeterministic inputs. Anything a
/// simulation result could read from `Instant`/`SystemTime` varies run to
/// run; only the bench crate (whose job is measuring wall clock) is exempt.
fn wall_clock(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.class != FileClass::Library || file.in_bench_crate() {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in ["Instant", "SystemTime"] {
            if contains_word(&line.code, token) {
                findings.push(Finding::at(
                    WALL_CLOCK,
                    &file.rel,
                    idx + 1,
                    format!(
                        "wall-clock source `{token}` in library code — results must not \
                         depend on real time; measure through \
                         `ft_platform::clock::Stopwatch` or justify in lint-allow.toml \
                         (docs/LINTS.md#wall-clock-in-library)"
                    ),
                ));
            }
        }
    }
}

/// Rule 2 — `HashMap`/`HashSet` iteration order is unspecified, so any use
/// in a result-affecting crate is one refactor away from reordering float
/// sums or replication scheduling. `BTreeMap`/`BTreeSet` iterate in key
/// order at no practical cost at our sizes.
fn unordered_iteration(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.class != FileClass::Library || !file.in_result_affecting_crate() {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in ["HashMap", "HashSet"] {
            if contains_word(&line.code, token) {
                findings.push(Finding::at(
                    UNORDERED_ITER,
                    &file.rel,
                    idx + 1,
                    format!(
                        "`{token}` in a result-affecting crate — iteration order is \
                         unspecified; use BTreeMap/BTreeSet or justify never-iterated \
                         use in lint-allow.toml (docs/LINTS.md#unordered-iteration)"
                    ),
                ));
            }
        }
    }
}

/// Rule 3 — every random draw must be reproducible from a `u64` seed.
/// These constructors pull entropy from the OS or per-process random
/// state, which no trace replay can reproduce.
fn unseeded_randomness(file: &SourceFile, findings: &mut Vec<Finding>) {
    const FORBIDDEN: &[&str] = &[
        "thread_rng",
        "from_entropy",
        "from_os_rng",
        "OsRng",
        "getrandom",
        "RandomState",
    ];
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in FORBIDDEN {
            if contains_word(&line.code, token) {
                findings.push(Finding::at(
                    UNSEEDED_RANDOM,
                    &file.rel,
                    idx + 1,
                    format!(
                        "entropy-seeded randomness `{token}` — every draw must derive \
                         from SeedStream or an explicit seed parameter so traces replay \
                         bit-identically (docs/LINTS.md#unseeded-randomness)"
                    ),
                ));
            }
        }
    }
}

/// Rule 4 — float addition is not associative: a parallel `.sum()` /
/// `.reduce()` re-associates with the thread count and breaks the
/// `--point-threads` bit-identity guarantee. The one sanctioned sink is
/// `OutcomeAccumulator`, whose block merge order is pinned by the
/// parallel-determinism suite.
fn float_accumulation(file: &SourceFile, findings: &mut Vec<Finding>) {
    const PAR_MARKERS: &[&str] =
        &["par_iter", "into_par_iter", "par_chunks", "par_bridge", "par_windows"];
    const REDUCERS: &[&str] = &[".sum", ".reduce(", ".fold("];
    const WINDOW: usize = 14;

    if file.class != FileClass::Library
        || !(file.in_result_affecting_crate() || file.in_bench_crate())
    {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !PAR_MARKERS.iter().any(|m| contains_word(&line.code, m)) {
            continue;
        }
        // Statement window: from the parallel marker to the statement end.
        let mut reducer: Option<(&str, usize)> = None;
        let mut sanctioned = false;
        for (off, win_line) in file.lines[idx..].iter().take(WINDOW).enumerate() {
            let code = &win_line.code;
            if let Some(r) = REDUCERS.iter().find(|r| code.contains(**r)) {
                reducer.get_or_insert((r, idx + off + 1));
            }
            if code.contains("OutcomeAccumulator") {
                sanctioned = true;
            }
            if off > 0 && code.trim_end().ends_with(';') {
                break;
            }
        }
        if let Some((reducer, at)) = reducer {
            if !sanctioned {
                findings.push(Finding::at(
                    FLOAT_ACCUM,
                    &file.rel,
                    at,
                    format!(
                        "parallel `{reducer}` outside OutcomeAccumulator — float \
                         reduction order would re-associate with the thread count and \
                         break bit-exactness under --point-threads \
                         (docs/LINTS.md#float-accumulation-order)"
                    ),
                ));
            }
        }
    }
}

/// Rule 5 — a panic in library code aborts a whole sweep, bench or
/// service request. Invariant-backed `expect`s are allowed, but each
/// needs a written justification in the allowlist.
fn panic_free(file: &SourceFile, findings: &mut Vec<Finding>) {
    const TOKENS: &[&str] = &[
        ".unwrap()",
        ".expect(",
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
    ];
    if file.class != FileClass::Library {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in TOKENS {
            let Some(at) = line.code.find(token) else {
                continue;
            };
            // Macro names must start on a word boundary (`.unwrap()` and
            // `.expect(` carry their own leading dot).
            if !token.starts_with('.') {
                let before = line.code[..at].chars().next_back();
                if before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    continue;
                }
            }
            findings.push(Finding::at(
                PANIC_FREE,
                &file.rel,
                idx + 1,
                format!(
                    "`{token}` in non-test library code — return an error or justify \
                     the invariant in lint-allow.toml (docs/LINTS.md#panic-free-library)"
                ),
            ));
        }
    }
}

/// Rule 6a — every `unsafe` site must explain, in a `// SAFETY:` comment
/// on the same or one of the three preceding lines, why its obligations
/// hold.
fn unsafe_safety_comments(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || find_word(&line.code, "unsafe").is_none() {
            continue;
        }
        let documented = file.lines[idx.saturating_sub(3)..=idx]
            .iter()
            .any(|l| l.comment.contains("SAFETY"));
        if !documented {
            findings.push(Finding::at(
                UNSAFE_AUDIT,
                &file.rel,
                idx + 1,
                "`unsafe` without a `// SAFETY:` comment on or just above the site \
                 (docs/LINTS.md#unsafe-audit)"
                    .to_string(),
            ));
        }
    }
}

/// Rule 6b — a crate with no `unsafe` anywhere must say so in its
/// `lib.rs` via `#![forbid(unsafe_code)]`, so the property is enforced by
/// the compiler rather than re-audited every review.
pub fn check_crate_forbids_unsafe(
    lib_rs_rel: &str,
    lib_rs: &SourceFile,
    crate_files: &[&SourceFile],
) -> Vec<Finding> {
    let any_unsafe = crate_files.iter().any(|f| f.mentions_unsafe());
    if any_unsafe {
        return Vec::new();
    }
    let has_forbid = lib_rs
        .lines
        .iter()
        .any(|l| l.code.contains("forbid(unsafe_code)"));
    if has_forbid {
        Vec::new()
    } else {
        vec![Finding::at(
            UNSAFE_AUDIT,
            lib_rs_rel,
            1,
            "crate is unsafe-free but lib.rs lacks `#![forbid(unsafe_code)]` \
             (docs/LINTS.md#unsafe-audit)"
                .to_string(),
        )]
    }
}

/// Rule 7 — bench payload schema. A `BENCH_*.json` without the host's
/// logical core count is uninterpretable (is 1.0x speedup an engine
/// failure or a single-core container?); on single-core hosts the
/// annotation makes the limitation explicit instead of implied.
pub fn check_bench_json(rel: &str, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let key = "\"host_logical_cores\"";
    let Some(pos) = content.find(key) else {
        findings.push(Finding::at(
            BENCH_SCHEMA,
            rel,
            1,
            "bench payload lacks \"host_logical_cores\" — record it via \
             ft_bench::output::host_json_fields() (docs/LINTS.md#bench-schema)"
                .to_string(),
        ));
        return findings;
    };
    let line = content[..pos].matches('\n').count() + 1;
    let after = &content[pos + key.len()..];
    let value: String = after
        .chars()
        .skip_while(|c| *c == ':' || c.is_whitespace())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    if value.is_empty() {
        findings.push(Finding::at(
            BENCH_SCHEMA,
            rel,
            line,
            "\"host_logical_cores\" has no integer value".to_string(),
        ));
        return findings;
    }
    if value == "1" && !content.contains("\"single_core_annotation\"") {
        findings.push(Finding::at(
            BENCH_SCHEMA,
            rel,
            line,
            "single-core measurement without \"single_core_annotation\" — annotate \
             that thread-parallel paths collapsed to serial \
             (docs/LINTS.md#bench-schema)"
                .to_string(),
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file(rel: &str, src: &str) -> SourceFile {
        SourceFile::scan(rel, src)
    }

    #[test]
    fn classification() {
        assert_eq!(classify("crates/simulator/src/engine.rs").0, FileClass::Library);
        assert_eq!(classify("crates/bench/benches/foo.rs").0, FileClass::Harness);
        assert_eq!(classify("crates/bench/src/bin/sweep.rs").0, FileClass::Bin);
        assert_eq!(classify("crates/lint/src/main.rs").0, FileClass::Bin);
        assert_eq!(classify("tests/tidy.rs").0, FileClass::Harness);
        assert_eq!(
            classify("crates/checkpoint/src/frame.rs").1.as_deref(),
            Some("checkpoint")
        );
    }

    #[test]
    fn bench_json_schema() {
        assert!(check_bench_json("BENCH_x.json", "{}").iter().any(|f| f.rule == BENCH_SCHEMA));
        assert!(check_bench_json(
            "BENCH_x.json",
            "{\"host_logical_cores\": 1}"
        )
        .iter()
        .any(|f| f.message.contains("single_core_annotation")));
        assert!(check_bench_json(
            "BENCH_x.json",
            "{\"host_logical_cores\": 1, \"single_core_annotation\": \"serial\"}"
        )
        .is_empty());
        assert!(check_bench_json("BENCH_x.json", "{\"host_logical_cores\": 8}").is_empty());
    }

    #[test]
    fn forbid_unsafe_crate_level() {
        let lib = lib_file("crates/platform/src/lib.rs", "#![forbid(unsafe_code)]\n");
        let plain = lib_file("crates/platform/src/lib.rs", "//! docs\n");
        let other = lib_file("crates/platform/src/rng.rs", "fn f() {}\n");
        assert!(check_crate_forbids_unsafe("crates/platform/src/lib.rs", &lib, &[&lib, &other])
            .is_empty());
        assert_eq!(
            check_crate_forbids_unsafe("crates/platform/src/lib.rs", &plain, &[&plain, &other])
                .len(),
            1
        );
        // A crate that does use unsafe is exempt from the forbid requirement
        // (its sites are covered by the SAFETY-comment check instead).
        let unsafe_file = lib_file(
            "crates/platform/src/rng.rs",
            "fn f() { // SAFETY: test\n unsafe { x() } }\n",
        );
        assert!(check_crate_forbids_unsafe(
            "crates/platform/src/lib.rs",
            &plain,
            &[&plain, &unsafe_file]
        )
        .is_empty());
    }
}
