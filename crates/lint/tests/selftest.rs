//! Fixture-based self-tests for every rule: one firing and one
//! non-firing snippet per rule, the lexer edge cases, and the
//! deliberately-violating fixture tree (which must drive both the library
//! pass and the CLI to a failure).

use std::path::{Path, PathBuf};
use std::process::Command;

use ft_lint::rules::{
    self, check_file, SourceFile, BAD_ALLOW, BENCH_SCHEMA, FLOAT_ACCUM, PANIC_FREE, STALE_ALLOW,
    UNORDERED_ITER, UNSAFE_AUDIT, UNSEEDED_RANDOM, WALL_CLOCK,
};

/// Scans a fixture under a result-affecting library path so every
/// crate-scoped rule participates.
fn scan_as_library(src: &str) -> SourceFile {
    SourceFile::scan("crates/simulator/src/fixture.rs", src)
}

fn rules_fired(src: &str) -> Vec<&'static str> {
    let mut fired: Vec<&'static str> = check_file(&scan_as_library(src))
        .into_iter()
        .map(|f| f.rule)
        .collect();
    fired.dedup();
    fired
}

fn fixture_dir(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

// ------------------------------------------------------------------ rule pairs

#[test]
fn wall_clock_fires_and_stays_quiet() {
    let fire = include_str!("../fixtures/rules/wall_clock_fire.rs");
    let clean = include_str!("../fixtures/rules/wall_clock_clean.rs");
    assert!(rules_fired(fire).contains(&WALL_CLOCK));
    assert_eq!(rules_fired(clean), Vec::<&str>::new());
    // The bench crate is exempt: measuring wall clock is its job.
    let bench = SourceFile::scan("crates/bench/src/fixture.rs", fire);
    assert!(check_file(&bench).iter().all(|f| f.rule != WALL_CLOCK));
}

#[test]
fn unordered_iteration_fires_and_stays_quiet() {
    let fire = include_str!("../fixtures/rules/unordered_fire.rs");
    let clean = include_str!("../fixtures/rules/unordered_clean.rs");
    assert!(rules_fired(fire).contains(&UNORDERED_ITER));
    assert_eq!(rules_fired(clean), Vec::<&str>::new());
    // Outside the result-affecting crates the rule does not apply.
    let elsewhere = SourceFile::scan("crates/abft/src/fixture.rs", fire);
    assert!(check_file(&elsewhere).iter().all(|f| f.rule != UNORDERED_ITER));
}

#[test]
fn unseeded_randomness_fires_and_stays_quiet() {
    let fire = include_str!("../fixtures/rules/unseeded_fire.rs");
    let clean = include_str!("../fixtures/rules/unseeded_clean.rs");
    assert!(rules_fired(fire).contains(&UNSEEDED_RANDOM));
    assert_eq!(rules_fired(clean), Vec::<&str>::new());
}

#[test]
fn float_accumulation_fires_and_stays_quiet() {
    let fire = include_str!("../fixtures/rules/float_fire.rs");
    let clean = include_str!("../fixtures/rules/float_clean.rs");
    assert!(rules_fired(fire).contains(&FLOAT_ACCUM));
    assert_eq!(rules_fired(clean), Vec::<&str>::new());
}

#[test]
fn panic_free_fires_and_stays_quiet() {
    let fire = include_str!("../fixtures/rules/panic_fire.rs");
    let clean = include_str!("../fixtures/rules/panic_clean.rs");
    let fired = check_file(&scan_as_library(fire));
    // Both the panic! and the .unwrap() site are reported.
    assert!(fired.iter().filter(|f| f.rule == PANIC_FREE).count() >= 2);
    assert_eq!(rules_fired(clean), Vec::<&str>::new());
    // Binaries and harnesses may panic: main() is where aborting is policy.
    let bin = SourceFile::scan("crates/simulator/src/main.rs", fire);
    assert!(check_file(&bin).iter().all(|f| f.rule != PANIC_FREE));
}

#[test]
fn unsafe_audit_fires_and_stays_quiet() {
    let fire = include_str!("../fixtures/rules/unsafe_fire.rs");
    let clean = include_str!("../fixtures/rules/unsafe_clean.rs");
    assert!(rules_fired(fire).contains(&UNSAFE_AUDIT));
    assert_eq!(rules_fired(clean), Vec::<&str>::new());
}

#[test]
fn bench_schema_fires_and_stays_quiet() {
    let missing = rules::check_bench_json("BENCH_x.json", "{\"speedup\": 2.0}");
    assert!(missing.iter().any(|f| f.rule == BENCH_SCHEMA));
    let unannotated =
        rules::check_bench_json("BENCH_x.json", "{\"host_logical_cores\": 1}");
    assert!(unannotated
        .iter()
        .any(|f| f.rule == BENCH_SCHEMA && f.message.contains("single_core_annotation")));
    let annotated = rules::check_bench_json(
        "BENCH_x.json",
        "{\"host_logical_cores\": 1, \"single_core_annotation\": \"serial fallback\"}",
    );
    assert!(annotated.is_empty());
    let multicore = rules::check_bench_json("BENCH_x.json", "{\"host_logical_cores\": 64}");
    assert!(multicore.is_empty());
}

// ------------------------------------------------------------------ lexer edges

#[test]
fn lexer_edge_cases_produce_no_findings() {
    // Nested block comments, raw strings holding unwrap()/thread_rng(),
    // multi-line strings, char literals and a cfg(test) module: all the
    // look-alike violations must be invisible to every rule.
    let tricky = include_str!("../fixtures/lexer/tricky.rs");
    assert_eq!(rules_fired(tricky), Vec::<&str>::new());

    let lines = ft_lint::lexer::scan(tricky);
    // The nested block comment is fully stripped from the code view.
    assert!(lines.iter().all(|l| !l.code.contains("thread_rng")));
    assert!(lines.iter().all(|l| !l.code.contains("Instant") || l.in_test));
    // The raw string body is blanked but the line is still code.
    let raw_line = lines
        .iter()
        .find(|l| l.raw.contains("r#\""))
        .expect("raw-string line present");
    assert!(!raw_line.code.contains("unwrap"));
    assert!(raw_line.code.contains("let raw"));
    // cfg(test) region covers the unwrap in tests and ends at the brace.
    let test_unwrap = lines
        .iter()
        .find(|l| l.raw.contains(".next().unwrap()"))
        .expect("test unwrap line present");
    assert!(test_unwrap.in_test);
    let after = lines
        .iter()
        .find(|l| l.raw.contains("fn after_tests"))
        .expect("post-test fn present");
    assert!(!after.in_test, "test region must close at the module brace");
}

// ------------------------------------------------------------ violating tree

#[test]
fn violating_tree_trips_every_rule() {
    let root = fixture_dir("violating");
    let report = ft_lint::lint_workspace(&root, None).expect("fixture tree is readable");
    assert!(!report.is_clean());
    let fired: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    for rule in [
        WALL_CLOCK,
        UNORDERED_ITER,
        UNSEEDED_RANDOM,
        FLOAT_ACCUM,
        PANIC_FREE,
        UNSAFE_AUDIT,
        BENCH_SCHEMA,
        STALE_ALLOW,
        BAD_ALLOW,
    ] {
        assert!(
            fired.contains(&rule),
            "expected `{rule}` to fire on the violating tree; got:\n{}",
            report.render()
        );
    }
    // Both unsafe-audit shapes fire: the undocumented site and the
    // missing crate-level forbid.
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == UNSAFE_AUDIT && f.message.contains("SAFETY")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == UNSAFE_AUDIT && f.message.contains("forbid(unsafe_code)")));
}

#[test]
fn clean_tree_passes_with_a_live_allowlist() {
    let root = fixture_dir("clean_tree");
    let report = ft_lint::lint_workspace(&root, None).expect("fixture tree is readable");
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.suppressed, 1, "the documented expect is suppressed");
}

// ------------------------------------------------------------------ CLI gate

#[test]
fn cli_exits_nonzero_on_violations_and_zero_on_clean() {
    let bin = env!("CARGO_BIN_EXE_ft-lint");

    let bad = Command::new(bin)
        .arg("--root")
        .arg(fixture_dir("violating"))
        .output()
        .expect("ft-lint runs");
    assert!(!bad.status.success(), "violating tree must fail the CLI");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(
        stdout.contains("[wall-clock-in-library]"),
        "diagnostics are file:line-prefixed and rule-tagged:\n{stdout}"
    );

    let good = Command::new(bin)
        .arg("--root")
        .arg(fixture_dir("clean_tree"))
        .output()
        .expect("ft-lint runs");
    assert!(
        good.status.success(),
        "clean tree must pass the CLI:\n{}",
        String::from_utf8_lossy(&good.stdout)
    );
}
