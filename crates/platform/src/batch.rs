//! Lane-indexed batch failure sampling — the platform substrate of the
//! structure-of-arrays simulation engine in `ft-sim`.
//!
//! The scalar simulator consumes one [`crate::failure::FailureSource`] per
//! replication.  The batch engine advances many replications ("lanes") of the
//! same parameter point in lockstep, so it needs the same three source
//! flavours, indexed by lane:
//!
//! * [`BatchFailureStream`] — one independent sampling stream per lane,
//!   bit-identical per lane to a [`crate::failure::FailureStream`] seeded with
//!   the same seed;
//! * antithetic mode on the same type — every lane draws the antithetic
//!   partner of its seed's sequence, exactly like
//!   [`crate::trace::TraceBuffer::reset_antithetic`];
//! * [`BatchTraceBuffer`] / [`BatchTraceCursor`] — batch replay over one
//!   recorded [`crate::trace::TraceBuffer`] per lane (common random numbers
//!   across protocol executors, lane by lane).
//!
//! The bit-exactness contract of the batch engine rests on a simple
//! observation: the per-lane sequence of failure times is a pure function of
//! `(model, seed, antithetic)` and of *how many* times the lane has been
//! asked for its next failure — never of what other lanes do.  Each type here
//! keeps fully independent per-lane generator state, so interleaving lanes in
//! any order yields the same per-lane sequences as running them alone.

use crate::failure::{FailureModel, SourceState};
use crate::rng::{AntitheticRng, DeterministicRng, Xoshiro256};
use crate::trace::TraceBuffer;

/// The open-uniform grid step `2⁻⁵³` of [`DeterministicRng::next_f64`].
const UNIFORM_SCALE: f64 = 1.0 / (1u64 << 53) as f64;

/// A lane-indexed source of *absolute* failure times: the batch counterpart
/// of [`crate::failure::FailureSource`].
///
/// Implementations must keep per-lane state independent: the sequence a lane
/// yields may depend only on the lane's own history, so that any interleaving
/// of lane queries reproduces the scalar per-lane sequences bit for bit.
pub trait BatchFailureSource {
    /// Number of lanes currently backed by the source.
    fn lanes(&self) -> usize;

    /// Absolute time of the next failure on `lane` (advances that lane only).
    fn next_failure(&mut self, lane: usize) -> f64;

    /// Mean inter-arrival time of the underlying model (the platform MTBF).
    fn mean_interarrival(&self) -> f64;

    /// Fills `out[lane]` with the next failure time of every lane in
    /// `0..lanes`, advancing each lane by exactly one draw — bit-identical
    /// to, and interchangeable with, one [`BatchFailureSource::next_failure`]
    /// call per lane in ascending lane order.
    ///
    /// The default is that scalar loop; sources backed by single-uniform
    /// inverse-CDF models override it with a **columnar** pipeline (draw the
    /// raw u64s, map to open uniforms, run the `ln`/`powf` inverse CDF over a
    /// contiguous column, accumulate absolute times) that performs the same
    /// per-lane float operations in the same order, so the override is
    /// equally bit-exact while the transform loop vectorises.
    fn fill_next_failures(&mut self, lanes: usize, out: &mut [f64]) {
        for (lane, slot) in out[..lanes].iter_mut().enumerate() {
            *slot = self.next_failure(lane);
        }
    }
}

/// One independent failure-time stream per lane.
///
/// Lane `i` reproduces, bit for bit, the sequence of a scalar
/// [`crate::failure::FailureStream`] built with the same model and
/// `seeds[i]` — or, in antithetic mode, the sequence a
/// [`crate::trace::TraceBuffer::reset_antithetic`] replay of `seeds[i]`
/// yields.  [`BatchFailureStream::reset`] keeps the lane allocations, so a
/// sweep point reuses one stream across all its replication blocks.
#[derive(Debug, Clone)]
pub struct BatchFailureStream<M: FailureModel> {
    model: M,
    rngs: Vec<Xoshiro256>,
    now: Vec<f64>,
    states: Vec<SourceState>,
    antithetic: bool,
}

impl<M: FailureModel> BatchFailureStream<M> {
    /// Creates a stream with one lane per seed.
    pub fn new(model: M, seeds: &[u64]) -> Self {
        let mut stream = Self {
            model,
            rngs: Vec::with_capacity(seeds.len()),
            now: Vec::with_capacity(seeds.len()),
            states: Vec::with_capacity(seeds.len()),
            antithetic: false,
        };
        stream.reset(seeds);
        stream
    }

    /// Restarts every lane on a fresh sequence (lane `i` from `seeds[i]`),
    /// keeping allocations.  The lane count follows `seeds.len()`.
    pub fn reset(&mut self, seeds: &[u64]) {
        self.rngs.clear();
        self.rngs.extend(seeds.iter().map(|&s| Xoshiro256::seed_from_u64(s)));
        self.now.clear();
        self.now.resize(seeds.len(), 0.0);
        self.states.clear();
        self.states.resize(seeds.len(), SourceState::default());
        self.antithetic = false;
    }

    /// Restarts every lane on the **antithetic partner** of its seed's
    /// sequence: each uniform is flipped to `1 − u` before the inter-arrival
    /// transform, exactly as the scalar antithetic replay does.
    pub fn reset_antithetic(&mut self, seeds: &[u64]) {
        self.reset(seeds);
        self.antithetic = true;
    }

    /// Whether the current sequences are antithetic replays.
    #[inline]
    pub fn is_antithetic(&self) -> bool {
        self.antithetic
    }

    /// The underlying inter-arrival model.
    #[inline]
    pub fn model(&self) -> &M {
        &self.model
    }
}

impl<M: FailureModel> BatchFailureSource for BatchFailureStream<M> {
    #[inline]
    fn lanes(&self) -> usize {
        self.rngs.len()
    }

    #[inline]
    fn next_failure(&mut self, lane: usize) -> f64 {
        // Route through the stateful hook (bit-identical to the historical
        // `now += next_interarrival` for i.i.d. models, which never touch
        // their lane's `SourceState`); per-lane state keeps the lanes fully
        // independent, exactly like the per-lane RNGs.
        self.now[lane] = if self.antithetic {
            self.model.next_failure_time(
                self.now[lane],
                &mut self.states[lane],
                &mut AntitheticRng(&mut self.rngs[lane]),
            )
        } else {
            self.model
                .next_failure_time(self.now[lane], &mut self.states[lane], &mut self.rngs[lane])
        };
        self.now[lane]
    }

    #[inline]
    fn mean_interarrival(&self) -> f64 {
        self.model.mean()
    }

    /// Columnar bulk draw: raw u64 column (antithetic complement applied on
    /// the raw bits, exactly like [`AntitheticRng`]) → open-uniform column →
    /// one in-place inverse-CDF transform → absolute-time accumulation.
    /// Per lane this performs the identical float operations in the identical
    /// order as [`BatchFailureSource::next_failure`], so it is bit-exact; the
    /// model dispatch happens once per column instead of once per lane.
    fn fill_next_failures(&mut self, lanes: usize, out: &mut [f64]) {
        debug_assert!(lanes <= self.rngs.len());
        if !self.model.single_uniform() {
            for (lane, slot) in out[..lanes].iter_mut().enumerate() {
                *slot = self.next_failure(lane);
            }
            return;
        }
        if self.antithetic {
            for (u, rng) in out[..lanes].iter_mut().zip(&mut self.rngs) {
                *u = 1.0 - ((!rng.next_u64()) >> 11) as f64 * UNIFORM_SCALE;
            }
        } else {
            for (u, rng) in out[..lanes].iter_mut().zip(&mut self.rngs) {
                *u = 1.0 - (rng.next_u64() >> 11) as f64 * UNIFORM_SCALE;
            }
        }
        self.model.interarrivals_from_open(&mut out[..lanes]);
        for (t, now) in out[..lanes].iter_mut().zip(&mut self.now) {
            *now += *t;
            *t = *now;
        }
    }
}

/// One recording [`TraceBuffer`] per lane — batch common-random-numbers
/// replay.
///
/// Resetting seeds every lane's buffer; [`BatchTraceBuffer::cursors`] then
/// hands out a lane-indexed replay cursor.  Taking cursors repeatedly replays
/// the same recorded sequences, so several protocol executors can face the
/// same per-lane adversity (the batch analogue of replaying one scalar
/// [`TraceBuffer`] to several executors).
#[derive(Debug, Clone)]
pub struct BatchTraceBuffer<M: FailureModel + Clone> {
    buffers: Vec<TraceBuffer<M>>,
    model: M,
}

impl<M: FailureModel + Clone> BatchTraceBuffer<M> {
    /// Creates a buffer with one recording lane per seed.
    pub fn new(model: M, seeds: &[u64]) -> Self {
        Self {
            buffers: seeds
                .iter()
                .map(|&s| TraceBuffer::new(model.clone(), s))
                .collect(),
            model,
        }
    }

    /// Number of lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.buffers.len()
    }

    /// Starts a fresh recorded sequence on every lane (lane `i` from
    /// `seeds[i]`), keeping each lane's allocation where the lane count is
    /// unchanged.
    pub fn reset(&mut self, seeds: &[u64]) {
        self.resize_lanes(seeds.len());
        for (buffer, &seed) in self.buffers.iter_mut().zip(seeds) {
            buffer.reset(seed);
        }
    }

    /// Starts the antithetic partner sequence on every lane.
    pub fn reset_antithetic(&mut self, seeds: &[u64]) {
        self.resize_lanes(seeds.len());
        for (buffer, &seed) in self.buffers.iter_mut().zip(seeds) {
            buffer.reset_antithetic(seed);
        }
    }

    fn resize_lanes(&mut self, lanes: usize) {
        if self.buffers.len() > lanes {
            self.buffers.truncate(lanes);
        }
        while self.buffers.len() < lanes {
            self.buffers.push(TraceBuffer::new(self.model.clone(), 0));
        }
    }

    /// The recording buffer of one lane.
    #[inline]
    pub fn lane(&mut self, lane: usize) -> &mut TraceBuffer<M> {
        &mut self.buffers[lane]
    }

    /// A lane-indexed replay cursor positioned at the start of every lane's
    /// sequence.  Like the scalar [`TraceBuffer::cursor`], replaying may
    /// extend the recordings, so the cursor borrows the buffer mutably.
    pub fn cursors(&mut self) -> BatchTraceCursor<'_, M> {
        let lanes = self.buffers.len();
        BatchTraceCursor {
            buffer: self,
            next: vec![0; lanes],
        }
    }
}

/// A lane-indexed replay position into a [`BatchTraceBuffer`].
#[derive(Debug)]
pub struct BatchTraceCursor<'a, M: FailureModel + Clone> {
    buffer: &'a mut BatchTraceBuffer<M>,
    next: Vec<usize>,
}

impl<M: FailureModel + Clone> BatchFailureSource for BatchTraceCursor<'_, M> {
    #[inline]
    fn lanes(&self) -> usize {
        self.next.len()
    }

    #[inline]
    fn next_failure(&mut self, lane: usize) -> f64 {
        let index = self.next[lane];
        self.next[lane] += 1;
        self.buffer.buffers[lane].time(index)
    }

    #[inline]
    fn mean_interarrival(&self) -> f64 {
        self.buffer.model.mean()
    }

    /// Columnar bulk replay: lanes whose next index is already recorded read
    /// the memoised time; lanes sitting exactly at their recording frontier
    /// contribute one open uniform to a contiguous column that goes through
    /// the inverse CDF in a single [`FailureModel::interarrivals_from_open`]
    /// call before each gap is committed back in lane order.  Both halves
    /// replicate the scalar [`TraceBuffer::time`] float operations exactly.
    fn fill_next_failures(&mut self, lanes: usize, out: &mut [f64]) {
        debug_assert!(lanes <= self.next.len());
        if !self.buffer.model.single_uniform() {
            for (lane, slot) in out[..lanes].iter_mut().enumerate() {
                *slot = self.next_failure(lane);
            }
            return;
        }
        // Lanes needing exactly one fresh draw, in ascending lane order, and
        // the open uniform each one drew.
        let mut pending: Vec<u32> = Vec::new();
        let mut open: Vec<f64> = Vec::new();
        for (lane, slot) in out[..lanes].iter_mut().enumerate() {
            let index = self.next[lane];
            self.next[lane] += 1;
            let buffer = &mut self.buffer.buffers[lane];
            let sampled = buffer.sampled();
            if index < sampled.len() {
                *slot = sampled[index];
            } else if index == sampled.len() {
                pending.push(lane as u32);
                open.push(buffer.next_open());
            } else {
                // Unreachable through this trait (each call advances a lane
                // by one), kept as a scalar safety net.
                *slot = buffer.time(index);
            }
        }
        if !pending.is_empty() {
            self.buffer.model.interarrivals_from_open(&mut open);
            for (&lane, &gap) in pending.iter().zip(&open) {
                out[lane as usize] = self.buffer.buffers[lane as usize].push_gap(gap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{ExponentialFailures, FailureSource, FailureStream, WeibullFailures};
    use crate::rng::SeedStream;
    use crate::units;

    fn lane_seeds(n: usize) -> Vec<u64> {
        let mut seeds = vec![0u64; n];
        SeedStream::new(0xBA7C4).fill(&mut seeds);
        seeds
    }

    #[test]
    fn batch_stream_lanes_match_scalar_streams_bit_for_bit() {
        let model = ExponentialFailures::new(units::hours(2.0)).unwrap();
        let seeds = lane_seeds(7);
        let mut batch = BatchFailureStream::new(model, &seeds);
        assert_eq!(batch.lanes(), 7);
        let mut scalars: Vec<_> = seeds.iter().map(|&s| FailureStream::new(model, s)).collect();
        // Interleave lanes in a scrambled order: per-lane sequences must not
        // care.
        for round in 0..50 {
            for lane in [3usize, 0, 6, 1, 5, 2, 4] {
                assert_eq!(
                    batch.next_failure(lane).to_bits(),
                    scalars[lane].next_failure().to_bits(),
                    "lane {lane} round {round}"
                );
            }
        }
    }

    #[test]
    fn batch_stream_antithetic_matches_scalar_antithetic_replay() {
        let model = WeibullFailures::new(units::hours(1.0), 0.7).unwrap();
        let seeds = lane_seeds(5);
        let mut batch = BatchFailureStream::new(model, &seeds);
        batch.reset_antithetic(&seeds);
        assert!(batch.is_antithetic());
        for (lane, &seed) in seeds.iter().enumerate() {
            let mut scalar = TraceBuffer::new(model, seed);
            scalar.reset_antithetic(seed);
            let mut cursor = scalar.cursor();
            for i in 0..40 {
                assert_eq!(
                    batch.next_failure(lane).to_bits(),
                    FailureSource::next_failure(&mut cursor).to_bits(),
                    "lane {lane} index {i}"
                );
            }
        }
    }

    #[test]
    fn batch_stream_reset_reuses_lanes_and_restarts_sequences() {
        let model = ExponentialFailures::new(100.0).unwrap();
        let seeds = lane_seeds(4);
        let mut batch = BatchFailureStream::new(model, &seeds);
        let first: Vec<u64> = (0..4).map(|l| batch.next_failure(l).to_bits()).collect();
        batch.reset(&seeds);
        let again: Vec<u64> = (0..4).map(|l| batch.next_failure(l).to_bits()).collect();
        assert_eq!(first, again);
        // Ragged tail: resetting with fewer seeds shrinks the lane count.
        batch.reset(&seeds[..2]);
        assert_eq!(batch.lanes(), 2);
        assert_eq!(batch.next_failure(0).to_bits(), first[0]);
        assert!((batch.mean_interarrival() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn batch_trace_cursors_replay_like_scalar_cursors() {
        let model = ExponentialFailures::new(units::minutes(45.0)).unwrap();
        let seeds = lane_seeds(6);
        let mut batch = BatchTraceBuffer::new(model, &seeds);
        assert_eq!(batch.lanes(), 6);
        // First replay records, second replay must be bit-identical, and both
        // must match a scalar TraceBuffer per lane.
        let first: Vec<Vec<u64>> = {
            let mut cursors = batch.cursors();
            (0..6)
                .map(|lane| (0..30).map(|_| cursors.next_failure(lane).to_bits()).collect())
                .collect()
        };
        let second: Vec<Vec<u64>> = {
            let mut cursors = batch.cursors();
            assert_eq!(cursors.lanes(), 6);
            (0..6)
                .map(|lane| (0..30).map(|_| cursors.next_failure(lane).to_bits()).collect())
                .collect()
        };
        assert_eq!(first, second);
        for (lane, &seed) in seeds.iter().enumerate() {
            let mut scalar = TraceBuffer::new(model, seed);
            let mut cursor = scalar.cursor();
            for (i, &bits) in first[lane].iter().enumerate() {
                assert_eq!(
                    bits,
                    FailureSource::next_failure(&mut cursor).to_bits(),
                    "lane {lane} index {i}"
                );
            }
        }
    }

    #[test]
    fn batch_trace_reset_grows_and_shrinks_lanes() {
        let model = ExponentialFailures::new(units::hours(1.0)).unwrap();
        let seeds = lane_seeds(3);
        let mut batch = BatchTraceBuffer::new(model, &seeds[..1]);
        batch.reset(&seeds);
        assert_eq!(batch.lanes(), 3);
        let reference = TraceBuffer::new(model, seeds[2]).time(10);
        assert_eq!(batch.lane(2).time(10).to_bits(), reference.to_bits());
        batch.reset_antithetic(&seeds[..2]);
        assert_eq!(batch.lanes(), 2);
        assert!(batch.lane(0).is_antithetic());
        let mut cursors = batch.cursors();
        assert!((cursors.mean_interarrival() - units::hours(1.0)).abs() < 1e-12);
        assert!(cursors.next_failure(1) > 0.0);
    }

    #[test]
    fn seed_stream_fill_matches_iteration() {
        let mut by_fill = vec![0u64; 10];
        SeedStream::new(99).fill(&mut by_fill);
        let by_iter: Vec<u64> = SeedStream::new(99).take(10).collect();
        assert_eq!(by_fill, by_iter);
    }

    /// Drives `bulk` through the columnar fill and `scalar` through one
    /// `next_failure` per lane, asserting bit-identity every round.
    fn assert_fill_matches_scalar<B, S>(bulk: &mut B, scalar: &mut S, lanes: usize, rounds: usize)
    where
        B: BatchFailureSource,
        S: BatchFailureSource,
    {
        let mut out = vec![0.0f64; lanes];
        for round in 0..rounds {
            bulk.fill_next_failures(lanes, &mut out);
            for (lane, &got) in out.iter().enumerate() {
                assert_eq!(
                    got.to_bits(),
                    scalar.next_failure(lane).to_bits(),
                    "round {round} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn bulk_fill_falls_back_to_scalar_for_multi_uniform_models() {
        use crate::failure::FailureModel;
        use crate::rng::DeterministicRng;

        // A model that hides its single-uniform structure: the columnar
        // overrides must take their scalar fallback branch and still match.
        #[derive(Debug, Clone, Copy)]
        struct Opaque(ExponentialFailures);
        impl FailureModel for Opaque {
            fn next_interarrival(&self, rng: &mut dyn DeterministicRng) -> f64 {
                self.0.next_interarrival(rng)
            }
            fn mean(&self) -> f64 {
                self.0.mean()
            }
            fn name(&self) -> &'static str {
                "opaque"
            }
        }

        let model = Opaque(ExponentialFailures::new(units::hours(3.0)).unwrap());
        assert!(!crate::failure::FailureModel::single_uniform(&model));
        let seeds = lane_seeds(9);
        let mut bulk = BatchFailureStream::new(model, &seeds);
        let mut scalar = BatchFailureStream::new(model, &seeds);
        assert_fill_matches_scalar(&mut bulk, &mut scalar, seeds.len(), 6);

        let mut bulk_trace = BatchTraceBuffer::new(model, &seeds);
        let mut scalar_trace = BatchTraceBuffer::new(model, &seeds);
        assert_fill_matches_scalar(
            &mut bulk_trace.cursors(),
            &mut scalar_trace.cursors(),
            seeds.len(),
            6,
        );
    }

    mod bulk_fill_properties {
        use super::*;
        use crate::failure::FailureSpec;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The tentpole bit-exactness contract: the columnar
            /// `fill_next_failures` path equals one scalar `next_failure`
            /// per lane, bit for bit, across distribution families, lane
            /// widths, and all three source flavours (fresh, antithetic,
            /// partially memoised replay).
            #[test]
            fn bulk_fill_is_bit_identical_to_scalar_draws(
                family in 0u8..2,
                shape in 0.5f64..1.6,
                lanes in 1usize..48,
                rounds in 1usize..6,
                master in 0u64..u64::MAX,
                mode in 0u8..3,
            ) {
                let spec = if family == 0 {
                    FailureSpec::Exponential
                } else {
                    FailureSpec::Weibull { shape }
                };
                let model = spec.build(units::hours(2.0)).unwrap();
                let mut seeds = vec![0u64; lanes];
                SeedStream::new(master).fill(&mut seeds);
                match mode {
                    0 => {
                        let mut bulk = BatchFailureStream::new(model, &seeds);
                        let mut scalar = BatchFailureStream::new(model, &seeds);
                        assert_fill_matches_scalar(&mut bulk, &mut scalar, lanes, rounds);
                    }
                    1 => {
                        let mut bulk = BatchFailureStream::new(model, &seeds);
                        let mut scalar = BatchFailureStream::new(model, &seeds);
                        bulk.reset_antithetic(&seeds);
                        scalar.reset_antithetic(&seeds);
                        assert_fill_matches_scalar(&mut bulk, &mut scalar, lanes, rounds);
                    }
                    _ => {
                        let mut bulk_trace = BatchTraceBuffer::new(model, &seeds);
                        let mut scalar_trace = BatchTraceBuffer::new(model, &seeds);
                        // Pre-memoise a ragged prefix on some lanes so the
                        // bulk path mixes recorded reads with frontier
                        // extensions inside one fill.
                        for lane in 0..lanes {
                            if lane % 3 == 0 {
                                bulk_trace.lane(lane).time(1 + lane % 4);
                            }
                        }
                        assert_fill_matches_scalar(
                            &mut bulk_trace.cursors(),
                            &mut scalar_trace.cursors(),
                            lanes,
                            rounds,
                        );
                    }
                }
            }
        }
    }
}
