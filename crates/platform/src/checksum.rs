//! Checksum generators for the checkpoint frame pipeline.
//!
//! Every frame the durable checkpoint pipeline (`ft-ckpt`) writes carries a
//! checksum so that restores can *verify* rather than trust the stored
//! image.  [`ChecksumGen`] is the pluggable generator behind the frame
//! writer: [`Crc32`] is the real thing (CRC-32/ISO-HDLC, the polynomial of
//! zlib and Ethernet), while [`NullChecksum`] is the identity generator the
//! micro-benchmarks use to isolate the cost of checksumming from the cost of
//! framing and I/O.
//!
//! Generators are streaming — `reset`, then any number of `push` calls,
//! then `value` — so the frame writer can checksum chunked payloads without
//! buffering them, and the same generator instance is reused across frames.

/// A streaming 32-bit checksum generator.
///
/// Implementations must be pure functions of the pushed byte sequence:
/// pushing the same bytes in any chunking produces the same value, and
/// `reset` returns the generator to its initial state.
pub trait ChecksumGen {
    /// Returns the generator to its initial state.
    fn reset(&mut self);

    /// Feeds bytes into the running checksum.
    fn push(&mut self, data: &[u8]);

    /// The checksum of everything pushed since the last reset.
    fn value(&self) -> u32;

    /// Convenience: the checksum of one contiguous byte slice (resets the
    /// generator first, so the running state is consumed).
    fn checksum_of(&mut self, data: &[u8]) -> u32 {
        self.reset();
        self.push(data);
        self.value()
    }

    /// Short human-readable name of the algorithm.
    fn name(&self) -> &'static str;
}

/// The CRC-32/ISO-HDLC lookup table (reflected polynomial `0xEDB88320`),
/// built at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32/ISO-HDLC (a.k.a. the zlib/PNG/Ethernet CRC-32): init `0xFFFFFFFF`,
/// reflected polynomial `0xEDB88320`, final XOR `0xFFFFFFFF`.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh generator.
    pub fn new() -> Self {
        Self { state: !0 }
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl ChecksumGen for Crc32 {
    #[inline]
    fn reset(&mut self) {
        self.state = !0;
    }

    fn push(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    #[inline]
    fn value(&self) -> u32 {
        !self.state
    }

    fn name(&self) -> &'static str {
        "crc32"
    }
}

/// The identity generator: every checksum is zero.  Frames written with it
/// verify structurally (lengths, magic, frame kinds) but not byte-exactly —
/// it exists so benchmarks can measure the pipeline with checksumming
/// subtracted out.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullChecksum;

impl ChecksumGen for NullChecksum {
    #[inline]
    fn reset(&mut self) {}

    #[inline]
    fn push(&mut self, _data: &[u8]) {}

    #[inline]
    fn value(&self) -> u32 {
        0
    }

    fn name(&self) -> &'static str {
        "null"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_check_vector() {
        // The canonical CRC-32/ISO-HDLC check value.
        let mut c = Crc32::new();
        assert_eq!(c.checksum_of(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_of_empty_input_is_zero() {
        let mut c = Crc32::default();
        assert_eq!(c.checksum_of(b""), 0);
    }

    #[test]
    fn chunking_does_not_change_the_checksum() {
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let mut whole = Crc32::new();
        let one = whole.checksum_of(&data);
        let mut chunked = Crc32::new();
        chunked.reset();
        for chunk in data.chunks(37) {
            chunked.push(chunk);
        }
        assert_eq!(chunked.value(), one);
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let mut c = Crc32::new();
        let first = c.checksum_of(b"hello");
        c.push(b"more bytes");
        c.reset();
        c.push(b"hello");
        assert_eq!(c.value(), first);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = vec![0x5Au8; 256];
        let mut c = Crc32::new();
        let clean = c.checksum_of(&data);
        for bit in [0usize, 7, 100, 2047] {
            let mut flipped = data.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(c.checksum_of(&flipped), clean, "bit {bit}");
        }
    }

    #[test]
    fn null_checksum_is_always_zero() {
        let mut n = NullChecksum;
        assert_eq!(n.checksum_of(b"anything"), 0);
        n.push(b"more");
        assert_eq!(n.value(), 0);
        assert_eq!(n.name(), "null");
        assert_eq!(Crc32::new().name(), "crc32");
    }
}
