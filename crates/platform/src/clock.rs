//! The sanctioned measurement stopwatch.
//!
//! Simulated results in this workspace must be a pure function of their
//! seeds — that is what the CRN trace replay, the batch-vs-scalar oracle
//! and the crash-resume suites certify, and what the `ft-lint`
//! `wall-clock-in-library` rule enforces at the source level.  But the
//! workspace also *measures* itself (the ABFT overhead factor `φ`, the
//! `Recons_ABFT` reconstruction time, the checkpoint pipeline's
//! [`GenerationCost`] ledger), and those measurements need a real clock.
//!
//! [`Stopwatch`] is the one place library code may touch
//! `std::time::Instant` (carrying the single `wall-clock-in-library`
//! allowlist entry).  The contract that keeps it safe:
//!
//! * stopwatch readings are **measurement-only** — they flow into reports
//!   (`OverheadReport`, `ReconstructionOutcome`, `GenerationCost`) and
//!   never into simulated state, periods, seeds or control flow;
//! * callers that need determinism inject [`Stopwatch::manual`], whose
//!   elapsed time advances only by explicit [`Stopwatch::advance`] calls,
//!   so tests can pin measured fields to exact values.
//!
//! [`GenerationCost`]: https://docs.rs/ft-ckpt
//!
//! ```
//! use ft_platform::clock::Stopwatch;
//!
//! let mut manual = Stopwatch::manual();
//! manual.advance(1.5);
//! assert_eq!(manual.elapsed_seconds(), 1.5);
//!
//! let wall = Stopwatch::start();
//! assert!(wall.elapsed_seconds() >= 0.0);
//! ```

use std::time::Instant;

/// A seconds-resolution stopwatch: wall-clock by default, manually driven
/// for deterministic tests.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Inner);

#[derive(Debug, Clone, Copy)]
enum Inner {
    /// Real elapsed time since construction.
    Wall(Instant),
    /// Injected time: elapsed seconds advanced explicitly by the caller.
    Manual { elapsed: f64 },
}

impl Stopwatch {
    /// Starts a wall-clock stopwatch.
    pub fn start() -> Self {
        Self(Inner::Wall(Instant::now()))
    }

    /// A manually-driven stopwatch starting at zero elapsed seconds.
    pub fn manual() -> Self {
        Self(Inner::Manual { elapsed: 0.0 })
    }

    /// Advances a manual stopwatch by `seconds`. On a wall-clock
    /// stopwatch this is a no-op (real time cannot be steered); mixing
    /// the two modes is a caller bug flagged in debug builds.
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "stopwatches cannot run backwards");
        match &mut self.0 {
            Inner::Manual { elapsed } => *elapsed += seconds,
            Inner::Wall(_) => {
                debug_assert!(false, "advance() called on a wall-clock stopwatch");
            }
        }
    }

    /// Elapsed seconds since construction (wall) or the sum of
    /// [`Stopwatch::advance`] calls (manual).
    pub fn elapsed_seconds(&self) -> f64 {
        match &self.0 {
            Inner::Wall(start) => start.elapsed().as_secs_f64(),
            Inner::Manual { elapsed } => *elapsed,
        }
    }

    /// Whether this stopwatch reads real time.
    pub fn is_wall(&self) -> bool {
        matches!(self.0, Inner::Wall(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        assert!(sw.is_wall());
        let a = sw.elapsed_seconds();
        let b = sw.elapsed_seconds();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn manual_stopwatch_is_injected_time() {
        let mut sw = Stopwatch::manual();
        assert!(!sw.is_wall());
        assert_eq!(sw.elapsed_seconds(), 0.0);
        sw.advance(0.25);
        sw.advance(1.0);
        assert_eq!(sw.elapsed_seconds(), 1.25);
    }
}
