//! Description of a cluster (a set of nodes) and its aggregate reliability.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_positive, PlatformError, Result};
use crate::node::Node;
use crate::units;

/// A homogeneous-or-not collection of nodes, with the derived quantities the
/// fault-tolerance analysis needs: aggregate MTBF and total memory.
///
/// The central relation is the one the paper uses throughout (Section IV-B2):
/// if the platform comprises `N` identical resources of individual MTBF
/// `µ_ind`, the platform MTBF is `µ = µ_ind / N`.  For heterogeneous nodes we
/// use the general form `1/µ = Σ 1/µ_i` (failure rates add).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    nodes: Vec<Node>,
}

impl Cluster {
    /// Builds a cluster from an explicit list of nodes.
    pub fn new(nodes: Vec<Node>) -> Result<Self> {
        if nodes.is_empty() {
            return Err(PlatformError::EmptyCluster);
        }
        Ok(Self { nodes })
    }

    /// Builds a homogeneous cluster of `count` nodes, each with the given
    /// individual MTBF (seconds) and memory (bytes).
    pub fn homogeneous(count: usize, node_mtbf: f64, node_memory: f64) -> Result<Self> {
        if count == 0 {
            return Err(PlatformError::EmptyCluster);
        }
        ensure_positive("node_mtbf", node_mtbf)?;
        ensure_positive("node_memory", node_memory)?;
        let nodes = (0..count)
            .map(|id| Node {
                id,
                mtbf: node_mtbf,
                memory: node_memory,
                speed: 1.0,
            })
            .collect();
        Ok(Self { nodes })
    }

    /// Builds the platform used in the paper's weak-scaling study
    /// (Section V-C): the *platform* MTBF is given at a reference node count
    /// and scales as `1/N`, memory per node is fixed.
    ///
    /// `platform_mtbf_at_ref` is the platform-level MTBF observed with
    /// `reference_nodes` nodes (e.g. 1 day at 10,000 nodes); the individual
    /// node MTBF is recovered as `platform_mtbf_at_ref * reference_nodes`.
    pub fn weak_scaling(
        count: usize,
        reference_nodes: usize,
        platform_mtbf_at_ref: f64,
        node_memory: f64,
    ) -> Result<Self> {
        ensure_positive("reference_nodes", reference_nodes as f64)?;
        ensure_positive("platform_mtbf_at_ref", platform_mtbf_at_ref)?;
        let node_mtbf = platform_mtbf_at_ref * reference_nodes as f64;
        Self::homogeneous(count, node_mtbf, node_memory)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster is empty (never true for a constructed cluster).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable view of the nodes.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Returns a node by id.
    pub fn node(&self, id: usize) -> Result<&Node> {
        self.nodes.get(id).ok_or(PlatformError::RankOutOfRange {
            rank: id,
            size: self.nodes.len(),
        })
    }

    /// Aggregate platform MTBF in seconds: `1/µ = Σ 1/µ_i`.
    pub fn platform_mtbf(&self) -> f64 {
        let total_rate: f64 = self.nodes.iter().map(Node::failure_rate).sum();
        1.0 / total_rate
    }

    /// Total memory of the platform in bytes.
    pub fn total_memory(&self) -> f64 {
        self.nodes.iter().map(|n| n.memory).sum()
    }

    /// Aggregate compute speed (sum of node speeds, nominal node = 1.0).
    pub fn total_speed(&self) -> f64 {
        self.nodes.iter().map(|n| n.speed).sum()
    }

    /// Expected number of failures over a duration `t` (seconds), i.e.
    /// `t / µ` — the first-order quantity the model multiplies by the time
    /// lost per failure.
    pub fn expected_failures(&self, t: f64) -> f64 {
        t / self.platform_mtbf()
    }

    /// A convenient "petascale-like" test platform: `n` nodes of 45-year
    /// individual MTBF and 64 GiB each.
    pub fn typical(n: usize) -> Self {
        Self::homogeneous(n, units::days(45.0 * 365.25), units::gib(64.0))
            .expect("typical cluster parameters are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cluster_is_rejected() {
        assert_eq!(Cluster::new(vec![]).unwrap_err(), PlatformError::EmptyCluster);
        assert!(Cluster::homogeneous(0, 1.0, 1.0).is_err());
    }

    #[test]
    fn homogeneous_mtbf_divides_by_node_count() {
        // µ = µ_ind / N, the paper's relation.
        let mu_ind = units::days(365.0);
        let c = Cluster::homogeneous(1000, mu_ind, units::gib(1.0)).unwrap();
        let expected = mu_ind / 1000.0;
        assert!((c.platform_mtbf() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn heterogeneous_rates_add() {
        let nodes = vec![
            Node::new(0, 100.0, 1.0).unwrap(),
            Node::new(1, 200.0, 1.0).unwrap(),
        ];
        let c = Cluster::new(nodes).unwrap();
        // 1/µ = 1/100 + 1/200 = 3/200 → µ = 200/3
        assert!((c.platform_mtbf() - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn weak_scaling_recovers_reference_platform_mtbf() {
        let ref_nodes = 10_000;
        let mtbf_at_ref = units::days(1.0);
        let c = Cluster::weak_scaling(ref_nodes, ref_nodes, mtbf_at_ref, units::gib(16.0)).unwrap();
        assert!((c.platform_mtbf() - mtbf_at_ref).abs() / mtbf_at_ref < 1e-12);

        // Scaling to 10x more nodes divides the platform MTBF by 10.
        let c10 = Cluster::weak_scaling(ref_nodes * 10, ref_nodes, mtbf_at_ref, units::gib(16.0))
            .unwrap();
        assert!((c10.platform_mtbf() - mtbf_at_ref / 10.0).abs() / mtbf_at_ref < 1e-12);
    }

    #[test]
    fn totals_accumulate() {
        let c = Cluster::homogeneous(4, 100.0, units::gib(2.0)).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.total_memory(), units::gib(8.0));
        assert_eq!(c.total_speed(), 4.0);
    }

    #[test]
    fn expected_failures_is_duration_over_mtbf() {
        let c = Cluster::homogeneous(100, 1000.0, 1.0).unwrap();
        // platform MTBF = 10 s, so 50 s of execution sees 5 failures on average.
        assert!((c.expected_failures(50.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn node_lookup_checks_bounds() {
        let c = Cluster::typical(3);
        assert!(c.node(2).is_ok());
        assert!(matches!(
            c.node(3),
            Err(PlatformError::RankOutOfRange { rank: 3, size: 3 })
        ));
    }
}
