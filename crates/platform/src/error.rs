//! Error type shared by the platform substrate.

use std::fmt;

/// Errors produced while building or querying platform descriptions.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// A parameter that must be strictly positive was zero or negative.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// A fraction-valued parameter fell outside `[0, 1]`.
    FractionOutOfRange {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// A cluster was built with zero nodes.
    EmptyCluster,
    /// A process grid with zero rows or columns was requested.
    EmptyGrid,
    /// A rank outside the grid/cluster was referenced.
    RankOutOfRange {
        /// The rank that was referenced.
        rank: usize,
        /// Number of ranks actually available.
        size: usize,
    },
    /// A failure trace was used past its horizon.
    TraceExhausted,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be > 0 (got {value})")
            }
            PlatformError::FractionOutOfRange { name, value } => {
                write!(f, "parameter `{name}` must lie in [0, 1] (got {value})")
            }
            PlatformError::EmptyCluster => write!(f, "a cluster needs at least one node"),
            PlatformError::EmptyGrid => write!(f, "a process grid needs at least one row and one column"),
            PlatformError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for {size} processes")
            }
            PlatformError::TraceExhausted => write!(f, "failure trace exhausted"),
        }
    }
}

impl std::error::Error for PlatformError {}

/// Convenience result alias for platform operations.
pub type Result<T> = std::result::Result<T, PlatformError>;

/// Checks that `value > 0`, returning a [`PlatformError::NonPositiveParameter`] otherwise.
pub fn ensure_positive(name: &'static str, value: f64) -> Result<f64> {
    if value > 0.0 && value.is_finite() {
        Ok(value)
    } else {
        Err(PlatformError::NonPositiveParameter { name, value })
    }
}

/// Checks that `value` is a valid fraction in `[0, 1]`.
pub fn ensure_fraction(name: &'static str, value: f64) -> Result<f64> {
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(PlatformError::FractionOutOfRange { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_accepts_positive() {
        assert_eq!(ensure_positive("x", 1.5).unwrap(), 1.5);
    }

    #[test]
    fn positive_rejects_zero_and_negative() {
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_positive("x", -3.0).is_err());
        assert!(ensure_positive("x", f64::NAN).is_err());
        assert!(ensure_positive("x", f64::INFINITY).is_err());
    }

    #[test]
    fn fraction_bounds() {
        assert!(ensure_fraction("r", 0.0).is_ok());
        assert!(ensure_fraction("r", 1.0).is_ok());
        assert!(ensure_fraction("r", 0.5).is_ok());
        assert!(ensure_fraction("r", -0.01).is_err());
        assert!(ensure_fraction("r", 1.01).is_err());
    }

    #[test]
    fn error_messages_mention_parameter() {
        let err = ensure_positive("mtbf", -1.0).unwrap_err();
        assert!(err.to_string().contains("mtbf"));
        let err = ensure_fraction("rho", 2.0).unwrap_err();
        assert!(err.to_string().contains("rho"));
    }
}
