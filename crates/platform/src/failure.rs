//! Failure inter-arrival models.
//!
//! The simulator of the paper draws platform-level failures from an
//! exponential distribution whose mean is the platform MTBF (Section V-A).
//! We provide that model ([`ExponentialFailures`]) plus a Weibull model
//! ([`WeibullFailures`]) commonly used to fit real failure logs (infant
//! mortality / wear-out), which the extended experiments use to probe the
//! robustness of the first-order model to its exponential assumption.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_positive, Result};
use crate::rng::{DeterministicRng, Xoshiro256};
use crate::special::{gamma, inverse_normal_cdf, lower_incomplete_gamma, normal_cdf};

/// Per-stream scratch state for stateful [`FailureModel`]s.
///
/// The i.i.d. models ignore it entirely (the default
/// [`FailureModel::next_failure_time`] never touches it), but the
/// non-stationary scenario sources of [`crate::scenario`] keep their small
/// amount of between-draw memory here instead of in the model itself: the
/// model stays an immutable, `Copy` description shared by every stream, and
/// each stream/lane owns one `SourceState` that its reset paths clear.
/// Because the state is rebuilt deterministically by replaying draws from a
/// reset stream, crash-resume's "reset + fast-forward" repositioning works
/// unchanged for stateful sources.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SourceState {
    /// A lazily drawn phase (the trace playback's cyclic rotation offset).
    pub offset: f64,
    /// A pending-event counter (outstanding cascade aftershocks).
    pub count: u64,
    /// Whether the lazy draw behind `offset` has happened yet.
    pub armed: bool,
}

/// A source of failure inter-arrival times (seconds).
pub trait FailureModel {
    /// Samples the next inter-arrival time using the provided RNG.
    fn next_interarrival(&self, rng: &mut dyn DeterministicRng) -> f64;

    /// The mean inter-arrival time (platform MTBF) of the model.
    fn mean(&self) -> f64;

    /// Human-readable name of the model (used in reports).
    fn name(&self) -> &'static str;

    /// Whether every [`FailureModel::next_interarrival`] call consumes
    /// **exactly one** open uniform — a single raw 64-bit draw mapped through
    /// [`DeterministicRng::next_f64_open`].  Only such models are eligible
    /// for the columnar [`FailureModel::interarrivals_from_open`] path; batch
    /// sources fall back to scalar per-lane sampling when this is `false`.
    ///
    /// The conservative default is `false`; both inverse-CDF models of this
    /// crate override it to `true`.
    #[inline]
    fn single_uniform(&self) -> bool {
        false
    }

    /// Applies the inter-arrival inverse CDF to a whole column of open
    /// uniforms `u ∈ (0, 1]` **in place**, turning each entry into the
    /// inter-arrival time [`FailureModel::next_interarrival`] would sample
    /// from that uniform — the columnar kernel of the batch engine's failure
    /// sampling, where the `ln`/`powf` loop runs over a contiguous column
    /// instead of being interleaved with per-lane RNG stepping.
    ///
    /// Contract: callers may only use this when
    /// [`FailureModel::single_uniform`] is `true`, and implementations must
    /// be **bit-identical** to the scalar sampler — the per-entry float
    /// operations of the overrides below are exactly the scalar expressions,
    /// evaluated in the scalar order.
    ///
    /// The default implementation achieves bit-identity mechanically: the
    /// open uniform lies on the 53-bit grid (`u = m·2⁻⁵³` with integer `m`),
    /// so `1 − u` and the rescale back to an integer are both exact, and the
    /// reconstructed raw draw replayed through `next_interarrival` reproduces
    /// the scalar result bit for bit.  Single-uniform models get the columnar
    /// path for free; overriding with a fused loop is purely a throughput
    /// refinement.
    fn interarrivals_from_open(&self, open: &mut [f64]) {
        for u in open.iter_mut() {
            let high = ((1.0 - *u) * (1u64 << 53) as f64) as u64;
            *u = self.next_interarrival(&mut ReplayOneRng(high << 11));
        }
    }

    /// Absolute time of the next failure after `prev` — the stateful hook
    /// every stream/buffer advances through.
    ///
    /// The default is the renewal (i.i.d.) step `prev + next_interarrival`,
    /// bit-identical to the historical `last += gap` accumulation, and it
    /// never touches `state`.  Non-stationary sources (recorded traces,
    /// cascades, time-varying hazards) override this to make the next
    /// failure depend on the current absolute time and on their
    /// [`SourceState`] scratch.  Overriding models must return a value
    /// `> prev` for every `u ∈ (0, 1)` draw, must consume a deterministic
    /// number of raw RNG draws per call (so antithetic replay stays paired),
    /// and must keep [`FailureModel::single_uniform`] at `false` — the
    /// columnar fast path assumes the stationary default.
    fn next_failure_time(
        &self,
        prev: f64,
        state: &mut SourceState,
        rng: &mut dyn DeterministicRng,
    ) -> f64 {
        let _ = state;
        prev + self.next_interarrival(rng)
    }
}

/// Adapter replaying one already-drawn raw output, so the default columnar
/// transform can reuse `next_interarrival` verbatim on a reconstructed draw.
struct ReplayOneRng(u64);

impl DeterministicRng for ReplayOneRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0
    }
}

/// Exponential (memoryless) failures with a fixed platform MTBF.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentialFailures {
    mtbf: f64,
}

impl ExponentialFailures {
    /// Creates the model with the given platform MTBF in seconds.
    pub fn new(mtbf: f64) -> Result<Self> {
        ensure_positive("mtbf", mtbf)?;
        Ok(Self { mtbf })
    }

    /// Platform MTBF in seconds.
    #[inline]
    pub fn mtbf(&self) -> f64 {
        self.mtbf
    }
}

impl FailureModel for ExponentialFailures {
    #[inline]
    fn next_interarrival(&self, rng: &mut dyn DeterministicRng) -> f64 {
        rng.exponential(self.mtbf)
    }

    #[inline]
    fn mean(&self) -> f64 {
        self.mtbf
    }

    fn name(&self) -> &'static str {
        "exponential"
    }

    #[inline]
    fn single_uniform(&self) -> bool {
        true
    }

    fn interarrivals_from_open(&self, open: &mut [f64]) {
        // Exactly `DeterministicRng::exponential`'s expression per entry.
        for u in open.iter_mut() {
            *u = -self.mtbf * u.ln();
        }
    }
}

/// Weibull-distributed failure inter-arrival times.
///
/// Parameterised by its *mean* (so it is directly comparable to an
/// exponential model of the same MTBF) and its shape `k`:
/// `k < 1` models infant mortality (bursty failures), `k = 1` degenerates to
/// the exponential, `k > 1` models wear-out.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeibullFailures {
    mean: f64,
    shape: f64,
    scale: f64,
}

impl WeibullFailures {
    /// Creates a Weibull model with the given mean inter-arrival time
    /// (seconds) and shape parameter.
    pub fn new(mean: f64, shape: f64) -> Result<Self> {
        ensure_positive("mean", mean)?;
        ensure_positive("shape", shape)?;
        let scale = mean / gamma(1.0 + 1.0 / shape);
        Ok(Self { mean, shape, scale })
    }

    /// The shape parameter `k`.
    #[inline]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter λ derived from the requested mean.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl FailureModel for WeibullFailures {
    #[inline]
    fn next_interarrival(&self, rng: &mut dyn DeterministicRng) -> f64 {
        rng.weibull(self.scale, self.shape)
    }

    #[inline]
    fn mean(&self) -> f64 {
        self.mean
    }

    fn name(&self) -> &'static str {
        "weibull"
    }

    #[inline]
    fn single_uniform(&self) -> bool {
        true
    }

    fn interarrivals_from_open(&self, open: &mut [f64]) {
        // Exactly `DeterministicRng::weibull`'s expression per entry; the
        // hoisted `1/k` is the same division the scalar sampler performs.
        let inv_shape = 1.0 / self.shape;
        for u in open.iter_mut() {
            *u = self.scale * (-u.ln()).powf(inv_shape);
        }
    }
}

/// Lognormal failure inter-arrival times — the heavy-tailed family failure
/// logs are often fitted with when Weibull underestimates the long gaps.
///
/// Parameterised by its *mean* (pinned to the platform MTBF, like
/// [`WeibullFailures`]) and the log-scale standard deviation `σ`:
/// `ln X ~ N(µ_ln, σ²)` with `µ_ln = ln(mean) − σ²/2` so `E[X] = mean`
/// exactly.  Sampling is the inverse-CDF transform
/// `X = exp(µ_ln + σ Φ⁻¹(U))` — one open uniform per draw, which keeps the
/// model on the columnar single-uniform fast path of the batch engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormalFailures {
    mean: f64,
    sigma: f64,
    mu_ln: f64,
}

impl LogNormalFailures {
    /// Creates a lognormal model with the given mean inter-arrival time
    /// (seconds) and log-scale standard deviation `σ > 0`.
    pub fn new(mean: f64, sigma: f64) -> Result<Self> {
        ensure_positive("mean", mean)?;
        ensure_positive("sigma", sigma)?;
        Ok(Self {
            mean,
            sigma,
            mu_ln: mean.ln() - sigma * sigma / 2.0,
        })
    }

    /// The log-scale standard deviation `σ`.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The log-scale location `µ_ln = ln(mean) − σ²/2`.
    #[inline]
    pub fn mu_ln(&self) -> f64 {
        self.mu_ln
    }
}

impl FailureModel for LogNormalFailures {
    #[inline]
    fn next_interarrival(&self, rng: &mut dyn DeterministicRng) -> f64 {
        // `next_f64_open` lands in (0, 1]; the u = 1 atom (probability 2⁻⁵³)
        // would map to Φ⁻¹(1) = ∞, so it is clamped to the largest
        // representable quantile below 1.
        let u = rng.next_f64_open().min(1.0 - f64::EPSILON / 2.0);
        (self.mu_ln + self.sigma * inverse_normal_cdf(u)).exp()
    }

    #[inline]
    fn mean(&self) -> f64 {
        self.mean
    }

    fn name(&self) -> &'static str {
        "lognormal"
    }

    #[inline]
    fn single_uniform(&self) -> bool {
        true
    }

    // `interarrivals_from_open` deliberately uses the mechanical default:
    // the reconstructed-draw replay is bit-identical to the scalar sampler
    // by construction, and Φ⁻¹ dominates the cost either way.
}

/// A declarative choice of failure inter-arrival distribution, resolved to a
/// concrete model once the platform MTBF is known.
///
/// This is the configuration-level counterpart of [`FailureModel`]: sweep
/// specifications and CLIs carry a `FailureSpec` (cheap, serialisable,
/// MTBF-agnostic) and [`FailureSpec::build`] turns it into an
/// [`AnyFailureModel`] for one parameter point.  The default is the paper's
/// exponential assumption; `Weibull` drives the robustness studies.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum FailureSpec {
    /// Memoryless failures (the paper's Section V-A assumption).
    #[default]
    Exponential,
    /// Weibull failures of the given shape `k` (mean pinned to the MTBF).
    Weibull {
        /// Shape parameter `k` (`< 1` infant mortality, `1` exponential,
        /// `> 1` wear-out).
        shape: f64,
    },
    /// Lognormal failures of the given log-scale standard deviation `σ`
    /// (mean pinned to the MTBF).
    LogNormal {
        /// Log-scale standard deviation `σ` (`ln X ~ N(µ_ln, σ²)`); larger
        /// `σ` means heavier tails and burstier clocks.
        sigma: f64,
    },
}

impl FailureSpec {
    /// Parses the CLI spelling (`exponential`/`exp`, `weibull`, or
    /// `lognormal`/`lognorm`); a Weibull spec takes its shape `k` — and a
    /// lognormal its `σ` — from `shape`.
    pub fn parse(name: &str, shape: f64) -> Option<FailureSpec> {
        match name {
            "exponential" | "exp" => Some(FailureSpec::Exponential),
            "weibull" => Some(FailureSpec::Weibull { shape }),
            "lognormal" | "lognorm" => Some(FailureSpec::LogNormal { sigma: shape }),
            _ => None,
        }
    }

    /// Checks the spec without building a model (a Weibull shape and a
    /// lognormal σ must be positive finite numbers).
    pub fn validate(&self) -> Result<()> {
        match *self {
            FailureSpec::Exponential => Ok(()),
            FailureSpec::Weibull { shape } => ensure_positive("shape", shape).map(|_| ()),
            FailureSpec::LogNormal { sigma } => ensure_positive("sigma", sigma).map(|_| ()),
        }
    }

    /// Resolves the spec into a concrete model with the given mean
    /// inter-arrival time (the platform MTBF, seconds).
    pub fn build(&self, mtbf: f64) -> Result<AnyFailureModel> {
        match *self {
            FailureSpec::Exponential => {
                Ok(AnyFailureModel::Exponential(ExponentialFailures::new(mtbf)?))
            }
            FailureSpec::Weibull { shape } => {
                Ok(AnyFailureModel::Weibull(WeibullFailures::new(mtbf, shape)?))
            }
            FailureSpec::LogNormal { sigma } => {
                Ok(AnyFailureModel::LogNormal(LogNormalFailures::new(mtbf, sigma)?))
            }
        }
    }

    /// The shape parameter of the inter-arrival distribution: `k` for a
    /// Weibull spec, exactly `1` for the exponential (its Weibull
    /// degenerate), and the log-scale `σ` for a lognormal.
    #[inline]
    pub fn shape(&self) -> f64 {
        match *self {
            FailureSpec::Exponential => 1.0,
            FailureSpec::Weibull { shape } => shape,
            FailureSpec::LogNormal { sigma } => sigma,
        }
    }

    /// The log-scale location `µ_ln = ln(mtbf) − σ²/2` of a lognormal spec
    /// calibrated to mean `mtbf` (shared by the moment helpers below).
    fn lognormal_mu_ln(mtbf: f64, sigma: f64) -> f64 {
        mtbf.ln() - sigma * sigma / 2.0
    }

    /// The scale parameter λ of the distribution calibrated to mean `mtbf`:
    /// `λ = µ` for the exponential, `λ = µ / Γ(1 + 1/k)` for a Weibull, and
    /// the median `e^{µ_ln} = µ e^{−σ²/2}` for a lognormal.
    pub fn scale(&self, mtbf: f64) -> f64 {
        match *self {
            FailureSpec::Exponential => mtbf,
            FailureSpec::Weibull { shape } => mtbf / gamma(1.0 + 1.0 / shape),
            FailureSpec::LogNormal { sigma } => Self::lognormal_mu_ln(mtbf, sigma).exp(),
        }
    }

    /// The raw moment `E[Xᵐ]` of the inter-arrival time at mean `mtbf`:
    /// `λᵐ Γ(1 + m/k)` for the Weibull family (so `raw_moment(mtbf, 1) =
    /// mtbf` up to the Γ round-trip), `exp(m µ_ln + m²σ²/2)` for the
    /// lognormal (exact at every order).
    pub fn raw_moment(&self, mtbf: f64, m: f64) -> f64 {
        match *self {
            FailureSpec::Exponential | FailureSpec::Weibull { .. } => {
                let shape = self.shape();
                self.scale(mtbf).powf(m) * gamma(1.0 + m / shape)
            }
            FailureSpec::LogNormal { sigma } => {
                (m * Self::lognormal_mu_ln(mtbf, sigma) + m * m * sigma * sigma / 2.0).exp()
            }
        }
    }

    /// The coefficient of variation `σ/µ` of the inter-arrival time: exactly
    /// `1` for the exponential, `> 1` for bursty Weibull clocks (`k < 1`),
    /// `< 1` for wear-out clocks (`k > 1`), and `√(e^{σ²} − 1)` (always
    /// `> 0`, exceeding `1` once `σ > √(ln 2)`) for the lognormal.
    /// Scale-free, so no MTBF is needed.
    pub fn coefficient_of_variation(&self) -> f64 {
        match *self {
            FailureSpec::Exponential => 1.0,
            FailureSpec::Weibull { shape } => {
                let g1 = gamma(1.0 + 1.0 / shape);
                let g2 = gamma(1.0 + 2.0 / shape);
                (g2 / (g1 * g1) - 1.0).max(0.0).sqrt()
            }
            FailureSpec::LogNormal { sigma } => ((sigma * sigma).exp_m1()).max(0.0).sqrt(),
        }
    }

    /// The cumulative distribution `F(t) = P(X ≤ t)` of the inter-arrival
    /// time at mean `mtbf`.
    pub fn cdf(&self, mtbf: f64, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        match *self {
            FailureSpec::Exponential | FailureSpec::Weibull { .. } => {
                let shape = self.shape();
                1.0 - (-(t / self.scale(mtbf)).powf(shape)).exp()
            }
            FailureSpec::LogNormal { sigma } => {
                normal_cdf((t.ln() - Self::lognormal_mu_ln(mtbf, sigma)) / sigma)
            }
        }
    }

    /// The conditional mean inter-arrival time below a cutoff,
    /// `E[X | X ≤ τ]` — the incomplete-gamma moment behind the
    /// Weibull-corrected expected-rework term of the analytic waste model:
    ///
    /// `E[X·1{X ≤ τ}] = λ γ(1 + 1/k, (τ/λ)^k)` with `γ` the lower incomplete
    /// Gamma function, divided by `F(τ)`; the lognormal partial mean is the
    /// closed form `E[X·1{X ≤ τ}] = µ Φ((ln τ − µ_ln)/σ − σ)`.
    ///
    /// Returns `0` for `τ ≤ 0`.  The exponential spec evaluates the same
    /// expression at `k = 1` (where it reduces to `µ − τ/(e^{τ/µ} − 1)`), so
    /// ratios of Weibull to exponential conditional means are exactly `1`
    /// at `k = 1`.
    pub fn conditional_mean_below(&self, mtbf: f64, tau: f64) -> f64 {
        if tau <= 0.0 {
            return 0.0;
        }
        match *self {
            FailureSpec::Exponential | FailureSpec::Weibull { .. } => {
                let shape = self.shape();
                let scale = self.scale(mtbf);
                let x = (tau / scale).powf(shape);
                let mass = 1.0 - (-x).exp();
                if mass <= 0.0 {
                    // τ far below the distribution's support resolution: the
                    // conditional mean degenerates to τ/2-like smallness;
                    // return τ/2 as the uniform-limit value.
                    return tau / 2.0;
                }
                scale * lower_incomplete_gamma(1.0 + 1.0 / shape, x) / mass
            }
            FailureSpec::LogNormal { sigma } => {
                let mu_ln = Self::lognormal_mu_ln(mtbf, sigma);
                let z = (tau.ln() - mu_ln) / sigma;
                let mass = normal_cdf(z);
                // E[X·1{X ≤ τ}] = e^{µ_ln + σ²/2} Φ(z − σ) = µ Φ(z − σ).
                let partial = mtbf * normal_cdf(z - sigma);
                if mass <= 0.0 || partial <= 0.0 {
                    // Deep-left-tail guard (same spirit as the Weibull
                    // branch).  `Φ(z − σ)` underflows before `Φ(z)` does, so
                    // the numerator must be guarded too or the ratio would
                    // collapse to 0 — below the τ/2 the guard returns for
                    // even smaller cutoffs, breaking monotonicity in τ.
                    return tau / 2.0;
                }
                // Guard the far tail where both Φ evaluations underflow at
                // different rates: the conditional mean can never exceed τ.
                (partial / mass).min(tau)
            }
        }
    }
}

impl std::fmt::Display for FailureSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FailureSpec::Exponential => write!(f, "exponential"),
            FailureSpec::Weibull { shape } => write!(f, "weibull(k={shape})"),
            FailureSpec::LogNormal { sigma } => write!(f, "lognormal(sigma={sigma})"),
        }
    }
}

/// A runtime-selected failure model: enum dispatch over the concrete
/// distributions and scenario sources, so generic simulation code (clocks,
/// trace buffers, executors) can switch models per parameter point without
/// boxing or virtual calls on the sampling hot path.
///
/// The `Exponential` arm draws exactly the same variates as a bare
/// [`ExponentialFailures`] with the same RNG state, so wrapping the paper's
/// model in `AnyFailureModel` preserves bit-identical failure sequences.
///
/// The scenario arms (`Trace`, `Cascade`, `Diurnal`, `Wearout` — see
/// [`crate::scenario`]) are non-stationary: they advance through the
/// stateful [`FailureModel::next_failure_time`] hook, report
/// [`FailureModel::single_uniform`]` = false` (pinning every batch source to
/// the scalar per-lane fallback), and their [`AnyFailureModel::spec`] is the
/// matched-MTBF `Exponential` baseline — the family the analytic planner
/// assumes when the i.i.d. assumption breaks underneath it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AnyFailureModel {
    /// Exponential inter-arrival times.
    Exponential(ExponentialFailures),
    /// Weibull inter-arrival times.
    Weibull(WeibullFailures),
    /// Lognormal inter-arrival times.
    LogNormal(LogNormalFailures),
    /// Cyclic playback of a recorded failure trace (seeded rotation).
    Trace(crate::scenario::TracePlayback),
    /// Post-failure cascade bursts over an exponential base clock.
    Cascade(crate::scenario::CascadeFailures),
    /// Day/night intensity modulation (piecewise-constant hazard).
    Diurnal(crate::scenario::DiurnalFailures),
    /// Platform-age wear-out (Weibull hazard, increasing in absolute time).
    Wearout(crate::scenario::WearoutFailures),
}

/// Forwards one [`FailureModel`] method through the enum — one match, every
/// arm, so a new arm cannot silently miss a dispatch site.
macro_rules! for_each_model {
    ($self:expr, $m:pat => $body:expr) => {
        match $self {
            AnyFailureModel::Exponential($m) => $body,
            AnyFailureModel::Weibull($m) => $body,
            AnyFailureModel::LogNormal($m) => $body,
            AnyFailureModel::Trace($m) => $body,
            AnyFailureModel::Cascade($m) => $body,
            AnyFailureModel::Diurnal($m) => $body,
            AnyFailureModel::Wearout($m) => $body,
        }
    };
}

impl AnyFailureModel {
    /// The declarative spec this model realises — the inverse of
    /// [`FailureSpec::build`].  Lets consumers that only hold the resolved
    /// model (e.g. the simulation engine) recover the distribution family
    /// and shape, so the analytic waste model can be matched to the clock.
    ///
    /// The non-stationary scenario arms have no i.i.d. spec; they report the
    /// matched-MTBF `Exponential` baseline, which is exactly the assumption
    /// the scenario sweeps measure the planner against.
    #[inline]
    pub fn spec(&self) -> FailureSpec {
        match self {
            AnyFailureModel::Exponential(_) => FailureSpec::Exponential,
            AnyFailureModel::Weibull(w) => FailureSpec::Weibull { shape: w.shape() },
            AnyFailureModel::LogNormal(l) => FailureSpec::LogNormal { sigma: l.sigma() },
            AnyFailureModel::Trace(_)
            | AnyFailureModel::Cascade(_)
            | AnyFailureModel::Diurnal(_)
            | AnyFailureModel::Wearout(_) => FailureSpec::Exponential,
        }
    }
}

impl FailureModel for AnyFailureModel {
    #[inline]
    fn next_interarrival(&self, rng: &mut dyn DeterministicRng) -> f64 {
        for_each_model!(self, m => m.next_interarrival(rng))
    }

    #[inline]
    fn mean(&self) -> f64 {
        for_each_model!(self, m => m.mean())
    }

    fn name(&self) -> &'static str {
        for_each_model!(self, m => m.name())
    }

    #[inline]
    fn single_uniform(&self) -> bool {
        for_each_model!(self, m => m.single_uniform())
    }

    fn interarrivals_from_open(&self, open: &mut [f64]) {
        // One dispatch per column, not per lane.
        for_each_model!(self, m => m.interarrivals_from_open(open))
    }

    #[inline]
    fn next_failure_time(
        &self,
        prev: f64,
        state: &mut SourceState,
        rng: &mut dyn DeterministicRng,
    ) -> f64 {
        for_each_model!(self, m => m.next_failure_time(prev, state, rng))
    }
}

/// A source of *absolute* failure times, consumed one at a time by the
/// simulation clock.
///
/// Two families implement it:
///
/// * [`FailureStream`] — samples a fresh sequence from a [`FailureModel`]
///   (every consumer sees an independent sequence);
/// * [`crate::trace::TraceCursor`] — replays a recorded sequence from a
///   [`crate::trace::TraceBuffer`], so several consumers can see the **same**
///   failures (common random numbers).
pub trait FailureSource {
    /// Absolute time of the next failure (advances the source).
    fn next_failure(&mut self) -> f64;

    /// Mean inter-arrival time of the underlying model (the platform MTBF).
    fn mean_interarrival(&self) -> f64;
}

/// Stateful failure-time generator: turns an inter-arrival model into an
/// absolute-time stream of failures starting at `t = 0`.
#[derive(Debug, Clone)]
pub struct FailureStream<M: FailureModel> {
    model: M,
    rng: Xoshiro256,
    now: f64,
    state: SourceState,
}

impl<M: FailureModel> FailureStream<M> {
    /// Creates a stream seeded deterministically.
    pub fn new(model: M, seed: u64) -> Self {
        Self {
            model,
            rng: Xoshiro256::seed_from_u64(seed),
            now: 0.0,
            state: SourceState::default(),
        }
    }

    /// Absolute time of the next failure (advances the stream).
    pub fn next_failure(&mut self) -> f64 {
        self.now = self
            .model
            .next_failure_time(self.now, &mut self.state, &mut self.rng);
        self.now
    }

    /// The underlying model.
    pub fn model(&self) -> &M {
        &self.model
    }
}

impl<M: FailureModel> Iterator for FailureStream<M> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        Some(self.next_failure())
    }
}

impl<M: FailureModel> FailureSource for FailureStream<M> {
    #[inline]
    fn next_failure(&mut self) -> f64 {
        FailureStream::next_failure(self)
    }

    #[inline]
    fn mean_interarrival(&self) -> f64 {
        self.model.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_requires_positive_mtbf() {
        assert!(ExponentialFailures::new(0.0).is_err());
        assert!(ExponentialFailures::new(-5.0).is_err());
        assert!(ExponentialFailures::new(3600.0).is_ok());
    }

    #[test]
    fn exponential_empirical_mean_matches() {
        let model = ExponentialFailures::new(1234.0).unwrap();
        let mut rng = Xoshiro256::seed_from_u64(99);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| model.next_interarrival(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1234.0).abs() / 1234.0 < 0.02);
    }

    #[test]
    fn spec_moment_helpers_match_the_distributions() {
        let mtbf = 500.0;
        // Exponential: shape 1, scale µ, CV 1, mean moment µ.
        let exp = FailureSpec::Exponential;
        assert_eq!(exp.shape(), 1.0);
        assert_eq!(exp.scale(mtbf), mtbf);
        assert!((exp.coefficient_of_variation() - 1.0).abs() < 1e-12);
        assert!((exp.raw_moment(mtbf, 1.0) - mtbf).abs() / mtbf < 1e-10);
        // E[X²] = 2µ² for the exponential.
        assert!((exp.raw_moment(mtbf, 2.0) - 2.0 * mtbf * mtbf).abs() / (mtbf * mtbf) < 1e-9);
        assert!((exp.cdf(mtbf, mtbf) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(exp.cdf(mtbf, -1.0), 0.0);

        // Weibull: scale matches the built model, first moment returns the
        // requested mean, CV > 1 below k = 1 and < 1 above.
        for shape in [0.6, 0.8, 1.0, 1.4, 2.0] {
            let spec = FailureSpec::Weibull { shape };
            let model = WeibullFailures::new(mtbf, shape).unwrap();
            assert!((spec.scale(mtbf) - model.scale()).abs() < 1e-9, "shape {shape}");
            assert!(
                (spec.raw_moment(mtbf, 1.0) - mtbf).abs() / mtbf < 1e-9,
                "shape {shape}: first moment {}",
                spec.raw_moment(mtbf, 1.0)
            );
            let cv = spec.coefficient_of_variation();
            if shape < 1.0 {
                assert!(cv > 1.0, "shape {shape}: cv {cv}");
            } else if shape > 1.0 {
                assert!(cv < 1.0, "shape {shape}: cv {cv}");
            } else {
                assert!((cv - 1.0).abs() < 1e-7);
            }
        }

        // Lognormal: the scale is the median e^{µ_ln}, the first moment is
        // the requested mean exactly, E[X²] = µ² e^{σ²}, CV = √(e^{σ²} − 1),
        // and the CDF evaluated at the median is exactly 1/2.
        for sigma in [0.4, 0.9, 1.5] {
            let spec = FailureSpec::LogNormal { sigma };
            let model = LogNormalFailures::new(mtbf, sigma).unwrap();
            assert!((spec.scale(mtbf) - model.mu_ln().exp()).abs() < 1e-9, "sigma {sigma}");
            assert!((spec.raw_moment(mtbf, 1.0) - mtbf).abs() / mtbf < 1e-12, "sigma {sigma}");
            let second = mtbf * mtbf * (sigma * sigma).exp();
            assert!(
                (spec.raw_moment(mtbf, 2.0) - second).abs() / second < 1e-12,
                "sigma {sigma}"
            );
            let cv = spec.coefficient_of_variation();
            assert!(((cv * cv + 1.0).ln() - sigma * sigma).abs() < 1e-12, "sigma {sigma}");
            assert!((spec.cdf(mtbf, spec.scale(mtbf)) - 0.5).abs() < 1e-12, "sigma {sigma}");
            assert_eq!(spec.cdf(mtbf, -3.0), 0.0);
        }
    }

    #[test]
    fn conditional_mean_below_matches_monte_carlo() {
        let mtbf = 1_000.0;
        for (spec, seed) in [
            (FailureSpec::Exponential, 5u64),
            (FailureSpec::Weibull { shape: 0.7 }, 6),
            (FailureSpec::Weibull { shape: 1.6 }, 7),
            (FailureSpec::LogNormal { sigma: 0.9 }, 8),
        ] {
            let tau = 700.0;
            let model = spec.build(mtbf).unwrap();
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let (mut sum, mut n) = (0.0, 0u64);
            for _ in 0..400_000 {
                let x = model.next_interarrival(&mut rng);
                if x <= tau {
                    sum += x;
                    n += 1;
                }
            }
            let empirical = sum / n as f64;
            let analytic = spec.conditional_mean_below(mtbf, tau);
            assert!(
                (empirical - analytic).abs() / analytic < 0.01,
                "{spec}: empirical {empirical} vs analytic {analytic}"
            );
            // Bounded by the cutoff and by the unconditional mean.
            assert!(analytic > 0.0 && analytic < tau);
            assert_eq!(spec.conditional_mean_below(mtbf, 0.0), 0.0);
        }
    }

    use proptest::prelude::*;

    proptest! {
        /// `E[X | X ≤ τ]` is monotone non-decreasing in the cutoff τ and
        /// bounded by both the cutoff and the unconditional mean — across
        /// the whole (shape, MTBF, τ) space the Weibull-corrected waste
        /// model evaluates it on, including the mass-underflow τ → 0 branch.
        #[test]
        fn conditional_mean_below_is_monotone_and_bounded(
            kind in 0usize..3,
            shape in 0.15f64..4.0,
            mtbf in 1.0f64..100_000.0,
            tau_rel in 1e-6f64..10.0,
            step_rel in 1e-6f64..2.0,
        ) {
            let spec = match kind {
                0 => FailureSpec::Exponential,
                1 => FailureSpec::Weibull { shape },
                _ => FailureSpec::LogNormal { sigma: shape },
            };
            let tau = tau_rel * mtbf;
            let at = spec.conditional_mean_below(mtbf, tau);
            let further = spec.conditional_mean_below(mtbf, tau + step_rel * mtbf);
            // Monotone in τ (up to accumulated rounding of the two
            // independent incomplete-gamma evaluations).
            prop_assert!(further >= at - 1e-9 * at.abs());
            // Bounded: 0 < E[X | X ≤ τ] ≤ τ, and never above E[X] = MTBF.
            prop_assert!(at > 0.0);
            prop_assert!(at <= tau * (1.0 + 1e-12));
            prop_assert!(at <= mtbf * (1.0 + 1e-9));
        }
    }

    #[test]
    fn any_failure_model_recovers_its_spec() {
        let exp = FailureSpec::Exponential.build(100.0).unwrap();
        assert_eq!(exp.spec(), FailureSpec::Exponential);
        let weibull = FailureSpec::Weibull { shape: 0.7 }.build(100.0).unwrap();
        assert_eq!(weibull.spec(), FailureSpec::Weibull { shape: 0.7 });
        let lognormal = FailureSpec::LogNormal { sigma: 0.9 }.build(100.0).unwrap();
        assert_eq!(lognormal.spec(), FailureSpec::LogNormal { sigma: 0.9 });
    }

    #[test]
    fn lognormal_empirical_mean_matches() {
        for sigma in [0.4, 0.9, 1.5] {
            let model = LogNormalFailures::new(500.0, sigma).unwrap();
            let mut rng = Xoshiro256::seed_from_u64(13);
            let n = 400_000;
            let sum: f64 = (0..n).map(|_| model.next_interarrival(&mut rng)).sum();
            let mean = sum / n as f64;
            assert!(
                (mean - 500.0).abs() / 500.0 < 0.05,
                "sigma {sigma}: empirical mean {mean}"
            );
        }
    }

    #[test]
    fn default_next_failure_time_is_bit_identical_to_gap_accumulation() {
        // The stateful hook's i.i.d. default must reproduce the historical
        // `last += gap` accumulation bit for bit, for every i.i.d. family.
        for spec in [
            FailureSpec::Exponential,
            FailureSpec::Weibull { shape: 0.7 },
            FailureSpec::LogNormal { sigma: 0.9 },
        ] {
            let model = spec.build(444.0).unwrap();
            let mut rng_a = Xoshiro256::seed_from_u64(21);
            let mut rng_b = Xoshiro256::seed_from_u64(21);
            let mut state = SourceState::default();
            let mut last_hook = 0.0f64;
            let mut last_acc = 0.0f64;
            for _ in 0..200 {
                last_hook = model.next_failure_time(last_hook, &mut state, &mut rng_a);
                last_acc += model.next_interarrival(&mut rng_b);
                assert_eq!(last_hook.to_bits(), last_acc.to_bits(), "{spec}");
            }
            assert_eq!(state, SourceState::default(), "{spec}: default hook touched state");
        }
    }

    #[test]
    fn weibull_mean_is_calibrated() {
        for shape in [0.7, 1.0, 1.5, 2.0] {
            let model = WeibullFailures::new(500.0, shape).unwrap();
            let mut rng = Xoshiro256::seed_from_u64(7);
            let n = 200_000;
            let sum: f64 = (0..n).map(|_| model.next_interarrival(&mut rng)).sum();
            let mean = sum / n as f64;
            assert!(
                (mean - 500.0).abs() / 500.0 < 0.03,
                "shape {shape}: empirical mean {mean}"
            );
        }
    }

    #[test]
    fn weibull_shape_one_matches_exponential_scale() {
        let model = WeibullFailures::new(500.0, 1.0).unwrap();
        assert!((model.scale() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn failure_spec_parses_validates_and_builds() {
        assert_eq!(FailureSpec::parse("exponential", 0.7), Some(FailureSpec::Exponential));
        assert_eq!(FailureSpec::parse("exp", 0.7), Some(FailureSpec::Exponential));
        assert_eq!(
            FailureSpec::parse("weibull", 0.7),
            Some(FailureSpec::Weibull { shape: 0.7 })
        );
        assert_eq!(
            FailureSpec::parse("lognormal", 0.7),
            Some(FailureSpec::LogNormal { sigma: 0.7 })
        );
        assert_eq!(
            FailureSpec::parse("lognorm", 1.2),
            Some(FailureSpec::LogNormal { sigma: 1.2 })
        );
        assert_eq!(FailureSpec::parse("gamma", 0.7), None);
        assert_eq!(FailureSpec::default(), FailureSpec::Exponential);
        assert!(FailureSpec::Exponential.validate().is_ok());
        assert!(FailureSpec::Weibull { shape: 0.0 }.validate().is_err());
        assert!(FailureSpec::Weibull { shape: 1.5 }.validate().is_ok());
        assert!(FailureSpec::Weibull { shape: 1.5 }.build(0.0).is_err());
        assert!(FailureSpec::LogNormal { sigma: 0.0 }.validate().is_err());
        assert!(FailureSpec::LogNormal { sigma: f64::NAN }.validate().is_err());
        assert!(FailureSpec::LogNormal { sigma: 0.9 }.validate().is_ok());
        assert!(FailureSpec::LogNormal { sigma: 0.9 }.build(-1.0).is_err());
        let m = FailureSpec::Weibull { shape: 1.5 }.build(500.0).unwrap();
        assert_eq!(m.name(), "weibull");
        assert!((m.mean() - 500.0).abs() < 1e-9);
        let m = FailureSpec::LogNormal { sigma: 0.9 }.build(500.0).unwrap();
        assert_eq!(m.name(), "lognormal");
        assert_eq!(m.mean(), 500.0);
        assert_eq!(format!("{}", FailureSpec::Weibull { shape: 0.7 }), "weibull(k=0.7)");
        assert_eq!(format!("{}", FailureSpec::Exponential), "exponential");
        assert_eq!(
            format!("{}", FailureSpec::LogNormal { sigma: 0.7 }),
            "lognormal(sigma=0.7)"
        );
    }

    #[test]
    fn any_failure_model_exponential_arm_is_bit_identical_to_the_bare_model() {
        let bare = ExponentialFailures::new(777.0).unwrap();
        let wrapped = FailureSpec::Exponential.build(777.0).unwrap();
        let mut rng_a = Xoshiro256::seed_from_u64(3);
        let mut rng_b = Xoshiro256::seed_from_u64(3);
        for _ in 0..500 {
            assert_eq!(
                bare.next_interarrival(&mut rng_a).to_bits(),
                wrapped.next_interarrival(&mut rng_b).to_bits()
            );
        }
        assert_eq!(wrapped.mean(), 777.0);
        assert_eq!(wrapped.name(), "exponential");
    }

    #[test]
    fn any_failure_model_weibull_arm_is_bit_identical_to_the_bare_model() {
        let bare = WeibullFailures::new(300.0, 0.7).unwrap();
        let wrapped = FailureSpec::Weibull { shape: 0.7 }.build(300.0).unwrap();
        let mut rng_a = Xoshiro256::seed_from_u64(9);
        let mut rng_b = Xoshiro256::seed_from_u64(9);
        for _ in 0..500 {
            assert_eq!(
                bare.next_interarrival(&mut rng_a).to_bits(),
                wrapped.next_interarrival(&mut rng_b).to_bits()
            );
        }
    }

    #[test]
    fn columnar_transform_is_bit_identical_to_scalar_sampling() {
        // Both concrete models, the enum dispatch, and the mechanical
        // bit-reconstruction default must all map the same open uniforms to
        // the same inter-arrival bits as `next_interarrival`.
        struct DefaultOnly(ExponentialFailures);
        impl FailureModel for DefaultOnly {
            fn next_interarrival(&self, rng: &mut dyn DeterministicRng) -> f64 {
                self.0.next_interarrival(rng)
            }
            fn mean(&self) -> f64 {
                self.0.mean()
            }
            fn name(&self) -> &'static str {
                "default-only"
            }
            fn single_uniform(&self) -> bool {
                true
            }
            // interarrivals_from_open deliberately NOT overridden.
        }
        let exp = ExponentialFailures::new(777.0).unwrap();
        let models: Vec<Box<dyn FailureModel>> = vec![
            Box::new(exp),
            Box::new(WeibullFailures::new(500.0, 0.7).unwrap()),
            Box::new(WeibullFailures::new(500.0, 1.6).unwrap()),
            Box::new(LogNormalFailures::new(500.0, 0.9).unwrap()),
            Box::new(FailureSpec::Weibull { shape: 0.7 }.build(500.0).unwrap()),
            Box::new(FailureSpec::Exponential.build(777.0).unwrap()),
            Box::new(FailureSpec::LogNormal { sigma: 1.3 }.build(500.0).unwrap()),
            Box::new(DefaultOnly(exp)),
        ];
        for model in &models {
            assert!(model.single_uniform(), "{}", model.name());
            let mut rng = Xoshiro256::seed_from_u64(0xC01);
            // Draw the column of open uniforms exactly as a batch source
            // does, then replay the same raw stream through the scalar path.
            let mut replay = Xoshiro256::seed_from_u64(0xC01);
            let mut column: Vec<f64> = (0..257).map(|_| rng.next_f64_open()).collect();
            model.interarrivals_from_open(&mut column);
            for (i, &gap) in column.iter().enumerate() {
                let scalar = model.next_interarrival(&mut replay);
                assert_eq!(
                    gap.to_bits(),
                    scalar.to_bits(),
                    "{} entry {i}: {gap} vs {scalar}",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn failure_stream_is_increasing_and_deterministic() {
        let model = ExponentialFailures::new(100.0).unwrap();
        let a: Vec<f64> = FailureStream::new(model, 11).take(50).collect();
        let b: Vec<f64> = FailureStream::new(model, 11).take(50).collect();
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(a[0] > 0.0);
    }
}
