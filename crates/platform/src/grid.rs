//! Virtual 2-D process grid.
//!
//! The ABFT substrate distributes matrices over a `P × Q` grid of virtual
//! processes, exactly like ScaLAPACK's BLACS grid, and the failure-injection
//! machinery kills one grid member at a time.  No real processes exist —
//! the grid is a pure indexing structure — which is the substitution this
//! reproduction makes for MPI ranks (see DESIGN.md §2).

use serde::{Deserialize, Serialize};

use crate::error::{PlatformError, Result};

/// A `rows × cols` grid of virtual processes, ranks numbered row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessGrid {
    rows: usize,
    cols: usize,
}

impl ProcessGrid {
    /// Creates a grid with the given number of process rows and columns.
    pub fn new(rows: usize, cols: usize) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(PlatformError::EmptyGrid);
        }
        Ok(Self { rows, cols })
    }

    /// Creates the most-square grid containing exactly `n` processes
    /// (`rows ≤ cols`, `rows × cols = n`).
    pub fn squarest(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(PlatformError::EmptyGrid);
        }
        let mut rows = (n as f64).sqrt().floor() as usize;
        while rows > 1 && !n.is_multiple_of(rows) {
            rows -= 1;
        }
        let rows = rows.max(1);
        Ok(Self { rows, cols: n / rows })
    }

    /// Number of process rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of process columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of processes.
    #[inline]
    pub fn size(&self) -> usize {
        self.rows * self.cols
    }

    /// Grid coordinates `(p, q)` of a rank.
    pub fn coords(&self, rank: usize) -> Result<(usize, usize)> {
        if rank >= self.size() {
            return Err(PlatformError::RankOutOfRange {
                rank,
                size: self.size(),
            });
        }
        Ok((rank / self.cols, rank % self.cols))
    }

    /// Rank of the process at grid coordinates `(p, q)`.
    pub fn rank(&self, p: usize, q: usize) -> Result<usize> {
        if p >= self.rows || q >= self.cols {
            return Err(PlatformError::RankOutOfRange {
                rank: p * self.cols + q,
                size: self.size(),
            });
        }
        Ok(p * self.cols + q)
    }

    /// All ranks in process row `p`.
    pub fn row_ranks(&self, p: usize) -> Result<Vec<usize>> {
        if p >= self.rows {
            return Err(PlatformError::RankOutOfRange {
                rank: p * self.cols,
                size: self.size(),
            });
        }
        Ok((0..self.cols).map(|q| p * self.cols + q).collect())
    }

    /// All ranks in process column `q`.
    pub fn col_ranks(&self, q: usize) -> Result<Vec<usize>> {
        if q >= self.cols {
            return Err(PlatformError::RankOutOfRange {
                rank: q,
                size: self.size(),
            });
        }
        Ok((0..self.rows).map(|p| p * self.cols + q).collect())
    }

    /// Iterator over all ranks.
    pub fn ranks(&self) -> impl Iterator<Item = usize> {
        0..self.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_empty() {
        assert!(ProcessGrid::new(0, 3).is_err());
        assert!(ProcessGrid::new(3, 0).is_err());
        assert!(ProcessGrid::squarest(0).is_err());
    }

    #[test]
    fn coords_and_rank_are_inverse() {
        let g = ProcessGrid::new(3, 4).unwrap();
        for rank in g.ranks() {
            let (p, q) = g.coords(rank).unwrap();
            assert_eq!(g.rank(p, q).unwrap(), rank);
        }
        assert!(g.coords(12).is_err());
        assert!(g.rank(3, 0).is_err());
        assert!(g.rank(0, 4).is_err());
    }

    #[test]
    fn squarest_produces_exact_cover() {
        for n in 1..=64 {
            let g = ProcessGrid::squarest(n).unwrap();
            assert_eq!(g.size(), n, "n = {n}");
            assert!(g.rows() <= g.cols());
        }
        let g = ProcessGrid::squarest(12).unwrap();
        assert_eq!((g.rows(), g.cols()), (3, 4));
        let g = ProcessGrid::squarest(16).unwrap();
        assert_eq!((g.rows(), g.cols()), (4, 4));
        // Primes degrade to a 1 × n grid.
        let g = ProcessGrid::squarest(13).unwrap();
        assert_eq!((g.rows(), g.cols()), (1, 13));
    }

    #[test]
    fn row_and_col_ranks() {
        let g = ProcessGrid::new(2, 3).unwrap();
        assert_eq!(g.row_ranks(0).unwrap(), vec![0, 1, 2]);
        assert_eq!(g.row_ranks(1).unwrap(), vec![3, 4, 5]);
        assert_eq!(g.col_ranks(1).unwrap(), vec![1, 4]);
        assert!(g.row_ranks(2).is_err());
        assert!(g.col_ranks(3).is_err());
    }
}
