//! # ft-platform — platform substrate for fault-tolerance studies
//!
//! This crate models the *execution platform* that the composite
//! ABFT + checkpointing study of Bosilca et al. (APDCM 2014) reasons about:
//!
//! * [`node`] / [`cluster`] — compute nodes, their individual MTBF and the
//!   aggregate platform MTBF `µ = µ_ind / N`;
//! * [`failure`] — failure inter-arrival distributions (exponential, Weibull)
//!   with deterministic seeding;
//! * [`trace`] — concrete failure traces that can be generated, replayed,
//!   merged and summarised;
//! * [`batch`] — lane-indexed batch failure sampling (independent streams,
//!   antithetic partners and trace replay per lane) for the
//!   structure-of-arrays simulation engine;
//! * [`storage`] — checkpoint-storage cost models (bandwidth-bound remote
//!   storage, constant-cost buddy/NVRAM storage, hierarchical storage);
//! * [`memory`] — the LIBRARY / REMAINDER dataset split (the paper's `ρ`);
//! * [`grid`] — the virtual 2-D process grid used by the ABFT substrate;
//! * [`scenario`] — trace-driven and non-stationary failure scenarios
//!   (recorded-trace playback, cascade bursts, diurnal modulation,
//!   wear-out) that deliberately break the i.i.d. inter-arrival assumption
//!   while staying bit-exactly replayable;
//! * [`rng`] — small, fully deterministic random number generators so that
//!   every simulation in the workspace is reproducible from a `u64` seed;
//! * [`checksum`] — streaming 32-bit checksum generators (CRC-32 and a null
//!   generator) backing `ft-ckpt`'s verified checkpoint frames;
//! * [`clock`] — the sanctioned measurement [`clock::Stopwatch`] (wall-clock
//!   or injected time), the only place library code may read real time;
//! * [`special`] — the Gamma-function family backing the Weibull moment
//!   helpers ([`failure::FailureSpec::conditional_mean_below`] and friends);
//! * [`units`] — readable constructors for durations and memory sizes.
//!
//! Everything here is a *model* of a platform: no MPI, no real I/O.  The
//! higher-level crates (`ft-ckpt`, `ft-abft`, `ft-sim`, `ft-composite`)
//! consume these descriptions to compute costs and to drive discrete-event
//! simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod checksum;
pub mod clock;
pub mod cluster;
pub mod error;
pub mod failure;
pub mod grid;
pub mod memory;
pub mod node;
pub mod rng;
pub mod scenario;
pub mod special;
pub mod storage;
pub mod trace;
pub mod units;

pub use batch::{BatchFailureSource, BatchFailureStream, BatchTraceBuffer, BatchTraceCursor};
pub use checksum::{ChecksumGen, Crc32, NullChecksum};
pub use cluster::Cluster;
pub use error::PlatformError;
pub use failure::{
    AnyFailureModel, ExponentialFailures, FailureModel, FailureSource, FailureSpec, FailureStream,
    LogNormalFailures, SourceState, WeibullFailures,
};
pub use grid::ProcessGrid;
pub use memory::DatasetLayout;
pub use node::Node;
pub use rng::{AntitheticRng, DeterministicRng, SeedStream, SplitMix64, Xoshiro256};
pub use scenario::{
    bundled_playback, playback_from_file, CascadeFailures, DiurnalFailures, RecordedTrace,
    ScenarioError, ScenarioSpec, TraceFileError, TracePlayback, WearoutFailures,
};
pub use storage::{BandwidthBound, ConstantCost, Hierarchical, StorageModel};
pub use trace::{FailureEvent, FailureTrace, TraceBuffer, TraceCursor};
