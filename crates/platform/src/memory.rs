//! The LIBRARY / REMAINDER dataset split.
//!
//! During a LIBRARY phase only a subset of the application memory — the
//! *LIBRARY dataset* `M_L` — is accessed and modified; the rest is the
//! *REMAINDER dataset* `M_L̄` (Section III of the paper).  The fraction
//! `ρ = M_L / M` drives the cost of partial and incremental checkpoints:
//! `C_L = ρ C` and `C_L̄ = (1 − ρ) C`.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_fraction, ensure_positive, Result};

/// The memory footprint of an application, split between the LIBRARY dataset
/// (accessed during ABFT-protected library calls) and the REMAINDER dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetLayout {
    total: f64,
    rho: f64,
}

impl DatasetLayout {
    /// Creates a layout from the total footprint (bytes) and the fraction
    /// `ρ` of memory touched by LIBRARY phases.
    pub fn new(total: f64, rho: f64) -> Result<Self> {
        ensure_positive("total_memory", total)?;
        ensure_fraction("rho", rho)?;
        Ok(Self { total, rho })
    }

    /// Creates a layout from explicit LIBRARY and REMAINDER sizes.
    pub fn from_parts(library: f64, remainder: f64) -> Result<Self> {
        if library < 0.0 {
            return Err(crate::error::PlatformError::NonPositiveParameter {
                name: "library",
                value: library,
            });
        }
        if remainder < 0.0 {
            return Err(crate::error::PlatformError::NonPositiveParameter {
                name: "remainder",
                value: remainder,
            });
        }
        let total = library + remainder;
        ensure_positive("total_memory", total)?;
        Ok(Self {
            total,
            rho: library / total,
        })
    }

    /// Total footprint `M` in bytes.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The fraction `ρ` of the footprint that belongs to the LIBRARY dataset.
    #[inline]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// LIBRARY dataset size `M_L = ρ M` in bytes.
    #[inline]
    pub fn library(&self) -> f64 {
        self.rho * self.total
    }

    /// REMAINDER dataset size `M_L̄ = (1 − ρ) M` in bytes.
    #[inline]
    pub fn remainder(&self) -> f64 {
        (1.0 - self.rho) * self.total
    }

    /// Returns the layout scaled to a different total footprint, keeping ρ.
    pub fn scaled_to(&self, new_total: f64) -> Result<Self> {
        Self::new(new_total, self.rho)
    }

    /// Splits a checkpoint cost `C` (for the full footprint) into
    /// `(C_L, C_L̄)` proportionally to the dataset sizes.
    pub fn split_cost(&self, full_cost: f64) -> (f64, f64) {
        (full_cost * self.rho, full_cost * (1.0 - self.rho))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units;

    #[test]
    fn parts_sum_to_total() {
        let d = DatasetLayout::new(units::tib(1.0), 0.8).unwrap();
        assert!((d.library() + d.remainder() - d.total()).abs() < 1e-6);
        assert!((d.library() - 0.8 * units::tib(1.0)).abs() < 1e-6);
    }

    #[test]
    fn from_parts_recovers_rho() {
        let d = DatasetLayout::from_parts(80.0, 20.0).unwrap();
        assert!((d.rho() - 0.8).abs() < 1e-12);
        assert_eq!(d.total(), 100.0);
    }

    #[test]
    fn degenerate_fractions_are_allowed() {
        // ρ = 0 (no ABFT-able data) and ρ = 1 (everything is library data)
        // are both legitimate corner cases of the model.
        let d0 = DatasetLayout::new(100.0, 0.0).unwrap();
        assert_eq!(d0.library(), 0.0);
        assert_eq!(d0.remainder(), 100.0);
        let d1 = DatasetLayout::new(100.0, 1.0).unwrap();
        assert_eq!(d1.library(), 100.0);
        assert_eq!(d1.remainder(), 0.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(DatasetLayout::new(0.0, 0.5).is_err());
        assert!(DatasetLayout::new(10.0, 1.5).is_err());
        assert!(DatasetLayout::new(10.0, -0.1).is_err());
        assert!(DatasetLayout::from_parts(-1.0, 5.0).is_err());
        assert!(DatasetLayout::from_parts(0.0, 0.0).is_err());
    }

    #[test]
    fn split_cost_follows_rho() {
        // The paper's headline setting: ρ = 0.8, C = 10 min → C_L = 8 min.
        let d = DatasetLayout::new(units::gib(100.0), 0.8).unwrap();
        let (cl, clbar) = d.split_cost(units::minutes(10.0));
        assert!((cl - units::minutes(8.0)).abs() < 1e-9);
        assert!((clbar - units::minutes(2.0)).abs() < 1e-9);
    }

    #[test]
    fn scaling_preserves_rho() {
        let d = DatasetLayout::new(100.0, 0.3).unwrap();
        let s = d.scaled_to(1_000.0).unwrap();
        assert_eq!(s.rho(), 0.3);
        assert_eq!(s.total(), 1_000.0);
    }
}
