//! Description of a single compute node.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_positive, Result};
use crate::units;

/// A single compute node of the platform.
///
/// The paper is agnostic of the granularity of a "resource" (Section IV-B2:
/// the MTBF relation `µ = µ_ind / N` holds whether a resource is a core, a
/// socket or a fat node); [`Node`] mirrors that by only carrying the fields
/// the fault-tolerance analysis needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier of the node within its cluster.
    pub id: usize,
    /// Mean time between failures of this individual node, in seconds.
    pub mtbf: f64,
    /// Memory footprint available for application data, in bytes.
    pub memory: f64,
    /// Relative compute speed (1.0 = nominal). Used by weak-scaling
    /// scenarios that model heterogeneous platforms.
    pub speed: f64,
}

impl Node {
    /// Creates a node with the given individual MTBF (seconds) and memory
    /// (bytes), at nominal speed.
    pub fn new(id: usize, mtbf: f64, memory: f64) -> Result<Self> {
        ensure_positive("node.mtbf", mtbf)?;
        ensure_positive("node.memory", memory)?;
        Ok(Self {
            id,
            mtbf,
            memory,
            speed: 1.0,
        })
    }

    /// Sets the relative speed of the node.
    pub fn with_speed(mut self, speed: f64) -> Result<Self> {
        ensure_positive("node.speed", speed)?;
        self.speed = speed;
        Ok(self)
    }

    /// Failure rate of the node (failures per second), i.e. `1 / mtbf`.
    #[inline]
    pub fn failure_rate(&self) -> f64 {
        1.0 / self.mtbf
    }

    /// A "typical" node used as a default in examples and tests: 45-year
    /// individual MTBF (a common projection for exascale components) and
    /// 64 GiB of memory.
    pub fn typical(id: usize) -> Self {
        Self {
            id,
            mtbf: units::days(45.0 * 365.25),
            memory: units::gib(64.0),
            speed: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_construction_validates() {
        assert!(Node::new(0, 0.0, 1.0).is_err());
        assert!(Node::new(0, 1.0, -1.0).is_err());
        let n = Node::new(3, 1000.0, units::gib(32.0)).unwrap();
        assert_eq!(n.id, 3);
        assert_eq!(n.speed, 1.0);
    }

    #[test]
    fn failure_rate_is_reciprocal_of_mtbf() {
        let n = Node::new(0, 500.0, 1.0).unwrap();
        assert!((n.failure_rate() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn speed_must_be_positive() {
        let n = Node::new(0, 1.0, 1.0).unwrap();
        assert!(n.with_speed(0.0).is_err());
        assert_eq!(n.with_speed(2.0).unwrap().speed, 2.0);
    }

    #[test]
    fn typical_node_is_sane() {
        let n = Node::typical(7);
        assert_eq!(n.id, 7);
        assert!(n.mtbf > units::days(10_000.0));
        assert!(n.memory > units::gib(1.0));
    }
}
