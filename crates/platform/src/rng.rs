//! Deterministic pseudo-random number generation.
//!
//! All Monte-Carlo components of the workspace (failure injection, random
//! matrices, replication of simulations) draw their randomness from the
//! generators defined here, so that **every experiment is reproducible from a
//! single `u64` seed**, regardless of the version of any external crate.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny, very fast generator used mostly to *derive*
//!   independent seeds (one per replication, one per process, ...);
//! * [`Xoshiro256`] — `xoshiro256++`, a high-quality general-purpose
//!   generator used for actual sampling.
//!
//! The [`DeterministicRng`] trait exposes the sampling helpers the rest of the
//! workspace needs: uniform `f64` in `[0, 1)`, uniform integer ranges, and
//! exponential / Weibull / normal variates.

/// Sampling interface implemented by the deterministic generators.
pub trait DeterministicRng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the 53 high-quality top bits to build a double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `(0, 1]` (never exactly zero), suitable for
    /// feeding a logarithm.
    #[inline]
    fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Returns a uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below requires a non-zero bound");
        // Lemire's multiply-shift bounded generation with rejection to remove
        // the modulo bias entirely.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, len)`.
    #[inline]
    fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    #[inline]
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Samples an exponential variate with the given mean (`mean = 1/λ`).
    #[inline]
    fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        -mean * self.next_f64_open().ln()
    }

    /// Samples a Weibull variate with the given `scale` (λ) and `shape` (k).
    #[inline]
    fn weibull(&mut self, scale: f64, shape: f64) -> f64 {
        debug_assert!(scale > 0.0 && shape > 0.0);
        scale * (-self.next_f64_open().ln()).powf(1.0 / shape)
    }

    /// Samples a standard normal variate (Box–Muller).
    #[inline]
    fn standard_normal(&mut self) -> f64 {
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// SplitMix64: tiny seed-expansion generator (Vigna).
///
/// Used to derive streams of independent seeds; also a perfectly serviceable
/// generator for non-critical randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives a fresh, statistically independent seed.
    #[inline]
    pub fn derive_seed(&mut self) -> u64 {
        self.next_u64()
    }
}

impl DeterministicRng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// `xoshiro256++` (Blackman & Vigna): the workhorse generator of the
/// workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator, expanding the `u64` seed through SplitMix64 as
    /// recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is invalid; SplitMix64 cannot produce four zero
        // outputs in a row from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1;
        }
        Self { s }
    }

    /// Jump function: advances the generator by 2^128 steps, producing a
    /// stream that never overlaps with the original for any realistic use.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180EC6D33CFD0ABA,
            0xD5A61266F0C9392C,
            0xA9582618E03FC9AA,
            0x39ABDC4529B1661C,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for jump in JUMP {
            for b in 0..64 {
                if (jump & (1u64 << b)) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Returns a child generator whose stream is disjoint from `self`'s, and
    /// advances `self` past the child's stream.
    pub fn split(&mut self) -> Self {
        let child = *self;
        self.jump();
        child
    }
}

impl DeterministicRng for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Antithetic view of another generator: every raw output is bitwise
/// complemented, which maps each uniform `u = next_f64()` of the inner
/// generator to `1 − 2⁻⁵³ − u` — the antithetic partner `1 − u` on the
/// 53-bit uniform grid (and `next_f64_open`'s `1 − u` to `u + 2⁻⁵³`).
///
/// Running a Monte-Carlo replication once with the plain generator and once
/// through this wrapper yields a *negatively correlated* pair of samples for
/// any outcome that responds monotonically to the underlying uniforms
/// (waste does: larger uniforms → longer failure inter-arrivals → less
/// waste); averaging each pair cancels first-order sampling noise.  The
/// wrapper is an involution: the antithetic view of an antithetic view
/// replays the original sequence bit for bit.
#[derive(Debug)]
pub struct AntitheticRng<'a, R: DeterministicRng>(pub &'a mut R);

impl<R: DeterministicRng> DeterministicRng for AntitheticRng<'_, R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        !self.0.next_u64()
    }
}

/// An allocation-free stream of independent seeds derived from a master seed.
///
/// This is how the simulator hands one seed to each Monte-Carlo replication:
/// the `i`-th item of `SeedStream::new(master)` is exactly
/// `derive_seeds(master, n)[i]`, but no intermediate `Vec<u64>` is ever
/// materialised, which matters on the sweep fast path where every grid point
/// used to allocate (and immediately throw away) a thousand-entry seed
/// vector.  For parallel consumers, [`SeedStream::nth_seed`] computes any
/// position of the stream in O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    sm: SplitMix64,
}

impl SeedStream {
    /// Starts the seed stream of a master seed.
    #[inline]
    pub fn new(master: u64) -> Self {
        Self {
            sm: SplitMix64::new(master),
        }
    }

    /// The `index`-th seed of `master`'s stream, in O(1): SplitMix64's state
    /// advances by a fixed constant per draw, so any position can be reached
    /// directly instead of iterating.
    #[inline]
    pub fn nth_seed(master: u64, index: u64) -> u64 {
        let state = master.wrapping_add(index.wrapping_mul(0x9E3779B97F4A7C15));
        SplitMix64::new(state).derive_seed()
    }

    /// Fills `out` with the next `out.len()` seeds of the stream — the batch
    /// engine's lane-seeding primitive.  Equivalent to (and bit-identical
    /// with) calling `next()` once per slot, in order.
    #[inline]
    pub fn fill(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.sm.derive_seed();
        }
    }
}

impl Iterator for SeedStream {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        Some(self.sm.derive_seed())
    }
}

/// Derives `count` independent seeds from a master seed.
///
/// Allocating convenience over [`SeedStream`]; prefer the stream (or
/// [`SeedStream::nth_seed`]) on hot paths.
pub fn derive_seeds(master: u64, count: usize) -> Vec<u64> {
    SeedStream::new(master).take(count).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        let mut c = Xoshiro256::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = Xoshiro256::seed_from_u64(123);
        let mean = 250.0;
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let empirical = sum / n as f64;
        assert!(
            (empirical - mean).abs() / mean < 0.02,
            "empirical mean {empirical} too far from {mean}"
        );
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        // With shape k = 1 the Weibull distribution degenerates to an
        // exponential with mean = scale.
        let mut rng = Xoshiro256::seed_from_u64(9);
        let scale = 100.0;
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.weibull(scale, 1.0)).sum();
        let empirical = sum / n as f64;
        assert!((empirical - scale).abs() / scale < 0.03);
    }

    #[test]
    fn bounded_generation_respects_bound() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for bound in [1u64, 2, 3, 7, 100, 1_000_003] {
            for _ in 0..1_000 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn antithetic_rng_complements_the_uniforms_and_is_an_involution() {
        let mut plain = Xoshiro256::seed_from_u64(4);
        let mut inner = Xoshiro256::seed_from_u64(4);
        for _ in 0..1_000 {
            let u = plain.next_f64();
            let v = AntitheticRng(&mut inner).next_f64();
            // v = 1 − 2⁻⁵³ − u exactly on the 53-bit grid.
            assert_eq!(v.to_bits(), (1.0 - (1.0 / (1u64 << 53) as f64) - u).to_bits());
            assert!((0.0..1.0).contains(&v));
        }
        // Involution: double complement replays the original stream.
        let mut a = Xoshiro256::seed_from_u64(9);
        let mut b = Xoshiro256::seed_from_u64(9);
        for _ in 0..100 {
            let mut anti = AntitheticRng(&mut b);
            assert_eq!(a.next_u64(), AntitheticRng(&mut anti).next_u64());
        }
    }

    #[test]
    fn antithetic_exponential_variates_are_negatively_correlated() {
        let mean = 100.0;
        let mut plain = Xoshiro256::seed_from_u64(11);
        let mut inner = Xoshiro256::seed_from_u64(11);
        let n = 50_000;
        let (mut sx, mut sy, mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = plain.exponential(mean);
            let y = AntitheticRng(&mut inner).exponential(mean);
            sx += x;
            sy += y;
            sxy += x * y;
            sxx += x * x;
            syy += y * y;
        }
        let nf = n as f64;
        let cov = sxy / nf - (sx / nf) * (sy / nf);
        let corr = cov / ((sxx / nf - (sx / nf).powi(2)).sqrt() * (syy / nf - (sy / nf).powi(2)).sqrt());
        assert!(corr < -0.5, "correlation {corr} should be strongly negative");
        // Both streams still have the right mean.
        assert!((sx / nf - mean).abs() / mean < 0.05);
        assert!((sy / nf - mean).abs() / mean < 0.05);
    }

    #[test]
    fn seed_stream_matches_derive_seeds() {
        let seeds = derive_seeds(0xABCD_EF01, 500);
        let streamed: Vec<u64> = SeedStream::new(0xABCD_EF01).take(500).collect();
        assert_eq!(seeds, streamed);
    }

    #[test]
    fn nth_seed_is_random_access_into_the_stream() {
        let master = 0x1234_5678_9ABC_DEF0;
        let streamed: Vec<u64> = SeedStream::new(master).take(100).collect();
        for (i, &s) in streamed.iter().enumerate() {
            assert_eq!(SeedStream::nth_seed(master, i as u64), s, "index {i}");
        }
    }

    #[test]
    fn derived_seeds_are_distinct() {
        let seeds = derive_seeds(0xDEADBEEF, 1_000);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len());
    }

    #[test]
    fn split_streams_do_not_collide_immediately() {
        let mut parent = Xoshiro256::seed_from_u64(77);
        let mut child = parent.split();
        let a: Vec<u64> = (0..64).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..64).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = Xoshiro256::seed_from_u64(2024);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
