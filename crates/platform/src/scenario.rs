//! Trace-driven and non-stationary failure scenarios.
//!
//! Everything the sweeps measured before this module assumed i.i.d.
//! exponential/Weibull/lognormal inter-arrivals.  Real failure logs are
//! bursty, correlated, and non-stationary; this module provides the sources
//! that break the i.i.d. assumption deliberately, so the composite-strategy
//! comparison can be re-run against the regimes fault-injection campaigns
//! actually face:
//!
//! * [`RecordedTrace`] / [`TracePlayback`] — a small versioned, checksummed
//!   byte format for log-derived failure traces (loadable from a file or
//!   from the [`bundled_trace_bytes`] embedded in the crate), played back
//!   cyclically with a seeded random rotation so every replication sees the
//!   trace's empirical burst structure at a different phase;
//! * [`CascadeFailures`] — post-failure cascade bursts: each primary
//!   failure triggers a geometric number of short-gap aftershocks
//!   (correlated clusters, the "one node takes its neighbours with it"
//!   regime);
//! * [`DiurnalFailures`] — day/night intensity modulation: a
//!   piecewise-constant periodic hazard inverted in closed form (failures
//!   concentrate in the high-rate window);
//! * [`WearoutFailures`] — platform-age wear-out: a Weibull hazard in
//!   *absolute* time (not per-gap), so the platform degrades over the run;
//! * [`ScenarioSpec`] — the declarative CLI/config layer
//!   (`trace:<path> | cascade | diurnal | wearout`) resolving to an
//!   [`AnyFailureModel`] arm at a parameter point.
//!
//! # Determinism
//!
//! Every source here is a pure function of `(model parameters, seed,
//! antithetic flag, draw index)`.  The non-stationary sources advance
//! through the stateful [`FailureModel::next_failure_time`] hook; their
//! small between-draw memory lives in the caller-owned
//! [`SourceState`], which every stream/buffer reset clears, so replay,
//! antithetic pairing, crash-resume repositioning (reset + lazy
//! re-extension), and batch lane independence all hold exactly as they do
//! for the i.i.d. models.  All scenario sources report
//! [`FailureModel::single_uniform`]` = false`, which pins every batch
//! source to its scalar per-lane fallback branch — the explicitly pinned
//! dispatch the batch differential oracle certifies.
//!
//! Calibration: each synthesized scenario is parameterised by the platform
//! MTBF `µ` and keeps its *long-run average* failure rate at `1/µ`, so a
//! scenario sweep is compared against an i.i.d. exponential baseline at
//! matched MTBF — any crossover/waste movement is the effect of the broken
//! i.i.d. assumption alone, not of a different failure budget.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock, PoisonError};

use serde::{Deserialize, Serialize};

use crate::checksum::{ChecksumGen, Crc32};
use crate::error::{ensure_positive, PlatformError};
use crate::failure::{AnyFailureModel, ExponentialFailures, FailureModel, SourceState};
use crate::rng::DeterministicRng;

/// Magic + version prefix of the trace byte format: `b"FTTRACE"` followed by
/// the format version byte (`b'1'`).
pub const TRACE_MAGIC: [u8; 8] = *b"FTTRACE1";

/// Byte length of the fixed trace header (magic, horizon, ranks, count).
const TRACE_HEADER_LEN: usize = 24;

/// Byte length of one encoded event (time `f64` LE + victim rank `u32` LE).
const TRACE_EVENT_LEN: usize = 12;

/// Typed failures of the trace byte format's trust boundary.  Parsing never
/// panics: truncated, corrupt, or semantically invalid inputs all map to a
/// variant here.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceFileError {
    /// The byte stream is shorter (or longer) than the header + events +
    /// checksum layout requires.
    Truncated {
        /// Exact byte length the header demands.
        needed: usize,
        /// Byte length actually supplied.
        actual: usize,
    },
    /// The leading magic is not `b"FTTRACE"`.
    BadMagic,
    /// The magic matched but the version byte is not a known revision.
    UnsupportedVersion {
        /// The version byte found in the stream.
        found: u8,
    },
    /// The CRC-32 trailer does not match the header + event bytes.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        expected: u32,
        /// Checksum recomputed over the received bytes.
        actual: u32,
    },
    /// The trace contains no events (playback needs at least one).
    Empty,
    /// The trace declares zero ranks.
    NoRanks,
    /// The horizon is not a positive finite number.
    BadHorizon {
        /// The horizon value found.
        value: f64,
    },
    /// An event timestamp is not finite, not positive, or beyond the
    /// horizon.
    BadTimestamp {
        /// Index of the offending event.
        index: usize,
        /// The timestamp value found.
        value: f64,
    },
    /// Event timestamps are not strictly increasing.
    NonMonotone {
        /// Index of the first event at or before its predecessor.
        index: usize,
    },
    /// An event's victim rank is outside the declared rank count.
    RankOutOfRange {
        /// Index of the offending event.
        index: usize,
        /// The rank value found.
        rank: u32,
        /// The declared rank count.
        ranks: u32,
    },
    /// Reading the trace file failed at the I/O layer.
    Io {
        /// Path and OS error description.
        detail: String,
    },
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Truncated { needed, actual } => {
                write!(f, "trace file needs exactly {needed} bytes, got {actual}")
            }
            TraceFileError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceFileError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace format version byte 0x{found:02x}")
            }
            TraceFileError::ChecksumMismatch { expected, actual } => {
                write!(f, "trace checksum mismatch: trailer {expected:#010x}, computed {actual:#010x}")
            }
            TraceFileError::Empty => write!(f, "trace contains no events"),
            TraceFileError::NoRanks => write!(f, "trace declares zero ranks"),
            TraceFileError::BadHorizon { value } => {
                write!(f, "trace horizon must be positive and finite (got {value})")
            }
            TraceFileError::BadTimestamp { index, value } => {
                write!(f, "event {index} timestamp {value} is not in (0, horizon]")
            }
            TraceFileError::NonMonotone { index } => {
                write!(f, "event {index} is not strictly after its predecessor")
            }
            TraceFileError::RankOutOfRange { index, rank, ranks } => {
                write!(f, "event {index} strikes rank {rank} of {ranks}")
            }
            TraceFileError::Io { detail } => write!(f, "trace I/O error: {detail}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

fn f64_at(bytes: &[u8], at: usize) -> Option<f64> {
    bytes
        .get(at..at + 8)
        .and_then(|s| <[u8; 8]>::try_from(s).ok())
        .map(f64::from_le_bytes)
}

fn u32_at(bytes: &[u8], at: usize) -> Option<u32> {
    bytes
        .get(at..at + 4)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map(u32::from_le_bytes)
}

/// A parsed, validated failure trace: strictly increasing event times in
/// `(0, horizon]`, each with a victim rank, plus the horizon the log covers.
///
/// This is the owned form straight off the byte format; simulation plays it
/// back through [`RecordedTrace::into_playback`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedTrace {
    times: Vec<f64>,
    victims: Vec<u32>,
    horizon: f64,
    ranks: u32,
}

impl RecordedTrace {
    /// Builds a trace from in-memory events, enforcing the same invariants
    /// as [`RecordedTrace::parse`] (strictly increasing times in
    /// `(0, horizon]`, ranks in range, at least one event).
    pub fn new(
        events: &[(f64, u32)],
        horizon: f64,
        ranks: u32,
    ) -> Result<RecordedTrace, TraceFileError> {
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err(TraceFileError::BadHorizon { value: horizon });
        }
        if ranks == 0 {
            return Err(TraceFileError::NoRanks);
        }
        if events.is_empty() {
            return Err(TraceFileError::Empty);
        }
        let mut times = Vec::with_capacity(events.len());
        let mut victims = Vec::with_capacity(events.len());
        let mut previous = 0.0f64;
        for (index, &(time, rank)) in events.iter().enumerate() {
            if !(time.is_finite() && time > 0.0 && time <= horizon) {
                return Err(TraceFileError::BadTimestamp { index, value: time });
            }
            if time <= previous {
                return Err(TraceFileError::NonMonotone { index });
            }
            if rank >= ranks {
                return Err(TraceFileError::RankOutOfRange { index, rank, ranks });
            }
            previous = time;
            times.push(time);
            victims.push(rank);
        }
        Ok(RecordedTrace {
            times,
            victims,
            horizon,
            ranks,
        })
    }

    /// Parses and validates the byte format:
    ///
    /// | bytes | field |
    /// |---|---|
    /// | `0..8` | magic `b"FTTRACE"` + version byte `b'1'` |
    /// | `8..16` | horizon, `f64` little-endian seconds |
    /// | `16..20` | rank count, `u32` little-endian |
    /// | `20..24` | event count, `u32` little-endian |
    /// | `24..24+12n` | events: time `f64` LE + victim rank `u32` LE |
    /// | last 4 | CRC-32 (ISO-HDLC) of every preceding byte, `u32` LE |
    ///
    /// The byte length must match the layout exactly.  Structural checks
    /// (length, magic, version, checksum) run before semantic ones, so a
    /// corrupt file reports [`TraceFileError::ChecksumMismatch`] rather than
    /// whichever semantic invariant its garbage happens to break first.
    pub fn parse(bytes: &[u8]) -> Result<RecordedTrace, TraceFileError> {
        if bytes.len() < TRACE_HEADER_LEN + 4 {
            return Err(TraceFileError::Truncated {
                needed: TRACE_HEADER_LEN + 4,
                actual: bytes.len(),
            });
        }
        if bytes[..7] != TRACE_MAGIC[..7] {
            return Err(TraceFileError::BadMagic);
        }
        if bytes[7] != TRACE_MAGIC[7] {
            return Err(TraceFileError::UnsupportedVersion { found: bytes[7] });
        }
        let horizon = f64_at(bytes, 8).unwrap_or(f64::NAN);
        let ranks = u32_at(bytes, 16).unwrap_or(0);
        let count = u32_at(bytes, 20).unwrap_or(0) as usize;
        let needed = TRACE_HEADER_LEN + count * TRACE_EVENT_LEN + 4;
        if bytes.len() != needed {
            return Err(TraceFileError::Truncated {
                needed,
                actual: bytes.len(),
            });
        }
        let body = needed - 4;
        let actual = Crc32::new().checksum_of(&bytes[..body]);
        let expected = u32_at(bytes, body).unwrap_or(0);
        if actual != expected {
            return Err(TraceFileError::ChecksumMismatch { expected, actual });
        }
        let mut events = Vec::with_capacity(count);
        for index in 0..count {
            let at = TRACE_HEADER_LEN + index * TRACE_EVENT_LEN;
            let time = f64_at(bytes, at).unwrap_or(f64::NAN);
            let rank = u32_at(bytes, at + 8).unwrap_or(u32::MAX);
            events.push((time, rank));
        }
        RecordedTrace::new(&events, horizon, ranks)
    }

    /// Serialises the trace into the byte format [`RecordedTrace::parse`]
    /// reads (including the CRC-32 trailer).
    pub fn encode(&self) -> Vec<u8> {
        let mut bytes =
            Vec::with_capacity(TRACE_HEADER_LEN + self.times.len() * TRACE_EVENT_LEN + 4);
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&self.horizon.to_le_bytes());
        bytes.extend_from_slice(&self.ranks.to_le_bytes());
        bytes.extend_from_slice(&(self.times.len() as u32).to_le_bytes());
        for (&time, &rank) in self.times.iter().zip(&self.victims) {
            bytes.extend_from_slice(&time.to_le_bytes());
            bytes.extend_from_slice(&rank.to_le_bytes());
        }
        let crc = Crc32::new().checksum_of(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Reads and parses a trace file from disk.
    pub fn load(path: &str) -> Result<RecordedTrace, TraceFileError> {
        let bytes = std::fs::read(path).map_err(|e| TraceFileError::Io {
            detail: format!("{path}: {e}"),
        })?;
        RecordedTrace::parse(&bytes)
    }

    /// The event timestamps, strictly increasing in `(0, horizon]`.
    #[inline]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The victim rank of each event.
    #[inline]
    pub fn victims(&self) -> &[u32] {
        &self.victims
    }

    /// The horizon (seconds) the log covers.
    #[inline]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The declared rank count.
    #[inline]
    pub fn ranks(&self) -> u32 {
        self.ranks
    }

    /// Number of events.
    #[inline]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the trace has no events (never true for a parsed trace).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Empirical mean time between failures: `horizon / events`.
    #[inline]
    pub fn empirical_mtbf(&self) -> f64 {
        self.horizon / self.times.len() as f64
    }

    /// Converts the trace into a [`TracePlayback`] failure model.
    ///
    /// The event times are moved into leaked `'static` storage — a
    /// deliberate once-per-loaded-trace allocation that lets the playback
    /// model stay `Copy` (so [`AnyFailureModel`] and the simulation engine
    /// keep their by-value semantics).  Load traces once and reuse the
    /// returned model; [`playback_from_file`] memoises by path to enforce
    /// exactly that.
    pub fn into_playback(self) -> TracePlayback {
        TracePlayback {
            times: Box::leak(self.times.into_boxed_slice()),
            horizon: self.horizon,
            mean: self.horizon / self.victims.len() as f64,
        }
    }
}

/// The bytes of the bundled log-derived trace (embedded in the crate, so
/// trace-driven scenarios work without any file on disk).
///
/// Regenerate with the `regenerate_bundled_trace` test in this module (run
/// with `--ignored`); docs/TRACES.md describes its derivation.
pub fn bundled_trace_bytes() -> &'static [u8] {
    include_bytes!("../data/bundled_burst.fttrace")
}

/// The bundled trace, parsed and validated once per process.
pub fn bundled_playback() -> Result<TracePlayback, TraceFileError> {
    static BUNDLED: OnceLock<Result<TracePlayback, TraceFileError>> = OnceLock::new();
    BUNDLED
        .get_or_init(|| RecordedTrace::parse(bundled_trace_bytes()).map(RecordedTrace::into_playback))
        .clone()
}

/// Loads a trace file into a playback model, memoising by path so the
/// `'static` leak of [`RecordedTrace::into_playback`] happens at most once
/// per distinct file per process (sweeps resolve their scenario at every
/// grid point).
pub fn playback_from_file(path: &str) -> Result<TracePlayback, TraceFileError> {
    static CACHE: OnceLock<Mutex<BTreeMap<String, TracePlayback>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut map = cache.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(playback) = map.get(path) {
        return Ok(*playback);
    }
    let playback = RecordedTrace::load(path)?.into_playback();
    map.insert(path.to_string(), playback);
    Ok(playback)
}

/// Cyclic playback of a recorded failure trace, randomised by a seeded
/// rotation — the [`FailureModel`] face of a [`RecordedTrace`].
///
/// On its first draw the playback consumes **one** uniform `u` and sets the
/// phase `θ = u · horizon`; an antithetic replay (raw-bit complement) sees
/// the mirrored phase `≈ (1 − u) · horizon`.  The `k`-th failure is then the
/// deterministic value `cycle · horizon + shift(times, θ)[k mod n]`, where
/// `shift` rotates the trace by `θ` with wrap-around — so every replication
/// replays the log's exact gap structure (bursts included) starting at a
/// random point of the cycle, and the long-run rate is exactly
/// `n / horizon`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePlayback {
    /// Strictly increasing event times in `(0, horizon]` (leaked once at
    /// load; see [`RecordedTrace::into_playback`]).
    times: &'static [f64],
    horizon: f64,
    mean: f64,
}

impl TracePlayback {
    /// The horizon of one playback cycle (seconds).
    #[inline]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Number of events per cycle.
    #[inline]
    pub fn events_per_cycle(&self) -> usize {
        self.times.len()
    }
}

impl FailureModel for TracePlayback {
    fn next_interarrival(&self, rng: &mut dyn DeterministicRng) -> f64 {
        // Stationary fallback for callers outside the stream/buffer path:
        // each call is treated as a fresh playback at t = 0 (draws a new
        // phase).  Streams advance through `next_failure_time`.
        self.next_failure_time(0.0, &mut SourceState::default(), rng)
    }

    #[inline]
    fn mean(&self) -> f64 {
        self.mean
    }

    fn name(&self) -> &'static str {
        "trace"
    }

    fn next_failure_time(
        &self,
        _prev: f64,
        state: &mut SourceState,
        rng: &mut dyn DeterministicRng,
    ) -> f64 {
        if !state.armed {
            // One uniform, drawn lazily on the first failure of the
            // sequence; `next_f64` lands in [0, 1), so θ ∈ [0, horizon).
            state.offset = rng.next_f64() * self.horizon;
            state.armed = true;
        }
        let n = self.times.len();
        let k = state.count as usize;
        state.count += 1;
        let (cycle, idx) = (k / n, k % n);
        // Events shifted by θ: those that would land past the horizon wrap
        // to the front of the cycle, so within one cycle the wrapped tail
        // (indices ≥ p) precedes the unshifted head (indices < p).
        let p = self
            .times
            .partition_point(|&t| t + state.offset <= self.horizon);
        let wrapped = n - p;
        let within = if idx < wrapped {
            self.times[p + idx] + state.offset - self.horizon
        } else {
            self.times[idx - wrapped] + state.offset
        };
        cycle as f64 * self.horizon + within
    }
}

/// Post-failure cascade bursts over an exponential base clock.
///
/// Failures arrive in clusters: a *primary* failure (gap `Exp(γ)`) is
/// followed by a geometric number of *aftershocks* (mean `m`, each at gap
/// `Exp(δ)` after its predecessor).  Per cluster that is `1 + m` expected
/// events in `γ + m·δ` expected seconds, so `γ = µ(1 + m) − m·δ` keeps the
/// long-run mean inter-arrival at exactly the platform MTBF `µ` — the
/// burstiness changes, the failure budget does not.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadeFailures {
    mtbf: f64,
    aftershocks: f64,
    aftershock_gap: f64,
    primary_gap: f64,
}

impl CascadeFailures {
    /// Creates a cascade model: platform MTBF `µ`, mean aftershock count
    /// `m > 0` per primary, and mean aftershock gap `δ`.  Requires
    /// `δ < µ(1 + m)/m` so the derived primary gap `γ` stays positive.
    pub fn new(mtbf: f64, aftershocks: f64, aftershock_gap: f64) -> Result<Self, PlatformError> {
        ensure_positive("mtbf", mtbf)?;
        ensure_positive("aftershocks", aftershocks)?;
        ensure_positive("aftershock_gap", aftershock_gap)?;
        let primary_gap = mtbf * (1.0 + aftershocks) - aftershocks * aftershock_gap;
        ensure_positive("primary_gap", primary_gap)?;
        Ok(Self {
            mtbf,
            aftershocks,
            aftershock_gap,
            primary_gap,
        })
    }

    /// The default scenario calibration: `m = 3` aftershocks at mean gap
    /// `µ/20` (a tight burst after each primary).
    pub fn with_defaults(mtbf: f64) -> Result<Self, PlatformError> {
        Self::new(mtbf, 3.0, mtbf / 20.0)
    }

    /// Mean aftershock count per primary failure.
    #[inline]
    pub fn aftershocks(&self) -> f64 {
        self.aftershocks
    }

    /// Mean gap between aftershocks (seconds).
    #[inline]
    pub fn aftershock_gap(&self) -> f64 {
        self.aftershock_gap
    }

    /// The derived mean primary gap `γ = µ(1 + m) − m·δ` (seconds).
    #[inline]
    pub fn primary_gap(&self) -> f64 {
        self.primary_gap
    }
}

impl FailureModel for CascadeFailures {
    fn next_interarrival(&self, rng: &mut dyn DeterministicRng) -> f64 {
        // Stationary fallback: a fresh state draws a primary gap (and a
        // cluster size that is immediately discarded).  Streams advance
        // through `next_failure_time`.
        self.next_failure_time(0.0, &mut SourceState::default(), rng)
    }

    #[inline]
    fn mean(&self) -> f64 {
        self.mtbf
    }

    fn name(&self) -> &'static str {
        "cascade"
    }

    fn next_failure_time(
        &self,
        prev: f64,
        state: &mut SourceState,
        rng: &mut dyn DeterministicRng,
    ) -> f64 {
        if state.count > 0 {
            state.count -= 1;
            return prev + rng.exponential(self.aftershock_gap);
        }
        // Cluster start: always exactly two draws (primary gap, cluster
        // size), so the draw count per call is deterministic and antithetic
        // replays stay paired draw for draw.
        let gap = rng.exponential(self.primary_gap);
        let u = rng.next_f64_open();
        // K ~ Geometric on {0, 1, …} with survival (1 − p)^k, p = 1/(1 + m),
        // so E[K] = m: K = ⌊ln u / ln(m/(1 + m))⌋.
        let survival = self.aftershocks / (1.0 + self.aftershocks);
        state.count = (u.ln() / survival.ln()) as u64;
        prev + gap
    }
}

/// Day/night intensity modulation: a piecewise-constant periodic hazard.
///
/// The rate is `r_hi` for the first `day_fraction` of every `period` and
/// `r_lo = r_hi / contrast` for the rest, normalised so the average rate is
/// exactly `1/µ`.  Sampling inverts the cumulative hazard in closed form
/// (time-rescaling: `Λ(t_next) = Λ(prev) + Exp(1)`), so each draw costs one
/// uniform and a handful of arithmetic operations — but the gap depends on
/// *where in the cycle* `prev` falls, which is exactly the non-stationarity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalFailures {
    mean: f64,
    period: f64,
    day_fraction: f64,
    contrast: f64,
    rate_hi: f64,
    rate_lo: f64,
}

impl DiurnalFailures {
    /// Creates a diurnal model: platform MTBF `µ`, cycle `period` (seconds),
    /// high-rate window fraction `day_fraction ∈ (0, 1)`, and rate contrast
    /// `r_hi / r_lo = contrast ≥ 1`.
    pub fn new(
        mean: f64,
        period: f64,
        day_fraction: f64,
        contrast: f64,
    ) -> Result<Self, PlatformError> {
        ensure_positive("mean", mean)?;
        ensure_positive("period", period)?;
        ensure_positive("day_fraction", day_fraction)?;
        ensure_positive("night_fraction", 1.0 - day_fraction)?;
        ensure_positive("contrast", contrast)?;
        let mean_rate = 1.0 / mean;
        let rate_lo = mean_rate / (day_fraction * contrast + (1.0 - day_fraction));
        let rate_hi = contrast * rate_lo;
        Ok(Self {
            mean,
            period,
            day_fraction,
            contrast,
            rate_hi,
            rate_lo,
        })
    }

    /// The default scenario calibration: a 24 h cycle whose high-rate half
    /// runs at 4× the low-rate half (rate contrast observed in
    /// production-cluster failure logs between peak and quiet hours).
    pub fn with_defaults(mean: f64) -> Result<Self, PlatformError> {
        Self::new(mean, 86_400.0, 0.5, 4.0)
    }

    /// The cycle period (seconds).
    #[inline]
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The high/low rate contrast.
    #[inline]
    pub fn contrast(&self) -> f64 {
        self.contrast
    }

    /// Cumulative hazard `Λ(t)` of the periodic rate.
    fn cumulative_hazard(&self, t: f64) -> f64 {
        let day = self.day_fraction * self.period;
        let per_cycle = self.rate_hi * day + self.rate_lo * (self.period - day);
        let cycles = (t / self.period).floor();
        let s = t - cycles * self.period;
        let local = if s <= day {
            self.rate_hi * s
        } else {
            self.rate_hi * day + self.rate_lo * (s - day)
        };
        cycles * per_cycle + local
    }
}

impl FailureModel for DiurnalFailures {
    fn next_interarrival(&self, rng: &mut dyn DeterministicRng) -> f64 {
        // Stationary fallback: the first arrival of a playback starting at
        // t = 0.  Streams advance through `next_failure_time`.
        self.next_failure_time(0.0, &mut SourceState::default(), rng)
    }

    #[inline]
    fn mean(&self) -> f64 {
        self.mean
    }

    fn name(&self) -> &'static str {
        "diurnal"
    }

    fn next_failure_time(
        &self,
        prev: f64,
        state: &mut SourceState,
        rng: &mut dyn DeterministicRng,
    ) -> f64 {
        let _ = state;
        let day = self.day_fraction * self.period;
        let per_cycle = self.rate_hi * day + self.rate_lo * (self.period - day);
        // Time-rescaling: the next arrival sits where the cumulative hazard
        // reaches Λ(prev) + Exp(1).
        let target = self.cumulative_hazard(prev) - rng.next_f64_open().ln();
        let cycles = (target / per_cycle).floor();
        let rem = target - cycles * per_cycle;
        let s = if rem <= self.rate_hi * day {
            rem / self.rate_hi
        } else {
            day + (rem - self.rate_hi * day) / self.rate_lo
        };
        cycles * self.period + s
    }
}

/// Platform-age wear-out: a Weibull hazard in **absolute** time.
///
/// Unlike [`crate::failure::WeibullFailures`] (i.i.d. Weibull *gaps*), the
/// hazard here grows with the age of the platform itself:
/// `Λ(t) = (t/λ)^k` with `k > 1`, so failures are sparse early in the run
/// and pile up towards the end.  The scale λ is calibrated so the *average*
/// rate over a nominal horizon `T` equals `1/µ` (`Λ(T) = T/µ`) — runs of
/// roughly that length see the platform-MTBF failure budget, distributed
/// wear-out-style.
///
/// Beyond the nominal horizon the hazard **saturates**: for `t > T` the
/// rate stays at its `t = T` level (`Λ` continues linearly), i.e. the
/// platform is as worn as it gets.  The cap matters for more than realism:
/// failure-heavy parameter points push a run's finish time well past `T`,
/// and an unbounded power-law hazard then shrinks the failure gaps below
/// the checkpoint-attempt length — the success probability of each attempt
/// decays exponentially with platform age, and the simulation's expected
/// finish time diverges (a positive feedback between waste and hazard).
/// The calibration window `[0, T]` pins `Λ(T)` either way, so the cap
/// changes nothing the calibration promises.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WearoutFailures {
    mean: f64,
    shape: f64,
    scale: f64,
    horizon: f64,
    hazard_at_horizon: f64,
    rate_at_horizon: f64,
}

impl WearoutFailures {
    /// Creates a wear-out model: nominal platform MTBF `µ`, hazard shape
    /// `k` (`> 1` wears out; `k = 1` degenerates to the exponential), and
    /// the nominal horizon `T` over which the average rate is calibrated.
    pub fn new(mean: f64, shape: f64, nominal_horizon: f64) -> Result<Self, PlatformError> {
        ensure_positive("mean", mean)?;
        ensure_positive("shape", shape)?;
        ensure_positive("nominal_horizon", nominal_horizon)?;
        let scale = nominal_horizon / (nominal_horizon / mean).powf(1.0 / shape);
        ensure_positive("scale", scale)?;
        let hazard_at_horizon = (nominal_horizon / scale).powf(shape);
        // dΛ/dt at T: k·(T/λ)^{k-1}/λ = k·Λ(T)/T.
        let rate_at_horizon = shape * hazard_at_horizon / nominal_horizon;
        Ok(Self {
            mean,
            shape,
            scale,
            horizon: nominal_horizon,
            hazard_at_horizon,
            rate_at_horizon,
        })
    }

    /// The default scenario calibration: quadratic hazard (`k = 2`) over the
    /// given nominal horizon.
    pub fn with_defaults(mean: f64, nominal_horizon: f64) -> Result<Self, PlatformError> {
        Self::new(mean, 2.0, nominal_horizon)
    }

    /// The hazard shape `k`.
    #[inline]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The hazard scale λ (seconds).
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The nominal horizon `T` past which the hazard rate saturates.
    #[inline]
    pub fn nominal_horizon(&self) -> f64 {
        self.horizon
    }

    /// The saturated cumulative hazard: `(t/λ)^k` for `t ≤ T`, continued
    /// linearly at the `t = T` slope beyond.
    #[inline]
    fn cumulative_hazard(&self, t: f64) -> f64 {
        if t <= self.horizon {
            (t / self.scale).powf(self.shape)
        } else {
            self.hazard_at_horizon + self.rate_at_horizon * (t - self.horizon)
        }
    }

    /// Inverse of [`Self::cumulative_hazard`] (exact on both branches).
    #[inline]
    fn invert_hazard(&self, target: f64) -> f64 {
        if target <= self.hazard_at_horizon {
            self.scale * target.powf(1.0 / self.shape)
        } else {
            self.horizon + (target - self.hazard_at_horizon) / self.rate_at_horizon
        }
    }
}

impl FailureModel for WearoutFailures {
    fn next_interarrival(&self, rng: &mut dyn DeterministicRng) -> f64 {
        // Stationary fallback: the first arrival on a fresh platform.
        // Streams advance through `next_failure_time`.
        self.next_failure_time(0.0, &mut SourceState::default(), rng)
    }

    #[inline]
    fn mean(&self) -> f64 {
        self.mean
    }

    fn name(&self) -> &'static str {
        "wearout"
    }

    fn next_failure_time(
        &self,
        prev: f64,
        state: &mut SourceState,
        rng: &mut dyn DeterministicRng,
    ) -> f64 {
        let _ = state;
        // Saturated Λ inverted at Λ(prev) + Exp(1); draws that stay inside
        // [0, T] are bit-identical to the uncapped power-law inversion.
        let target = self.cumulative_hazard(prev) - rng.next_f64_open().ln();
        self.invert_hazard(target)
    }
}

/// Errors resolving a [`ScenarioSpec`] into a concrete failure model.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// Loading or validating a recorded trace failed.
    Trace(TraceFileError),
    /// A synthesized scenario's parameters were invalid.
    Platform(PlatformError),
    /// The CLI spelling did not name a known scenario.
    UnknownScenario(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Trace(e) => write!(f, "{e}"),
            ScenarioError::Platform(e) => write!(f, "{e}"),
            ScenarioError::UnknownScenario(s) => write!(
                f,
                "unknown scenario `{s}` (expected iid, trace, trace:<path>, cascade, diurnal or wearout)"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<TraceFileError> for ScenarioError {
    fn from(e: TraceFileError) -> Self {
        ScenarioError::Trace(e)
    }
}

impl From<PlatformError> for ScenarioError {
    fn from(e: PlatformError) -> Self {
        ScenarioError::Platform(e)
    }
}

/// The declarative scenario layer: what the `--scenario` CLI axis carries
/// through sweep specifications, resolved to an [`AnyFailureModel`] per
/// parameter point by [`ScenarioSpec::resolve`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum ScenarioSpec {
    /// No scenario: the i.i.d. clock of the sweep's `FailureSpec` (the
    /// default, and the baseline every scenario is compared against).
    #[default]
    Iid,
    /// Cyclic playback of a recorded trace (`None` = the bundled trace).
    Trace {
        /// Path of the trace file; `None` plays the bundled trace.
        path: Option<String>,
    },
    /// Post-failure cascade bursts ([`CascadeFailures::with_defaults`]).
    Cascade,
    /// Day/night intensity modulation ([`DiurnalFailures::with_defaults`]).
    Diurnal,
    /// Platform-age wear-out ([`WearoutFailures::with_defaults`]).
    Wearout,
}

impl ScenarioSpec {
    /// Parses the CLI spelling: `iid`, `trace` (bundled), `trace:<path>`,
    /// `cascade`, `diurnal`, or `wearout`.
    pub fn parse(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        match text {
            "iid" => Ok(ScenarioSpec::Iid),
            "trace" => Ok(ScenarioSpec::Trace { path: None }),
            "cascade" => Ok(ScenarioSpec::Cascade),
            "diurnal" => Ok(ScenarioSpec::Diurnal),
            "wearout" | "wear-out" => Ok(ScenarioSpec::Wearout),
            other => match other.strip_prefix("trace:") {
                Some(path) if !path.is_empty() => Ok(ScenarioSpec::Trace {
                    path: Some(path.to_string()),
                }),
                _ => Err(ScenarioError::UnknownScenario(other.to_string())),
            },
        }
    }

    /// Whether this is the plain i.i.d. (no-scenario) arm.
    #[inline]
    pub fn is_iid(&self) -> bool {
        matches!(self, ScenarioSpec::Iid)
    }

    /// Resolves the scenario at one parameter point: `mtbf` is the
    /// platform MTBF the synthesized scenarios calibrate their long-run
    /// rate to, `horizon` the nominal run length (the wear-out hazard's
    /// calibration window).
    ///
    /// A trace scenario ignores both — its empirical rate *is* the clock —
    /// and `Iid` resolves to the matched-MTBF exponential baseline (sweeps
    /// with a non-default `FailureSpec` build their i.i.d. clock directly
    /// and never call `resolve`).
    pub fn resolve(&self, mtbf: f64, horizon: f64) -> Result<AnyFailureModel, ScenarioError> {
        match self {
            ScenarioSpec::Iid => Ok(AnyFailureModel::Exponential(ExponentialFailures::new(
                mtbf,
            )?)),
            ScenarioSpec::Trace { path: None } => Ok(AnyFailureModel::Trace(bundled_playback()?)),
            ScenarioSpec::Trace { path: Some(path) } => {
                Ok(AnyFailureModel::Trace(playback_from_file(path)?))
            }
            ScenarioSpec::Cascade => Ok(AnyFailureModel::Cascade(CascadeFailures::with_defaults(
                mtbf,
            )?)),
            ScenarioSpec::Diurnal => Ok(AnyFailureModel::Diurnal(DiurnalFailures::with_defaults(
                mtbf,
            )?)),
            ScenarioSpec::Wearout => Ok(AnyFailureModel::Wearout(WearoutFailures::with_defaults(
                mtbf, horizon,
            )?)),
        }
    }
}

impl std::fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioSpec::Iid => write!(f, "iid"),
            ScenarioSpec::Trace { path: None } => write!(f, "trace(bundled)"),
            ScenarioSpec::Trace { path: Some(p) } => write!(f, "trace({p})"),
            ScenarioSpec::Cascade => write!(f, "cascade"),
            ScenarioSpec::Diurnal => write!(f, "diurnal"),
            ScenarioSpec::Wearout => write!(f, "wearout"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{AntitheticRng, Xoshiro256};
    use crate::special::gamma;

    fn tiny_events() -> Vec<(f64, u32)> {
        vec![(100.0, 0), (250.0, 3), (260.0, 1), (700.0, 2)]
    }

    fn tiny_trace() -> RecordedTrace {
        RecordedTrace::new(&tiny_events(), 1_000.0, 4).unwrap()
    }

    /// Raw encoder that skips validation, for crafting malformed inputs.
    fn encode_raw(events: &[(f64, u32)], horizon: f64, ranks: u32) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&horizon.to_le_bytes());
        bytes.extend_from_slice(&ranks.to_le_bytes());
        bytes.extend_from_slice(&(events.len() as u32).to_le_bytes());
        for &(time, rank) in events {
            bytes.extend_from_slice(&time.to_le_bytes());
            bytes.extend_from_slice(&rank.to_le_bytes());
        }
        let crc = Crc32::new().checksum_of(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// The deterministic synthesizer behind the bundled trace: two weeks of
    /// a 64-rank cluster with heavy-tailed base gaps (Weibull k = 0.7,
    /// mean 2 h) and occasional tight aftershock bursts — the burst
    /// structure real log-derived traces show.
    fn synthesize_bundled() -> RecordedTrace {
        let horizon = 1_209_600.0; // two weeks in seconds
        let ranks = 64u32;
        let shape = 0.7;
        let scale = 7_200.0 / gamma(1.0 + 1.0 / shape); // mean base gap 2 h
        let mut rng = Xoshiro256::seed_from_u64(0xF7_7AACE);
        let mut events = Vec::new();
        let mut t = 0.0f64;
        loop {
            t += rng.weibull(scale, shape).max(1.0);
            if t > horizon {
                break;
            }
            events.push((t, rng.index(ranks as usize) as u32));
            if rng.next_f64() < 0.15 {
                // A burst: 2–4 aftershocks at mean gap six minutes.
                let shocks = 2 + rng.index(3);
                for _ in 0..shocks {
                    t += rng.exponential(360.0).max(1.0);
                    if t > horizon {
                        break;
                    }
                    events.push((t, rng.index(ranks as usize) as u32));
                }
            }
        }
        RecordedTrace::new(&events, horizon, ranks).unwrap()
    }

    /// Run once (`cargo test -p ft-platform --lib regenerate_bundled_trace
    /// -- --ignored`) to materialise the bundled trace bytes.
    #[test]
    #[ignore = "regenerates the checked-in bundled trace file"]
    fn regenerate_bundled_trace() {
        let trace = synthesize_bundled();
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/bundled_burst.fttrace");
        std::fs::write(path, trace.encode()).unwrap();
    }

    #[test]
    fn encode_parse_round_trips() {
        let trace = tiny_trace();
        let parsed = RecordedTrace::parse(&trace.encode()).unwrap();
        assert_eq!(parsed, trace);
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed.ranks(), 4);
        assert_eq!(parsed.horizon(), 1_000.0);
        assert_eq!(parsed.empirical_mtbf(), 250.0);
        assert_eq!(parsed.victims(), &[0, 3, 1, 2]);
        assert!(!parsed.is_empty());
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let bytes = tiny_trace().encode();
        // Too short for even the header.
        assert_eq!(
            RecordedTrace::parse(&bytes[..10]),
            Err(TraceFileError::Truncated {
                needed: TRACE_HEADER_LEN + 4,
                actual: 10
            })
        );
        // Header intact but an event chopped off.
        let chopped = &bytes[..bytes.len() - 5];
        assert_eq!(
            RecordedTrace::parse(chopped),
            Err(TraceFileError::Truncated {
                needed: bytes.len(),
                actual: bytes.len() - 5
            })
        );
        // Trailing garbage is also a length mismatch, not silently ignored.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            RecordedTrace::parse(&padded),
            Err(TraceFileError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_typed_errors() {
        let mut bytes = tiny_trace().encode();
        bytes[0] = b'X';
        assert_eq!(RecordedTrace::parse(&bytes), Err(TraceFileError::BadMagic));
        let mut bytes = tiny_trace().encode();
        bytes[7] = b'2';
        assert_eq!(
            RecordedTrace::parse(&bytes),
            Err(TraceFileError::UnsupportedVersion { found: b'2' })
        );
    }

    #[test]
    fn corrupt_bytes_fail_the_checksum() {
        let mut bytes = tiny_trace().encode();
        let mid = TRACE_HEADER_LEN + 3;
        bytes[mid] ^= 0x40;
        match RecordedTrace::parse(&bytes) {
            Err(TraceFileError::ChecksumMismatch { expected, actual }) => {
                assert_ne!(expected, actual);
            }
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        // A corrupt trailer is also a mismatch.
        let mut bytes = tiny_trace().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            RecordedTrace::parse(&bytes),
            Err(TraceFileError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn semantic_invariants_are_typed_errors() {
        assert_eq!(
            RecordedTrace::parse(&encode_raw(&[], 1_000.0, 4)),
            Err(TraceFileError::Empty)
        );
        assert_eq!(
            RecordedTrace::parse(&encode_raw(&tiny_events(), 1_000.0, 0)),
            Err(TraceFileError::NoRanks)
        );
        assert!(matches!(
            RecordedTrace::parse(&encode_raw(&tiny_events(), f64::NAN, 4)),
            Err(TraceFileError::BadHorizon { .. })
        ));
        assert!(matches!(
            RecordedTrace::parse(&encode_raw(&tiny_events(), -5.0, 4)),
            Err(TraceFileError::BadHorizon { .. })
        ));
        // Timestamp beyond the horizon.
        assert_eq!(
            RecordedTrace::parse(&encode_raw(&tiny_events(), 500.0, 4)),
            Err(TraceFileError::BadTimestamp {
                index: 3,
                value: 700.0
            })
        );
        // Zero / negative / non-finite timestamps.
        assert!(matches!(
            RecordedTrace::parse(&encode_raw(&[(0.0, 0)], 1_000.0, 4)),
            Err(TraceFileError::BadTimestamp { index: 0, .. })
        ));
        assert!(matches!(
            RecordedTrace::parse(&encode_raw(&[(f64::INFINITY, 0)], 1_000.0, 4)),
            Err(TraceFileError::BadTimestamp { index: 0, .. })
        ));
        // Non-monotone pair.
        assert_eq!(
            RecordedTrace::parse(&encode_raw(&[(10.0, 0), (10.0, 1)], 1_000.0, 4)),
            Err(TraceFileError::NonMonotone { index: 1 })
        );
        // Rank out of range.
        assert_eq!(
            RecordedTrace::parse(&encode_raw(&[(10.0, 7)], 1_000.0, 4)),
            Err(TraceFileError::RankOutOfRange {
                index: 0,
                rank: 7,
                ranks: 4
            })
        );
    }

    #[test]
    fn loading_a_missing_file_is_a_typed_error() {
        assert!(matches!(
            RecordedTrace::load("/nonexistent/path/to.fttrace"),
            Err(TraceFileError::Io { .. })
        ));
    }

    #[test]
    fn error_messages_render() {
        // Display impls exist for diagnostics; smoke each variant.
        let errors: Vec<TraceFileError> = vec![
            TraceFileError::Truncated {
                needed: 28,
                actual: 4,
            },
            TraceFileError::BadMagic,
            TraceFileError::UnsupportedVersion { found: 0x32 },
            TraceFileError::ChecksumMismatch {
                expected: 1,
                actual: 2,
            },
            TraceFileError::Empty,
            TraceFileError::NoRanks,
            TraceFileError::BadHorizon { value: -1.0 },
            TraceFileError::BadTimestamp {
                index: 0,
                value: -1.0,
            },
            TraceFileError::NonMonotone { index: 1 },
            TraceFileError::RankOutOfRange {
                index: 0,
                rank: 9,
                ranks: 4,
            },
            TraceFileError::Io {
                detail: "gone".to_string(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
        assert!(!ScenarioError::Trace(TraceFileError::Empty).to_string().is_empty());
        assert!(!ScenarioError::UnknownScenario("zap".into()).to_string().is_empty());
    }

    #[test]
    fn playback_is_deterministic_and_strictly_increasing() {
        let playback = tiny_trace().into_playback();
        let mut rng_a = Xoshiro256::seed_from_u64(41);
        let mut rng_b = Xoshiro256::seed_from_u64(41);
        let mut state_a = SourceState::default();
        let mut state_b = SourceState::default();
        let mut prev = 0.0f64;
        for _ in 0..40 {
            let a = playback.next_failure_time(prev, &mut state_a, &mut rng_a);
            let b = playback.next_failure_time(prev, &mut state_b, &mut rng_b);
            assert_eq!(a.to_bits(), b.to_bits());
            assert!(a > prev, "playback must be strictly increasing: {a} !> {prev}");
            prev = a;
        }
    }

    #[test]
    fn playback_repeats_with_the_trace_period() {
        let playback = tiny_trace().into_playback();
        let n = playback.events_per_cycle();
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut state = SourceState::default();
        let mut prev = 0.0;
        let mut times = Vec::new();
        for _ in 0..3 * n {
            prev = playback.next_failure_time(prev, &mut state, &mut rng);
            times.push(prev);
        }
        for k in 0..2 * n {
            let diff = times[k + n] - times[k];
            assert!(
                (diff - playback.horizon()).abs() < 1e-9 * playback.horizon(),
                "event {k}: period {diff} != horizon {}",
                playback.horizon()
            );
        }
    }

    #[test]
    fn playback_long_run_rate_matches_the_empirical_mtbf() {
        let playback = tiny_trace().into_playback();
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut state = SourceState::default();
        let mut prev = 0.0;
        let count = 4_000usize;
        for _ in 0..count {
            prev = playback.next_failure_time(prev, &mut state, &mut rng);
        }
        let mean = prev / count as f64;
        assert!(
            (mean - playback.mean()).abs() < 0.01 * playback.mean(),
            "empirical mean {mean} vs model mean {}",
            playback.mean()
        );
    }

    #[test]
    fn playback_antithetic_phase_is_mirrored() {
        let playback = tiny_trace().into_playback();
        let mut rng = Xoshiro256::seed_from_u64(99);
        let mut anti = Xoshiro256::seed_from_u64(99);
        let mut state = SourceState::default();
        let mut state_anti = SourceState::default();
        playback.next_failure_time(0.0, &mut state, &mut rng);
        playback.next_failure_time(0.0, &mut state_anti, &mut AntitheticRng(&mut anti));
        // Complemented raw bits give u' ≈ 1 − u, so the phases mirror
        // around horizon/2 to within one ulp of the uniform.
        let mirrored = playback.horizon() - state.offset;
        assert!(
            (state_anti.offset - mirrored).abs() < 1e-9 * playback.horizon(),
            "antithetic offset {} vs mirrored {mirrored}",
            state_anti.offset
        );
    }

    #[test]
    fn cascade_calibration_keeps_the_platform_mtbf() {
        let mtbf = 1_000.0;
        let model = CascadeFailures::with_defaults(mtbf).unwrap();
        assert_eq!(model.mean(), mtbf);
        assert_eq!(model.aftershocks(), 3.0);
        // γ = µ(1 + m) − mδ with m = 3, δ = µ/20.
        assert!((model.primary_gap() - (mtbf * 4.0 - 3.0 * mtbf / 20.0)).abs() < 1e-9);
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut state = SourceState::default();
        let mut prev = 0.0;
        let count = 400_000usize;
        for _ in 0..count {
            prev = model.next_failure_time(prev, &mut state, &mut rng);
        }
        let mean = prev / count as f64;
        assert!(
            (mean - mtbf).abs() < 0.02 * mtbf,
            "cascade empirical mean {mean} vs mtbf {mtbf}"
        );
    }

    #[test]
    fn cascade_rejects_impossible_calibrations() {
        // δ so large the primary gap would go negative.
        assert!(CascadeFailures::new(100.0, 3.0, 150.0).is_err());
        assert!(CascadeFailures::new(-1.0, 3.0, 5.0).is_err());
        assert!(CascadeFailures::new(100.0, 0.0, 5.0).is_err());
    }

    #[test]
    fn diurnal_long_run_rate_matches_and_concentrates_by_day() {
        let mean = 2_000.0;
        let model = DiurnalFailures::with_defaults(mean).unwrap();
        assert_eq!(model.mean(), mean);
        assert_eq!(model.period(), 86_400.0);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut state = SourceState::default();
        let mut prev = 0.0;
        let count = 300_000usize;
        let mut in_day = 0usize;
        let day = 0.5 * model.period();
        for _ in 0..count {
            prev = model.next_failure_time(prev, &mut state, &mut rng);
            if prev % model.period() <= day {
                in_day += 1;
            }
        }
        let empirical_mean = prev / count as f64;
        assert!(
            (empirical_mean - mean).abs() < 0.02 * mean,
            "diurnal empirical mean {empirical_mean} vs {mean}"
        );
        // With contrast 4 over equal halves, 4/5 of failures land in the
        // high-rate window.
        let frac = in_day as f64 / count as f64;
        assert!(
            (frac - 0.8).abs() < 0.01,
            "day-window fraction {frac}, expected 0.8"
        );
    }

    #[test]
    fn diurnal_hazard_inversion_round_trips() {
        let model = DiurnalFailures::new(500.0, 1_000.0, 0.3, 6.0).unwrap();
        let mut rng = Xoshiro256::seed_from_u64(17);
        let mut state = SourceState::default();
        let mut prev = 123.4;
        for _ in 0..200 {
            let next = model.next_failure_time(prev, &mut state, &mut rng);
            assert!(next > prev);
            // Λ increments are Exp(1): each must be positive and finite.
            let inc = model.cumulative_hazard(next) - model.cumulative_hazard(prev);
            assert!(inc.is_finite() && inc > 0.0);
            prev = next;
        }
    }

    #[test]
    fn diurnal_rejects_degenerate_windows() {
        assert!(DiurnalFailures::new(500.0, 1_000.0, 0.0, 4.0).is_err());
        assert!(DiurnalFailures::new(500.0, 1_000.0, 1.0, 4.0).is_err());
        assert!(DiurnalFailures::new(500.0, -1.0, 0.5, 4.0).is_err());
        assert!(DiurnalFailures::new(0.0, 1_000.0, 0.5, 4.0).is_err());
    }

    #[test]
    fn wearout_failures_accelerate_and_hit_the_calibrated_budget() {
        let mean = 1_000.0;
        let horizon = 1_000_000.0;
        let model = WearoutFailures::with_defaults(mean, horizon).unwrap();
        assert_eq!(model.shape(), 2.0);
        // Λ(T) = T/µ by calibration.
        let lam = (horizon / model.scale()).powf(model.shape());
        assert!((lam - horizon / mean).abs() < 1e-6 * (horizon / mean));
        // Count failures before the nominal horizon over replications.
        let mut total = 0usize;
        let reps = 20;
        for rep in 0..reps {
            let mut rng = Xoshiro256::seed_from_u64(100 + rep);
            let mut state = SourceState::default();
            let mut prev = 0.0;
            let mut early_gap_sum = 0.0;
            let mut early = 0usize;
            let mut late_gap_sum = 0.0;
            let mut late = 0usize;
            loop {
                let next = model.next_failure_time(prev, &mut state, &mut rng);
                if next > horizon {
                    break;
                }
                let gap = next - prev;
                if next < horizon / 2.0 {
                    early_gap_sum += gap;
                    early += 1;
                } else {
                    late_gap_sum += gap;
                    late += 1;
                }
                prev = next;
                total += 1;
            }
            // Wear-out: gaps in the second half are much shorter.
            if early > 10 && late > 10 {
                assert!(late_gap_sum / (late as f64) < early_gap_sum / (early as f64));
            }
        }
        let mean_count = total as f64 / reps as f64;
        let expected = horizon / mean;
        assert!(
            (mean_count - expected).abs() < 0.05 * expected,
            "wear-out failure budget {mean_count} vs calibrated {expected}"
        );
    }

    #[test]
    fn wearout_hazard_saturates_past_the_nominal_horizon() {
        let mean = 1_000.0;
        let horizon = 1_000_000.0;
        let model = WearoutFailures::with_defaults(mean, horizon).unwrap();
        assert_eq!(model.nominal_horizon(), horizon);
        // Continuity at T: both branches agree on Λ(T) and its inverse.
        let lam_t = (horizon / model.scale()).powf(model.shape());
        assert!((model.cumulative_hazard(horizon) - lam_t).abs() <= 1e-9 * lam_t);
        assert!((model.invert_hazard(lam_t) - horizon).abs() <= 1e-6 * horizon);
        let just_past = model.cumulative_hazard(horizon * 1.000001);
        assert!(just_past > lam_t && just_past < lam_t * 1.001);
        // Beyond T the clock is a constant-rate Poisson process at the
        // t = T rate (k/µ for the power-law calibration): the mean gap
        // deep past the horizon must match µ/k instead of shrinking.
        let rate_t = model.shape() * lam_t / horizon;
        assert!((rate_t - model.shape() / mean).abs() <= 1e-9 * rate_t);
        let mut rng = Xoshiro256::seed_from_u64(4242);
        let mut state = SourceState::default();
        let mut prev = 10.0 * horizon;
        let mut gap_sum = 0.0;
        let draws = 4_000;
        for _ in 0..draws {
            let next = model.next_failure_time(prev, &mut state, &mut rng);
            assert!(next > prev);
            gap_sum += next - prev;
            prev = next;
        }
        let mean_gap = gap_sum / draws as f64;
        let expected = 1.0 / rate_t;
        assert!(
            (mean_gap - expected).abs() < 0.05 * expected,
            "saturated mean gap {mean_gap} vs expected {expected}"
        );
    }

    #[test]
    fn scenario_spec_parses_labels_and_resolves() {
        assert_eq!(ScenarioSpec::parse("iid").unwrap(), ScenarioSpec::Iid);
        assert_eq!(
            ScenarioSpec::parse("trace").unwrap(),
            ScenarioSpec::Trace { path: None }
        );
        assert_eq!(
            ScenarioSpec::parse("trace:/tmp/x.fttrace").unwrap(),
            ScenarioSpec::Trace {
                path: Some("/tmp/x.fttrace".to_string())
            }
        );
        assert_eq!(ScenarioSpec::parse("cascade").unwrap(), ScenarioSpec::Cascade);
        assert_eq!(ScenarioSpec::parse("diurnal").unwrap(), ScenarioSpec::Diurnal);
        assert_eq!(ScenarioSpec::parse("wearout").unwrap(), ScenarioSpec::Wearout);
        assert_eq!(ScenarioSpec::parse("wear-out").unwrap(), ScenarioSpec::Wearout);
        assert!(matches!(
            ScenarioSpec::parse("gaussian"),
            Err(ScenarioError::UnknownScenario(_))
        ));
        assert!(matches!(
            ScenarioSpec::parse("trace:"),
            Err(ScenarioError::UnknownScenario(_))
        ));

        assert!(ScenarioSpec::Iid.is_iid());
        assert!(!ScenarioSpec::Cascade.is_iid());
        assert_eq!(ScenarioSpec::default(), ScenarioSpec::Iid);

        assert_eq!(ScenarioSpec::Iid.to_string(), "iid");
        assert_eq!(ScenarioSpec::Trace { path: None }.to_string(), "trace(bundled)");
        assert_eq!(
            ScenarioSpec::Trace {
                path: Some("a/b".into())
            }
            .to_string(),
            "trace(a/b)"
        );
        assert_eq!(ScenarioSpec::Wearout.to_string(), "wearout");

        let mtbf = 500.0;
        let horizon = 100_000.0;
        assert_eq!(
            ScenarioSpec::Iid.resolve(mtbf, horizon).unwrap().name(),
            "exponential"
        );
        assert_eq!(
            ScenarioSpec::Cascade.resolve(mtbf, horizon).unwrap().name(),
            "cascade"
        );
        assert_eq!(
            ScenarioSpec::Diurnal.resolve(mtbf, horizon).unwrap().name(),
            "diurnal"
        );
        assert_eq!(
            ScenarioSpec::Wearout.resolve(mtbf, horizon).unwrap().name(),
            "wearout"
        );
        assert!(matches!(
            ScenarioSpec::Trace {
                path: Some("/nonexistent.fttrace".into())
            }
            .resolve(mtbf, horizon),
            Err(ScenarioError::Trace(TraceFileError::Io { .. }))
        ));
        // Synthesized scenarios propagate parameter errors.
        assert!(matches!(
            ScenarioSpec::Cascade.resolve(-1.0, horizon),
            Err(ScenarioError::Platform(_))
        ));
    }

    #[test]
    fn bundled_trace_parses_and_plays() {
        let playback = bundled_playback().unwrap();
        assert!(playback.events_per_cycle() > 100);
        assert!(playback.horizon() == 1_209_600.0);
        // The bundled trace is the synthesizer's output, verbatim.
        let expected = synthesize_bundled();
        let parsed = RecordedTrace::parse(bundled_trace_bytes()).unwrap();
        assert_eq!(parsed, expected);
        // Resolving the bundled scenario works end to end.
        let model = ScenarioSpec::Trace { path: None }.resolve(1.0, 1.0).unwrap();
        assert_eq!(model.name(), "trace");
    }

    #[test]
    fn file_loading_round_trips_through_the_cache() {
        let dir = std::env::temp_dir();
        let path = dir.join("ft_platform_scenario_test.fttrace");
        let path = path.to_string_lossy().to_string();
        std::fs::write(&path, tiny_trace().encode()).unwrap();
        let a = playback_from_file(&path).unwrap();
        let b = playback_from_file(&path).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.events_per_cycle(), 4);
        let spec = ScenarioSpec::parse(&format!("trace:{path}")).unwrap();
        assert_eq!(spec.resolve(1.0, 1.0).unwrap().name(), "trace");
        std::fs::remove_file(&path).ok();
    }
}
