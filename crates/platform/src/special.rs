//! Special functions backing the failure-distribution moment helpers.
//!
//! The Weibull moments and the Weibull-corrected waste model need the Gamma
//! function (`mean = λ Γ(1 + 1/k)`) and the *lower incomplete* Gamma function
//! (`E[X·1{X ≤ τ}] = λ γ(1 + 1/k, (τ/λ)^k)` — the expected rework term).
//! They are implemented here once, dependency-free:
//!
//! * [`gamma`] — Lanczos approximation (g = 7, n = 9), accurate to ~1e-13
//!   over the arguments the workspace uses (`1 + 1/k` and `1 + m/k` for
//!   shapes `k ∈ [0.1, 10]`);
//! * [`ln_gamma`] — log-Gamma through the same Lanczos kernel, used to keep
//!   the incomplete-Gamma normalisation stable for large arguments;
//! * [`regularized_lower_gamma`] — `P(s, x) = γ(s, x) / Γ(s)` via the
//!   standard series (for `x < s + 1`) / continued-fraction (otherwise)
//!   split of Numerical Recipes;
//! * [`lower_incomplete_gamma`] — the unnormalised `γ(s, x)`.

/// Lanczos parameter `g` (paired with the 9-term coefficient table below).
const LANCZOS_G: f64 = 7.0;

/// Lanczos coefficients for `g = 7`, `n = 9` (Numerical Recipes style) —
/// the single table behind both [`gamma`] and [`ln_gamma`].
const LANCZOS_COEFFS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// The shared Lanczos kernel for `x ≥ 0.5`: returns `(a, t)` with
/// `Γ(x) = √(2π) · t^(x−0.5) · e^(−t) · a` (after the `x − 1` shift).
fn lanczos_kernel(x_minus_one: f64) -> (f64, f64) {
    let mut a = LANCZOS_COEFFS[0];
    let t = x_minus_one + LANCZOS_G + 0.5;
    for (i, &c) in LANCZOS_COEFFS.iter().enumerate().skip(1) {
        a += c / (x_minus_one + i as f64);
    }
    (a, t)
}

/// The Gamma function Γ(x) (Lanczos approximation, g = 7, n = 9).
///
/// Negative non-integer arguments go through the reflection formula; the
/// function is not meant to be called at the poles (`x = 0, −1, −2, …`).
pub fn gamma(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let (a, t) = lanczos_kernel(x);
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// `ln Γ(x)` for `x > 0`, numerically stable where `Γ(x)` itself would
/// overflow.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires a positive argument");
    if x < 0.5 {
        // ln Γ(x) = ln(π / sin(πx)) − ln Γ(1 − x) for 0 < x < 0.5.
        (std::f64::consts::PI / (std::f64::consts::PI * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let (a, t) = lanczos_kernel(x);
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// The regularized lower incomplete Gamma function
/// `P(s, x) = γ(s, x) / Γ(s)` for `s > 0`, `x ≥ 0`.
///
/// Series expansion for `x < s + 1`, Lentz continued fraction for the
/// complement otherwise (both to ~1e-14 relative).
pub fn regularized_lower_gamma(s: f64, x: f64) -> f64 {
    debug_assert!(s > 0.0, "regularized_lower_gamma requires s > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x < s + 1.0 {
        // Series: P(s, x) = x^s e^{-x} / Γ(s) · Σ_{n≥0} x^n / (s (s+1) … (s+n)).
        let mut term = 1.0 / s;
        let mut sum = term;
        let mut n = s;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        (sum * (s * x.ln() - x - ln_gamma(s)).exp()).clamp(0.0, 1.0)
    } else {
        // Continued fraction for Q(s, x) = 1 − P(s, x) (modified Lentz).
        const TINY: f64 = 1e-300;
        let mut b = x + 1.0 - s;
        let mut c = 1.0 / TINY;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - s);
            b += 2.0;
            d = an * d + b;
            if d.abs() < TINY {
                d = TINY;
            }
            c = b + an / c;
            if c.abs() < TINY {
                c = TINY;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-16 {
                break;
            }
        }
        let q = (s * x.ln() - x - ln_gamma(s)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// The (unnormalised) lower incomplete Gamma function
/// `γ(s, x) = ∫₀ˣ t^{s−1} e^{−t} dt`.
pub fn lower_incomplete_gamma(s: f64, x: f64) -> f64 {
    regularized_lower_gamma(s, x) * gamma(s)
}

/// The error function `erf(x)`, via the identity
/// `erf(x) = sign(x) · P(1/2, x²)` with the regularized lower incomplete
/// Gamma function.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x.signum() * regularized_lower_gamma(0.5, x * x)
    }
}

/// The standard normal CDF `Φ(x) = (1 + erf(x/√2)) / 2` — the confidence
/// that a sign decision with normal-approximated statistic `z = x` is
/// correct.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// The inverse standard normal CDF `Φ⁻¹(p)` for `p ∈ (0, 1)` — the
/// quantile transform behind lognormal inter-arrival sampling
/// (`X = exp(μ + σ Φ⁻¹(U))` maps one uniform to one gap, which keeps the
/// lognormal clock on the single-uniform columnar fast path).
///
/// Acklam's rational approximation (~1.15e-9 relative) refined by one
/// Halley step against [`normal_cdf`], which lands the round-trip error at
/// the ~1e-15 level across the full open interval. Out-of-range arguments
/// saturate: `p ≤ 0 → −∞`, `p ≥ 1 → +∞`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    if p.is_nan() || p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    // Acklam coefficients (central rational on [0.02425, 0.97575], tail
    // rational outside).
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step against the forward CDF (standard normal
    // density φ(x) = e^{−x²/2}/√(2π); Halley handles φ'(x) = −x·φ(x)).
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_and_normal_cdf_known_values() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(1.0) - 0.842_700_792_949_715).abs() < 1e-9);
        assert!((erf(-1.0) + 0.842_700_792_949_715).abs() < 1e-9);
        assert!((erf(2.0) - 0.995_322_265_018_953).abs() < 1e-9);
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.959_963_985) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-1.959_963_985) - 0.025).abs() < 1e-6);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn inverse_normal_cdf_known_values() {
        assert_eq!(inverse_normal_cdf(0.5), 0.0);
        assert!((inverse_normal_cdf(0.975) - 1.959_963_984_540_054).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.025) + 1.959_963_984_540_054).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.841_344_746_068_543) - 1.0).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.001) + 3.090_232_306_167_813).abs() < 1e-9);
        assert_eq!(inverse_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inverse_normal_cdf(1.0), f64::INFINITY);
        assert_eq!(inverse_normal_cdf(-0.2), f64::NEG_INFINITY);
        assert_eq!(inverse_normal_cdf(f64::NAN), f64::NEG_INFINITY);
    }

    #[test]
    fn inverse_normal_cdf_round_trips_through_the_forward_cdf() {
        // Both directions, across the central region and both tails —
        // including the extreme quantiles a 2^-53-grained uniform can reach.
        for p in [
            1e-12, 1e-6, 0.001, 0.02, 0.024, 0.025, 0.3, 0.5, 0.7, 0.975, 0.976, 0.98, 0.999,
            1.0 - 1e-6, 1.0 - 1e-12,
        ] {
            let x = inverse_normal_cdf(p);
            let back = normal_cdf(x);
            assert!(
                (back - p).abs() <= 1e-12 * p.max(1.0 - p).max(1e-3),
                "p = {p}: Φ(Φ⁻¹(p)) = {back}"
            );
        }
        for x in [-8.0, -6.0, -3.0, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0, 6.0, 8.0] {
            let p = normal_cdf(x);
            let forth = inverse_normal_cdf(p);
            // Beyond |x| ≈ 6 the forward CDF's own tail precision (absolute
            // error ~1e-17 against φ(8) ≈ 5e-15) bounds the round trip.
            let tol = if x.abs() > 6.0 { 1e-2 } else { 1e-7 };
            assert!((forth - x).abs() < tol, "x = {x}: Φ⁻¹(Φ(x)) = {forth}");
        }
    }

    #[test]
    fn inverse_normal_cdf_is_strictly_monotone_and_antisymmetric() {
        let mut previous = f64::NEG_INFINITY;
        for i in 1..1000 {
            let p = i as f64 / 1000.0;
            let x = inverse_normal_cdf(p);
            assert!(x > previous, "p = {p}: {x} ≤ {previous}");
            // Φ⁻¹(1 − p) = −Φ⁻¹(p).
            assert!(
                (inverse_normal_cdf(1.0 - p) + x).abs() < 1e-9,
                "p = {p}: antisymmetry broken"
            );
            previous = x;
        }
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(3.0) - 2.0).abs() < 1e-10);
        assert!((gamma(4.0) - 6.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
        // Reflection: Γ(−0.5) = −2√π.
        assert!((gamma(-0.5) + 2.0 * std::f64::consts::PI.sqrt()).abs() < 1e-8);
    }

    #[test]
    fn ln_gamma_matches_gamma_where_both_are_finite() {
        for x in [0.1, 0.5, 1.0, 1.7, 3.0, 11.0, 40.0] {
            assert!(
                (ln_gamma(x) - gamma(x).ln()).abs() < 1e-9,
                "x = {x}: ln_gamma {} vs ln(gamma) {}",
                ln_gamma(x),
                gamma(x).ln()
            );
        }
        // And it stays finite where Γ overflows.
        assert!(ln_gamma(200.0).is_finite());
    }

    #[test]
    fn regularized_lower_gamma_at_integer_shapes() {
        // P(1, x) = 1 − e^{−x}.
        for x in [0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!((regularized_lower_gamma(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
        // P(2, x) = 1 − e^{−x}(1 + x): crosses the series/fraction split.
        for x in [0.5f64, 1.0, 2.9, 3.1, 8.0] {
            let exact = 1.0 - (-x).exp() * (1.0 + x);
            assert!(
                (regularized_lower_gamma(2.0, x) - exact).abs() < 1e-12,
                "x = {x}"
            );
        }
        // P(3, x) = 1 − e^{−x}(1 + x + x²/2).
        for x in [0.5f64, 2.0, 3.9, 4.1, 12.0] {
            let exact = 1.0 - (-x).exp() * (1.0 + x + x * x / 2.0);
            assert!(
                (regularized_lower_gamma(3.0, x) - exact).abs() < 1e-12,
                "x = {x}"
            );
        }
    }

    #[test]
    fn regularized_lower_gamma_limits_and_monotonicity() {
        assert_eq!(regularized_lower_gamma(1.5, 0.0), 0.0);
        assert!((regularized_lower_gamma(1.5, 1e3) - 1.0).abs() < 1e-12);
        let mut previous = 0.0;
        for i in 1..=50 {
            let p = regularized_lower_gamma(2.3, i as f64 * 0.2);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= previous);
            previous = p;
        }
    }

    #[test]
    fn lower_incomplete_gamma_is_the_unnormalised_form() {
        let (s, x) = (3.0, 0.882);
        assert!((lower_incomplete_gamma(s, x) - regularized_lower_gamma(s, x) * 2.0).abs() < 1e-12);
    }

    #[test]
    fn series_and_continued_fraction_agree_at_the_split() {
        // P(s, x) switches from the series (x < s + 1) to the Lentz
        // continued fraction at x = s + 1; the two branches must join
        // continuously there, across the whole range of shapes the Weibull
        // helpers produce (s = 1 + 1/k or 1 + m/k for k ∈ [0.1, 10]).
        for s in [0.3, 0.9, 1.0, 2.428_571, 5.5, 11.0, 21.0, 101.0] {
            let boundary = s + 1.0;
            let below = regularized_lower_gamma(s, boundary * (1.0 - 1e-12));
            let above = regularized_lower_gamma(s, boundary * (1.0 + 1e-12));
            assert!(
                (below - above).abs() < 1e-10,
                "s = {s}: series {below} vs fraction {above} at the split"
            );
            // And the function stays monotone walking straight through it.
            let mut previous = 0.0;
            for i in -50..=50 {
                let x = boundary * (1.0 + i as f64 * 1e-3);
                let p = regularized_lower_gamma(s, x);
                assert!((0.0..=1.0).contains(&p), "s = {s}, x = {x}: P = {p}");
                assert!(p >= previous, "s = {s}, x = {x}: not monotone");
                previous = p;
            }
        }
    }

    #[test]
    fn integer_shapes_match_the_poisson_sum_across_both_branches() {
        // For integer s, P(s, x) = 1 − e^{−x} Σ_{n<s} x^n/n! exactly — an
        // independent closed form covering the large shapes a Weibull
        // k → 0 produces (s = 1 + 1/k: k = 0.1 → 11, k = 0.01 → 101) on
        // both sides of the series/fraction split.
        for s in [2.0f64, 11.0, 21.0, 101.0] {
            for frac in [0.2, 0.8, 0.999, 1.001, 1.5, 3.0] {
                let x = (s + 1.0) * frac;
                let mut term: f64 = 1.0;
                let mut sum: f64 = 1.0;
                for n in 1..(s as usize) {
                    term *= x / n as f64;
                    sum += term;
                }
                let exact = 1.0 - (-x).exp() * sum;
                let ours = regularized_lower_gamma(s, x);
                assert!(
                    (ours - exact).abs() < 1e-9,
                    "s = {s}, x = {x}: {ours} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn gamma_at_the_weibull_shape_extremes() {
        // Γ(1 + 1/k) at k near 0 hits large integer arguments with exact
        // factorial values; k = 1 is exactly Γ(2) = 1; k → ∞ approaches
        // Γ(1) = 1.
        let factorial = |n: u64| (1..=n).map(|i| i as f64).product::<f64>();
        for (k, n) in [(0.1f64, 10u64), (0.05, 20), (0.25, 4)] {
            let g = gamma(1.0 + 1.0 / k);
            let exact = factorial(n);
            assert!(
                ((g - exact) / exact).abs() < 1e-12,
                "k = {k}: Γ({}) = {g} vs {n}! = {exact}",
                1.0 + 1.0 / k
            );
        }
        assert!((gamma(2.0) - 1.0).abs() < 1e-13);
        assert!((gamma(1.0 + 1e-9) - 1.0).abs() < 1e-6);
        // Near-1 shapes (the exponential limit) keep Γ smooth: Γ(1 + 1/k)
        // for k slightly off 1 stays within the local Taylor bound.
        for k in [0.99f64, 1.0, 1.01] {
            let g = gamma(1.0 + 1.0 / k);
            assert!((g - 1.0).abs() < 0.01, "k = {k}: Γ = {g}");
        }
    }

    #[test]
    fn large_arguments_saturate_without_overflow() {
        // Far right tail: P → 1 and γ(s, x) → Γ(s) without the normalising
        // exponentials overflowing (they run through ln_gamma).
        for s in [0.5f64, 1.5, 11.0, 101.0] {
            let p = regularized_lower_gamma(s, 700.0);
            assert!(
                (p - 1.0).abs() < 1e-12,
                "s = {s}: P(s, 700) = {p} should saturate"
            );
            let unnormalised = lower_incomplete_gamma(s, 700.0);
            let full = gamma(s);
            assert!(
                ((unnormalised - full) / full).abs() < 1e-12,
                "s = {s}: γ(s, 700) = {unnormalised} vs Γ(s) = {full}"
            );
        }
        // And a genuinely huge x stays exactly clamped into [0, 1].
        assert_eq!(regularized_lower_gamma(3.0, 1e15), 1.0);
    }

    #[test]
    fn incomplete_gamma_agrees_with_numeric_quadrature() {
        // Simpson quadrature of ∫ t^{s−1} e^{−t} dt as an independent check
        // at the non-integer shapes the Weibull helpers use.
        for s in [1.4, 2.428_571, 3.0] {
            for x in [0.3, 1.1, 2.7] {
                let n = 20_000;
                let h = x / n as f64;
                let f = |t: f64| if t == 0.0 { 0.0 } else { t.powf(s - 1.0) * (-t).exp() };
                let mut acc = f(0.0) + f(x);
                for i in 1..n {
                    acc += f(i as f64 * h) * if i % 2 == 0 { 2.0 } else { 4.0 };
                }
                let quad = acc * h / 3.0;
                let ours = lower_incomplete_gamma(s, x);
                assert!(
                    (ours - quad).abs() / quad < 1e-6,
                    "s = {s}, x = {x}: {ours} vs {quad}"
                );
            }
        }
    }
}
