//! Checkpoint-storage cost models.
//!
//! The paper's weak-scaling study (Section V-C) contrasts two hypotheses
//! about how the time to take (and reload) a checkpoint evolves with the
//! number of nodes:
//!
//! * **bandwidth-bound** storage (Figures 8 and 9): the checkpoint traffic
//!   funnels through a shared medium (parallel file system, interconnect), so
//!   the cost is proportional to the total amount of memory written — it
//!   grows linearly with the node count under weak scaling;
//! * **constant-cost** storage (Figure 10): buddy/in-memory or NVRAM
//!   checkpointing, whose aggregate bandwidth scales with the platform, so
//!   the cost stays constant when nodes are added.
//!
//! [`StorageModel`] abstracts over both (plus a hierarchical two-level
//! combination) so the model, the simulator and the benchmarks can swap the
//! storage hypothesis without touching protocol code.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_positive, Result};

/// A model of how long writing/reading checkpoint data takes.
pub trait StorageModel {
    /// Time (seconds) to write `bytes` of checkpoint data produced
    /// collectively by `nodes` nodes.
    fn write_cost(&self, bytes: f64, nodes: usize) -> f64;

    /// Time (seconds) to read back `bytes` of checkpoint data onto `nodes`
    /// nodes. Defaults to the write cost (the paper's `R = C` assumption).
    fn read_cost(&self, bytes: f64, nodes: usize) -> f64 {
        self.write_cost(bytes, nodes)
    }

    /// Human-readable name used in benchmark reports.
    fn name(&self) -> &'static str;
}

/// Bandwidth-bound storage: cost = `bytes / aggregate_bandwidth`, with the
/// aggregate bandwidth *fixed* (a shared parallel file system).
///
/// Under weak scaling (memory per node fixed), the checkpointed volume grows
/// linearly with the node count, and so does the checkpoint time — this is
/// the pessimistic-but-realistic hypothesis of Figures 8 and 9.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthBound {
    /// Aggregate bandwidth of the storage system, in bytes per second.
    bandwidth: f64,
    /// Fixed per-operation latency in seconds (coordination, metadata).
    latency: f64,
}

impl BandwidthBound {
    /// Creates a bandwidth-bound model.
    pub fn new(bandwidth: f64, latency: f64) -> Result<Self> {
        ensure_positive("bandwidth", bandwidth)?;
        if latency < 0.0 {
            return Err(crate::error::PlatformError::NonPositiveParameter {
                name: "latency",
                value: latency,
            });
        }
        Ok(Self { bandwidth, latency })
    }

    /// Calibrates the model so that checkpointing `bytes_at_ref` takes
    /// `cost_at_ref` seconds (no latency term).  This mirrors how the paper
    /// pins "C = 1 minute at 10,000 nodes" and scales linearly from there.
    pub fn calibrated(bytes_at_ref: f64, cost_at_ref: f64) -> Result<Self> {
        ensure_positive("bytes_at_ref", bytes_at_ref)?;
        ensure_positive("cost_at_ref", cost_at_ref)?;
        Self::new(bytes_at_ref / cost_at_ref, 0.0)
    }

    /// Aggregate bandwidth in bytes per second.
    #[inline]
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }
}

impl StorageModel for BandwidthBound {
    #[inline]
    fn write_cost(&self, bytes: f64, _nodes: usize) -> f64 {
        self.latency + bytes / self.bandwidth
    }

    fn name(&self) -> &'static str {
        "bandwidth-bound"
    }
}

/// Constant-cost storage: the checkpoint time does not depend on how many
/// nodes participate nor on the total volume (buddy checkpointing, node-local
/// NVRAM).  This is the optimistic hypothesis of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantCost {
    write: f64,
    read: f64,
}

impl ConstantCost {
    /// Creates a constant-cost model with identical write and read costs.
    pub fn symmetric(cost: f64) -> Result<Self> {
        ensure_positive("cost", cost)?;
        Ok(Self { write: cost, read: cost })
    }

    /// Creates a constant-cost model with distinct write and read costs.
    pub fn new(write: f64, read: f64) -> Result<Self> {
        ensure_positive("write", write)?;
        ensure_positive("read", read)?;
        Ok(Self { write, read })
    }
}

impl StorageModel for ConstantCost {
    #[inline]
    fn write_cost(&self, _bytes: f64, _nodes: usize) -> f64 {
        self.write
    }

    #[inline]
    fn read_cost(&self, _bytes: f64, _nodes: usize) -> f64 {
        self.read
    }

    fn name(&self) -> &'static str {
        "constant-cost"
    }
}

/// Two-level hierarchical storage: a fast local level absorbs a fraction of
/// the volume at high bandwidth, the remainder goes to a slower shared level.
/// Models burst-buffer / SCR-style multi-level checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hierarchical {
    /// Fraction of the volume absorbed by the fast (node-local) level.
    local_fraction: f64,
    /// Per-node bandwidth of the fast level (bytes/s); aggregate scales with nodes.
    local_bandwidth_per_node: f64,
    /// Aggregate bandwidth of the slow shared level (bytes/s).
    shared_bandwidth: f64,
}

impl Hierarchical {
    /// Creates a hierarchical model.
    pub fn new(
        local_fraction: f64,
        local_bandwidth_per_node: f64,
        shared_bandwidth: f64,
    ) -> Result<Self> {
        crate::error::ensure_fraction("local_fraction", local_fraction)?;
        ensure_positive("local_bandwidth_per_node", local_bandwidth_per_node)?;
        ensure_positive("shared_bandwidth", shared_bandwidth)?;
        Ok(Self {
            local_fraction,
            local_bandwidth_per_node,
            shared_bandwidth,
        })
    }
}

impl StorageModel for Hierarchical {
    fn write_cost(&self, bytes: f64, nodes: usize) -> f64 {
        let nodes = nodes.max(1) as f64;
        let local_bytes = bytes * self.local_fraction;
        let shared_bytes = bytes - local_bytes;
        // The two levels proceed concurrently; the checkpoint completes when
        // the slower of the two finishes.
        let local_time = local_bytes / (self.local_bandwidth_per_node * nodes);
        let shared_time = shared_bytes / self.shared_bandwidth;
        local_time.max(shared_time)
    }

    fn name(&self) -> &'static str {
        "hierarchical"
    }
}

/// A boxed storage model, convenient for configuration-driven scenarios.
pub type DynStorage = Box<dyn StorageModel + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units;

    #[test]
    fn bandwidth_bound_scales_linearly_with_volume() {
        let s = BandwidthBound::new(units::gib(100.0), 0.0).unwrap();
        let c1 = s.write_cost(units::tib(1.0), 1_000);
        let c2 = s.write_cost(units::tib(2.0), 1_000);
        assert!((c2 / c1 - 2.0).abs() < 1e-12);
        // Node count is irrelevant: the medium is shared.
        assert_eq!(s.write_cost(units::tib(1.0), 10), c1);
    }

    #[test]
    fn bandwidth_bound_calibration_hits_reference_point() {
        // "Checkpointing the full footprint takes 1 minute at the reference scale."
        let footprint = units::tib(160.0);
        let s = BandwidthBound::calibrated(footprint, units::minutes(1.0)).unwrap();
        assert!((s.write_cost(footprint, 10_000) - 60.0).abs() < 1e-9);
        // Doubling the footprint (weak-scaling to 2x nodes) doubles the cost.
        assert!((s.write_cost(2.0 * footprint, 20_000) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn read_defaults_to_write_for_bandwidth_bound() {
        let s = BandwidthBound::new(units::gib(10.0), 1.0).unwrap();
        assert_eq!(s.read_cost(units::gib(50.0), 8), s.write_cost(units::gib(50.0), 8));
    }

    #[test]
    fn constant_cost_ignores_everything() {
        let s = ConstantCost::symmetric(60.0).unwrap();
        assert_eq!(s.write_cost(units::tib(1.0), 1_000), 60.0);
        assert_eq!(s.write_cost(units::PIB, 1_000_000), 60.0);
        let asym = ConstantCost::new(60.0, 30.0).unwrap();
        assert_eq!(asym.read_cost(1.0, 1), 30.0);
    }

    #[test]
    fn hierarchical_is_bounded_by_slowest_level() {
        // All local → time shrinks as nodes grow.
        let s = Hierarchical::new(1.0, units::gib(1.0), units::gib(10.0)).unwrap();
        let t1 = s.write_cost(units::tib(1.0), 100);
        let t2 = s.write_cost(units::tib(1.0), 200);
        assert!(t2 < t1);
        // All shared → constant in nodes, linear in volume.
        let s = Hierarchical::new(0.0, units::gib(1.0), units::gib(10.0)).unwrap();
        assert_eq!(s.write_cost(units::tib(1.0), 100), s.write_cost(units::tib(1.0), 1_000));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(BandwidthBound::new(0.0, 0.0).is_err());
        assert!(BandwidthBound::new(1.0, -1.0).is_err());
        assert!(ConstantCost::symmetric(0.0).is_err());
        assert!(Hierarchical::new(1.5, 1.0, 1.0).is_err());
        assert!(Hierarchical::new(0.5, 0.0, 1.0).is_err());
    }
}
