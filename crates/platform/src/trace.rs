//! Concrete failure traces.
//!
//! A [`FailureTrace`] is an explicit, finite list of failure events (absolute
//! times plus the rank of the struck process).  Traces can be generated from
//! any [`FailureModel`], replayed deterministically by the simulator, merged
//! (e.g. a node-local trace merged with a network-switch trace), filtered,
//! and summarised.  They are the bridge between the stochastic failure models
//! and the deterministic protocol state machines: given the same trace, every
//! protocol sees exactly the same adversity, which makes protocol comparisons
//! paired rather than independent and drastically reduces comparison variance.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_positive, Result};
use crate::failure::{FailureModel, FailureSource, SourceState};
use crate::rng::{DeterministicRng, Xoshiro256};

/// One failure: an absolute timestamp and the rank of the victim process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// Absolute time of the failure, in seconds since the start of the run.
    pub time: f64,
    /// Rank of the process/node struck by the failure.
    pub rank: usize,
}

/// A finite, time-ordered list of failure events over a horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureTrace {
    events: Vec<FailureEvent>,
    horizon: f64,
    ranks: usize,
}

impl FailureTrace {
    /// Builds a trace from raw events. Events are sorted by time.
    pub fn from_events(mut events: Vec<FailureEvent>, horizon: f64, ranks: usize) -> Result<Self> {
        ensure_positive("horizon", horizon)?;
        events.sort_by(|a, b| a.time.total_cmp(&b.time));
        events.retain(|e| e.time <= horizon);
        Ok(Self {
            events,
            horizon,
            ranks: ranks.max(1),
        })
    }

    /// Generates a trace by sampling inter-arrival times from `model` until
    /// `horizon` is exceeded; each failure strikes a uniformly random rank
    /// among `ranks` processes.
    pub fn generate<M: FailureModel>(model: &M, horizon: f64, ranks: usize, seed: u64) -> Result<Self> {
        ensure_positive("horizon", horizon)?;
        let ranks = ranks.max(1);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut events = Vec::new();
        let mut t = 0.0;
        loop {
            t += model.next_interarrival(&mut rng);
            if t > horizon {
                break;
            }
            let rank = rng.index(ranks);
            events.push(FailureEvent { time: t, rank });
        }
        Ok(Self {
            events,
            horizon,
            ranks,
        })
    }

    /// An empty (failure-free) trace over the given horizon.
    pub fn failure_free(horizon: f64, ranks: usize) -> Result<Self> {
        Self::from_events(Vec::new(), horizon, ranks)
    }

    /// The events, ordered by time.
    #[inline]
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Number of failures in the trace.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace contains no failure.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time horizon the trace covers.
    #[inline]
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Number of ranks the trace targets.
    #[inline]
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// First failure occurring strictly after time `t`, if any.
    pub fn next_after(&self, t: f64) -> Option<FailureEvent> {
        // Events are sorted; a partition-point search keeps replay O(log n).
        let idx = self.events.partition_point(|e| e.time <= t);
        self.events.get(idx).copied()
    }

    /// Number of failures in the half-open window `(from, to]`.
    pub fn count_in(&self, from: f64, to: f64) -> usize {
        let lo = self.events.partition_point(|e| e.time <= from);
        let hi = self.events.partition_point(|e| e.time <= to);
        hi - lo
    }

    /// Merges two traces over the same rank count; the horizon is the
    /// smaller of the two.
    pub fn merge(&self, other: &FailureTrace) -> Result<FailureTrace> {
        let horizon = self.horizon.min(other.horizon);
        let mut events: Vec<FailureEvent> = self
            .events
            .iter()
            .chain(other.events.iter())
            .copied()
            .collect();
        events.retain(|e| e.time <= horizon);
        FailureTrace::from_events(events, horizon, self.ranks.max(other.ranks))
    }

    /// Empirical mean time between failures of the trace (horizon divided by
    /// the number of failures); `None` for a failure-free trace.
    pub fn empirical_mtbf(&self) -> Option<f64> {
        if self.events.is_empty() {
            None
        } else {
            Some(self.horizon / self.events.len() as f64)
        }
    }

    /// Returns an iterator that replays the trace.
    pub fn replay(&self) -> impl Iterator<Item = FailureEvent> + '_ {
        self.events.iter().copied()
    }
}

/// A reusable recording buffer of one sampled failure sequence — the
/// common-random-numbers workhorse of the replication fast path.
///
/// Failure times are sampled **lazily** from the model, in exactly the order
/// a [`crate::failure::FailureStream`] with the same model and seed would
/// produce them, and are memoised so the sequence can be replayed any number
/// of times through [`TraceBuffer::cursor`].  Replaying the same buffer to
/// several protocol executors makes their comparison *paired*: every
/// protocol faces the same adversity, and per-trace differences cancel the
/// shared sampling noise.
///
/// The buffer is reused across replications: [`TraceBuffer::reset`] reseeds
/// the generator and clears the recorded times while keeping the allocation,
/// so a whole parameter point (a thousand replications × three protocols)
/// touches the allocator only when a replication sees more failures than any
/// one before it.
///
/// [`TraceBuffer::reset_antithetic`] starts the **antithetic partner** of a
/// seed's sequence instead: every uniform feeding the inter-arrival sampler
/// is replaced by `1 − u` (see [`crate::rng::AntitheticRng`]), so the
/// partner sees long gaps exactly where the original saw short ones.
/// Averaging each `(seed, antithetic-seed)` outcome pair cancels first-order
/// sampling noise on smooth waste responses — the antithetic-variates
/// variance reduction behind the sweep subsystem's `--antithetic` flag.
#[derive(Debug, Clone)]
pub struct TraceBuffer<M: FailureModel> {
    model: M,
    rng: Xoshiro256,
    seed: u64,
    antithetic: bool,
    times: Vec<f64>,
    last: f64,
    state: SourceState,
}

impl<M: FailureModel> TraceBuffer<M> {
    /// Creates a buffer over `model`, seeded for its first replication.
    pub fn new(model: M, seed: u64) -> Self {
        Self {
            model,
            rng: Xoshiro256::seed_from_u64(seed),
            seed,
            antithetic: false,
            times: Vec::new(),
            last: 0.0,
            state: SourceState::default(),
        }
    }

    /// Starts a fresh failure sequence for the next replication, keeping the
    /// buffer's allocation.
    pub fn reset(&mut self, seed: u64) {
        self.rng = Xoshiro256::seed_from_u64(seed);
        self.seed = seed;
        self.antithetic = false;
        self.times.clear();
        self.last = 0.0;
        self.state = SourceState::default();
    }

    /// Starts the **antithetic partner** of `seed`'s failure sequence: the
    /// same generator states, but every uniform flipped to `1 − u` before it
    /// reaches the inter-arrival transform.
    pub fn reset_antithetic(&mut self, seed: u64) {
        self.reset(seed);
        self.antithetic = true;
    }

    /// Whether the current sequence is an antithetic replay.
    #[inline]
    pub fn is_antithetic(&self) -> bool {
        self.antithetic
    }

    /// Absolute time of the `index`-th failure of the current sequence,
    /// sampling (and recording) any failures not yet drawn.
    pub fn time(&mut self, index: usize) -> f64 {
        while self.times.len() <= index {
            // Advance through the stateful hook: for i.i.d. models this is
            // exactly the historical `last += next_interarrival` step (the
            // default never touches `state`); non-stationary scenario models
            // use `last` and their `SourceState` scratch.  Since the state is
            // rebuilt by replaying from index 0 after every reset, lazily
            // re-extending a reset buffer (the crash-resume repositioning
            // path) reproduces the original sequence bit for bit.
            self.last = if self.antithetic {
                self.model.next_failure_time(
                    self.last,
                    &mut self.state,
                    &mut crate::rng::AntitheticRng(&mut self.rng),
                )
            } else {
                self.model
                    .next_failure_time(self.last, &mut self.state, &mut self.rng)
            };
            self.times.push(self.last);
        }
        self.times[index]
    }

    /// The failure times sampled so far in the current sequence.
    #[inline]
    pub fn sampled(&self) -> &[f64] {
        &self.times
    }

    /// Draws the next **open uniform** of the current sequence — the exact
    /// bits [`TraceBuffer::time`] would feed the inter-arrival transform
    /// (antithetic complement included) — without applying the transform.
    /// The batch replay cursor uses this to collect one column of uniforms
    /// across lanes and apply the inverse CDF columnar; the draw must be
    /// committed back with [`TraceBuffer::push_gap`].
    #[inline]
    pub(crate) fn next_open(&mut self) -> f64 {
        let raw = if self.antithetic {
            !self.rng.next_u64()
        } else {
            self.rng.next_u64()
        };
        1.0 - (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Appends one sampled inter-arrival `gap` to the recording and returns
    /// the new absolute failure time — the bookkeeping half of
    /// [`TraceBuffer::time`]'s lazy extension, split out for the columnar
    /// batch replay path.
    #[inline]
    pub(crate) fn push_gap(&mut self, gap: f64) -> f64 {
        self.last += gap;
        self.times.push(self.last);
        self.last
    }

    /// The underlying inter-arrival model.
    #[inline]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// A replay cursor positioned at the start of the sequence.  Cursors
    /// borrow the buffer mutably (replaying may need to extend the
    /// recording), so executors consume them one after the other.
    pub fn cursor(&mut self) -> TraceCursor<'_, M> {
        self.cursor_at(0)
    }

    /// A replay cursor positioned at the `index`-th failure of the sequence
    /// — the crash-resume counterpart of [`TraceBuffer::cursor`]: a
    /// simulation checkpoint records how many failure draws it had consumed,
    /// and resuming replays the sequence from exactly that position, so the
    /// resumed run sees the same future the uninterrupted run saw.
    pub fn cursor_at(&mut self, index: usize) -> TraceCursor<'_, M> {
        TraceCursor {
            buffer: self,
            next: index,
        }
    }

    /// Freezes the currently recorded sequence into a [`FailureTrace`] over
    /// `ranks` processes.  Victim ranks come from a *separate* generator
    /// derived from the replication seed — never from the buffer's sampling
    /// generator — so freezing a trace neither perturbs later lazy
    /// extensions of the sequence (the bit-identical replay contract holds)
    /// nor varies between repeated calls.
    pub fn to_trace(&mut self, horizon: f64, ranks: usize) -> Result<FailureTrace> {
        let ranks = ranks.max(1);
        // Materialise every failure up to the horizon.
        let mut i = 0;
        while self.time(i) <= horizon {
            i += 1;
        }
        let mut rank_rng =
            Xoshiro256::seed_from_u64(crate::rng::SplitMix64::new(!self.seed).derive_seed());
        let cutoff = self.times.iter().take_while(|&&t| t <= horizon).count();
        let mut events = Vec::with_capacity(cutoff);
        for k in 0..cutoff {
            events.push(FailureEvent {
                time: self.times[k],
                rank: rank_rng.index(ranks),
            });
        }
        FailureTrace::from_events(events, horizon, ranks)
    }
}

/// A replay position into a [`TraceBuffer`]: yields the recorded failure
/// sequence from the beginning, extending the recording on demand.
#[derive(Debug)]
pub struct TraceCursor<'a, M: FailureModel> {
    buffer: &'a mut TraceBuffer<M>,
    next: usize,
}

impl<M: FailureModel> TraceCursor<'_, M> {
    /// Index of the next failure this cursor will yield — the value to feed
    /// [`TraceBuffer::cursor_at`] to recreate the cursor at this position.
    #[inline]
    pub fn position(&self) -> usize {
        self.next
    }
}

impl<M: FailureModel> FailureSource for TraceCursor<'_, M> {
    #[inline]
    fn next_failure(&mut self) -> f64 {
        let t = self.buffer.time(self.next);
        self.next += 1;
        t
    }

    #[inline]
    fn mean_interarrival(&self) -> f64 {
        self.buffer.model.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::ExponentialFailures;
    use crate::units;

    fn exp_model(mtbf: f64) -> ExponentialFailures {
        ExponentialFailures::new(mtbf).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let m = exp_model(units::hours(1.0));
        let a = FailureTrace::generate(&m, units::days(7.0), 100, 3).unwrap();
        let b = FailureTrace::generate(&m, units::days(7.0), 100, 3).unwrap();
        assert_eq!(a, b);
        let c = FailureTrace::generate(&m, units::days(7.0), 100, 4).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn generated_events_are_ordered_and_within_horizon() {
        let m = exp_model(units::minutes(90.0));
        let t = FailureTrace::generate(&m, units::days(2.0), 16, 11).unwrap();
        for w in t.events().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for e in t.events() {
            assert!(e.time <= t.horizon());
            assert!(e.rank < 16);
        }
    }

    #[test]
    fn empirical_mtbf_matches_model_roughly() {
        let mtbf = units::hours(2.0);
        let m = exp_model(mtbf);
        // Long horizon → law of large numbers.
        let t = FailureTrace::generate(&m, units::weeks(40.0), 8, 5).unwrap();
        let emp = t.empirical_mtbf().unwrap();
        assert!((emp - mtbf).abs() / mtbf < 0.1, "empirical {emp}");
    }

    #[test]
    fn failure_free_trace() {
        let t = FailureTrace::failure_free(100.0, 4).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.empirical_mtbf(), None);
        assert_eq!(t.next_after(0.0), None);
    }

    #[test]
    fn next_after_and_count_in() {
        let events = vec![
            FailureEvent { time: 10.0, rank: 0 },
            FailureEvent { time: 20.0, rank: 1 },
            FailureEvent { time: 30.0, rank: 2 },
        ];
        let t = FailureTrace::from_events(events, 100.0, 4).unwrap();
        assert_eq!(t.next_after(0.0).unwrap().time, 10.0);
        assert_eq!(t.next_after(10.0).unwrap().time, 20.0);
        assert_eq!(t.next_after(25.0).unwrap().time, 30.0);
        assert_eq!(t.next_after(30.0), None);
        assert_eq!(t.count_in(0.0, 100.0), 3);
        assert_eq!(t.count_in(10.0, 30.0), 2);
        assert_eq!(t.count_in(30.0, 100.0), 0);
    }

    #[test]
    fn from_events_sorts_and_clips() {
        let events = vec![
            FailureEvent { time: 50.0, rank: 0 },
            FailureEvent { time: 10.0, rank: 1 },
            FailureEvent { time: 200.0, rank: 2 }, // beyond horizon, dropped
        ];
        let t = FailureTrace::from_events(events, 100.0, 4).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].time, 10.0);
        assert_eq!(t.events()[1].time, 50.0);
    }

    #[test]
    fn merge_interleaves_and_respects_horizon() {
        let a = FailureTrace::from_events(
            vec![FailureEvent { time: 10.0, rank: 0 }, FailureEvent { time: 90.0, rank: 0 }],
            100.0,
            2,
        )
        .unwrap();
        let b = FailureTrace::from_events(vec![FailureEvent { time: 40.0, rank: 1 }], 50.0, 2).unwrap();
        let m = a.merge(&b).unwrap();
        assert_eq!(m.horizon(), 50.0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.events()[0].time, 10.0);
        assert_eq!(m.events()[1].time, 40.0);
    }

    #[test]
    fn replay_yields_all_events_in_order() {
        let m = exp_model(units::hours(1.0));
        let t = FailureTrace::generate(&m, units::days(1.0), 10, 21).unwrap();
        let replayed: Vec<FailureEvent> = t.replay().collect();
        assert_eq!(replayed.as_slice(), t.events());
    }

    #[test]
    fn trace_buffer_matches_a_failure_stream_bit_for_bit() {
        use crate::failure::{FailureSource, FailureStream};
        let m = exp_model(units::hours(2.0));
        let mut stream = FailureStream::new(m, 77);
        let mut buffer = TraceBuffer::new(m, 77);
        let mut cursor = buffer.cursor();
        for _ in 0..200 {
            assert_eq!(
                stream.next_failure().to_bits(),
                FailureSource::next_failure(&mut cursor).to_bits()
            );
        }
    }

    #[test]
    fn trace_buffer_replays_identically_to_every_cursor() {
        use crate::failure::FailureSource;
        let m = exp_model(units::minutes(90.0));
        let mut buffer = TraceBuffer::new(m, 5);
        let first: Vec<f64> = {
            let mut c = buffer.cursor();
            (0..50).map(|_| c.next_failure()).collect()
        };
        // A second cursor — possibly reading further — sees the same prefix.
        let second: Vec<f64> = {
            let mut c = buffer.cursor();
            (0..80).map(|_| c.next_failure()).collect()
        };
        assert_eq!(first.as_slice(), &second[..50]);
        assert_eq!(buffer.sampled().len(), 80);
        assert!((buffer.cursor().mean_interarrival() - units::minutes(90.0)).abs() < 1e-9);
    }

    #[test]
    fn trace_buffer_reset_starts_a_fresh_sequence_and_keeps_capacity() {
        let m = exp_model(units::hours(1.0));
        let mut buffer = TraceBuffer::new(m, 1);
        let a = buffer.time(99);
        let cap = buffer.sampled().len();
        buffer.reset(2);
        assert!(buffer.sampled().is_empty());
        let b = buffer.time(99);
        assert_ne!(a.to_bits(), b.to_bits());
        // Same seed again: identical sequence.
        buffer.reset(1);
        assert_eq!(buffer.time(99).to_bits(), a.to_bits());
        assert!(buffer.sampled().len() >= cap.min(100));
    }

    #[test]
    fn antithetic_replay_flips_the_sequence_and_keeps_the_mean() {
        let mtbf = units::hours(2.0);
        let m = exp_model(mtbf);
        let mut buffer = TraceBuffer::new(m, 42);
        assert!(!buffer.is_antithetic());
        let n = 20_000;
        let plain_last = buffer.time(n - 1);
        let plain: Vec<f64> = buffer.sampled().to_vec();
        buffer.reset_antithetic(42);
        assert!(buffer.is_antithetic());
        let anti_last = buffer.time(n - 1);
        let anti: Vec<f64> = buffer.sampled().to_vec();
        // Different sequences drawn from the same seed…
        assert_ne!(plain[0].to_bits(), anti[0].to_bits());
        // …with per-gap negative association: a short plain gap pairs with a
        // long antithetic gap (compare against the exponential median).
        let median = mtbf * std::f64::consts::LN_2;
        let mut opposite = 0usize;
        let gap = |times: &[f64], i: usize| times[i] - if i == 0 { 0.0 } else { times[i - 1] };
        for i in 0..n {
            if (gap(&plain, i) < median) != (gap(&anti, i) < median) {
                opposite += 1;
            }
        }
        assert!(
            opposite as f64 / n as f64 > 0.95,
            "only {opposite}/{n} gaps on opposite sides of the median"
        );
        // Both sequences still realise the model's mean inter-arrival.
        assert!((plain_last / n as f64 - mtbf).abs() / mtbf < 0.05);
        assert!((anti_last / n as f64 - mtbf).abs() / mtbf < 0.05);
        // A plain reset leaves antithetic mode.
        buffer.reset(42);
        assert!(!buffer.is_antithetic());
        assert_eq!(buffer.time(0).to_bits(), plain[0].to_bits());
    }

    #[test]
    fn buffer_freezes_into_a_trace() {
        let m = exp_model(units::minutes(30.0));
        let mut buffer = TraceBuffer::new(m, 9);
        let trace = buffer.to_trace(units::days(1.0), 8).unwrap();
        assert!(!trace.is_empty());
        assert_eq!(trace.ranks(), 8);
        for (e, &t) in trace.events().iter().zip(buffer.sampled()) {
            assert_eq!(e.time, t);
            assert!(e.rank < 8);
        }
        // Freezing is repeatable: same sequence, same ranks.
        assert_eq!(trace, buffer.to_trace(units::days(1.0), 8).unwrap());
        assert!(buffer.to_trace(-1.0, 8).is_err());
    }

    #[test]
    fn freezing_a_trace_does_not_perturb_later_replay() {
        // The rank draws of to_trace must not touch the sampling generator:
        // lazily extending the sequence afterwards still matches a buffer
        // that never froze anything.
        let m = exp_model(units::hours(1.0));
        let mut frozen = TraceBuffer::new(m, 33);
        let mut pristine = TraceBuffer::new(m, 33);
        frozen.to_trace(units::days(1.0), 4).unwrap();
        for i in 0..200 {
            assert_eq!(frozen.time(i).to_bits(), pristine.time(i).to_bits(), "index {i}");
        }
    }
}
