//! Readable constructors and conversions for durations (seconds) and memory
//! sizes (bytes).
//!
//! The whole workspace manipulates time as `f64` seconds and memory as `f64`
//! bytes.  These helpers keep scenario definitions readable and identical to
//! the way the paper states its parameters ("C = R = 10 minutes",
//! "T0 = 1 week", ...).

/// One second, the base time unit.
pub const SECOND: f64 = 1.0;
/// Seconds in a minute.
pub const MINUTE: f64 = 60.0;
/// Seconds in an hour.
pub const HOUR: f64 = 3_600.0;
/// Seconds in a day.
pub const DAY: f64 = 86_400.0;
/// Seconds in a week.
pub const WEEK: f64 = 604_800.0;

/// One byte, the base memory unit.
pub const BYTE: f64 = 1.0;
/// Bytes in a kibibyte.
pub const KIB: f64 = 1024.0;
/// Bytes in a mebibyte.
pub const MIB: f64 = 1024.0 * KIB;
/// Bytes in a gibibyte.
pub const GIB: f64 = 1024.0 * MIB;
/// Bytes in a tebibyte.
pub const TIB: f64 = 1024.0 * GIB;
/// Bytes in a pebibyte.
pub const PIB: f64 = 1024.0 * TIB;

/// Converts `x` seconds to seconds (identity, for symmetry).
#[inline]
pub fn seconds(x: f64) -> f64 {
    x
}

/// Converts `x` minutes to seconds.
#[inline]
pub fn minutes(x: f64) -> f64 {
    x * MINUTE
}

/// Converts `x` hours to seconds.
#[inline]
pub fn hours(x: f64) -> f64 {
    x * HOUR
}

/// Converts `x` days to seconds.
#[inline]
pub fn days(x: f64) -> f64 {
    x * DAY
}

/// Converts `x` weeks to seconds.
#[inline]
pub fn weeks(x: f64) -> f64 {
    x * WEEK
}

/// Converts `x` gibibytes to bytes.
#[inline]
pub fn gib(x: f64) -> f64 {
    x * GIB
}

/// Converts `x` tebibytes to bytes.
#[inline]
pub fn tib(x: f64) -> f64 {
    x * TIB
}

/// Formats a duration in seconds using the largest unit that keeps the value
/// readable (e.g. `90.0` becomes `"1.50 min"`).
pub fn format_duration(secs: f64) -> String {
    let abs = secs.abs();
    if abs >= WEEK {
        format!("{:.2} w", secs / WEEK)
    } else if abs >= DAY {
        format!("{:.2} d", secs / DAY)
    } else if abs >= HOUR {
        format!("{:.2} h", secs / HOUR)
    } else if abs >= MINUTE {
        format!("{:.2} min", secs / MINUTE)
    } else {
        format!("{secs:.2} s")
    }
}

/// Formats a memory size in bytes using the largest binary unit that keeps the
/// value readable.
pub fn format_memory(bytes: f64) -> String {
    let abs = bytes.abs();
    if abs >= PIB {
        format!("{:.2} PiB", bytes / PIB)
    } else if abs >= TIB {
        format!("{:.2} TiB", bytes / TIB)
    } else if abs >= GIB {
        format!("{:.2} GiB", bytes / GIB)
    } else if abs >= MIB {
        format!("{:.2} MiB", bytes / MIB)
    } else if abs >= KIB {
        format!("{:.2} KiB", bytes / KIB)
    } else {
        format!("{bytes:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_ratios_are_consistent() {
        assert_eq!(minutes(1.0), 60.0);
        assert_eq!(hours(1.0), 60.0 * 60.0);
        assert_eq!(days(1.0), 24.0 * hours(1.0));
        assert_eq!(weeks(1.0), 7.0 * days(1.0));
    }

    #[test]
    fn paper_parameters_round_trip() {
        // The paper's headline parameters: T0 = 1 week, C = R = 10 min, D = 1 min.
        assert_eq!(weeks(1.0), 604_800.0);
        assert_eq!(minutes(10.0), 600.0);
        assert_eq!(minutes(1.0), 60.0);
    }

    #[test]
    fn memory_ratios_are_consistent() {
        assert_eq!(gib(1.0), 1024.0 * 1024.0 * 1024.0);
        assert_eq!(tib(1.0), 1024.0 * gib(1.0));
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(format_duration(30.0), "30.00 s");
        assert_eq!(format_duration(90.0), "1.50 min");
        assert_eq!(format_duration(hours(2.0)), "2.00 h");
        assert_eq!(format_duration(days(3.0)), "3.00 d");
        assert_eq!(format_duration(weeks(1.0)), "1.00 w");
    }

    #[test]
    fn memory_formatting_picks_units() {
        assert_eq!(format_memory(512.0), "512 B");
        assert_eq!(format_memory(KIB * 2.0), "2.00 KiB");
        assert_eq!(format_memory(GIB * 1.5), "1.50 GiB");
        assert_eq!(format_memory(PIB * 1.25), "1.25 PiB");
    }
}
